//! Calibrating the framework from historical availability data.
//!
//! ```text
//! cargo run --release --example trace_calibration
//! ```
//!
//! The paper assumes availability PMFs come from "historical usage data".
//! This example closes that loop end to end: a hidden "true" availability
//! process generates a utilization trace per processor type (as a cluster
//! monitor would log it); `cdsf_system::fit` recovers a renewal model per
//! type; the fitted PMFs drive Stage I, and the fitted dwell drives the
//! Stage-II simulation. The fitted framework's decisions are then compared
//! against the ones made with the true model.

use cdsf_core::report::pct;
use cdsf_core::{AsciiTable, Cdsf, ImPolicy, RasPolicy, SimParams};
use cdsf_system::availability::{AvailabilitySpec, Timeline};
use cdsf_system::fit::fit_renewal_from_series;
use cdsf_system::{Platform, ProcessorType};
use cdsf_workloads::paper;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Samples a utilization series (1 sample per time unit) from a spec.
fn monitor_log(spec: &AvailabilitySpec, horizon: usize, seed: u64) -> Vec<f64> {
    let mut tl = Timeline::new(spec).expect("valid spec");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..horizon)
        .map(|t| tl.availability_at(t as f64, &mut rng))
        .collect()
}

fn main() {
    // Hidden truth: the paper's case-1 availability PMFs as renewal
    // processes with a 250-time-unit dwell.
    let truth: Vec<AvailabilitySpec> = paper::availability_case(1)
        .into_iter()
        .map(|pmf| AvailabilitySpec::Renewal {
            pmf,
            mean_dwell: 250.0,
        })
        .collect();

    // "Six weeks of monitoring", one sample per time unit.
    let horizon = 100_000usize;
    println!("Fitting per-type renewal models from {horizon}-sample monitor logs...\n");

    let mut fitted_types = Vec::new();
    let mut table = AsciiTable::new([
        "Type",
        "true E[α]",
        "fitted E[α]",
        "true dwell",
        "fitted dwell",
    ])
    .title("Model recovery from monitor logs");
    for (j, spec) in truth.iter().enumerate() {
        let series = monitor_log(spec, horizon, 42 + j as u64);
        let fitted = fit_renewal_from_series(&series, 1.0, 20).expect("fit succeeds");
        let (pmf, dwell) = match &fitted {
            AvailabilitySpec::Renewal { pmf, mean_dwell } => (pmf.clone(), *mean_dwell),
            _ => unreachable!("fit returns a renewal spec"),
        };
        table.row([
            format!("{}", j + 1),
            pct(spec.stationary_mean()),
            pct(pmf.expectation()),
            "250".to_string(),
            format!("{dwell:.0}"),
        ]);
        fitted_types.push((pmf, dwell));
    }
    println!("{table}");
    println!(
        "(Fitted dwell exceeds 250 because renewals that redraw the same level are\n\
         invisible in a utilization log — the fitted process is equivalent at the\n\
         level-change resolution.)\n"
    );

    // Build the fitted platform and compare Stage-I decisions.
    let counts = [4u32, 8];
    let fitted_platform = Platform::new(
        fitted_types
            .iter()
            .enumerate()
            .map(|(j, (pmf, _))| {
                ProcessorType::new(format!("Type {}", j + 1), counts[j], pmf.clone())
                    .expect("valid type")
            })
            .collect(),
    )
    .expect("valid platform");
    let mean_fitted_dwell =
        fitted_types.iter().map(|(_, d)| d).sum::<f64>() / fitted_types.len() as f64;

    let run = |platform: Platform, dwell: f64, label: &str| {
        let cdsf = Cdsf::builder()
            .batch(paper::batch())
            .reference_platform(platform)
            .runtime_cases((1..=4).map(paper::platform_case).collect())
            .deadline(paper::DEADLINE)
            .sim_params(SimParams {
                replicates: 25,
                mean_dwell: dwell,
                ..Default::default()
            })
            .build()
            .expect("valid config");
        let (alloc, report) = cdsf.stage_one(&ImPolicy::Robust).expect("stage I");
        let s4 = cdsf
            .run_scenario(&ImPolicy::Robust, &RasPolicy::Robust)
            .expect("scenario 4");
        let r = cdsf.system_robustness(&s4);
        println!(
            "{label}: allocation [{alloc}], φ1 = {}, (ρ1, ρ2) = ({}, {})",
            pct(report.joint),
            pct(r.rho1),
            pct(r.rho2)
        );
        alloc
    };

    let a_true = run(paper::platform(), 300.0, "true model  ");
    let a_fit = run(fitted_platform, mean_fitted_dwell, "fitted model");
    println!(
        "\nSame allocation from fitted data: {}",
        if a_true == a_fit {
            "yes — the monitor log was sufficient"
        } else {
            "no — inspect the fit"
        }
    );
}
