//! Availability sweep: mapping the robustness envelope.
//!
//! ```text
//! cargo run --release --example availability_sweep
//! ```
//!
//! The paper reports ρ2 for four hand-picked cases. This example sweeps
//! the weighted-availability decrease continuously (0 %–50 %) and finds,
//! for naïve STATIC and for the robust DLS set, the largest decrease at
//! which the paper's robust mapping still meets the deadline — a denser
//! version of the paper's Table I study and the natural follow-up
//! experiment its future work calls for.

use cdsf_core::report::pct;
use cdsf_core::{AsciiTable, Cdsf, ImPolicy, RasPolicy, SimParams};
use cdsf_workloads::generators::degraded_case;
use cdsf_workloads::paper;

fn main() {
    let reference = paper::platform();
    let sweep: Vec<f64> = (0..=10).map(|k| 0.05 * k as f64).collect();

    // Build the runtime cases: uniformly degraded versions of Â.
    let mut cases = Vec::new();
    let mut achieved = Vec::new();
    for &d in &sweep {
        if d == 0.0 {
            cases.push(reference.clone());
            achieved.push(0.0);
        } else {
            let (p, a) = degraded_case(&reference, d, 1234).expect("degrades");
            cases.push(p);
            achieved.push(a);
        }
    }

    let cdsf = Cdsf::builder()
        .batch(paper::batch())
        .reference_platform(reference)
        .runtime_cases(cases)
        .deadline(paper::DEADLINE)
        .sim_params(SimParams {
            replicates: 20,
            ..Default::default()
        })
        .build()
        .expect("valid configuration");

    let mut table = AsciiTable::new(["Avail. decrease", "STATIC", "robust DLS"])
        .title("Deadline verdict vs weighted-availability decrease (robust IM)");

    let static_result = cdsf
        .run_scenario(&ImPolicy::Robust, &RasPolicy::Naive)
        .expect("static scenario");
    let robust_result = cdsf
        .run_scenario(&ImPolicy::Robust, &RasPolicy::Robust)
        .expect("robust scenario");

    let napps = cdsf.batch().len();
    let mut rho2_static: f64 = 0.0;
    let mut rho2_robust: f64 = 0.0;
    for (i, &a) in achieved.iter().enumerate() {
        let case = i + 1;
        let s_ok = static_result.case_is_robust(case, napps);
        let r_ok = robust_result.case_is_robust(case, napps);
        if s_ok {
            rho2_static = rho2_static.max(a);
        }
        if r_ok {
            rho2_robust = rho2_robust.max(a);
        }
        table.row([
            pct(a),
            if s_ok { "met" } else { "violated" }.to_string(),
            if r_ok { "met" } else { "violated" }.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Robustness envelope ρ2: STATIC tolerates {} vs robust DLS {} — the gap is\n\
         the value Stage II adds on top of a robust mapping. (Paper's four-case\n\
         study put ρ2 at 30.77 %.)",
        pct(rho2_static),
        pct(rho2_robust)
    );
}
