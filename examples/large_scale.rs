//! Large-scale study: the paper's future-work experiment.
//!
//! ```text
//! cargo run --release --example large_scale
//! ```
//!
//! Generates a 10-application batch on a 4-type, ~80-processor platform
//! (where exhaustive search is no longer tractable), compares the scalable
//! Stage-I heuristics on robustness quality and wall-clock cost, and runs
//! the best heuristic through Stage II under a degraded availability case.

use cdsf_core::report::pct;
use cdsf_core::{AsciiTable, Cdsf, ImPolicy, RasPolicy, SimParams};
use cdsf_ra::allocators::{
    EqualShare, GeneticAlgorithm, GreedyMaxRobust, GreedyMinTime, SimulatedAnnealing, Sufferage,
};
use cdsf_ra::robustness::evaluate;
use cdsf_ra::Allocator;
use cdsf_workloads::generators::{degraded_case, BatchGenerator, PlatformGenerator, Range};
use std::time::Instant;

fn main() {
    // A platform exhaustive search cannot handle: 4 types, 16–32 procs each.
    let platform = PlatformGenerator {
        num_types: 4,
        procs_per_type: (16, 32),
        availability_pulses: 3,
        availability_range: Range::new(0.25, 1.0).expect("valid range"),
    }
    .generate(2024)
    .expect("platform generates");

    let batch = BatchGenerator {
        num_apps: 10,
        total_iters: (2_000, 20_000),
        serial_fraction: Range::new(0.02, 0.25).expect("valid range"),
        mean_exec_time: Range::new(2_000.0, 9_000.0).expect("valid range"),
        type_heterogeneity: Range::new(0.5, 2.0).expect("valid range"),
        pulses: 32,
    }
    .generate(&platform, 7)
    .expect("batch generates");

    let deadline = 2_500.0;
    println!(
        "{} applications on {} processors of {} types, Δ = {deadline}\n",
        batch.len(),
        platform.total_processors(),
        platform.num_types()
    );

    // ---- Stage-I heuristic shoot-out -------------------------------------
    let policies: Vec<Box<dyn Allocator>> = vec![
        Box::new(EqualShare::new()),
        Box::new(GreedyMinTime::new()),
        Box::new(GreedyMaxRobust::new()),
        Box::new(Sufferage::new()),
        Box::new(SimulatedAnnealing::default()),
        Box::new(GeneticAlgorithm::default()),
    ];

    let mut table = AsciiTable::new(["Allocator", "φ1 = Pr(Ψ ≤ Δ)", "wall-clock"])
        .title("Stage-I heuristics on the large instance");
    let mut best: Option<(f64, String, cdsf_ra::Allocation)> = None;
    for policy in &policies {
        let t0 = Instant::now();
        match policy.allocate(&batch, &platform, deadline) {
            Ok(alloc) => {
                let elapsed = t0.elapsed();
                let report = evaluate(&batch, &platform, &alloc, deadline).expect("evaluate");
                table.row([
                    policy.name().to_string(),
                    pct(report.joint),
                    format!("{:.1?}", elapsed),
                ]);
                if best.as_ref().map_or(true, |(b, _, _)| report.joint > *b) {
                    best = Some((report.joint, policy.name().to_string(), alloc));
                }
            }
            Err(e) => {
                table.row([
                    policy.name().to_string(),
                    format!("failed: {e}"),
                    "-".into(),
                ]);
            }
        }
    }
    println!("{table}");

    let (best_phi1, best_name, best_alloc) = best.expect("at least one heuristic succeeded");
    println!(
        "Best Stage-I heuristic: {best_name} with φ1 = {}\n",
        pct(best_phi1)
    );

    // ---- Stage II under a degraded runtime case ---------------------------
    let (degraded, achieved) = degraded_case(&platform, 0.25, 42).expect("degrades");
    println!(
        "Runtime case: weighted availability decreased by {} vs the reference.\n",
        pct(achieved)
    );

    let cdsf = Cdsf::builder()
        .batch(batch.clone())
        .reference_platform(platform.clone())
        .runtime_cases(vec![platform.clone(), degraded])
        .deadline(deadline)
        .sim_params(SimParams {
            replicates: 10,
            ..Default::default()
        })
        .build()
        .expect("valid configuration");

    // Wrap the winning allocation as a custom policy so Stage II reuses it.
    struct Fixed(cdsf_ra::Allocation);
    impl Allocator for Fixed {
        fn name(&self) -> &'static str {
            "best-heuristic"
        }
        fn allocate(
            &self,
            _: &cdsf_system::Batch,
            _: &cdsf_system::Platform,
            _: f64,
        ) -> cdsf_ra::Result<cdsf_ra::Allocation> {
            Ok(self.0.clone())
        }
    }

    let result = cdsf
        .run_scenario(
            &ImPolicy::Custom(Box::new(Fixed(best_alloc))),
            &RasPolicy::Robust,
        )
        .expect("scenario runs");

    let mut verdicts = AsciiTable::new(["Case", "All apps meet Δ?", "Best technique counts"])
        .title("Stage-II verdicts (robust DLS on the heuristic mapping)");
    for case in 1..=2 {
        let ok = result.case_is_robust(case, cdsf.batch().len());
        // Which technique wins most often across applications in this case?
        let mut counts = std::collections::BTreeMap::new();
        for app in 0..cdsf.batch().len() {
            if let Some(cell) = result.best_technique(app, case) {
                *counts.entry(cell.technique.clone()).or_insert(0u32) += 1;
            }
        }
        let summary = counts
            .iter()
            .map(|(k, v)| format!("{k}×{v}"))
            .collect::<Vec<_>>()
            .join(", ");
        verdicts.row([
            format!("{case}"),
            if ok { "yes".into() } else { "no".to_string() },
            summary,
        ]);
    }
    println!("{verdicts}");
}
