//! The paper's Section IV walk-through: all four scenarios, narrated.
//!
//! ```text
//! cargo run --release --example paper_example
//! ```
//!
//! Scenario 1 (naïve IM – naïve RAS) through Scenario 4 (robust IM –
//! robust RAS), printing the Stage-I mapping and φ1 for each, the
//! deadline verdict per availability case, and finally `(ρ1, ρ2)`.

use cdsf_core::report::pct;
use cdsf_core::{AsciiTable, Cdsf, Scenario, SimParams};
use cdsf_workloads::paper;

fn main() {
    let cdsf = Cdsf::builder()
        .batch(paper::batch())
        .reference_platform(paper::platform())
        .runtime_cases((1..=paper::NUM_CASES).map(paper::platform_case).collect())
        .deadline(paper::DEADLINE)
        .sim_params(SimParams {
            replicates: 40,
            ..Default::default()
        })
        .build()
        .expect("valid configuration");

    println!(
        "Batch of {} applications on a {}-processor heterogeneous system, Δ = {:.0}\n",
        cdsf.batch().len(),
        cdsf.reference().total_processors(),
        cdsf.deadline()
    );

    let mut summary = AsciiTable::new([
        "Scenario", "Policies", "φ1", "Case 1", "Case 2", "Case 3", "Case 4",
    ])
    .title("Deadline verdict per scenario and availability case");

    for scenario in Scenario::all() {
        let (im, ras) = scenario.policies();
        let result = cdsf.run_scenario(&im, &ras).expect("scenario runs");

        println!(
            "Scenario {}: {} — allocation: {}",
            scenario.number(),
            scenario.label(),
            result.allocation
        );
        println!("  φ1 = {}", pct(result.phi1));
        for (i, (p, t)) in result
            .per_app_prob
            .iter()
            .zip(&result.expected_times)
            .enumerate()
        {
            println!(
                "  application {}: Pr(T ≤ Δ) = {}, E[T] = {:.1}",
                i + 1,
                pct(*p),
                t
            );
        }
        println!();

        let verdicts: Vec<String> = (1..=paper::NUM_CASES)
            .map(|case| {
                if result.case_is_robust(case, cdsf.batch().len()) {
                    "met".to_string()
                } else {
                    "VIOLATED".to_string()
                }
            })
            .collect();
        let mut row = vec![
            scenario.number().to_string(),
            scenario.label().to_string(),
            pct(result.phi1),
        ];
        row.extend(verdicts);
        summary.row(row);

        if scenario == Scenario::RobustRobust {
            let r = cdsf.system_robustness(&result);
            println!(
                "=> System robustness (ρ1, ρ2) = ({}, {})  [paper: (74.5%, 30.77%)]\n",
                pct(r.rho1),
                pct(r.rho2)
            );
        }
    }

    println!("{summary}");
    println!(
        "The paper's hypothesis holds: only the combined robust IM + robust RAS\n\
         scenario tolerates a substantial availability decrease while meeting Δ."
    );
}
