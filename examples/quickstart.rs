//! Quickstart: run the CDSF end-to-end on the paper's example.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's 12-processor heterogeneous system and 3-application
//! batch, maps it robustly (Stage I), simulates robust dynamic loop
//! scheduling under the four availability cases (Stage II), and prints the
//! system robustness pair `(ρ1, ρ2)`.

use cdsf_core::{Cdsf, ImPolicy, RasPolicy, SimParams};
use cdsf_workloads::paper;

fn main() {
    // 1. Describe the world: batch, historical platform Â, runtime
    //    availability cases, and the common deadline Δ.
    let cdsf = Cdsf::builder()
        .batch(paper::batch())
        .reference_platform(paper::platform())
        .runtime_cases((1..=paper::NUM_CASES).map(paper::platform_case).collect())
        .deadline(paper::DEADLINE)
        .sim_params(SimParams {
            replicates: 30,
            ..Default::default()
        })
        .build()
        .expect("valid configuration");

    // 2. Stage I: robust initial mapping (exhaustive search, the paper's
    //    "robust IM").
    let (allocation, stage1) = cdsf.stage_one(&ImPolicy::Robust).expect("stage I");
    println!("Stage I allocation: {allocation}");
    println!(
        "Stage I robustness φ1 = Pr(Ψ ≤ Δ) = {:.1}%  (paper: 74.5%)",
        stage1.joint * 100.0
    );

    // 3. Stage II: run the full scenario (robust IM + robust DLS) across
    //    all four availability cases.
    let result = cdsf
        .run_scenario(&ImPolicy::Robust, &RasPolicy::Robust)
        .expect("scenario 4");

    for case in 1..=paper::NUM_CASES {
        let ok = result.case_is_robust(case, cdsf.batch().len());
        println!(
            "case {case}: weighted availability decrease {:>5.1}% → {}",
            paper::availability_decrease(case) * 100.0,
            if ok {
                "deadline met"
            } else {
                "deadline violated"
            }
        );
    }

    // 4. System robustness (ρ1, ρ2).
    let r = cdsf.system_robustness(&result);
    println!(
        "System robustness (ρ1, ρ2) = ({:.1}%, {:.1}%)  (paper: (74.5%, 30.77%))",
        r.rho1 * 100.0,
        r.rho2 * 100.0
    );
}
