//! Live DLS on a real computation: numerically integrating a function
//! whose cost varies wildly across the domain.
//!
//! ```text
//! cargo run --release --example real_loop
//! ```
//!
//! Unlike every other example (which drives the *simulator*), this one
//! runs the actual multithreaded runtime ([`cdsf_dls::runtime`]) on a real
//! workload: adaptive-precision quadrature of `sin(x²)` over [0, 40],
//! where the integrand oscillates faster as `x` grows, so late iterations
//! cost ~1500× more than early ones — the classic ramped irregular loop
//! that breaks a static split. Each technique executes the same work; the
//! table reports wall-clock time, chunk count, and the live
//! load-imbalance metric.

use cdsf_core::AsciiTable;
use cdsf_dls::runtime::{run_parallel_loop, RuntimeConfig};
use cdsf_dls::TechniqueKind;
use std::sync::atomic::{AtomicU64, Ordering};

const ITERS: u64 = 50_000;
const THREADS: usize = 4;

const DOMAIN: f64 = 40.0;

/// Integrates sin(x²) over the i-th slice of [0, 40]. The local frequency
/// of sin(x²) is ∝ x, so the sample count ramps linearly with the slice
/// index: the last iterations are ~1500× costlier than the first.
fn integrate_slice(i: u64) -> f64 {
    let lo = DOMAIN * i as f64 / ITERS as f64;
    let hi = DOMAIN * (i as f64 + 1.0) / ITERS as f64;
    let points = (4.0 + 0.12 * i as f64) as usize;
    let dx = (hi - lo) / points as f64;
    let mut acc = 0.0;
    for k in 0..points {
        let x = lo + (k as f64 + 0.5) * dx;
        acc += (x * x).sin() * dx;
    }
    acc
}

fn main() {
    println!(
        "Integrating sin(x²) on [0,{DOMAIN}] with {ITERS} slices on {THREADS} threads.\n\
         Slice cost ramps linearly: the static split's last worker owns ~44% of\n\
         the total work instead of 25% (how much that costs in wall time depends\n\
         on the CPU - a lone straggler thread often gets a turbo-boost discount).\n"
    );

    let mut table = AsciiTable::new([
        "Technique",
        "wall (ms)",
        "chunks",
        "imbalance c.o.v.",
        "integral",
    ])
    .title("Live runtime comparison (real threads, real work)");

    for kind in [
        TechniqueKind::Static,
        TechniqueKind::SelfSched,
        TechniqueKind::Gss,
        TechniqueKind::Tss,
        TechniqueKind::Fac,
        TechniqueKind::Awf {
            variant: cdsf_dls::AwfVariant::Batch,
        },
        TechniqueKind::Af,
    ] {
        // Accumulate the integral in fixed-point to stay atomic.
        let sum_fp = AtomicU64::new(0);
        let report = run_parallel_loop(
            ITERS,
            &RuntimeConfig {
                threads: THREADS,
                kind: kind.clone(),
            },
            |i| {
                let v = integrate_slice(i);
                // 1e12 fixed-point; the integrand is bounded by 1.
                sum_fp.fetch_add((v.abs() * 1e12) as u64, Ordering::Relaxed);
            },
        )
        .expect("runtime executes");
        let integral = sum_fp.load(Ordering::Relaxed) as f64 / 1e12;
        table.row([
            kind.name().to_string(),
            format!("{:.1}", report.wall_seconds * 1_000.0),
            report.chunks.to_string(),
            format!("{:.3}", report.imbalance),
            format!("{integral:.6}"),
        ]);
    }
    println!("{table}");
    println!(
        "All techniques compute the same integral (identical work, different\n\
         schedules). STATIC's pre-split pins the expensive high-x quarter on its\n\
         last worker; the dynamic techniques spread it out, which shows as a\n\
         ~100x lower imbalance coefficient and the shortest wall times."
    );
}
