//! DLS technique survey: all twelve techniques under four availability
//! regimes.
//!
//! ```text
//! cargo run --release --example dls_comparison
//! ```
//!
//! Runs the full technique family (STATIC, SS, FSC, GSS, TSS, FAC, WF,
//! AWF-B/C/D/E, AF) on one parallel loop under: a dedicated system,
//! constant heterogeneous availability, a fast renewal process, and a
//! bursty two-state Markov process — printing mean makespan, imbalance
//! and chunk count. This is the survey the paper's related-work section
//! points to, reproduced on our executor.

use cdsf_core::AsciiTable;
use cdsf_dls::executor::{execute, ExecutorConfig};
use cdsf_dls::TechniqueKind;
use cdsf_pmf::stats::Welford;
use cdsf_pmf::Pmf;
use cdsf_system::availability::AvailabilitySpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

const WORKERS: usize = 8;
const ITERS: u64 = 16_384;
const REPLICATES: usize = 15;

fn regimes() -> Vec<(&'static str, Vec<AvailabilitySpec>)> {
    let renewal_pmf = Pmf::from_pairs([(0.25, 0.25), (0.5, 0.25), (1.0, 0.5)]).unwrap();
    vec![
        ("dedicated", vec![AvailabilitySpec::Constant { a: 1.0 }]),
        (
            "heterogeneous-constant",
            (0..WORKERS)
                .map(|i| AvailabilitySpec::Constant {
                    a: if i < 2 { 0.25 } else { 1.0 },
                })
                .collect(),
        ),
        (
            "renewal",
            vec![AvailabilitySpec::Renewal {
                pmf: renewal_pmf,
                mean_dwell: 400.0,
            }],
        ),
        (
            "bursty-markov",
            vec![AvailabilitySpec::TwoStateMarkov {
                up: 1.0,
                down: 0.2,
                mean_up: 600.0,
                mean_down: 200.0,
            }],
        ),
    ]
}

fn main() {
    let techniques = TechniqueKind::all(64);

    for (regime_name, specs) in regimes() {
        let cfg = ExecutorConfig::builder()
            .workers(WORKERS)
            .parallel_iters(ITERS)
            .iter_time_mean_sigma(1.0, 0.2)
            .expect("valid iteration time")
            .overhead(0.5)
            .availability_per_worker(if specs.len() == 1 {
                vec![specs[0].clone(); WORKERS]
            } else {
                specs
            })
            .build()
            .expect("valid executor config");

        let mut table =
            AsciiTable::new(["Technique", "mean makespan", "imbalance c.o.v.", "chunks"]).title(
                format!(
                "{regime_name}: {ITERS} iterations on {WORKERS} workers, {REPLICATES} replicates"
            ),
            );

        for kind in &techniques {
            let mut makespan = Welford::new();
            let mut imbalance = Welford::new();
            let mut chunks = Welford::new();
            for r in 0..REPLICATES {
                let mut rng = StdRng::seed_from_u64(0xD15C + r as u64);
                let run = execute(kind, &cfg, &mut rng).expect("run succeeds");
                makespan.push(run.makespan);
                imbalance.push(run.imbalance);
                chunks.push(run.chunks as f64);
            }
            table.row([
                kind.name().to_string(),
                format!("{:.0}", makespan.mean()),
                format!("{:.4}", imbalance.mean()),
                format!("{:.0}", chunks.mean()),
            ]);
        }
        println!("{table}");
    }

    println!(
        "Reading the tables: on a dedicated system every technique is near the\n\
         fluid bound and STATIC is cheapest (fewest chunks). Under degraded or\n\
         fluctuating availability the dynamic, and especially the adaptive,\n\
         techniques hold makespan close to the aggregate-capacity bound while\n\
         STATIC degrades to its slowest processor."
    );
}
