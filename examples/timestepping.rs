//! Time-stepping execution: the setting the original AWF was built for.
//!
//! ```text
//! cargo run --release --example timestepping
//! ```
//!
//! A time-stepping scientific application executes the *same* parallel
//! loop every simulation step. Adaptive weighted factoring (AWF) measures
//! each processor's performance during earlier steps and re-weights the
//! chunk distribution at every step boundary — so its first step looks
//! like WF with uniform weights, and later steps track the machine's true
//! speeds. This example runs 8 steps on a machine whose first two
//! processors are 4× slower and prints each technique's per-step times.

use cdsf_core::report::BarChart;
use cdsf_dls::executor::{execute_timestepping, ExecutorConfig};
use cdsf_dls::{AwfVariant, TechniqueKind};
use cdsf_system::availability::AvailabilitySpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

const WORKERS: usize = 8;
const ITERS: u64 = 8_192;
const STEPS: usize = 8;

fn main() {
    // Two persistently slow processors (availability 0.25), six fast ones.
    let specs: Vec<AvailabilitySpec> = (0..WORKERS)
        .map(|i| AvailabilitySpec::Constant {
            a: if i < 2 { 0.25 } else { 1.0 },
        })
        .collect();
    let cfg = ExecutorConfig::builder()
        .workers(WORKERS)
        .parallel_iters(ITERS)
        .iter_time_mean_sigma(1.0, 0.1)
        .expect("valid iteration time")
        .overhead(0.5)
        .availability_per_worker(specs)
        .build()
        .expect("valid executor config");

    let techniques = [
        TechniqueKind::Static,
        TechniqueKind::Wf { weights: None },
        TechniqueKind::Awf {
            variant: AwfVariant::Timestep,
        },
        TechniqueKind::Awf {
            variant: AwfVariant::Batch,
        },
        TechniqueKind::Af,
    ];

    // Fluid bound: 8192 / (2·0.25 + 6·1.0) = 1260 per step.
    let fluid = ITERS as f64 / (2.0 * 0.25 + 6.0);
    println!(
        "{ITERS} iterations × {STEPS} steps on {WORKERS} workers (two at 25% availability).\n\
         Fluid bound per step: {fluid:.0} time units.\n"
    );

    for kind in &techniques {
        let mut rng = StdRng::seed_from_u64(0x57E9);
        let result = execute_timestepping(kind, &cfg, STEPS, &mut rng).expect("runs");
        let mut chart = BarChart::new(44).reference(result.step_durations[0], "step 1");
        for (i, d) in result.step_durations.iter().enumerate() {
            chart.bar(format!("step {}", i + 1), *d);
        }
        println!(
            "{} — total {:.0}, mean step {:.0} ({}):",
            kind.name(),
            result.total_time,
            result.mean_step(),
            if result.mean_step() < 1.25 * fluid {
                "near-fluid"
            } else {
                "above fluid"
            }
        );
        print!("{chart}");
        println!();
    }

    println!(
        "AWF's first step matches WF (uniform weights); every later step uses the\n\
         measured per-processor speeds, closing most of the gap to the fluid bound\n\
         without per-batch re-weighting overhead. STATIC never recovers: each step\n\
         repeats the same pinned split."
    );
}
