//! Correlated availability study — the paper's future-work question:
//! *"Exploring the possible correlation between the availabilities for
//! different processor types on the overall robustness of the system."*
//!
//! ```text
//! cargo run --release --example correlation_study
//! ```
//!
//! Sweeps the across-type availability correlation ρ under a Gaussian
//! copula (marginals fixed to the paper's Table I PMFs) and reports
//! `φ₁(ρ)` for both Table IV mappings, with and without intra-type
//! sharing of the availability state.

use cdsf_core::report::pct;
use cdsf_core::AsciiTable;
use cdsf_ra::correlation::{correlation_sweep, monte_carlo_phi1_correlated, CorrelationModel};
use cdsf_ra::robustness::{evaluate, MonteCarloConfig};
use cdsf_ra::{Allocation, Assignment};
use cdsf_system::ProcTypeId;
use cdsf_workloads::paper;

fn main() {
    let batch = paper::batch();
    let platform = paper::platform();
    let cfg = MonteCarloConfig {
        replicates: 200_000,
        threads: 1,
        seed: 2718,
    };

    let allocations = [
        (
            "naive IM",
            Allocation::new(vec![
                Assignment {
                    proc_type: ProcTypeId(1),
                    procs: 4,
                },
                Assignment {
                    proc_type: ProcTypeId(0),
                    procs: 4,
                },
                Assignment {
                    proc_type: ProcTypeId(1),
                    procs: 4,
                },
            ]),
        ),
        (
            "robust IM",
            Allocation::new(vec![
                Assignment {
                    proc_type: ProcTypeId(0),
                    procs: 2,
                },
                Assignment {
                    proc_type: ProcTypeId(0),
                    procs: 2,
                },
                Assignment {
                    proc_type: ProcTypeId(1),
                    procs: 8,
                },
            ]),
        ),
    ];
    let rhos = [0.0, 0.25, 0.5, 0.75, 1.0];

    for (label, alloc) in &allocations {
        let exact = evaluate(&batch, &platform, alloc, paper::DEADLINE)
            .expect("evaluates")
            .joint;
        let mut table = AsciiTable::new([
            "ρ across types",
            "φ1 (independent within type)",
            "φ1 (shared within type)",
        ])
        .title(format!(
            "{label}: φ1 under correlated availability (independence baseline: {})",
            pct(exact)
        ));

        let indep = correlation_sweep(
            &batch,
            &platform,
            alloc,
            paper::DEADLINE,
            &rhos,
            false,
            &cfg,
        )
        .expect("sweep");
        let shared =
            correlation_sweep(&batch, &platform, alloc, paper::DEADLINE, &rhos, true, &cfg)
                .expect("sweep");
        for ((rho, phi_i), (_, phi_s)) in indep.iter().zip(&shared) {
            table.row([format!("{rho:.2}"), pct(*phi_i), pct(*phi_s)]);
        }
        println!("{table}");
    }

    // The two dependence extremes, for the robust mapping.
    let robust = &allocations[1].1;
    let indep = monte_carlo_phi1_correlated(
        &batch,
        &platform,
        robust,
        paper::DEADLINE,
        &CorrelationModel::independent(),
        &cfg,
    )
    .expect("independent");
    let como = monte_carlo_phi1_correlated(
        &batch,
        &platform,
        robust,
        paper::DEADLINE,
        &CorrelationModel::comonotone(),
        &cfg,
    )
    .expect("comonotone");
    println!(
        "Robust mapping extremes: independent {} vs fully correlated {}.\n\
         Correlation matters when several applications bind the joint probability:\n\
         the naive mapping (two ~50% apps on type 2) nearly doubles its φ1 as their\n\
         availability states align, while the robust mapping is insensitive — its\n\
         φ1 is dominated by a single application's marginal, which correlation\n\
         cannot change. Answering the paper's question: independence is a\n\
         conservative assumption exactly when robustness is spread over many\n\
         applications, and irrelevant when one application is the bottleneck.",
        pct(indep),
        pct(como)
    );
}
