//! Synthetic availability traces with realistic structure.
//!
//! Historical machine availability is not a stationary renewal process:
//! desktop grids and shared clusters show strong *diurnal* patterns (free
//! at night, loaded during work hours) plus noise. This module generates
//! such traces as `(availability, duration)` segment lists that plug into
//! [`AvailabilitySpec::Trace`] for playback or into [`cdsf_system::fit`]
//! for model fitting — so the whole calibration pipeline can be exercised
//! against structured (non-renewal) ground truth.

use cdsf_system::availability::AvailabilitySpec;
use cdsf_system::{Result, SystemError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a diurnal availability trace.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalTrace {
    /// Length of one day in simulation time units.
    pub day_length: f64,
    /// Number of days to generate.
    pub days: usize,
    /// Mean availability during the off-peak (night) window.
    pub night_availability: f64,
    /// Mean availability during the peak (work-hours) window.
    pub day_availability: f64,
    /// Fraction of each day that is peak, in `(0, 1)`.
    pub peak_fraction: f64,
    /// Relative noise on each segment's availability (uniform ±noise·mean),
    /// clamped into `(0, 1]`.
    pub noise: f64,
    /// Segments per window (granularity of the noise).
    pub segments_per_window: usize,
}

impl Default for DiurnalTrace {
    fn default() -> Self {
        Self {
            day_length: 2_880.0, // e.g. one "minute" = 0.5 time units
            days: 7,
            night_availability: 0.9,
            day_availability: 0.4,
            peak_fraction: 1.0 / 3.0,
            noise: 0.1,
            segments_per_window: 4,
        }
    }
}

impl DiurnalTrace {
    fn validate(&self) -> Result<()> {
        let bad = |name: &'static str, value: f64| Err(SystemError::BadParameter { name, value });
        if !(self.day_length > 0.0) {
            return bad("day_length", self.day_length);
        }
        if self.days == 0 {
            return bad("days", 0.0);
        }
        for (name, a) in [
            ("night_availability", self.night_availability),
            ("day_availability", self.day_availability),
        ] {
            if !(a > 0.0 && a <= 1.0) {
                return bad(name, a);
            }
        }
        if !(self.peak_fraction > 0.0 && self.peak_fraction < 1.0) {
            return bad("peak_fraction", self.peak_fraction);
        }
        if !(0.0..1.0).contains(&self.noise) {
            return bad("noise", self.noise);
        }
        if self.segments_per_window == 0 {
            return bad("segments_per_window", 0.0);
        }
        Ok(())
    }

    /// Generates the `(availability, duration)` segments.
    pub fn segments(&self, seed: u64) -> Result<Vec<(f64, f64)>> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(self.days * 2 * self.segments_per_window);
        let peak_len = self.day_length * self.peak_fraction;
        let night_len = self.day_length - peak_len;
        let jittered = |mean: f64, rng: &mut StdRng| -> f64 {
            if self.noise == 0.0 {
                return mean;
            }
            let factor = 1.0 + rng.gen_range(-self.noise..=self.noise);
            (mean * factor).clamp(1e-3, 1.0)
        };
        for _ in 0..self.days {
            // Night window first (day starts at midnight).
            for _ in 0..self.segments_per_window {
                out.push((
                    jittered(self.night_availability, &mut rng),
                    night_len / self.segments_per_window as f64,
                ));
            }
            for _ in 0..self.segments_per_window {
                out.push((
                    jittered(self.day_availability, &mut rng),
                    peak_len / self.segments_per_window as f64,
                ));
            }
        }
        Ok(out)
    }

    /// Generates the trace as a playable [`AvailabilitySpec::Trace`].
    pub fn spec(&self, seed: u64) -> Result<AvailabilitySpec> {
        Ok(AvailabilitySpec::Trace {
            segments: self.segments(seed)?,
        })
    }

    /// The time-averaged availability the trace targets (before noise).
    pub fn mean_availability(&self) -> f64 {
        self.night_availability * (1.0 - self.peak_fraction)
            + self.day_availability * self.peak_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsf_system::availability::Timeline;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validation_rejects_bad_parameters() {
        let ok = DiurnalTrace::default();
        assert!(ok.segments(0).is_ok());
        for bad in [
            DiurnalTrace {
                day_length: 0.0,
                ..ok.clone()
            },
            DiurnalTrace {
                days: 0,
                ..ok.clone()
            },
            DiurnalTrace {
                night_availability: 0.0,
                ..ok.clone()
            },
            DiurnalTrace {
                day_availability: 1.5,
                ..ok.clone()
            },
            DiurnalTrace {
                peak_fraction: 1.0,
                ..ok.clone()
            },
            DiurnalTrace {
                noise: 1.0,
                ..ok.clone()
            },
            DiurnalTrace {
                segments_per_window: 0,
                ..ok.clone()
            },
        ] {
            assert!(bad.segments(0).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn trace_covers_requested_horizon() {
        let t = DiurnalTrace {
            days: 3,
            ..Default::default()
        };
        let segments = t.segments(1).unwrap();
        let total: f64 = segments.iter().map(|(_, d)| d).sum();
        assert!((total - 3.0 * t.day_length).abs() < 1e-6);
    }

    #[test]
    fn long_run_mean_matches_target() {
        let t = DiurnalTrace {
            days: 30,
            noise: 0.05,
            ..Default::default()
        };
        let spec = t.spec(7).unwrap();
        let mut tl = Timeline::new(&spec).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mean = tl.mean_availability_until(30.0 * t.day_length, &mut rng);
        assert!(
            (mean - t.mean_availability()).abs() < 0.02,
            "mean {mean} vs target {}",
            t.mean_availability()
        );
    }

    #[test]
    fn diurnal_structure_is_visible() {
        // Availability at night is higher than during the peak window.
        let t = DiurnalTrace {
            noise: 0.0,
            ..Default::default()
        };
        let spec = t.spec(0).unwrap();
        let mut tl = Timeline::new(&spec).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let night = tl.availability_at(10.0, &mut rng);
        let peak = tl.availability_at(t.day_length * (1.0 - t.peak_fraction) + 10.0, &mut rng);
        assert_eq!(night, 0.9);
        assert_eq!(peak, 0.4);
    }

    #[test]
    fn fit_recovers_the_bimodal_structure() {
        // Fitting a renewal model to a diurnal trace recovers the two
        // availability modes (the fit cannot capture periodicity — that is
        // exactly the modeling gap this generator exposes).
        let t = DiurnalTrace {
            days: 30,
            noise: 0.02,
            ..Default::default()
        };
        let spec = t.spec(5).unwrap();
        let mut tl = Timeline::new(&spec).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let series: Vec<f64> = (0..80_000)
            .map(|k| tl.availability_at(k as f64, &mut rng))
            .collect();
        let fitted = cdsf_system::fit::fit_renewal_from_series(&series, 1.0, 10).unwrap();
        assert!(
            (fitted.stationary_mean() - t.mean_availability()).abs() < 0.05,
            "fitted mean {}",
            fitted.stationary_mean()
        );
    }
}
