//! The paper's small-scale example (Section IV), encoded once.
//!
//! All quantities are taken verbatim from the paper's tables:
//!
//! * **Table I** — four availability cases. Case 1 is the historical
//!   availability `Â` used for Stage-I mapping; cases 2–4 are runtime
//!   cases with decreasing weighted system availability (−28.17 %,
//!   −30.77 %, −32.77 % relative to case 1).
//! * **Table II** — three applications with serial/parallel iteration
//!   counts (439+1024, 512+2048, 216+4096).
//! * **Table III** — normal-distribution mean single-processor execution
//!   times, `σ = μ/10`.
//! * Deadline **Δ = 3250** time units.

use cdsf_pmf::Pmf;
use cdsf_system::{Application, Batch, Platform, ProcessorType};

/// The paper's system deadline Δ (time units).
pub const DEADLINE: f64 = 3250.0;

/// Number of availability cases in Table I.
pub const NUM_CASES: usize = 4;

/// Default PMF resolution (pulses per execution-time distribution) used by
/// the fixture. 64 equiprobable pulses reproduce every published number to
/// within the paper's own sampling noise.
pub const DEFAULT_PULSES: usize = 64;

/// Per-type availability PMFs for one of the paper's Table I cases
/// (`case` is 1-based, matching the paper). Index 0 = type 1, 1 = type 2.
///
/// # Panics
/// Panics if `case` is not in `1..=4` — the fixture mirrors the paper's
/// fixed table.
pub fn availability_case(case: usize) -> [Pmf; 2] {
    type Pulses = &'static [(f64, f64)];
    let pairs: [(Pulses, Pulses); 4] = [
        // Case 1 (Â): type 1 {75%: .5, 100%: .5}; type 2 {25: .25, 50: .25, 100: .5}.
        (
            &[(0.75, 0.50), (1.00, 0.50)],
            &[(0.25, 0.25), (0.50, 0.25), (1.00, 0.50)],
        ),
        // Case 2: type 1 {50: .9, 75: .1}; type 2 {33: .45, 66: .45, 100: .1}.
        (
            &[(0.50, 0.90), (0.75, 0.10)],
            &[(0.33, 0.45), (0.66, 0.45), (1.00, 0.10)],
        ),
        // Case 3: type 1 {52: .5, 69: .5}; type 2 {17: .25, 35: .25, 69: .5}.
        (
            &[(0.52, 0.50), (0.69, 0.50)],
            &[(0.17, 0.25), (0.35, 0.25), (0.69, 0.50)],
        ),
        // Case 4: type 1 {33: .75, 66: .25}; type 2 {20: .5, 80: .25, 100: .25}.
        (
            &[(0.33, 0.75), (0.66, 0.25)],
            &[(0.20, 0.50), (0.80, 0.25), (1.00, 0.25)],
        ),
    ];
    assert!(
        (1..=NUM_CASES).contains(&case),
        "Table I defines cases 1..=4, got {case}"
    );
    let (t1, t2) = pairs[case - 1];
    [
        Pmf::from_pairs(t1.iter().copied()).expect("Table I case is a valid PMF"),
        Pmf::from_pairs(t2.iter().copied()).expect("Table I case is a valid PMF"),
    ]
}

/// The platform under availability case `case` (1-based): 4 processors of
/// type 1 and 8 of type 2.
pub fn platform_case(case: usize) -> Platform {
    let [a1, a2] = availability_case(case);
    Platform::new(vec![
        ProcessorType::new("Type 1", 4, a1).expect("valid fixture"),
        ProcessorType::new("Type 2", 8, a2).expect("valid fixture"),
    ])
    .expect("valid fixture")
}

/// The historical platform `Â` used in Stage I (Table I, case 1).
pub fn platform() -> Platform {
    platform_case(1)
}

/// Table III mean single-processor execution times:
/// `MEANS[app][type]`, apps and types 0-indexed.
pub const MEANS: [[f64; 2]; 3] = [[1_800.0, 4_000.0], [2_800.0, 6_000.0], [12_000.0, 8_000.0]];

/// Table II iteration counts: `(serial, parallel)` per application.
pub const ITERATIONS: [(u64, u64); 3] = [(439, 1024), (512, 2048), (216, 4096)];

/// The paper's batch of three applications with execution-time PMFs of
/// `pulses` equiprobable pulses from `N(μ, (μ/10)²)` (Table III).
pub fn batch_with_pulses(pulses: usize) -> Batch {
    let apps = (0..3)
        .map(|i| {
            let (s, p) = ITERATIONS[i];
            Application::builder(format!("application {}", i + 1))
                .serial_iters(s)
                .parallel_iters(p)
                .exec_time_normal(MEANS[i][0], pulses)
                .expect("valid fixture mean")
                .exec_time_normal(MEANS[i][1], pulses)
                .expect("valid fixture mean")
                .build()
                .expect("valid fixture application")
        })
        .collect();
    Batch::new(apps)
}

/// The paper's batch at the default PMF resolution.
pub fn batch() -> Batch {
    batch_with_pulses(DEFAULT_PULSES)
}

/// Weighted system availability of each Table I case, computed from the
/// PMFs via Eq. (1). (The paper's printed values: 75.00, 53.87, 51.92,
/// 50.42 — case 3 differs in the second decimal due to the paper's own
/// rounding of per-type expectations.)
pub fn weighted_availability(case: usize) -> f64 {
    platform_case(case).weighted_availability()
}

/// The paper's Stage-II robustness ingredient `1 − E[A_case]/E[Â]` for a
/// case (square brackets in Table I). Case 1 yields 0.
pub fn availability_decrease(case: usize) -> f64 {
    platform_case(case).availability_decrease_vs(&platform())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case1_weighted_availability_is_75pct() {
        assert!((weighted_availability(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn expected_availabilities_match_table1() {
        // Paper column 5: 87.50/68.75, 52.50/54.55, 60.58/47.60, 41.25/55.00.
        let expect = [
            (0.8750, 0.6875),
            (0.5250, 0.5455),
            (0.6050, 0.4750), // paper prints 60.58/47.60 (its own rounding)
            (0.4125, 0.5500),
        ];
        for (case, &(e1, e2)) in (1..=4).zip(&expect) {
            let p = platform_case(case);
            assert!(
                (p.types()[0].expected_availability() - e1).abs() < 2e-3,
                "case {case} type 1: {}",
                p.types()[0].expected_availability()
            );
            assert!(
                (p.types()[1].expected_availability() - e2).abs() < 2e-3,
                "case {case} type 2: {}",
                p.types()[1].expected_availability()
            );
        }
    }

    #[test]
    fn weighted_availabilities_match_table1() {
        // Paper column 6: 75.00, 53.87, 51.92, 50.42.
        let expect = [0.7500, 0.5387, 0.5192, 0.5042];
        for (case, &w) in (1..=4).zip(&expect) {
            assert!(
                (weighted_availability(case) - w).abs() < 2e-3,
                "case {case}: {}",
                weighted_availability(case)
            );
        }
    }

    #[test]
    fn availability_decreases_match_table1_brackets() {
        // Paper square brackets: 28.17 %, 30.77 %, 32.77 %.
        let expect = [0.2817, 0.3077, 0.3277];
        for (case, &d) in (2..=4).zip(&expect) {
            assert!(
                (availability_decrease(case) - d).abs() < 2e-3,
                "case {case}: {}",
                availability_decrease(case)
            );
        }
        assert!(availability_decrease(1).abs() < 1e-12);
    }

    #[test]
    fn cases_are_ordered_by_decreasing_availability() {
        // Paper: E[A1] > E[A2] > E[A3] > E[A4].
        let w: Vec<f64> = (1..=4).map(weighted_availability).collect();
        assert!(w.windows(2).all(|x| x[0] > x[1]), "{w:?}");
    }

    #[test]
    #[should_panic(expected = "cases 1..=4")]
    fn case_zero_panics() {
        availability_case(0);
    }

    #[test]
    fn batch_matches_table2_and_3() {
        let b = batch();
        assert_eq!(b.len(), 3);
        let fracs = [0.30, 0.20, 0.05];
        for ((id, app), &f) in b.iter().zip(&fracs) {
            assert!(
                (app.serial_fraction() - f).abs() < 0.005,
                "{id}: serial fraction {}",
                app.serial_fraction()
            );
            for (j, want) in MEANS[id.0].iter().enumerate() {
                let mu = app.expected_exec_time(cdsf_system::ProcTypeId(j)).unwrap();
                assert!((mu - want).abs() < 1.0, "{id} type {j}: {mu}");
            }
        }
    }

    #[test]
    fn pulse_resolution_is_respected() {
        let b = batch_with_pulses(16);
        let app = b.app(cdsf_system::AppId(0)).unwrap();
        assert_eq!(app.exec_time(cdsf_system::ProcTypeId(0)).unwrap().len(), 16);
    }
}
