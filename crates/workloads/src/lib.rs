//! # `cdsf-workloads` — workload fixtures and generators
//!
//! * [`paper`] — the paper's small-scale example as a canonical fixture:
//!   the 12-processor two-type platform, the four availability cases of
//!   Table I, the three-application batch of Tables II–III, and the
//!   Δ = 3250 deadline. Every repro binary and integration test builds on
//!   this module, so the numbers live in exactly one place.
//! * [`generators`] — seeded random generators for larger studies: batches
//!   with configurable size/fraction/time distributions, platforms with
//!   many processor types, and availability cases targeting a given
//!   weighted-availability decrease (the paper's future-work "larger scale
//!   problem").
//! * [`faults`] — declarative [`faults::FaultPlan`] scenarios (arrivals,
//!   crashes, collapses, stalls, drift) consumed by the `cdsf-events`
//!   online engine, including named scenarios for the paper fixture.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod faults;
pub mod generators;
pub mod paper;
pub mod traces;
