//! Seeded random generators for large-scale studies.
//!
//! The paper's future work calls for "a larger scale problem … more
//! applications, i.e., in a larger batch or in multiple batches, on a
//! larger computing system, i.e., one with more processors and processor
//! types". These generators produce such instances deterministically from
//! a seed, for the scaling benches and the heuristic-quality ablations.

use cdsf_pmf::discretize::{Discretize, Normal};
use cdsf_pmf::Pmf;
use cdsf_system::{Application, Batch, Platform, ProcessorType, SystemError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inclusive `f64` range helper used throughout the generator configs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Range {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl Range {
    /// Creates a range; `lo ≤ hi` and both finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, SystemError> {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(SystemError::BadParameter {
                name: "range",
                value: hi - lo,
            });
        }
        Ok(Self { lo, hi })
    }

    fn sample(&self, rng: &mut StdRng) -> f64 {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi)
        }
    }
}

/// Generator for heterogeneous platforms.
#[derive(Debug, Clone)]
pub struct PlatformGenerator {
    /// Number of processor types.
    pub num_types: usize,
    /// Processors per type (sampled uniformly, inclusive).
    pub procs_per_type: (u32, u32),
    /// Number of pulses in each availability PMF.
    pub availability_pulses: usize,
    /// Range of availability support values (clamped to `(0, 1]`).
    pub availability_range: Range,
}

impl Default for PlatformGenerator {
    fn default() -> Self {
        Self {
            num_types: 4,
            procs_per_type: (4, 32),
            availability_pulses: 3,
            availability_range: Range { lo: 0.2, hi: 1.0 },
        }
    }
}

impl PlatformGenerator {
    /// Generates a platform from a seed.
    pub fn generate(&self, seed: u64) -> Result<Platform, SystemError> {
        if self.num_types == 0 {
            return Err(SystemError::NoProcessorTypes);
        }
        if self.procs_per_type.0 == 0 || self.procs_per_type.0 > self.procs_per_type.1 {
            return Err(SystemError::BadParameter {
                name: "procs_per_type",
                value: self.procs_per_type.0 as f64,
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut types = Vec::with_capacity(self.num_types);
        for t in 0..self.num_types {
            let count = rng.gen_range(self.procs_per_type.0..=self.procs_per_type.1);
            let pulses = self.availability_pulses.max(1);
            let mut pairs = Vec::with_capacity(pulses);
            for _ in 0..pulses {
                let a = self
                    .availability_range
                    .sample(&mut rng)
                    .clamp(f64::MIN_POSITIVE, 1.0);
                let w = rng.gen_range(0.05..1.0);
                pairs.push((a, w));
            }
            let pmf = Pmf::from_weighted(pairs).map_err(SystemError::from)?;
            types.push(ProcessorType::new(format!("Type {}", t + 1), count, pmf)?);
        }
        Platform::new(types)
    }
}

/// Generator for application batches.
#[derive(Debug, Clone)]
pub struct BatchGenerator {
    /// Number of applications.
    pub num_apps: usize,
    /// Total iterations per application (sampled log-uniformly, inclusive).
    pub total_iters: (u64, u64),
    /// Serial fraction range (clamped to `[0, 0.95]`).
    pub serial_fraction: Range,
    /// Mean single-processor execution time range (per app; per-type means
    /// are the app mean scaled by a heterogeneity factor).
    pub mean_exec_time: Range,
    /// Per-type heterogeneity factor range (multiplies the app mean).
    pub type_heterogeneity: Range,
    /// Pulses per execution-time PMF.
    pub pulses: usize,
}

impl Default for BatchGenerator {
    fn default() -> Self {
        Self {
            num_apps: 8,
            total_iters: (1_000, 10_000),
            serial_fraction: Range { lo: 0.02, hi: 0.3 },
            mean_exec_time: Range {
                lo: 1_000.0,
                hi: 12_000.0,
            },
            type_heterogeneity: Range { lo: 0.5, hi: 2.0 },
            pulses: 32,
        }
    }
}

impl BatchGenerator {
    /// Generates a batch compatible with `platform` (one execution-time PMF
    /// per processor type) from a seed.
    pub fn generate(&self, platform: &Platform, seed: u64) -> Result<Batch, SystemError> {
        if self.num_apps == 0 {
            return Err(SystemError::BadParameter {
                name: "num_apps",
                value: 0.0,
            });
        }
        if self.total_iters.0 == 0 || self.total_iters.0 > self.total_iters.1 {
            return Err(SystemError::BadParameter {
                name: "total_iters",
                value: self.total_iters.0 as f64,
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut apps = Vec::with_capacity(self.num_apps);
        for i in 0..self.num_apps {
            // Log-uniform iteration counts spread batches across scales.
            let (lo, hi) = (self.total_iters.0 as f64, self.total_iters.1 as f64);
            let total = (lo.ln() + rng.gen::<f64>() * (hi.ln() - lo.ln())).exp() as u64;
            let total = total.clamp(self.total_iters.0, self.total_iters.1).max(2);
            let s_frac = self.serial_fraction.sample(&mut rng).clamp(0.0, 0.95);
            let serial = ((total as f64) * s_frac).round() as u64;
            let parallel = (total - serial).max(1);

            let base_mean = self.mean_exec_time.sample(&mut rng).max(1.0);
            let mut builder = Application::builder(format!("synthetic {}", i + 1))
                .serial_iters(serial)
                .parallel_iters(parallel);
            for _ in 0..platform.num_types() {
                let factor = self.type_heterogeneity.sample(&mut rng).max(0.05);
                let mu = base_mean * factor;
                let pmf = Normal::with_paper_sigma(mu)
                    .map_err(SystemError::from)?
                    .equiprobable(self.pulses.max(1));
                builder = builder.exec_time_pmf(pmf);
            }
            apps.push(builder.build()?);
        }
        Ok(Batch::new(apps))
    }
}

/// Derives a degraded availability case from a reference platform: every
/// availability value is scaled so the *weighted system availability*
/// decreases by `decrease` (e.g. `0.3077` for the paper's case 3), with
/// support clamped to `(0, 1]`.
///
/// The clamping means very small decreases on already-high availabilities
/// are matched only approximately; the achieved decrease is returned
/// alongside the platform.
pub fn degraded_case(
    reference: &Platform,
    decrease: f64,
    seed: u64,
) -> Result<(Platform, f64), SystemError> {
    if !(0.0..1.0).contains(&decrease) {
        return Err(SystemError::BadParameter {
            name: "decrease",
            value: decrease,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let target = 1.0 - decrease;
    let mut pmfs = Vec::with_capacity(reference.num_types());
    for t in reference.types() {
        // Jitter the per-type scale a little so types degrade unevenly (as
        // in the paper's cases), while the platform-level mean hits target.
        let jitter = 1.0 + rng.gen_range(-0.05..=0.05);
        let scale = (target * jitter).clamp(0.01, 1.0);
        let scaled = t
            .availability()
            .map(|a| (a * scale).clamp(1e-6, 1.0))
            .map_err(SystemError::from)?;
        pmfs.push(scaled);
    }
    let degraded = reference.with_availabilities(&pmfs)?;
    let achieved = degraded.availability_decrease_vs(reference);
    Ok((degraded, achieved))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_generator_is_deterministic() {
        let g = PlatformGenerator::default();
        assert_eq!(g.generate(5).unwrap(), g.generate(5).unwrap());
        assert_ne!(g.generate(5).unwrap(), g.generate(6).unwrap());
    }

    #[test]
    fn platform_generator_respects_bounds() {
        let g = PlatformGenerator {
            num_types: 3,
            procs_per_type: (2, 16),
            availability_pulses: 4,
            availability_range: Range { lo: 0.3, hi: 0.9 },
        };
        let p = g.generate(1).unwrap();
        assert_eq!(p.num_types(), 3);
        for t in p.types() {
            assert!((2..=16).contains(&t.count()));
            assert!(t.availability().min_value() >= 0.3 - 1e-12);
            assert!(t.availability().max_value() <= 0.9 + 1e-12);
        }
    }

    #[test]
    fn platform_generator_rejects_bad_config() {
        let g = PlatformGenerator {
            num_types: 0,
            ..Default::default()
        };
        assert!(g.generate(0).is_err());
        let g2 = PlatformGenerator {
            procs_per_type: (8, 4),
            ..Default::default()
        };
        assert!(g2.generate(0).is_err());
    }

    #[test]
    fn batch_generator_produces_valid_apps() {
        let p = PlatformGenerator::default().generate(2).unwrap();
        let b = BatchGenerator::default().generate(&p, 3).unwrap();
        assert_eq!(b.len(), 8);
        for (_, app) in b.iter() {
            assert_eq!(app.num_proc_types(), p.num_types());
            assert!(app.total_iters() >= 2);
            assert!(app.serial_fraction() <= 0.95);
            for j in 0..p.num_types() {
                let pmf = app.exec_time(cdsf_system::ProcTypeId(j)).unwrap();
                assert!(pmf.min_value() > 0.0);
            }
        }
    }

    #[test]
    fn batch_generator_is_deterministic() {
        let p = PlatformGenerator::default().generate(2).unwrap();
        let g = BatchGenerator::default();
        assert_eq!(g.generate(&p, 9).unwrap(), g.generate(&p, 9).unwrap());
    }

    #[test]
    fn degraded_case_hits_target_decrease() {
        let reference = crate::paper::platform();
        let (degraded, achieved) = degraded_case(&reference, 0.3, 7).unwrap();
        assert!((achieved - 0.3).abs() < 0.05, "achieved {achieved}");
        assert!(degraded.weighted_availability() < reference.weighted_availability());
    }

    #[test]
    fn degraded_case_rejects_bad_decrease() {
        let reference = crate::paper::platform();
        assert!(degraded_case(&reference, 1.0, 0).is_err());
        assert!(degraded_case(&reference, -0.1, 0).is_err());
    }
}
