//! Fault-injection scenarios for the event-driven online scheduler.
//!
//! A [`FaultPlan`] is a declarative, serializable description of *what goes
//! wrong* during a batch execution: staggered application arrivals, injected
//! faults (processor-group crashes, availability collapses, transient
//! stalls) and an optional periodic availability-drift process. The plan is
//! pure data — `cdsf-events` interprets it against a platform and batch, so
//! the same plan can be replayed under different engine configurations
//! (e.g. remapping enabled vs disabled) for controlled comparisons.
//!
//! The named scenarios returned by [`scenario`] are calibrated against the
//! paper's small-scale fixture ([`crate::paper`]): three applications on
//! 4 + 8 processors of two types, with a relaxed online deadline
//! ([`SCENARIO_DEADLINE`]) that leaves room for reactive remapping to pay
//! off after a mid-run fault.

use serde::{Deserialize, Serialize};

/// Online deadline Δ used by the named fault scenarios. Larger than the
/// paper's 3250 offline deadline: online runs absorb arrival staggering and
/// mid-run faults, and the interesting question is whether *reaction*
/// (remapping) saves applications that a static mapping loses.
pub const SCENARIO_DEADLINE: f64 = 5000.0;

/// Execution-time PMF resolution (equiprobable pulses) used by the named
/// scenarios. Coarser than [`crate::paper::DEFAULT_PULSES`]: online runs
/// rebuild the φ₁ engine at every remap, and the scenarios are regression
/// anchors, not fidelity experiments.
pub const SCENARIO_PULSES: usize = 8;

/// What kind of fault strikes a processor type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// `procs` processors of the type crash permanently.
    Crash {
        /// Index of the processor type hit.
        proc_type: usize,
        /// Number of processors lost (clamped to the surviving count).
        procs: u32,
    },
    /// The type's availability distribution collapses: every level is
    /// multiplied by `scale ∈ (0, 1)` (competing load arrives and stays).
    Collapse {
        /// Index of the processor type hit.
        proc_type: usize,
        /// Multiplicative availability scale.
        scale: f64,
    },
    /// The type stalls (availability pinned near zero) for `duration` time
    /// units, then recovers to its pre-stall distribution.
    Stall {
        /// Index of the processor type hit.
        proc_type: usize,
        /// Stall length in simulation time units.
        duration: f64,
    },
}

impl FaultKind {
    /// The processor type this fault strikes.
    pub fn proc_type(&self) -> usize {
        match *self {
            FaultKind::Crash { proc_type, .. }
            | FaultKind::Collapse { proc_type, .. }
            | FaultKind::Stall { proc_type, .. } => proc_type,
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Absolute injection time.
    pub time: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// Periodic availability drift: at every multiple of `period`, each type's
/// availability PMF is redrawn as the *historical* distribution scaled by a
/// factor sampled uniformly from `[min_scale, max_scale]` (seeded by the
/// engine — the plan only declares the process).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftSpec {
    /// Time between drift redraws.
    pub period: f64,
    /// Smallest multiplicative scale.
    pub min_scale: f64,
    /// Largest multiplicative scale (≤ 1 keeps drift pessimistic).
    pub max_scale: f64,
}

/// A complete fault-injection scenario: arrivals, faults, optional drift.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Human-readable scenario label.
    pub label: String,
    /// Per-application arrival times (index-aligned with the batch;
    /// missing entries mean arrival at `t = 0`).
    pub arrivals: Vec<f64>,
    /// Scheduled faults.
    pub faults: Vec<FaultSpec>,
    /// Optional periodic availability drift.
    pub drift: Option<DriftSpec>,
}

impl FaultPlan {
    /// Starts an empty plan (no arrivals staggered, no faults, no drift).
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            arrivals: Vec::new(),
            faults: Vec::new(),
            drift: None,
        }
    }

    /// Appends one application arrival time.
    pub fn arrival(mut self, t: f64) -> Self {
        self.arrivals.push(t);
        self
    }

    /// Sets all arrival times at once.
    pub fn arrivals(mut self, times: &[f64]) -> Self {
        self.arrivals = times.to_vec();
        self
    }

    /// Schedules a crash of `procs` processors of `proc_type` at `time`.
    pub fn crash_at(mut self, time: f64, proc_type: usize, procs: u32) -> Self {
        self.faults.push(FaultSpec {
            time,
            kind: FaultKind::Crash { proc_type, procs },
        });
        self
    }

    /// Schedules an availability collapse of `proc_type` at `time`.
    pub fn collapse_at(mut self, time: f64, proc_type: usize, scale: f64) -> Self {
        self.faults.push(FaultSpec {
            time,
            kind: FaultKind::Collapse { proc_type, scale },
        });
        self
    }

    /// Schedules a transient stall of `proc_type` at `time`.
    pub fn stall_at(mut self, time: f64, proc_type: usize, duration: f64) -> Self {
        self.faults.push(FaultSpec {
            time,
            kind: FaultKind::Stall {
                proc_type,
                duration,
            },
        });
        self
    }

    /// Enables periodic availability drift.
    pub fn drift(mut self, period: f64, min_scale: f64, max_scale: f64) -> Self {
        self.drift = Some(DriftSpec {
            period,
            min_scale,
            max_scale,
        });
        self
    }

    /// Arrival time of application `i` (0 when not staggered).
    pub fn arrival_of(&self, i: usize) -> f64 {
        self.arrivals.get(i).copied().unwrap_or(0.0)
    }
}

/// Names of the predefined fault scenarios (see [`scenario`]).
pub fn scenario_names() -> &'static [&'static str] {
    &["crash", "collapse", "stall", "drift", "mixed"]
}

/// A named fault scenario for the paper fixture, or `None` for an unknown
/// name.
///
/// * `"crash"` — the canonical crash scenario: staggered arrivals, then
///   3 of the 4 Type-1 processors crash at `t = 600`, long before any
///   application can finish. Without remapping the Type-1 applications
///   are squeezed onto the lone survivor (one of them finds no capacity
///   at all); with remapping the whole remaining batch is re-allocated
///   across the 9 surviving processors.
/// * `"collapse"` — Type 2's availability collapses to 30 % mid-run,
///   degrading the live φ1 below any reasonable threshold.
/// * `"stall"` — Type 2 stalls for 900 time units and recovers.
/// * `"drift"` — no discrete fault; availability drifts every 400 time
///   units between 55 % and 100 % of the historical distribution.
/// * `"mixed"` — a stall, a partial crash and a collapse on top of drift.
pub fn scenario(name: &str) -> Option<FaultPlan> {
    let plan = match name {
        "crash" => FaultPlan::new("canonical Type-1 crash")
            .arrivals(&[0.0, 40.0, 80.0])
            .crash_at(600.0, 0, 3),
        "collapse" => FaultPlan::new("Type-2 availability collapse")
            .arrivals(&[0.0, 40.0, 80.0])
            .collapse_at(500.0, 1, 0.3),
        "stall" => FaultPlan::new("transient Type-2 stall")
            .arrivals(&[0.0, 40.0, 80.0])
            .stall_at(400.0, 1, 900.0),
        "drift" => FaultPlan::new("availability drift only")
            .arrivals(&[0.0, 40.0, 80.0])
            .drift(400.0, 0.55, 1.0),
        "mixed" => FaultPlan::new("stall + crash + collapse under drift")
            .arrivals(&[0.0, 40.0, 80.0])
            .stall_at(300.0, 1, 500.0)
            .crash_at(700.0, 0, 2)
            .collapse_at(1000.0, 1, 0.5)
            .drift(500.0, 0.7, 1.0),
        _ => return None,
    };
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_everything() {
        let plan = FaultPlan::new("t")
            .arrival(0.0)
            .arrival(50.0)
            .crash_at(100.0, 0, 2)
            .collapse_at(200.0, 1, 0.5)
            .stall_at(300.0, 1, 40.0)
            .drift(250.0, 0.6, 1.0);
        assert_eq!(plan.arrivals, vec![0.0, 50.0]);
        assert_eq!(plan.faults.len(), 3);
        assert!(plan.drift.is_some());
        assert_eq!(plan.arrival_of(1), 50.0);
        assert_eq!(plan.arrival_of(7), 0.0, "missing arrivals default to 0");
        assert_eq!(plan.faults[0].kind.proc_type(), 0);
        assert_eq!(plan.faults[1].kind.proc_type(), 1);
    }

    #[test]
    fn named_scenarios_resolve() {
        for name in scenario_names() {
            let plan = scenario(name).unwrap_or_else(|| panic!("scenario {name} missing"));
            assert_eq!(plan.arrivals.len(), 3, "{name}: paper fixture has 3 apps");
            assert!(
                plan.faults.iter().all(|f| f.time > 0.0),
                "{name}: faults must strike mid-run"
            );
        }
        assert!(scenario("nope").is_none());
    }

    #[test]
    fn canonical_crash_shape() {
        let plan = scenario("crash").unwrap();
        assert_eq!(plan.faults.len(), 1);
        let FaultKind::Crash { proc_type, procs } = plan.faults[0].kind else {
            panic!("canonical scenario must be a crash");
        };
        assert_eq!(proc_type, 0);
        assert_eq!(procs, 3);
        assert!(plan.faults[0].time < SCENARIO_DEADLINE);
    }

    #[test]
    fn plans_serialize_round_trip() {
        let plan = scenario("mixed").unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
