use std::fmt;

/// Errors produced by the framework layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// Framework configuration incomplete or inconsistent.
    BadConfig {
        /// What is wrong.
        what: &'static str,
    },
    /// A parameter was out of its domain.
    BadParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Stage-I (resource allocation) failure.
    Ra(cdsf_ra::RaError),
    /// Stage-II (loop scheduling/executor) failure.
    Dls(cdsf_dls::DlsError),
    /// System-model failure.
    System(cdsf_system::SystemError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadConfig { what } => write!(f, "invalid CDSF configuration: {what}"),
            CoreError::BadParameter { name, value } => {
                write!(f, "parameter `{name}` = {value} is out of domain")
            }
            CoreError::Ra(e) => write!(f, "stage I error: {e}"),
            CoreError::Dls(e) => write!(f, "stage II error: {e}"),
            CoreError::System(e) => write!(f, "system model error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Ra(e) => Some(e),
            CoreError::Dls(e) => Some(e),
            CoreError::System(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cdsf_ra::RaError> for CoreError {
    fn from(e: cdsf_ra::RaError) -> Self {
        CoreError::Ra(e)
    }
}

impl From<cdsf_dls::DlsError> for CoreError {
    fn from(e: cdsf_dls::DlsError) -> Self {
        CoreError::Dls(e)
    }
}

impl From<cdsf_system::SystemError> for CoreError {
    fn from(e: cdsf_system::SystemError) -> Self {
        CoreError::System(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_displays_its_payload() {
        let cases: Vec<(CoreError, &str)> = vec![
            (
                CoreError::BadConfig {
                    what: "missing batch",
                },
                "missing batch",
            ),
            (
                CoreError::BadParameter {
                    name: "deadline",
                    value: 0.0,
                },
                "deadline",
            ),
            (CoreError::Ra(cdsf_ra::RaError::EmptyBatch), "stage I"),
            (CoreError::Dls(cdsf_dls::DlsError::NoWorkers), "stage II"),
            (
                CoreError::System(cdsf_system::SystemError::NoProcessorTypes),
                "system",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        }
    }

    #[test]
    fn sources_chain_to_inner_errors() {
        use std::error::Error as _;
        assert!(CoreError::Ra(cdsf_ra::RaError::EmptyBatch)
            .source()
            .is_some());
        assert!(CoreError::BadConfig { what: "x" }.source().is_none());
    }
}
