//! The advisor: mean-field screening + targeted simulation.
//!
//! The full simulation grid spends most of its replicates on cells whose
//! verdict is obvious (an application whose fluid-limit time is half the
//! deadline will meet it with any dynamic technique). The advisor runs the
//! cheap [`MeanField`] predictor first, accepts its verdict on `Clear`
//! cells, and simulates only the `Marginal` ones — per technique — to
//! resolve them and recommend the best technique. On the paper's grid
//! this resolves 10 of 12 (app × case) cells without simulation while
//! producing the same verdicts as the full grid.

use crate::meanfield::{Confidence, MeanField};
use crate::policy::{ImPolicy, RasPolicy};
use crate::simulation::simulate_single_cell;
use crate::{Cdsf, CoreError, Result};
use cdsf_ra::Allocation;
use serde::{Deserialize, Serialize};

/// How a cell's verdict was decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerdictSource {
    /// Accepted from the mean-field predictor (no simulation spent).
    MeanField,
    /// Resolved by simulating every technique in the policy's set.
    Simulation,
}

/// One advised `(application, case)` cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdvisedCell {
    /// Application index (0-based).
    pub app: usize,
    /// Case index (1-based).
    pub case: usize,
    /// Whether the application meets the deadline under this case.
    pub meets_deadline: bool,
    /// How the verdict was decided.
    pub source: VerdictSource,
    /// For simulated cells: the best deadline-meeting technique (`None`
    /// when every technique violates Δ). Mean-field cells carry `None` —
    /// any technique in the robust set is equivalent at that margin.
    pub recommended_technique: Option<String>,
    /// For simulated cells: the best technique's mean makespan.
    pub mean_makespan: Option<f64>,
}

/// The advisor's full output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Advice {
    /// The Stage-I allocation advised on.
    pub allocation: Allocation,
    /// Stage-I robustness of that allocation.
    pub phi1: f64,
    /// One entry per (application × case).
    pub cells: Vec<AdvisedCell>,
    /// Cells resolved by screening alone.
    pub screened: usize,
    /// Cells that needed simulation.
    pub simulated: usize,
}

impl Advice {
    /// Whether every application meets the deadline under `case`.
    pub fn case_is_robust(&self, case: usize) -> bool {
        self.cells
            .iter()
            .filter(|c| c.case == case)
            .all(|c| c.meets_deadline)
    }
}

/// Mean-field screening + targeted simulation.
#[derive(Debug, Clone, Default)]
pub struct Advisor {
    /// The screening predictor (margin controls how aggressively cells are
    /// accepted without simulation).
    pub meanfield: MeanField,
}

impl Advisor {
    /// Advises on `cdsf` under the given policies: maps with `im`, screens
    /// every (app × case), simulates the unresolved cells with `ras`'s
    /// technique set.
    pub fn advise(&self, cdsf: &Cdsf, im: &ImPolicy, ras: &RasPolicy) -> Result<Advice> {
        let (allocation, report) = cdsf.stage_one(im)?;
        let techniques = ras.techniques();
        if techniques.is_empty() {
            return Err(CoreError::BadConfig {
                what: "empty technique set",
            });
        }
        let grid = self.meanfield.predict_grid(
            cdsf.batch(),
            &allocation,
            cdsf.runtime_cases(),
            cdsf.deadline(),
        )?;

        let mut cells = Vec::with_capacity(grid.len());
        let mut screened = 0;
        let mut simulated = 0;
        for mf in &grid {
            if mf.confidence == Confidence::Clear {
                screened += 1;
                cells.push(AdvisedCell {
                    app: mf.app,
                    case: mf.case,
                    meets_deadline: mf.meets_deadline,
                    source: VerdictSource::MeanField,
                    recommended_technique: None,
                    mean_makespan: None,
                });
                continue;
            }
            simulated += 1;
            let case_platform = &cdsf.runtime_cases()[mf.case - 1];
            let mut best: Option<(String, f64)> = None;
            for (t_idx, kind) in techniques.iter().enumerate() {
                let cell = simulate_single_cell(
                    cdsf.batch(),
                    &allocation,
                    case_platform,
                    kind,
                    mf.app,
                    mf.case,
                    t_idx,
                    cdsf.deadline(),
                    cdsf.sim_params(),
                )?;
                if cell.robust_verdict()
                    && best.as_ref().map_or(true, |(_, m)| cell.mean_makespan < *m)
                {
                    best = Some((cell.technique.clone(), cell.mean_makespan));
                }
            }
            cells.push(AdvisedCell {
                app: mf.app,
                case: mf.case,
                meets_deadline: best.is_some(),
                source: VerdictSource::Simulation,
                recommended_technique: best.as_ref().map(|(t, _)| t.clone()),
                mean_makespan: best.as_ref().map(|(_, m)| *m),
            });
        }
        Ok(Advice {
            allocation,
            phi1: report.joint,
            cells,
            screened,
            simulated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ImPolicy, RasPolicy, SimParams};
    use cdsf_workloads::paper;

    fn paper_cdsf() -> Cdsf {
        Cdsf::builder()
            .batch(paper::batch_with_pulses(16))
            .reference_platform(paper::platform())
            .runtime_cases((1..=4).map(paper::platform_case).collect())
            .deadline(paper::DEADLINE)
            .sim_params(SimParams {
                replicates: 15,
                threads: 4,
                ..Default::default()
            })
            .build()
            .unwrap()
    }

    #[test]
    fn advisor_matches_full_simulation_verdicts() {
        let cdsf = paper_cdsf();
        let advisor = Advisor::default();
        let advice = advisor
            .advise(&cdsf, &ImPolicy::Robust, &RasPolicy::Robust)
            .unwrap();
        let full = cdsf
            .run_scenario(&ImPolicy::Robust, &RasPolicy::Robust)
            .unwrap();
        assert_eq!(advice.cells.len(), 12);
        for cell in &advice.cells {
            // The advisor accepts a technique only under the combined
            // mean + hit-rate verdict, so compare against the same rule
            // applied to the full grid's cells (simulated cells share the
            // full grid's seeds and agree by construction).
            let full_met = full
                .cells
                .iter()
                .any(|c| c.app == cell.app && c.case == cell.case && c.robust_verdict());
            assert_eq!(
                cell.meets_deadline,
                full_met,
                "app {} case {} ({:?})",
                cell.app + 1,
                cell.case,
                cell.source
            );
        }
        assert!(advice.screened >= 8, "screened {} of 12", advice.screened);
        assert!(advice.simulated <= 4);
        assert!(advice.phi1 > 0.7);
    }

    #[test]
    fn recommendations_only_on_simulated_cells() {
        let cdsf = paper_cdsf();
        let advice = Advisor::default()
            .advise(&cdsf, &ImPolicy::Robust, &RasPolicy::Robust)
            .unwrap();
        for cell in &advice.cells {
            match cell.source {
                VerdictSource::MeanField => {
                    assert!(cell.recommended_technique.is_none());
                    assert!(cell.mean_makespan.is_none());
                }
                VerdictSource::Simulation => {
                    assert_eq!(cell.recommended_technique.is_some(), cell.meets_deadline);
                }
            }
        }
    }

    #[test]
    fn case_robustness_from_advice_matches_headline() {
        let cdsf = paper_cdsf();
        let advice = Advisor::default()
            .advise(&cdsf, &ImPolicy::Robust, &RasPolicy::Robust)
            .unwrap();
        // Paper headline: cases 1–3 robust, case 4 not.
        assert!(advice.case_is_robust(1));
        assert!(advice.case_is_robust(3));
        assert!(!advice.case_is_robust(4));
    }
}
