//! Multi-batch execution: the paper's queueing view of Ψ.
//!
//! The paper defines the system makespan Ψ as "the time when the next
//! batch of applications will require resources", and its future work
//! plans studies with "more applications, i.e., in a larger batch or in
//! **multiple batches**". This module runs a queue of batches back to
//! back: each batch is mapped when the previous batch's realized makespan
//! frees the machine, executes under the runtime availability case, and
//! must meet a *relative* deadline Δ measured from its own start time.
//!
//! The queue-level metrics — how many batches met their deadline and the
//! total horizon — expose the compounding effect of the per-batch policy
//! choice: a naïve batch that overruns delays every later batch.

use crate::policy::{ImPolicy, RasPolicy};
use crate::simulation::SimParams;
use crate::{CoreError, Result};
use cdsf_dls::executor::{execute, ExecutorConfig};
use cdsf_pmf::stats::Welford;
use cdsf_ra::Allocation;
use cdsf_system::availability::AvailabilitySpec;
use cdsf_system::{AppId, Batch, Platform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Outcome of one batch in the queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchOutcome {
    /// Index of the batch in arrival order.
    pub index: usize,
    /// Time the batch arrived in the queue (0 for back-to-back runs).
    pub arrival: f64,
    /// Time the batch started (previous batch's finish, or its arrival if
    /// the machine was already free).
    pub start: f64,
    /// Queueing delay `start − arrival`.
    pub wait: f64,
    /// Realized makespan Ψ of this batch (max application finish − start).
    pub makespan: f64,
    /// Stage-I robustness φ₁ of the mapping chosen for this batch.
    pub phi1: f64,
    /// The allocation used.
    pub allocation: Allocation,
    /// Technique chosen per application (by expected performance).
    pub techniques: Vec<String>,
    /// Whether the batch met its deadline (measured from its *arrival*,
    /// so queueing delay counts against it).
    pub met_deadline: bool,
}

/// Result of running a whole queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueResult {
    /// Per-batch outcomes in execution order.
    pub batches: Vec<BatchOutcome>,
    /// Total horizon: finish time of the last batch.
    pub total_time: f64,
}

impl QueueResult {
    /// Number of batches that met their relative deadline.
    pub fn deadlines_met(&self) -> usize {
        self.batches.iter().filter(|b| b.met_deadline).count()
    }
}

/// A queue of batches processed back to back on one platform.
pub struct MultiBatch<'a> {
    batches: &'a [Batch],
    /// Historical platform `Â` used for every Stage-I mapping.
    reference: &'a Platform,
    /// Runtime availability case driving the executor.
    runtime: &'a Platform,
    /// Relative deadline per batch.
    deadline: f64,
    sim: SimParams,
}

impl<'a> MultiBatch<'a> {
    /// Creates a queue runner.
    pub fn new(
        batches: &'a [Batch],
        reference: &'a Platform,
        runtime: &'a Platform,
        deadline: f64,
        sim: SimParams,
    ) -> Result<Self> {
        if batches.is_empty() || batches.iter().any(|b| b.is_empty()) {
            return Err(CoreError::BadConfig {
                what: "queue needs non-empty batches",
            });
        }
        if !(deadline > 0.0) {
            return Err(CoreError::BadParameter {
                name: "deadline",
                value: deadline,
            });
        }
        sim.validate()?;
        Ok(Self {
            batches,
            reference,
            runtime,
            deadline,
            sim,
        })
    }

    /// Runs the queue back to back: each batch is considered to arrive the
    /// moment the machine frees up, so deadlines are relative to each
    /// batch's *start* (the paper's per-batch view).
    pub fn run(&self, im: &ImPolicy, ras: &RasPolicy, seed: u64) -> Result<QueueResult> {
        self.run_impl(im, ras, None, seed)
    }

    /// Runs the queue with explicit arrival times (non-decreasing): batch
    /// `b` starts at `max(arrivals[b], previous finish)` and its deadline
    /// is measured from its *arrival*, so queueing delay counts against
    /// it — the response-time view of the paper's "next batch requires
    /// resources at Ψ".
    pub fn run_with_arrivals(
        &self,
        im: &ImPolicy,
        ras: &RasPolicy,
        arrivals: &[f64],
        seed: u64,
    ) -> Result<QueueResult> {
        if arrivals.len() != self.batches.len() {
            return Err(CoreError::BadConfig {
                what: "one arrival time per batch required",
            });
        }
        if arrivals.windows(2).any(|w| w[1] < w[0]) || arrivals.iter().any(|a| *a < 0.0) {
            return Err(CoreError::BadConfig {
                what: "arrivals must be non-negative and sorted",
            });
        }
        self.run_impl(im, ras, Some(arrivals), seed)
    }

    fn run_impl(
        &self,
        im: &ImPolicy,
        ras: &RasPolicy,
        arrivals: Option<&[f64]>,
        seed: u64,
    ) -> Result<QueueResult> {
        let mut free_at = 0.0f64;
        let mut outcomes = Vec::with_capacity(self.batches.len());
        let techniques = ras.techniques();
        if techniques.is_empty() {
            return Err(CoreError::BadConfig {
                what: "empty technique set",
            });
        }

        for (b_idx, batch) in self.batches.iter().enumerate() {
            // Back-to-back mode: the batch "arrives" when the machine
            // frees, so its deadline clock starts with execution.
            let arrival = arrivals.map_or(free_at, |a| a[b_idx]);
            let start = free_at.max(arrival);
            let alloc = im.allocate(batch, self.reference, self.deadline)?;
            let report =
                cdsf_ra::robustness::evaluate(batch, self.reference, &alloc, self.deadline)?;

            let mut batch_makespan = 0.0f64;
            let mut chosen = Vec::with_capacity(batch.len());
            for app_idx in 0..batch.len() {
                let app = batch.app(AppId(app_idx))?;
                let asg = alloc.assignment(app_idx).expect("allocation covers batch");
                let avail = self
                    .runtime
                    .proc_type(asg.proc_type)?
                    .availability()
                    .clone();
                let cfg = ExecutorConfig::builder()
                    .from_application(app, asg.proc_type)?
                    .workers(asg.procs as usize)
                    .overhead(self.sim.overhead)
                    .availability(AvailabilitySpec::Renewal {
                        pmf: avail,
                        mean_dwell: self.sim.mean_dwell,
                    })
                    .build()?;

                // Calibration: pick the technique with the best mean
                // makespan for this application.
                let mut best: Option<(usize, f64)> = None;
                for (t_idx, kind) in techniques.iter().enumerate() {
                    let mut acc = Welford::new();
                    for r in 0..self.sim.replicates {
                        let s = mix(seed, b_idx, app_idx, t_idx, r as u64);
                        let mut rng = StdRng::seed_from_u64(s);
                        acc.push(execute(kind, &cfg, &mut rng)?.makespan);
                    }
                    if best.map_or(true, |(_, m)| acc.mean() < m) {
                        best = Some((t_idx, acc.mean()));
                    }
                }
                let (t_idx, _) = best.expect("non-empty technique set");
                chosen.push(techniques[t_idx].name().to_string());

                // Realization run (fresh stream).
                let s = mix(seed ^ 0xFEED_FACE, b_idx, app_idx, t_idx, 0);
                let mut rng = StdRng::seed_from_u64(s);
                let run = execute(&techniques[t_idx], &cfg, &mut rng)?;
                batch_makespan = batch_makespan.max(run.makespan);
            }

            let finish = start + batch_makespan;
            outcomes.push(BatchOutcome {
                index: b_idx,
                arrival,
                start,
                wait: start - arrival,
                makespan: batch_makespan,
                phi1: report.joint,
                allocation: alloc,
                techniques: chosen,
                met_deadline: finish - arrival <= self.deadline,
            });
            free_at = finish;
        }
        Ok(QueueResult {
            total_time: free_at,
            batches: outcomes,
        })
    }
}

/// SplitMix-style seed mixing for per-(batch, app, technique, replicate)
/// streams.
fn mix(base: u64, b: usize, a: usize, t: usize, r: u64) -> u64 {
    let mut z = base
        ^ (b as u64).wrapping_mul(0xA076_1D64_78BD_642F)
        ^ (a as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB)
        ^ (t as u64).wrapping_mul(0x8EBC_6AF0_9C88_C6E3)
        ^ r.wrapping_mul(0x5897_89E6_C7C0_3588);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsf_workloads::paper;

    fn queue_of(n: usize) -> Vec<Batch> {
        (0..n).map(|_| paper::batch_with_pulses(16)).collect()
    }

    fn sim() -> SimParams {
        SimParams {
            replicates: 3,
            threads: 1,
            ..Default::default()
        }
    }

    #[test]
    fn validation() {
        let reference = paper::platform();
        let runtime = paper::platform_case(2);
        assert!(MultiBatch::new(&[], &reference, &runtime, 3250.0, sim()).is_err());
        let batches = queue_of(1);
        assert!(MultiBatch::new(&batches, &reference, &runtime, 0.0, sim()).is_err());
        let empty = vec![Batch::new(vec![])];
        assert!(MultiBatch::new(&empty, &reference, &runtime, 3250.0, sim()).is_err());
    }

    #[test]
    fn queue_runs_sequentially() {
        let reference = paper::platform();
        let runtime = paper::platform_case(1);
        let batches = queue_of(3);
        let mb = MultiBatch::new(&batches, &reference, &runtime, paper::DEADLINE, sim()).unwrap();
        let result = mb.run(&ImPolicy::Robust, &RasPolicy::Robust, 7).unwrap();
        assert_eq!(result.batches.len(), 3);
        // Starts chain: each batch begins when the previous one finished.
        for w in result.batches.windows(2) {
            assert!((w[0].start + w[0].makespan - w[1].start).abs() < 1e-9);
        }
        let last = result.batches.last().unwrap();
        assert!((result.total_time - (last.start + last.makespan)).abs() < 1e-9);
        // Every batch recorded one technique per application.
        assert!(result.batches.iter().all(|b| b.techniques.len() == 3));
    }

    #[test]
    fn robust_queue_beats_naive_queue() {
        let reference = paper::platform();
        let runtime = paper::platform_case(1);
        let batches = queue_of(3);
        let mb = MultiBatch::new(&batches, &reference, &runtime, paper::DEADLINE, sim()).unwrap();
        let naive = mb.run(&ImPolicy::Naive, &RasPolicy::Naive, 11).unwrap();
        let robust = mb.run(&ImPolicy::Robust, &RasPolicy::Robust, 11).unwrap();
        assert!(
            robust.total_time < naive.total_time,
            "robust horizon {} vs naive {}",
            robust.total_time,
            naive.total_time
        );
        assert!(robust.deadlines_met() >= naive.deadlines_met());
        // Under the reference availability the robust queue meets every
        // relative deadline (scenario-4 case-1 behaviour, batch-wise).
        assert_eq!(robust.deadlines_met(), 3);
    }

    #[test]
    fn arrivals_introduce_waiting_and_idle_time() {
        let reference = paper::platform();
        let runtime = paper::platform_case(1);
        let batches = queue_of(3);
        let mb = MultiBatch::new(&batches, &reference, &runtime, paper::DEADLINE, sim()).unwrap();
        // Widely-spaced arrivals: no waiting, machine idles between batches.
        let spaced = mb
            .run_with_arrivals(
                &ImPolicy::Robust,
                &RasPolicy::Robust,
                &[0.0, 50_000.0, 100_000.0],
                5,
            )
            .unwrap();
        assert!(spaced.batches.iter().all(|b| b.wait == 0.0));
        assert!(spaced.batches[1].start >= 50_000.0);
        // Simultaneous arrivals: later batches queue.
        let bursty = mb
            .run_with_arrivals(&ImPolicy::Robust, &RasPolicy::Robust, &[0.0, 0.0, 0.0], 5)
            .unwrap();
        assert!(bursty.batches[1].wait > 0.0);
        assert!(bursty.batches[2].wait > bursty.batches[1].wait);
        // Queueing delay counts against the (arrival-relative) deadline, so
        // bursty arrivals can only lose deadline hits vs spaced ones.
        assert!(bursty.deadlines_met() <= spaced.deadlines_met());
    }

    #[test]
    fn arrivals_validation() {
        let reference = paper::platform();
        let runtime = paper::platform_case(1);
        let batches = queue_of(2);
        let mb = MultiBatch::new(&batches, &reference, &runtime, paper::DEADLINE, sim()).unwrap();
        assert!(mb
            .run_with_arrivals(&ImPolicy::Naive, &RasPolicy::Naive, &[0.0], 1)
            .is_err());
        assert!(mb
            .run_with_arrivals(&ImPolicy::Naive, &RasPolicy::Naive, &[10.0, 5.0], 1)
            .is_err());
        assert!(mb
            .run_with_arrivals(&ImPolicy::Naive, &RasPolicy::Naive, &[-1.0, 5.0], 1)
            .is_err());
    }

    #[test]
    fn queue_is_seed_deterministic() {
        let reference = paper::platform();
        let runtime = paper::platform_case(2);
        let batches = queue_of(2);
        let mb = MultiBatch::new(&batches, &reference, &runtime, paper::DEADLINE, sim()).unwrap();
        let a = mb.run(&ImPolicy::Robust, &RasPolicy::Robust, 42).unwrap();
        let b = mb.run(&ImPolicy::Robust, &RasPolicy::Robust, 42).unwrap();
        assert_eq!(a, b);
        let c = mb.run(&ImPolicy::Robust, &RasPolicy::Robust, 43).unwrap();
        assert_ne!(a.total_time, c.total_time);
    }
}
