//! The [`Cdsf`] orchestrator: Stage I + Stage II + robustness
//! quantification.

use crate::policy::{ImPolicy, RasPolicy, Scenario};
use crate::simulation::{simulate_grid, CellResult, SimParams};
use crate::{CoreError, Result};
use cdsf_ra::robustness::{evaluate_with_engine, RobustnessReport};
use cdsf_ra::{Allocation, Phi1Engine};
use cdsf_system::{Batch, Platform};
use serde::{Deserialize, Serialize};

/// The combined dual-stage framework instance: a batch, a reference
/// (historical) platform `Â`, runtime availability cases, a deadline, and
/// simulation parameters.
#[derive(Debug, Clone)]
pub struct Cdsf {
    batch: Batch,
    reference: Platform,
    runtime_cases: Vec<Platform>,
    deadline: f64,
    sim: SimParams,
}

/// Builder for [`Cdsf`].
#[derive(Debug, Clone, Default)]
pub struct CdsfBuilder {
    batch: Option<Batch>,
    reference: Option<Platform>,
    runtime_cases: Vec<Platform>,
    deadline: Option<f64>,
    sim: Option<SimParams>,
}

impl CdsfBuilder {
    /// Sets the application batch.
    pub fn batch(mut self, batch: Batch) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Sets the historical platform `Â` used by Stage I.
    pub fn reference_platform(mut self, platform: Platform) -> Self {
        self.reference = Some(platform);
        self
    }

    /// Sets the runtime availability cases evaluated by Stage II (the
    /// first is conventionally the reference case itself).
    pub fn runtime_cases(mut self, cases: Vec<Platform>) -> Self {
        self.runtime_cases = cases;
        self
    }

    /// Sets the common deadline Δ.
    pub fn deadline(mut self, deadline: f64) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets simulation parameters (defaults apply otherwise).
    pub fn sim_params(mut self, sim: SimParams) -> Self {
        self.sim = Some(sim);
        self
    }

    /// Validates and builds.
    pub fn build(self) -> Result<Cdsf> {
        let batch = self.batch.ok_or(CoreError::BadConfig {
            what: "missing batch",
        })?;
        if batch.is_empty() {
            return Err(CoreError::BadConfig {
                what: "empty batch",
            });
        }
        let reference = self.reference.ok_or(CoreError::BadConfig {
            what: "missing reference platform",
        })?;
        let deadline = self.deadline.ok_or(CoreError::BadConfig {
            what: "missing deadline",
        })?;
        if !(deadline > 0.0) || !deadline.is_finite() {
            return Err(CoreError::BadParameter {
                name: "deadline",
                value: deadline,
            });
        }
        let runtime_cases = if self.runtime_cases.is_empty() {
            vec![reference.clone()]
        } else {
            self.runtime_cases
        };
        for case in &runtime_cases {
            if case.num_types() != reference.num_types() {
                return Err(CoreError::BadConfig {
                    what: "runtime case has a different processor-type count than the reference",
                });
            }
        }
        let sim = self.sim.unwrap_or_default();
        sim.validate()?;
        Ok(Cdsf {
            batch,
            reference,
            runtime_cases,
            deadline,
            sim,
        })
    }
}

/// Result of running one scenario end-to-end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Scenario number (1–4) when the policies match a paper scenario.
    pub scenario: Option<u8>,
    /// Stage-I policy name.
    pub im_name: String,
    /// Stage-II policy name.
    pub ras_name: String,
    /// The Stage-I allocation.
    pub allocation: Allocation,
    /// Stage-I robustness `φ₁ = Pr(Ψ ≤ Δ)` under `Â`.
    pub phi1: f64,
    /// Per-application `Pr(T_i ≤ Δ)` under `Â`.
    pub per_app_prob: Vec<f64>,
    /// Per-application expected completion times under `Â` (Table V).
    pub expected_times: Vec<f64>,
    /// The simulated Stage-II grid (Figures 3–6 bar data).
    pub cells: Vec<CellResult>,
    /// The deadline Δ.
    pub deadline: f64,
}

impl ScenarioResult {
    /// All cells of one application under one case.
    pub fn cells_for(&self, app: usize, case: usize) -> Vec<&CellResult> {
        self.cells
            .iter()
            .filter(|c| c.app == app && c.case == case)
            .collect()
    }

    /// The best technique for `(app, case)`: smallest mean makespan among
    /// techniques meeting the deadline; `None` if every technique violates
    /// it (the paper prints "—").
    pub fn best_technique(&self, app: usize, case: usize) -> Option<&CellResult> {
        self.cells_for(app, case)
            .into_iter()
            .filter(|c| c.meets_deadline)
            .min_by(|a, b| a.mean_makespan.total_cmp(&b.mean_makespan))
    }

    /// Whether every application meets the deadline under `case` with its
    /// best technique.
    pub fn case_is_robust(&self, case: usize, num_apps: usize) -> bool {
        (0..num_apps).all(|app| self.best_technique(app, case).is_some())
    }

    /// Table VI: best deadline-meeting technique name per (app × case).
    pub fn table6(&self, num_apps: usize, num_cases: usize) -> Vec<Vec<Option<String>>> {
        (0..num_apps)
            .map(|app| {
                (1..=num_cases)
                    .map(|case| self.best_technique(app, case).map(|c| c.technique.clone()))
                    .collect()
            })
            .collect()
    }
}

/// The paper's system-robustness pair `(ρ₁, ρ₂)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemRobustness {
    /// Stage-I robustness: `φ₁` of the mapping.
    pub rho1: f64,
    /// Stage-II robustness: the largest tolerated weighted-availability
    /// decrease, `1 − E[A_case]/E[Â]`, over cases where all apps meet Δ.
    pub rho2: f64,
    /// Index (1-based) of the most degraded case that is still robust;
    /// `None` when even the reference case fails.
    pub critical_case: Option<usize>,
}

impl Cdsf {
    /// Starts a builder.
    pub fn builder() -> CdsfBuilder {
        CdsfBuilder::default()
    }

    /// The application batch.
    pub fn batch(&self) -> &Batch {
        &self.batch
    }

    /// The Stage-I reference platform `Â`.
    pub fn reference(&self) -> &Platform {
        &self.reference
    }

    /// The runtime availability cases.
    pub fn runtime_cases(&self) -> &[Platform] {
        &self.runtime_cases
    }

    /// The deadline Δ.
    pub fn deadline(&self) -> f64 {
        self.deadline
    }

    /// The simulation parameters.
    pub fn sim_params(&self) -> &SimParams {
        &self.sim
    }

    /// Stage I only: run the mapping policy and evaluate its robustness.
    ///
    /// The φ₁ evaluation engine is built once (in parallel, using the
    /// simulation thread count) and shared between the mapping policy and
    /// the robustness report, so the PMF arithmetic per `(app, type,
    /// share)` runs exactly once per stage-one invocation.
    pub fn stage_one(&self, im: &ImPolicy) -> Result<(Allocation, RobustnessReport)> {
        let engine = Phi1Engine::build_parallel(&self.batch, &self.reference, self.sim.threads)?;
        let alloc =
            im.allocate_with_engine(&self.batch, &self.reference, &engine, self.deadline)?;
        let report =
            evaluate_with_engine(&engine, &self.batch, &self.reference, &alloc, self.deadline)?;
        Ok((alloc, report))
    }

    /// Runs one scenario end-to-end: Stage-I mapping + Stage-II simulation
    /// over all runtime cases and the policy's technique set.
    pub fn run_scenario(&self, im: &ImPolicy, ras: &RasPolicy) -> Result<ScenarioResult> {
        let (alloc, report) = self.stage_one(im)?;
        let techniques = ras.techniques();
        let cells = simulate_grid(
            &self.batch,
            &alloc,
            &self.runtime_cases,
            &techniques,
            self.deadline,
            &self.sim,
        )?;
        Ok(ScenarioResult {
            scenario: Scenario::classify(im, ras).map(|s| s.number()),
            im_name: im.name().to_string(),
            ras_name: ras.name().to_string(),
            allocation: alloc,
            phi1: report.joint,
            per_app_prob: report.per_app,
            expected_times: report.expected_times,
            cells,
            deadline: self.deadline,
        })
    }

    /// Runs all four paper scenarios.
    pub fn run_all_scenarios(&self) -> Result<Vec<ScenarioResult>> {
        Scenario::all()
            .iter()
            .map(|s| {
                let (im, ras) = s.policies();
                self.run_scenario(&im, &ras)
            })
            .collect()
    }

    /// Quantifies `(ρ₁, ρ₂)` from a scenario result (normally scenario 4).
    ///
    /// `ρ₂` is the availability decrease of the most degraded runtime case
    /// under which *every* application still meets the deadline with its
    /// best technique; 0 when only the reference case is robust, and the
    /// pair is reported with `critical_case = None` when even the
    /// reference case fails.
    pub fn system_robustness(&self, result: &ScenarioResult) -> SystemRobustness {
        let num_apps = self.batch.len();
        let mut critical: Option<usize> = None;
        for case in 1..=self.runtime_cases.len() {
            if result.case_is_robust(case, num_apps) {
                let decrease =
                    self.runtime_cases[case - 1].availability_decrease_vs(&self.reference);
                match critical {
                    Some(c) => {
                        let best =
                            self.runtime_cases[c - 1].availability_decrease_vs(&self.reference);
                        if decrease > best {
                            critical = Some(case);
                        }
                    }
                    None => critical = Some(case),
                }
            }
        }
        let rho2 = critical.map_or(0.0, |c| {
            self.runtime_cases[c - 1]
                .availability_decrease_vs(&self.reference)
                .max(0.0)
        });
        SystemRobustness {
            rho1: result.phi1,
            rho2,
            critical_case: critical,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsf_workloads::paper;

    fn quick_cdsf(pulses: usize, replicates: usize) -> Cdsf {
        Cdsf::builder()
            .batch(paper::batch_with_pulses(pulses))
            .reference_platform(paper::platform())
            .runtime_cases((1..=4).map(paper::platform_case).collect())
            .deadline(paper::DEADLINE)
            .sim_params(SimParams {
                replicates,
                threads: 4,
                ..Default::default()
            })
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validation() {
        assert!(Cdsf::builder().build().is_err());
        assert!(Cdsf::builder()
            .batch(paper::batch_with_pulses(4))
            .build()
            .is_err());
        assert!(Cdsf::builder()
            .batch(paper::batch_with_pulses(4))
            .reference_platform(paper::platform())
            .deadline(-1.0)
            .build()
            .is_err());
        assert!(Cdsf::builder()
            .batch(cdsf_system::Batch::new(vec![]))
            .reference_platform(paper::platform())
            .deadline(100.0)
            .build()
            .is_err());
    }

    #[test]
    fn builder_defaults_runtime_cases_to_reference() {
        let cdsf = Cdsf::builder()
            .batch(paper::batch_with_pulses(4))
            .reference_platform(paper::platform())
            .deadline(paper::DEADLINE)
            .build()
            .unwrap();
        assert_eq!(cdsf.runtime_cases().len(), 1);
    }

    #[test]
    fn stage_one_naive_vs_robust_matches_paper_phi1() {
        let cdsf = quick_cdsf(64, 2);
        let (_, naive) = cdsf.stage_one(&ImPolicy::Naive).unwrap();
        let (_, robust) = cdsf.stage_one(&ImPolicy::Robust).unwrap();
        assert!(
            (naive.joint - 0.26).abs() < 0.02,
            "naive φ1 {}",
            naive.joint
        );
        assert!(
            (robust.joint - 0.745).abs() < 0.02,
            "robust φ1 {}",
            robust.joint
        );
    }

    #[test]
    fn scenario4_dominates_scenario1() {
        let cdsf = quick_cdsf(16, 6);
        let s1 = cdsf
            .run_scenario(&ImPolicy::Naive, &RasPolicy::Naive)
            .unwrap();
        let s4 = cdsf
            .run_scenario(&ImPolicy::Robust, &RasPolicy::Robust)
            .unwrap();
        assert_eq!(s1.scenario, Some(1));
        assert_eq!(s4.scenario, Some(4));
        // The paper's hypothesis: intelligent both stages beats neither.
        let r1 = cdsf.system_robustness(&s1);
        let r4 = cdsf.system_robustness(&s4);
        assert!(r4.rho1 > r1.rho1);
        assert!(r4.rho2 >= r1.rho2);
    }

    #[test]
    fn best_technique_and_table6_shapes() {
        let cdsf = quick_cdsf(16, 4);
        let s4 = cdsf
            .run_scenario(&ImPolicy::Robust, &RasPolicy::Robust)
            .unwrap();
        let t6 = s4.table6(3, 4);
        assert_eq!(t6.len(), 3);
        assert!(t6.iter().all(|row| row.len() == 4));
        // Case 1 must be met by all apps under the robust-robust scenario.
        assert!(s4.case_is_robust(1, 3), "case 1 not robust: {t6:?}");
    }
}
