//! # `cdsf-core` — the Combined Dual-Stage Framework (CDSF)
//!
//! This crate assembles the substrates into the paper's contribution: a
//! two-stage framework for robust execution of a batch of scientific
//! applications on a heterogeneous system with uncertain availability.
//!
//! * **Stage I — initial mapping.** An [`ImPolicy`] (naïve equal-share or
//!   robust exhaustive/heuristic allocation from [`cdsf_ra`]) maps each
//!   application to a power-of-two group of processors of one type,
//!   maximizing `φ₁ = Pr(Ψ ≤ Δ)` under the historical availability `Â`.
//! * **Stage II — runtime application scheduling.** A [`RasPolicy`]
//!   (naïve STATIC or the robust DLS set `{FAC, WF, AWF-B, AF}` from
//!   [`cdsf_dls`]) executes each application on its group while the
//!   *runtime* availability `A` fluctuates — simulated by the event-driven
//!   executor under each availability case.
//!
//! [`Cdsf`] runs the four scenarios of the paper's Section IV
//! (naïve/robust IM × naïve/robust RAS), produces the data behind
//! Figures 3–6 and Tables IV–VI, and quantifies the system robustness
//! `(ρ₁, ρ₂)`:
//!
//! * `ρ₁` — Stage-I robustness: the joint probability that the batch
//!   meets the deadline under the chosen mapping;
//! * `ρ₂` — Stage-II robustness: the largest weighted-availability
//!   decrease (over the runtime cases) that *every* application tolerates
//!   without violating the deadline, using its best DLS technique.
//!
//! ## Quick example
//!
//! ```
//! use cdsf_core::{Cdsf, ImPolicy, RasPolicy, SimParams};
//! use cdsf_workloads::paper;
//!
//! let cdsf = Cdsf::builder()
//!     .batch(paper::batch_with_pulses(16))
//!     .reference_platform(paper::platform())
//!     .runtime_cases((1..=4).map(paper::platform_case).collect())
//!     .deadline(paper::DEADLINE)
//!     .sim_params(SimParams { replicates: 4, ..Default::default() })
//!     .build()
//!     .unwrap();
//! let s4 = cdsf.run_scenario(&ImPolicy::Robust, &RasPolicy::Robust).unwrap();
//! assert!(s4.phi1 > 0.7); // paper: 74.5 %
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod advisor;
mod error;
pub mod experiment;
pub mod export;
pub mod framework;
pub mod meanfield;
pub mod multibatch;
pub mod policy;
pub mod report;
pub mod simulation;

pub use error::CoreError;
pub use framework::{Cdsf, CdsfBuilder, ScenarioResult, SystemRobustness};
pub use policy::{ImPolicy, RasPolicy, Scenario};
pub use report::AsciiTable;
pub use simulation::{default_threads, CellResult, SimParams};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// One-stop imports for framework users:
///
/// ```
/// use cdsf_core::prelude::*;
/// use cdsf_workloads::paper;
///
/// let cdsf = Cdsf::builder()
///     .batch(paper::batch_with_pulses(8))
///     .reference_platform(paper::platform())
///     .deadline(paper::DEADLINE)
///     .sim_params(SimParams { replicates: 2, ..Default::default() })
///     .build()
///     .unwrap();
/// let (_alloc, report) = cdsf.stage_one(&ImPolicy::Robust).unwrap();
/// assert!(report.joint > 0.7);
/// ```
pub mod prelude {
    pub use crate::advisor::{Advice, Advisor};
    pub use crate::experiment::ExperimentSpec;
    pub use crate::framework::{Cdsf, ScenarioResult, SystemRobustness};
    pub use crate::meanfield::MeanField;
    pub use crate::multibatch::MultiBatch;
    pub use crate::policy::{ImPolicy, RasPolicy, Scenario};
    pub use crate::simulation::{default_threads, CellResult, SimParams};
    pub use cdsf_dls::executor::{execute, ExecutorConfig};
    pub use cdsf_dls::TechniqueKind;
    pub use cdsf_ra::allocators::{EqualShare, Exhaustive, Sufferage};
    pub use cdsf_ra::{Allocation, Allocator, Assignment};
    pub use cdsf_system::availability::AvailabilitySpec;
    pub use cdsf_system::{Application, Batch, Platform, ProcTypeId, ProcessorType};
}
