//! Stage policies and the four evaluation scenarios.

use crate::Result;
use cdsf_dls::TechniqueKind;
use cdsf_ra::allocators::{EqualShare, Exhaustive};
use cdsf_ra::{Allocation, Allocator, Phi1Engine};
use cdsf_system::{Batch, Platform};

/// Stage-I (initial mapping) policy.
pub enum ImPolicy {
    /// The paper's naïve IM: equal-share load balancing.
    Naive,
    /// The paper's robust IM: exhaustive optimal search.
    Robust,
    /// Any custom allocator (greedy, metaheuristic, …).
    Custom(Box<dyn Allocator + Send + Sync>),
}

impl ImPolicy {
    /// Display name.
    pub fn name(&self) -> &str {
        match self {
            ImPolicy::Naive => "naive IM",
            ImPolicy::Robust => "robust IM",
            ImPolicy::Custom(a) => a.name(),
        }
    }

    /// Whether this is the robust policy (affects scenario labeling only).
    pub fn is_robust(&self) -> bool {
        !matches!(self, ImPolicy::Naive)
    }

    /// Resolves a CLI-style allocator name to a policy. Accepts the two
    /// paper policies plus every allocator shipped by `cdsf-ra`.
    pub fn by_name(name: &str) -> Option<ImPolicy> {
        use cdsf_ra::allocators as ra;
        Some(match name {
            "naive" | "equal-share" => ImPolicy::Naive,
            "robust" | "exhaustive" => ImPolicy::Robust,
            "greedy-min-time" => ImPolicy::Custom(Box::new(ra::GreedyMinTime::new())),
            "greedy-max-robust" => ImPolicy::Custom(Box::new(ra::GreedyMaxRobust::new())),
            "sufferage" => ImPolicy::Custom(Box::new(ra::Sufferage::new())),
            "sa" | "annealing" => ImPolicy::Custom(Box::new(ra::SimulatedAnnealing::default())),
            "ga" | "genetic" => ImPolicy::Custom(Box::new(ra::GeneticAlgorithm::default())),
            "lattice" => ImPolicy::Custom(Box::new(ra::Lattice::default())),
            "gamma-robust" => ImPolicy::Custom(Box::new(ra::GammaRobust::default())),
            _ => return None,
        })
    }

    /// Runs the policy.
    pub fn allocate(
        &self,
        batch: &Batch,
        platform: &Platform,
        deadline: f64,
    ) -> Result<Allocation> {
        let alloc = match self {
            ImPolicy::Naive => EqualShare::new().allocate(batch, platform, deadline)?,
            ImPolicy::Robust => Exhaustive::default().allocate(batch, platform, deadline)?,
            ImPolicy::Custom(a) => a.allocate(batch, platform, deadline)?,
        };
        Ok(alloc)
    }

    /// Runs the policy against a prebuilt [`Phi1Engine`] for
    /// `(batch, platform)`, skipping the per-policy PMF cache rebuild.
    /// Bit-identical to [`ImPolicy::allocate`].
    pub fn allocate_with_engine(
        &self,
        batch: &Batch,
        platform: &Platform,
        engine: &Phi1Engine,
        deadline: f64,
    ) -> Result<Allocation> {
        let alloc = match self {
            ImPolicy::Naive => {
                EqualShare::new().allocate_with_engine(batch, platform, engine, deadline)?
            }
            ImPolicy::Robust => {
                Exhaustive::default().allocate_with_engine(batch, platform, engine, deadline)?
            }
            ImPolicy::Custom(a) => a.allocate_with_engine(batch, platform, engine, deadline)?,
        };
        Ok(alloc)
    }
}

impl std::fmt::Debug for ImPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ImPolicy({})", self.name())
    }
}

/// Stage-II (runtime application scheduling) policy.
#[derive(Debug, Clone, PartialEq)]
pub enum RasPolicy {
    /// The paper's naïve RAS: straightforward parallelization (STATIC).
    Naive,
    /// The paper's robust RAS: the DLS set `{FAC, WF, AWF-B, AF}`.
    Robust,
    /// A custom technique set.
    Custom(Vec<TechniqueKind>),
}

impl RasPolicy {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            RasPolicy::Naive => "naive RAS",
            RasPolicy::Robust => "robust RAS",
            RasPolicy::Custom(_) => "custom RAS",
        }
    }

    /// Whether this is a robust (dynamic) policy.
    pub fn is_robust(&self) -> bool {
        !matches!(self, RasPolicy::Naive)
    }

    /// The technique set evaluated in Stage II.
    pub fn techniques(&self) -> Vec<TechniqueKind> {
        match self {
            RasPolicy::Naive => vec![TechniqueKind::Static],
            RasPolicy::Robust => TechniqueKind::paper_robust_set(),
            RasPolicy::Custom(set) => set.clone(),
        }
    }
}

/// The paper's four evaluation scenarios (Section IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Scenario 1: naïve IM — naïve RAS (Figure 3).
    NaiveNaive,
    /// Scenario 2: robust IM — naïve RAS (Figure 4).
    RobustNaive,
    /// Scenario 3: naïve IM — robust RAS (Figure 5).
    NaiveRobust,
    /// Scenario 4: robust IM — robust RAS (Figure 6).
    RobustRobust,
}

impl Scenario {
    /// All four scenarios in paper order.
    pub fn all() -> [Scenario; 4] {
        [
            Scenario::NaiveNaive,
            Scenario::RobustNaive,
            Scenario::NaiveRobust,
            Scenario::RobustRobust,
        ]
    }

    /// Scenario number as used in the paper (1–4).
    pub fn number(&self) -> u8 {
        match self {
            Scenario::NaiveNaive => 1,
            Scenario::RobustNaive => 2,
            Scenario::NaiveRobust => 3,
            Scenario::RobustRobust => 4,
        }
    }

    /// The figure this scenario corresponds to (3–6).
    pub fn figure(&self) -> u8 {
        self.number() + 2
    }

    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::NaiveNaive => "naive IM - naive RAS",
            Scenario::RobustNaive => "robust IM - naive RAS",
            Scenario::NaiveRobust => "naive IM - robust RAS",
            Scenario::RobustRobust => "robust IM - robust RAS",
        }
    }

    /// The stage policies for this scenario.
    pub fn policies(&self) -> (ImPolicy, RasPolicy) {
        match self {
            Scenario::NaiveNaive => (ImPolicy::Naive, RasPolicy::Naive),
            Scenario::RobustNaive => (ImPolicy::Robust, RasPolicy::Naive),
            Scenario::NaiveRobust => (ImPolicy::Naive, RasPolicy::Robust),
            Scenario::RobustRobust => (ImPolicy::Robust, RasPolicy::Robust),
        }
    }

    /// Classifies a policy pair into a scenario (None for custom policies).
    pub fn classify(im: &ImPolicy, ras: &RasPolicy) -> Option<Scenario> {
        match (im, ras) {
            (ImPolicy::Naive, RasPolicy::Naive) => Some(Scenario::NaiveNaive),
            (ImPolicy::Robust, RasPolicy::Naive) => Some(Scenario::RobustNaive),
            (ImPolicy::Naive, RasPolicy::Robust) => Some(Scenario::NaiveRobust),
            (ImPolicy::Robust, RasPolicy::Robust) => Some(Scenario::RobustRobust),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_numbering_matches_paper() {
        assert_eq!(Scenario::NaiveNaive.number(), 1);
        assert_eq!(Scenario::RobustRobust.number(), 4);
        assert_eq!(Scenario::NaiveNaive.figure(), 3);
        assert_eq!(Scenario::RobustRobust.figure(), 6);
        assert_eq!(Scenario::all().len(), 4);
    }

    #[test]
    fn policy_technique_sets() {
        let naive: Vec<&str> = RasPolicy::Naive
            .techniques()
            .iter()
            .map(|k| k.name())
            .collect();
        assert_eq!(naive, vec!["STATIC"]);
        let robust: Vec<&str> = RasPolicy::Robust
            .techniques()
            .iter()
            .map(|k| k.name())
            .collect();
        assert_eq!(robust, vec!["FAC", "WF", "AWF-B", "AF"]);
        assert!(!RasPolicy::Naive.is_robust());
        assert!(RasPolicy::Robust.is_robust());
    }

    #[test]
    fn classify_round_trips() {
        for s in Scenario::all() {
            let (im, ras) = s.policies();
            assert_eq!(Scenario::classify(&im, &ras), Some(s));
        }
        let custom = ImPolicy::Custom(Box::new(cdsf_ra::allocators::Sufferage::new()));
        assert_eq!(Scenario::classify(&custom, &RasPolicy::Naive), None);
    }

    #[test]
    fn by_name_resolves_every_shipped_allocator() {
        for name in [
            "naive",
            "robust",
            "greedy-min-time",
            "greedy-max-robust",
            "sufferage",
            "sa",
            "ga",
            "lattice",
            "gamma-robust",
        ] {
            assert!(ImPolicy::by_name(name).is_some(), "{name} must resolve");
        }
        assert_eq!(ImPolicy::by_name("lattice").unwrap().name(), "Lattice");
        assert_eq!(
            ImPolicy::by_name("gamma-robust").unwrap().name(),
            "GammaRobust"
        );
        assert!(ImPolicy::by_name("nope").is_none());
    }

    #[test]
    fn im_policy_names() {
        assert_eq!(ImPolicy::Naive.name(), "naive IM");
        assert_eq!(ImPolicy::Robust.name(), "robust IM");
        assert!(ImPolicy::Robust.is_robust());
        assert!(!ImPolicy::Naive.is_robust());
    }
}
