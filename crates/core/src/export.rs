//! Exporting results for external analysis and plotting.
//!
//! The repro binaries print human tables; this module produces the
//! machine-readable forms — CSV (one row per simulation cell, ready for
//! pandas/gnuplot) and JSON (the full [`ScenarioResult`] via serde).

use crate::framework::ScenarioResult;
use crate::{CoreError, Result};
use std::fmt::Write as _;
use std::path::Path;

/// CSV header used by [`scenario_to_csv`].
pub const CSV_HEADER: &str =
    "scenario,app,case,technique,mean_makespan,std_makespan,mean_chunks,meets_deadline,deadline_hit_rate";

/// Renders a scenario's simulation grid as CSV (header + one row per
/// cell). Applications are 1-based in the output, matching the paper.
pub fn scenario_to_csv(result: &ScenarioResult) -> String {
    let mut out = String::with_capacity(64 * (result.cells.len() + 1));
    out.push_str(CSV_HEADER);
    out.push('\n');
    let scenario = result
        .scenario
        .map(|n| n.to_string())
        .unwrap_or_else(|| "custom".to_string());
    for c in &result.cells {
        writeln!(
            out,
            "{scenario},{},{},{},{:.6},{:.6},{:.2},{},{:.4}",
            c.app + 1,
            c.case,
            c.technique,
            c.mean_makespan,
            c.std_makespan,
            c.mean_chunks,
            c.meets_deadline,
            c.deadline_hit_rate
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Serializes the full scenario result (allocation, φ₁, grid) as pretty
/// JSON.
pub fn scenario_to_json(result: &ScenarioResult) -> Result<String> {
    serde_json::to_string_pretty(result).map_err(|_| CoreError::BadConfig {
        what: "scenario result not serializable",
    })
}

/// Writes both forms next to each other:
/// `<stem>.csv` and `<stem>.json` under `dir`.
pub fn write_scenario(result: &ScenarioResult, dir: &Path, stem: &str) -> Result<()> {
    let io_err = |_| CoreError::BadConfig {
        what: "could not write export files",
    };
    std::fs::create_dir_all(dir).map_err(io_err)?;
    std::fs::write(dir.join(format!("{stem}.csv")), scenario_to_csv(result)).map_err(io_err)?;
    std::fs::write(dir.join(format!("{stem}.json")), scenario_to_json(result)?).map_err(io_err)?;
    Ok(())
}

/// CSV header used by [`chunks_to_csv`].
pub const CHUNK_CSV_HEADER: &str = "worker,size,start,finish";

/// Renders an executor chunk log (from
/// [`cdsf_dls::executor::RunResult::chunk_log`]) as CSV — one row per
/// dispatched chunk, ready for Gantt-style plotting.
pub fn chunks_to_csv(log: &[cdsf_dls::executor::ChunkRecord]) -> String {
    let mut out = String::with_capacity(32 * (log.len() + 1));
    out.push_str(CHUNK_CSV_HEADER);
    out.push('\n');
    for c in log {
        writeln!(
            out,
            "{},{},{:.6},{:.6}",
            c.worker, c.size, c.start, c.finish
        )
        .expect("writing to String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cdsf, ImPolicy, RasPolicy, SimParams};
    use cdsf_workloads::paper;

    fn small_result() -> ScenarioResult {
        let cdsf = Cdsf::builder()
            .batch(paper::batch_with_pulses(8))
            .reference_platform(paper::platform())
            .runtime_cases(vec![paper::platform_case(1)])
            .deadline(paper::DEADLINE)
            .sim_params(SimParams {
                replicates: 2,
                threads: 2,
                ..Default::default()
            })
            .build()
            .unwrap();
        cdsf.run_scenario(&ImPolicy::Naive, &RasPolicy::Naive)
            .unwrap()
    }

    #[test]
    fn csv_has_header_and_all_cells() {
        let result = small_result();
        let csv = scenario_to_csv(&result);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert_eq!(lines.len(), 1 + result.cells.len());
        // Every data row has the full column count.
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 9, "{line}");
            // The hit-rate column is a fraction in [0, 1].
            let hit_rate: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert!((0.0..=1.0).contains(&hit_rate), "{line}");
        }
        assert!(lines[1].starts_with("1,1,1,STATIC,"));
    }

    #[test]
    fn json_round_trips() {
        let result = small_result();
        let json = scenario_to_json(&result).unwrap();
        let back: ScenarioResult = serde_json::from_str(&json).unwrap();
        assert_eq!(result, back);
    }

    #[test]
    fn chunk_log_csv() {
        use cdsf_dls::executor::{execute, ExecutorConfig};
        use cdsf_dls::TechniqueKind;
        use cdsf_system::availability::AvailabilitySpec;
        use rand::{rngs::StdRng, SeedableRng};
        let cfg = ExecutorConfig::builder()
            .workers(2)
            .parallel_iters(256)
            .iter_time_mean_sigma(1.0, 0.0)
            .unwrap()
            .availability(AvailabilitySpec::Constant { a: 1.0 })
            .record_chunks(true)
            .build()
            .unwrap();
        let run = execute(&TechniqueKind::Fac, &cfg, &mut StdRng::seed_from_u64(1)).unwrap();
        let log = run.chunk_log.unwrap();
        let csv = chunks_to_csv(&log);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], CHUNK_CSV_HEADER);
        assert_eq!(lines.len(), 1 + log.len());
        assert!(lines[1].split(',').count() == 4);
    }

    #[test]
    fn write_scenario_creates_both_files() {
        let result = small_result();
        let dir = std::env::temp_dir().join("cdsf-export-test");
        write_scenario(&result, &dir, "s1").unwrap();
        let csv = std::fs::read_to_string(dir.join("s1.csv")).unwrap();
        let json = std::fs::read_to_string(dir.join("s1.json")).unwrap();
        assert!(csv.starts_with(CSV_HEADER));
        assert!(json.contains("\"cells\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
