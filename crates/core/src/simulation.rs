//! Stage-II simulation grid: (application × availability case × technique)
//! cells, each averaged over seeded replicates, fanned out over worker
//! threads.

use crate::{CoreError, Result};
use cdsf_dls::executor::{execute, ExecutorConfig};
use cdsf_dls::TechniqueKind;
use cdsf_pmf::stats::Welford;
use cdsf_ra::Allocation;
use cdsf_system::availability::AvailabilitySpec;
use cdsf_system::{Batch, Platform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Parameters of the Stage-II simulation.
///
/// Defaults are calibrated on the paper's example (see `EXPERIMENTS.md`):
/// the availability renewal dwell is of the same order as the applications'
/// runtimes, so a slow draw hurts STATIC for most of a run while the DLS
/// techniques get enough fluctuation to rebalance against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// Independent replicates per cell.
    pub replicates: usize,
    /// Mean dwell time of the availability renewal process (time units).
    pub mean_dwell: f64,
    /// Per-chunk scheduling overhead (time units).
    pub overhead: f64,
    /// Base seed; every cell derives its own deterministic stream.
    pub seed: u64,
    /// Worker threads for the simulation grid.
    pub threads: usize,
}

impl Default for SimParams {
    fn default() -> Self {
        Self {
            replicates: 25,
            mean_dwell: 300.0,
            overhead: 1.0,
            seed: 0xCD5F,
            threads: default_threads(),
        }
    }
}

/// Default worker-thread count: the machine's available parallelism with a
/// floor of 1. Thread counts never affect results — every grid cell and
/// every φ₁ table entry derives its own seed — so the default can safely
/// track the host. (Canonical definition lives in `cdsf-system` so the
/// lower crates share it.)
pub use cdsf_system::default_threads;

impl SimParams {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<()> {
        if self.replicates == 0 {
            return Err(CoreError::BadParameter {
                name: "replicates",
                value: 0.0,
            });
        }
        if !(self.mean_dwell > 0.0) {
            return Err(CoreError::BadParameter {
                name: "mean_dwell",
                value: self.mean_dwell,
            });
        }
        if !(self.overhead >= 0.0) {
            return Err(CoreError::BadParameter {
                name: "overhead",
                value: self.overhead,
            });
        }
        if self.threads == 0 {
            return Err(CoreError::BadParameter {
                name: "threads",
                value: 0.0,
            });
        }
        Ok(())
    }
}

/// One simulated grid cell: an application under one availability case
/// executed with one technique, averaged over replicates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Application index (0-based).
    pub app: usize,
    /// Availability case (1-based, paper numbering).
    pub case: usize,
    /// Technique name (paper style, e.g. `"AWF-B"`).
    pub technique: String,
    /// Mean makespan over replicates (serial + parallel phases).
    pub mean_makespan: f64,
    /// Standard deviation of the makespan over replicates.
    pub std_makespan: f64,
    /// Mean chunk count per run.
    pub mean_chunks: f64,
    /// Number of replicates behind the statistics.
    pub replicates: usize,
    /// Whether the *mean* makespan meets the deadline.
    pub meets_deadline: bool,
}

impl CellResult {
    /// Half-width of the normal-approximation 95 % confidence interval of
    /// the mean makespan: `1.96·σ/√n`.
    pub fn ci95_halfwidth(&self) -> f64 {
        if self.replicates == 0 {
            return 0.0;
        }
        1.96 * self.std_makespan / (self.replicates as f64).sqrt()
    }

    /// Whether the deadline verdict is statistically resolved: the 95 %
    /// confidence interval of the mean lies entirely on one side of Δ.
    pub fn verdict_is_resolved(&self, deadline: f64) -> bool {
        (self.mean_makespan - deadline).abs() > self.ci95_halfwidth()
    }
}

/// Derives a deterministic per-cell seed from the base seed and the cell
/// coordinates (SplitMix64-style mixing).
fn cell_seed(base: u64, app: usize, case: usize, tech: usize, replicate_block: u64) -> u64 {
    let mut z = base
        ^ (app as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (case as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ (tech as u64).wrapping_mul(0x94D0_49BB_1331_11EB)
        ^ replicate_block.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Simulates the whole grid: every application of `batch` (placed per
/// `alloc`), under every runtime availability case, with every technique.
///
/// Cells are independent and individually seeded, so the result is
/// identical for any thread count.
pub fn simulate_grid(
    batch: &Batch,
    alloc: &Allocation,
    runtime_cases: &[Platform],
    techniques: &[TechniqueKind],
    deadline: f64,
    params: &SimParams,
) -> Result<Vec<CellResult>> {
    params.validate()?;
    if runtime_cases.is_empty() {
        return Err(CoreError::BadConfig {
            what: "no runtime availability cases",
        });
    }
    if techniques.is_empty() {
        return Err(CoreError::BadConfig {
            what: "no techniques to evaluate",
        });
    }

    // Build the task list: one entry per (app, case, technique).
    struct Task {
        app: usize,
        case: usize, // 1-based
        tech: usize,
    }
    let mut tasks = Vec::new();
    for app in 0..batch.len() {
        for case in 1..=runtime_cases.len() {
            for tech in 0..techniques.len() {
                tasks.push(Task { app, case, tech });
            }
        }
    }

    // Work-stealing by atomic counter; each task index is claimed exactly
    // once, results land in a mutex-guarded slot vector (contention is one
    // lock per completed cell, negligible next to the simulation itself).
    let next = AtomicUsize::new(0);
    let results: Vec<Option<CellResult>> = {
        let cells = parking_lot::Mutex::new(vec![None; tasks.len()]);
        std::thread::scope(|scope| -> Result<()> {
            let mut handles = Vec::new();
            for _ in 0..params.threads {
                let tasks = &tasks;
                let next = &next;
                let cells = &cells;
                handles.push(scope.spawn(move || -> Result<()> {
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= tasks.len() {
                            return Ok(());
                        }
                        let t = &tasks[idx];
                        let cell = simulate_cell(
                            batch,
                            alloc,
                            &runtime_cases[t.case - 1],
                            &techniques[t.tech],
                            t.app,
                            t.case,
                            t.tech,
                            deadline,
                            params,
                        )?;
                        cells.lock()[idx] = Some(cell);
                    }
                }));
            }
            for h in handles {
                h.join().expect("simulation worker panicked")?;
            }
            Ok(())
        })?;
        cells.into_inner()
    };

    Ok(results
        .into_iter()
        .map(|c| c.expect("all tasks completed"))
        .collect())
}

/// Simulates a single `(application, case, technique)` cell on demand —
/// the entry point used by [`crate::advisor`] to simulate only the cells
/// that mean-field screening could not resolve. `case` is the 1-based
/// label recorded in the result; seeding matches [`simulate_grid`] when
/// `tech_idx` equals the technique's position there, so targeted and
/// full-grid results are bit-identical.
#[allow(clippy::too_many_arguments)]
pub fn simulate_single_cell(
    batch: &Batch,
    alloc: &Allocation,
    case_platform: &Platform,
    technique: &TechniqueKind,
    app_idx: usize,
    case: usize,
    tech_idx: usize,
    deadline: f64,
    params: &SimParams,
) -> Result<CellResult> {
    params.validate()?;
    simulate_cell(
        batch,
        alloc,
        case_platform,
        technique,
        app_idx,
        case,
        tech_idx,
        deadline,
        params,
    )
}

/// Simulates one cell: `replicates` runs of one application on its
/// allocated group under one availability case with one technique.
#[allow(clippy::too_many_arguments)]
fn simulate_cell(
    batch: &Batch,
    alloc: &Allocation,
    case_platform: &Platform,
    technique: &TechniqueKind,
    app_idx: usize,
    case: usize,
    tech_idx: usize,
    deadline: f64,
    params: &SimParams,
) -> Result<CellResult> {
    let app = batch.app(cdsf_system::AppId(app_idx))?;
    let asg = alloc.assignment(app_idx).ok_or(CoreError::BadConfig {
        what: "allocation does not cover application",
    })?;
    let avail_pmf = case_platform
        .proc_type(asg.proc_type)?
        .availability()
        .clone();

    let cfg = ExecutorConfig::builder()
        .from_application(app, asg.proc_type)?
        .workers(asg.procs as usize)
        .overhead(params.overhead)
        .availability(AvailabilitySpec::Renewal {
            pmf: avail_pmf,
            mean_dwell: params.mean_dwell,
        })
        .build()?;

    let mut makespans = Welford::new();
    let mut chunks = Welford::new();
    for r in 0..params.replicates {
        let seed = cell_seed(params.seed, app_idx, case, tech_idx, r as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let run = execute(technique, &cfg, &mut rng)?;
        makespans.push(run.makespan);
        chunks.push(run.chunks as f64);
    }

    Ok(CellResult {
        app: app_idx,
        case,
        technique: technique.name().to_string(),
        mean_makespan: makespans.mean(),
        std_makespan: makespans.std_dev(),
        mean_chunks: chunks.mean(),
        replicates: params.replicates,
        meets_deadline: makespans.mean() <= deadline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsf_ra::{Allocation, Assignment};
    use cdsf_system::ProcTypeId;
    use cdsf_workloads::paper;

    fn quick_params() -> SimParams {
        SimParams {
            replicates: 3,
            threads: 2,
            ..Default::default()
        }
    }

    fn robust_alloc() -> Allocation {
        Allocation::new(vec![
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2,
            },
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2,
            },
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 8,
            },
        ])
    }

    #[test]
    fn params_validation() {
        assert!(SimParams {
            replicates: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SimParams {
            mean_dwell: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SimParams {
            overhead: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SimParams {
            threads: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SimParams::default().validate().is_ok());
    }

    #[test]
    fn grid_covers_all_cells() {
        let batch = paper::batch_with_pulses(8);
        let cases: Vec<_> = (1..=2).map(paper::platform_case).collect();
        let techniques = vec![TechniqueKind::Static, TechniqueKind::Fac];
        let cells = simulate_grid(
            &batch,
            &robust_alloc(),
            &cases,
            &techniques,
            paper::DEADLINE,
            &quick_params(),
        )
        .unwrap();
        assert_eq!(cells.len(), 3 * 2 * 2);
        // Every combination appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for c in &cells {
            assert!(seen.insert((c.app, c.case, c.technique.clone())));
            assert!(c.mean_makespan > 0.0);
        }
    }

    #[test]
    fn grid_is_deterministic_across_thread_counts() {
        let batch = paper::batch_with_pulses(8);
        let cases = vec![paper::platform_case(1)];
        let techniques = vec![TechniqueKind::Fac];
        let mk = |threads: usize| {
            simulate_grid(
                &batch,
                &robust_alloc(),
                &cases,
                &techniques,
                paper::DEADLINE,
                &SimParams {
                    replicates: 4,
                    threads,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        assert_eq!(mk(1), mk(4));
    }

    #[test]
    fn grid_rejects_empty_inputs() {
        let batch = paper::batch_with_pulses(8);
        assert!(simulate_grid(
            &batch,
            &robust_alloc(),
            &[],
            &[TechniqueKind::Fac],
            paper::DEADLINE,
            &quick_params()
        )
        .is_err());
        assert!(simulate_grid(
            &batch,
            &robust_alloc(),
            &[paper::platform_case(1)],
            &[],
            paper::DEADLINE,
            &quick_params()
        )
        .is_err());
    }

    #[test]
    fn ci95_and_verdict_resolution() {
        let cell = CellResult {
            app: 0,
            case: 1,
            technique: "FAC".into(),
            mean_makespan: 3000.0,
            std_makespan: 300.0,
            mean_chunks: 50.0,
            replicates: 25,
            meets_deadline: true,
        };
        // 1.96 · 300 / 5 = 117.6.
        assert!((cell.ci95_halfwidth() - 117.6).abs() < 1e-9);
        assert!(cell.verdict_is_resolved(3250.0)); // 250 > 117.6
        assert!(!cell.verdict_is_resolved(3050.0)); // 50 < 117.6
        let zero = CellResult {
            replicates: 0,
            ..cell
        };
        assert_eq!(zero.ci95_halfwidth(), 0.0);
    }

    #[test]
    fn worse_cases_give_longer_makespans() {
        // Weighted availability decreases case 1 → 4, so mean makespans
        // (same app, same technique) should increase overall.
        let batch = paper::batch_with_pulses(8);
        let cases: Vec<_> = (1..=4).map(paper::platform_case).collect();
        let cells = simulate_grid(
            &batch,
            &robust_alloc(),
            &cases,
            &[TechniqueKind::Af],
            paper::DEADLINE,
            &SimParams {
                replicates: 10,
                threads: 4,
                ..Default::default()
            },
        )
        .unwrap();
        // Compare case 1 vs case 4 per app.
        for app in 0..3 {
            let m1 = cells
                .iter()
                .find(|c| c.app == app && c.case == 1)
                .unwrap()
                .mean_makespan;
            let m4 = cells
                .iter()
                .find(|c| c.app == app && c.case == 4)
                .unwrap()
                .mean_makespan;
            assert!(m4 > m1, "app {app}: case4 {m4} ≤ case1 {m1}");
        }
    }
}
