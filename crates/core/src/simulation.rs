//! Stage-II simulation grid: (application × availability case × technique)
//! cells, each averaged over seeded replicates, fanned out over worker
//! threads.

use crate::{CoreError, Result};
use cdsf_dls::executor::{execute_in, ExecutorConfig, ExecutorScratch};
use cdsf_dls::TechniqueKind;
use cdsf_pmf::stats::Welford;
use cdsf_ra::Allocation;
use cdsf_system::availability::AvailabilitySpec;
use cdsf_system::{Batch, Platform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Parameters of the Stage-II simulation.
///
/// Defaults are calibrated on the paper's example (see `EXPERIMENTS.md`):
/// the availability renewal dwell is of the same order as the applications'
/// runtimes, so a slow draw hurts STATIC for most of a run while the DLS
/// techniques get enough fluctuation to rebalance against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// Independent replicates per cell.
    pub replicates: usize,
    /// Mean dwell time of the availability renewal process (time units).
    pub mean_dwell: f64,
    /// Per-chunk scheduling overhead (time units).
    pub overhead: f64,
    /// Base seed; every cell derives its own deterministic stream.
    pub seed: u64,
    /// Worker threads for the simulation grid.
    pub threads: usize,
}

impl Default for SimParams {
    fn default() -> Self {
        Self {
            replicates: 25,
            mean_dwell: 300.0,
            overhead: 1.0,
            seed: 0xCD5F,
            threads: default_threads(),
        }
    }
}

/// Default worker-thread count: the machine's available parallelism with a
/// floor of 1. Thread counts never affect results — every grid cell and
/// every φ₁ table entry derives its own seed — so the default can safely
/// track the host. (Canonical definition lives in `cdsf-system` so the
/// lower crates share it.)
pub use cdsf_system::default_threads;

impl SimParams {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<()> {
        if self.replicates == 0 {
            return Err(CoreError::BadParameter {
                name: "replicates",
                value: 0.0,
            });
        }
        if !(self.mean_dwell > 0.0) {
            return Err(CoreError::BadParameter {
                name: "mean_dwell",
                value: self.mean_dwell,
            });
        }
        if !(self.overhead >= 0.0) {
            return Err(CoreError::BadParameter {
                name: "overhead",
                value: self.overhead,
            });
        }
        if self.threads == 0 {
            return Err(CoreError::BadParameter {
                name: "threads",
                value: 0.0,
            });
        }
        Ok(())
    }
}

/// One simulated grid cell: an application under one availability case
/// executed with one technique, averaged over replicates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Application index (0-based).
    pub app: usize,
    /// Availability case (1-based, paper numbering).
    pub case: usize,
    /// Technique name (paper style, e.g. `"AWF-B"`).
    pub technique: String,
    /// Mean makespan over replicates (serial + parallel phases).
    pub mean_makespan: f64,
    /// Standard deviation of the makespan over replicates.
    pub std_makespan: f64,
    /// Mean chunk count per run.
    pub mean_chunks: f64,
    /// Number of replicates behind the statistics.
    pub replicates: usize,
    /// Whether the *mean* makespan meets the deadline (the paper's
    /// Table-VI criterion; `best_technique` and the headline tables key
    /// off this).
    pub meets_deadline: bool,
    /// Fraction of replicates whose makespan meets the deadline — the
    /// empirical `φ₂ = P(makespan ≤ Δ)`. A mean-based pass with a low hit
    /// rate flags a verdict carried by a lucky tail.
    pub deadline_hit_rate: f64,
}

impl CellResult {
    /// Half-width of the normal-approximation 95 % confidence interval of
    /// the mean makespan: `1.96·σ/√n`.
    pub fn ci95_halfwidth(&self) -> f64 {
        if self.replicates == 0 {
            return 0.0;
        }
        1.96 * self.std_makespan / (self.replicates as f64).sqrt()
    }

    /// Whether the deadline verdict is statistically resolved: the 95 %
    /// confidence interval of the mean lies entirely on one side of Δ.
    /// With zero replicates there is no evidence at all, so the verdict is
    /// explicitly unresolved (the half-width degenerates to 0 there, which
    /// would otherwise claim perfect resolution).
    pub fn verdict_is_resolved(&self, deadline: f64) -> bool {
        if self.replicates == 0 {
            return false;
        }
        (self.mean_makespan - deadline).abs() > self.ci95_halfwidth()
    }

    /// The advisor's combined deadline verdict: the mean makespan meets Δ
    /// *and* at least half the replicates meet it individually, so a pass
    /// cannot be carried by a lucky minority of fast runs while the
    /// majority of realizations blow the deadline.
    pub fn robust_verdict(&self) -> bool {
        self.meets_deadline && self.deadline_hit_rate >= 0.5
    }
}

/// Derives a deterministic per-cell seed from the base seed and the cell
/// coordinates (SplitMix64-style mixing).
fn cell_seed(base: u64, app: usize, case: usize, tech: usize, replicate_block: u64) -> u64 {
    let mut z = base
        ^ (app as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (case as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ (tech as u64).wrapping_mul(0x94D0_49BB_1331_11EB)
        ^ replicate_block.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One prepared grid cell: the executor configuration plus the identity
/// needed for seeding and labelling.
struct CellSpec {
    app_idx: usize,
    /// 1-based, paper numbering.
    case: usize,
    tech_idx: usize,
    technique: TechniqueKind,
    cfg: ExecutorConfig,
}

/// Builds the executor configuration for one `(app, case, technique)`
/// cell: the application's iteration profile on its allocated group under
/// the case's availability renewal process.
#[allow(clippy::too_many_arguments)]
fn build_cell_spec(
    batch: &Batch,
    alloc: &Allocation,
    case_platform: &Platform,
    technique: &TechniqueKind,
    app_idx: usize,
    case: usize,
    tech_idx: usize,
    params: &SimParams,
) -> Result<CellSpec> {
    let app = batch.app(cdsf_system::AppId(app_idx))?;
    let asg = alloc.assignment(app_idx).ok_or(CoreError::BadConfig {
        what: "allocation does not cover application",
    })?;
    let avail_pmf = case_platform
        .proc_type(asg.proc_type)?
        .availability()
        .clone();
    let cfg = ExecutorConfig::builder()
        .from_application(app, asg.proc_type)?
        .workers(asg.procs as usize)
        .overhead(params.overhead)
        .availability(AvailabilitySpec::Renewal {
            pmf: avail_pmf,
            mean_dwell: params.mean_dwell,
        })
        .build()?;
    Ok(CellSpec {
        app_idx,
        case,
        tech_idx,
        technique: technique.clone(),
        cfg,
    })
}

/// Runs every replicate of every prepared cell across the worker threads
/// and reduces each cell's replicates in order.
///
/// Work is scheduled at `(cell, replicate)` granularity over the
/// [`cdsf_system::pool`] work-stealing pool (chunked deques, one
/// [`ExecutorScratch`] per worker reused across owned and stolen chunks),
/// so a few large cells — or a single cell, as in the advisor's targeted
/// path — still saturate all threads without the old per-replicate
/// contended claim counter. Each replicate derives its own seed and
/// writes its `(makespan, chunk count)` into its own pre-assigned slot
/// (disjoint `AtomicU64` stores of the `f64` bits; the pool's join
/// publishes them), and the reduction then pushes replicates into the
/// Welford accumulators in replicate order — bit-identical to a
/// sequential loop, for any thread count and any steal interleaving.
fn run_cells(specs: &[CellSpec], deadline: f64, params: &SimParams) -> Result<Vec<CellResult>> {
    let reps = params.replicates;
    let total = specs.len() * reps;
    let makespan_slots: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();
    let chunk_slots: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();

    // Threads beyond the host's hardware width add worker spawns and
    // deque traffic without adding throughput (a 4-thread grid on a
    // single-core host measured 0.93× serial), and a grid too small to
    // form two chunks per worker has nothing to steal — clamp both cases
    // down and let the pool's `workers == 1` path run strictly inline.
    // Results are unchanged either way: every `(cell, replicate)`
    // derives its own seed.
    let workers = params
        .threads
        .min(default_threads())
        .min(total.div_ceil(2).max(1));

    cdsf_system::pool::run(
        workers,
        total,
        None,
        ExecutorScratch::new,
        |idx, scratch: &mut ExecutorScratch| -> Result<()> {
            let spec = &specs[idx / reps];
            let r = idx % reps;
            let seed = cell_seed(
                params.seed,
                spec.app_idx,
                spec.case,
                spec.tech_idx,
                r as u64,
            );
            let mut rng = StdRng::seed_from_u64(seed);
            let run = execute_in(&spec.technique, &spec.cfg, scratch, &mut rng)?;
            makespan_slots[idx].store(run.makespan.to_bits(), Ordering::Relaxed);
            chunk_slots[idx].store((run.chunks as f64).to_bits(), Ordering::Relaxed);
            Ok(())
        },
    )?;

    Ok(specs
        .iter()
        .enumerate()
        .map(|(s, spec)| {
            let mut makespans = Welford::new();
            let mut chunks = Welford::new();
            let mut hits = 0usize;
            for r in 0..reps {
                let m = f64::from_bits(makespan_slots[s * reps + r].load(Ordering::Relaxed));
                makespans.push(m);
                chunks.push(f64::from_bits(
                    chunk_slots[s * reps + r].load(Ordering::Relaxed),
                ));
                if m <= deadline {
                    hits += 1;
                }
            }
            CellResult {
                app: spec.app_idx,
                case: spec.case,
                technique: spec.technique.name().to_string(),
                mean_makespan: makespans.mean(),
                std_makespan: makespans.std_dev(),
                mean_chunks: chunks.mean(),
                replicates: reps,
                meets_deadline: makespans.mean() <= deadline,
                deadline_hit_rate: hits as f64 / reps as f64,
            }
        })
        .collect())
}

/// Simulates the whole grid: every application of `batch` (placed per
/// `alloc`), under every runtime availability case, with every technique.
///
/// Every `(cell, replicate)` is independently seeded, so the result is
/// identical for any thread count.
pub fn simulate_grid(
    batch: &Batch,
    alloc: &Allocation,
    runtime_cases: &[Platform],
    techniques: &[TechniqueKind],
    deadline: f64,
    params: &SimParams,
) -> Result<Vec<CellResult>> {
    params.validate()?;
    if runtime_cases.is_empty() {
        return Err(CoreError::BadConfig {
            what: "no runtime availability cases",
        });
    }
    if techniques.is_empty() {
        return Err(CoreError::BadConfig {
            what: "no techniques to evaluate",
        });
    }

    let mut specs = Vec::with_capacity(batch.len() * runtime_cases.len() * techniques.len());
    for app in 0..batch.len() {
        for case in 1..=runtime_cases.len() {
            for (tech, technique) in techniques.iter().enumerate() {
                specs.push(build_cell_spec(
                    batch,
                    alloc,
                    &runtime_cases[case - 1],
                    technique,
                    app,
                    case,
                    tech,
                    params,
                )?);
            }
        }
    }
    run_cells(&specs, deadline, params)
}

/// Simulates a single `(application, case, technique)` cell on demand —
/// the entry point used by [`crate::advisor`] to simulate only the cells
/// that mean-field screening could not resolve. `case` is the 1-based
/// label recorded in the result; seeding matches [`simulate_grid`] when
/// `tech_idx` equals the technique's position there, so targeted and
/// full-grid results are bit-identical. Replicates fan out over
/// `params.threads` just like the full grid.
#[allow(clippy::too_many_arguments)]
pub fn simulate_single_cell(
    batch: &Batch,
    alloc: &Allocation,
    case_platform: &Platform,
    technique: &TechniqueKind,
    app_idx: usize,
    case: usize,
    tech_idx: usize,
    deadline: f64,
    params: &SimParams,
) -> Result<CellResult> {
    params.validate()?;
    let spec = build_cell_spec(
        batch,
        alloc,
        case_platform,
        technique,
        app_idx,
        case,
        tech_idx,
        params,
    )?;
    let mut cells = run_cells(std::slice::from_ref(&spec), deadline, params)?;
    Ok(cells.pop().expect("one spec yields one cell"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsf_ra::{Allocation, Assignment};
    use cdsf_system::ProcTypeId;
    use cdsf_workloads::paper;

    fn quick_params() -> SimParams {
        SimParams {
            replicates: 3,
            threads: 2,
            ..Default::default()
        }
    }

    fn robust_alloc() -> Allocation {
        Allocation::new(vec![
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2,
            },
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2,
            },
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 8,
            },
        ])
    }

    #[test]
    fn params_validation() {
        assert!(SimParams {
            replicates: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SimParams {
            mean_dwell: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SimParams {
            overhead: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SimParams {
            threads: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SimParams::default().validate().is_ok());
    }

    #[test]
    fn grid_covers_all_cells() {
        let batch = paper::batch_with_pulses(8);
        let cases: Vec<_> = (1..=2).map(paper::platform_case).collect();
        let techniques = vec![TechniqueKind::Static, TechniqueKind::Fac];
        let cells = simulate_grid(
            &batch,
            &robust_alloc(),
            &cases,
            &techniques,
            paper::DEADLINE,
            &quick_params(),
        )
        .unwrap();
        assert_eq!(cells.len(), 3 * 2 * 2);
        // Every combination appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for c in &cells {
            assert!(seen.insert((c.app, c.case, c.technique.clone())));
            assert!(c.mean_makespan > 0.0);
        }
    }

    #[test]
    fn grid_is_deterministic_across_thread_counts() {
        // Replicate-granularity splits: 7 replicates (not divisible by 4
        // or 16) must land bit-identically for 1, 4 and 16 threads.
        let batch = paper::batch_with_pulses(8);
        let cases = vec![paper::platform_case(1)];
        let techniques = vec![TechniqueKind::Fac, TechniqueKind::Af];
        let mk = |threads: usize| {
            simulate_grid(
                &batch,
                &robust_alloc(),
                &cases,
                &techniques,
                paper::DEADLINE,
                &SimParams {
                    replicates: 7,
                    threads,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let one = mk(1);
        assert_eq!(one, mk(4));
        assert_eq!(one, mk(16));
    }

    #[test]
    fn single_cell_equals_full_grid_cell() {
        // The advisor's targeted path must reproduce the full grid's cell
        // exactly (same seeds, same replicate fan-out).
        let batch = paper::batch_with_pulses(8);
        let cases: Vec<_> = (1..=2).map(paper::platform_case).collect();
        let techniques = vec![TechniqueKind::Static, TechniqueKind::Fac];
        let params = SimParams {
            replicates: 5,
            threads: 4,
            ..Default::default()
        };
        let grid = simulate_grid(
            &batch,
            &robust_alloc(),
            &cases,
            &techniques,
            paper::DEADLINE,
            &params,
        )
        .unwrap();
        for (case, platform) in cases.iter().enumerate().map(|(i, p)| (i + 1, p)) {
            for (tech_idx, technique) in techniques.iter().enumerate() {
                for app in 0..batch.len() {
                    let single = simulate_single_cell(
                        &batch,
                        &robust_alloc(),
                        platform,
                        technique,
                        app,
                        case,
                        tech_idx,
                        paper::DEADLINE,
                        &params,
                    )
                    .unwrap();
                    let from_grid = grid
                        .iter()
                        .find(|c| c.app == app && c.case == case && c.technique == technique.name())
                        .unwrap();
                    assert_eq!(&single, from_grid, "app {app} case {case} tech {tech_idx}");
                }
            }
        }
    }

    #[test]
    fn grid_rejects_empty_inputs() {
        let batch = paper::batch_with_pulses(8);
        assert!(simulate_grid(
            &batch,
            &robust_alloc(),
            &[],
            &[TechniqueKind::Fac],
            paper::DEADLINE,
            &quick_params()
        )
        .is_err());
        assert!(simulate_grid(
            &batch,
            &robust_alloc(),
            &[paper::platform_case(1)],
            &[],
            paper::DEADLINE,
            &quick_params()
        )
        .is_err());
    }

    #[test]
    fn ci95_and_verdict_resolution() {
        let cell = CellResult {
            app: 0,
            case: 1,
            technique: "FAC".into(),
            mean_makespan: 3000.0,
            std_makespan: 300.0,
            mean_chunks: 50.0,
            replicates: 25,
            meets_deadline: true,
            deadline_hit_rate: 0.8,
        };
        // 1.96 · 300 / 5 = 117.6.
        assert!((cell.ci95_halfwidth() - 117.6).abs() < 1e-9);
        assert!(cell.verdict_is_resolved(3250.0)); // 250 > 117.6
        assert!(!cell.verdict_is_resolved(3050.0)); // 50 < 117.6
                                                    // Zero replicates: no evidence, so never resolved — even though the
                                                    // degenerate half-width is 0 (the implicit-divide trap).
        let zero = CellResult {
            replicates: 0,
            ..cell
        };
        assert_eq!(zero.ci95_halfwidth(), 0.0);
        assert!(!zero.verdict_is_resolved(3250.0));
        assert!(!zero.verdict_is_resolved(2000.0));
    }

    #[test]
    fn hit_rate_is_consistent_with_makespan_spread() {
        let batch = paper::batch_with_pulses(8);
        let cells = simulate_grid(
            &batch,
            &robust_alloc(),
            &[paper::platform_case(1)],
            &[TechniqueKind::Fac],
            paper::DEADLINE,
            &SimParams {
                replicates: 8,
                threads: 2,
                ..Default::default()
            },
        )
        .unwrap();
        for c in &cells {
            assert!((0.0..=1.0).contains(&c.deadline_hit_rate), "{c:?}");
            // All replicates on one side of Δ pins the hit rate.
            if c.mean_makespan + 3.0 * c.std_makespan <= paper::DEADLINE {
                assert_eq!(c.deadline_hit_rate, 1.0, "{c:?}");
            }
            if c.mean_makespan - 3.0 * c.std_makespan > paper::DEADLINE {
                assert_eq!(c.deadline_hit_rate, 0.0, "{c:?}");
            }
        }
    }

    #[test]
    fn worse_cases_give_longer_makespans() {
        // Weighted availability decreases case 1 → 4, so mean makespans
        // (same app, same technique) should increase overall.
        let batch = paper::batch_with_pulses(8);
        let cases: Vec<_> = (1..=4).map(paper::platform_case).collect();
        let cells = simulate_grid(
            &batch,
            &robust_alloc(),
            &cases,
            &[TechniqueKind::Af],
            paper::DEADLINE,
            &SimParams {
                replicates: 10,
                threads: 4,
                ..Default::default()
            },
        )
        .unwrap();
        // Compare case 1 vs case 4 per app.
        for app in 0..3 {
            let m1 = cells
                .iter()
                .find(|c| c.app == app && c.case == 1)
                .unwrap()
                .mean_makespan;
            let m4 = cells
                .iter()
                .find(|c| c.app == app && c.case == 4)
                .unwrap()
                .mean_makespan;
            assert!(m4 > m1, "app {app}: case4 {m4} ≤ case1 {m1}");
        }
    }
}
