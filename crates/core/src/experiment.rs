//! Declarative experiment specifications: describe a whole CDSF study in
//! JSON, load it, run it.
//!
//! An [`ExperimentSpec`] bundles everything [`crate::Cdsf`] needs — batch,
//! reference platform, runtime cases, deadline, simulation parameters —
//! plus the stage policies by *name*, so experiments can be versioned,
//! shared and re-run without writing Rust:
//!
//! ```json
//! {
//!   "name": "paper-example",
//!   "batch": { ... },            // cdsf_system::Batch
//!   "reference": { ... },        // cdsf_system::Platform
//!   "runtime_cases": [ ... ],    // [Platform]
//!   "deadline": 3250.0,
//!   "sim": { "replicates": 50, "mean_dwell": 300.0,
//!            "overhead": 1.0, "seed": 52575, "threads": 4 },
//!   "im": "exhaustive",
//!   "ras": ["FAC", "WF", "AWF-B", "AF"]
//! }
//! ```
//!
//! `im` names: `naive` / `equal-share`, `robust` / `exhaustive`,
//! `greedy-min-time`, `greedy-max-robust`, `sufferage`, `annealing`,
//! `genetic`. `ras` entries parse per
//! [`TechniqueKind::from_str`](cdsf_dls::TechniqueKind) (`"STATIC"`,
//! `"FAC"`, `"FSC:128"`, …); the special value `["naive"]` selects STATIC
//! and `["robust"]` the paper's robust set.

use crate::policy::{ImPolicy, RasPolicy};
use crate::simulation::SimParams;
use crate::{Cdsf, CoreError, Result, ScenarioResult, SystemRobustness};
use cdsf_dls::TechniqueKind;
use cdsf_ra::allocators::{
    EqualShare, GeneticAlgorithm, GreedyMaxRobust, GreedyMinTime, SimulatedAnnealing, Sufferage,
};
use cdsf_system::{Batch, Platform};
use serde::{Deserialize, Serialize};

/// A complete, serializable experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Experiment name, echoed into the result.
    pub name: String,
    /// The application batch.
    pub batch: Batch,
    /// The Stage-I historical platform `Â`.
    pub reference: Platform,
    /// Runtime availability cases (defaults to `[reference]` when empty).
    #[serde(default)]
    pub runtime_cases: Vec<Platform>,
    /// The common deadline Δ.
    pub deadline: f64,
    /// Simulation parameters.
    #[serde(default)]
    pub sim: Option<SimParams>,
    /// Stage-I policy name.
    pub im: String,
    /// Stage-II technique names.
    pub ras: Vec<String>,
}

/// The result of running a spec: the scenario outcome plus robustness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The spec's name.
    pub name: String,
    /// The full scenario outcome.
    pub scenario: ScenarioResult,
    /// `(ρ₁, ρ₂)` over the spec's runtime cases.
    pub robustness: SystemRobustness,
}

/// Resolves a Stage-I policy by name.
pub fn im_policy_by_name(name: &str) -> Result<ImPolicy> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "naive" | "equal-share" => ImPolicy::Naive,
        "robust" | "exhaustive" => ImPolicy::Robust,
        "greedy-min-time" => ImPolicy::Custom(Box::new(GreedyMinTime::new())),
        "greedy-max-robust" => ImPolicy::Custom(Box::new(GreedyMaxRobust::new())),
        "sufferage" => ImPolicy::Custom(Box::new(Sufferage::new())),
        "annealing" => ImPolicy::Custom(Box::new(SimulatedAnnealing::default())),
        "genetic" => ImPolicy::Custom(Box::new(GeneticAlgorithm::default())),
        // EqualShare is reachable as "naive"; keep the explicit name too.
        "equal_share" => ImPolicy::Custom(Box::new(EqualShare::new())),
        _ => {
            return Err(CoreError::BadConfig {
                what: "unknown im policy name",
            })
        }
    })
}

/// Resolves a Stage-II policy from technique names.
pub fn ras_policy_from_names(names: &[String]) -> Result<RasPolicy> {
    if names.is_empty() {
        return Err(CoreError::BadConfig {
            what: "empty ras technique list",
        });
    }
    if names.len() == 1 {
        match names[0].to_ascii_lowercase().as_str() {
            "naive" | "static" => return Ok(RasPolicy::Naive),
            "robust" => return Ok(RasPolicy::Robust),
            _ => {}
        }
    }
    let kinds: std::result::Result<Vec<TechniqueKind>, _> =
        names.iter().map(|n| n.parse()).collect();
    match kinds {
        Ok(kinds) => Ok(RasPolicy::Custom(kinds)),
        Err(_) => Err(CoreError::BadConfig {
            what: "unknown technique name in ras list",
        }),
    }
}

impl ExperimentSpec {
    /// Parses a spec from JSON.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|_| CoreError::BadConfig {
            what: "invalid experiment JSON",
        })
    }

    /// Serializes the spec to pretty JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|_| CoreError::BadConfig {
            what: "spec not serializable",
        })
    }

    /// Builds the [`Cdsf`] instance this spec describes.
    pub fn build(&self) -> Result<Cdsf> {
        let mut builder = Cdsf::builder()
            .batch(self.batch.clone())
            .reference_platform(self.reference.clone())
            .runtime_cases(self.runtime_cases.clone())
            .deadline(self.deadline);
        if let Some(sim) = self.sim {
            builder = builder.sim_params(sim);
        }
        builder.build()
    }

    /// Runs the experiment end to end.
    pub fn run(&self) -> Result<ExperimentResult> {
        let cdsf = self.build()?;
        let im = im_policy_by_name(&self.im)?;
        let ras = ras_policy_from_names(&self.ras)?;
        let scenario = cdsf.run_scenario(&im, &ras)?;
        let robustness = cdsf.system_robustness(&scenario);
        Ok(ExperimentResult {
            name: self.name.clone(),
            scenario,
            robustness,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsf_workloads::paper;

    fn paper_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "paper-example".to_string(),
            batch: paper::batch_with_pulses(16),
            reference: paper::platform(),
            runtime_cases: (1..=4).map(paper::platform_case).collect(),
            deadline: paper::DEADLINE,
            sim: Some(SimParams {
                replicates: 4,
                threads: 2,
                ..Default::default()
            }),
            im: "robust".to_string(),
            ras: vec!["robust".to_string()],
        }
    }

    #[test]
    fn spec_json_round_trips() {
        let spec = paper_spec();
        let json = spec.to_json().unwrap();
        let back = ExperimentSpec::from_json(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn spec_runs_the_paper_scenario() {
        let result = paper_spec().run().unwrap();
        assert_eq!(result.name, "paper-example");
        assert!((result.robustness.rho1 - 0.745).abs() < 0.03);
        assert_eq!(result.scenario.cells.len(), 3 * 4 * 4);
    }

    #[test]
    fn custom_technique_lists_parse() {
        let mut spec = paper_spec();
        spec.ras = vec!["GSS".into(), "FSC:32".into(), "awf-c".into()];
        let result = spec.run().unwrap();
        let names: std::collections::HashSet<&str> = result
            .scenario
            .cells
            .iter()
            .map(|c| c.technique.as_str())
            .collect();
        assert_eq!(names.len(), 3);
        assert!(names.contains("GSS") && names.contains("FSC") && names.contains("AWF-C"));
    }

    #[test]
    fn policy_name_resolution() {
        for name in [
            "naive",
            "robust",
            "exhaustive",
            "equal-share",
            "greedy-min-time",
            "greedy-max-robust",
            "sufferage",
            "annealing",
            "genetic",
        ] {
            assert!(im_policy_by_name(name).is_ok(), "{name}");
        }
        assert!(im_policy_by_name("bogus").is_err());
        assert!(ras_policy_from_names(&[]).is_err());
        assert!(ras_policy_from_names(&["bogus".into()]).is_err());
        assert_eq!(
            ras_policy_from_names(&["naive".into()]).unwrap(),
            RasPolicy::Naive
        );
        assert_eq!(
            ras_policy_from_names(&["robust".into()]).unwrap(),
            RasPolicy::Robust
        );
    }

    #[test]
    fn bad_json_is_rejected() {
        assert!(ExperimentSpec::from_json("{").is_err());
        assert!(ExperimentSpec::from_json("{\"name\": \"x\"}").is_err());
    }
}
