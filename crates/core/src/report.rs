//! Report rendering: a small ASCII table builder used by the repro
//! binaries and the examples.

use std::fmt;

/// A minimal ASCII table: headers, rows, automatic column widths.
///
/// ```
/// use cdsf_core::AsciiTable;
/// let mut t = AsciiTable::new(["App", "Pr(T ≤ Δ)"]);
/// t.row(["1", "0.745"]);
/// let s = t.to_string();
/// assert!(s.contains("App"));
/// assert!(s.contains("0.745"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct AsciiTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl AsciiTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title printed above the table.
    pub fn title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row; short rows are padded with empty cells, long rows
    /// extend the column count.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_count(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.len())
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0)
    }

    fn widths(&self) -> Vec<usize> {
        let n = self.column_count();
        let mut w = vec![0usize; n];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = w[i].max(display_width(h));
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(display_width(c));
            }
        }
        w
    }
}

/// Character count as a proxy for display width (sufficient for our ASCII
/// and Greek-letter output).
fn display_width(s: &str) -> usize {
    s.chars().count()
}

impl fmt::Display for AsciiTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = w - display_width(cell);
                write!(f, " {}{} |", cell, " ".repeat(pad))?;
            }
            writeln!(f)
        };

        if let Some(title) = &self.title {
            writeln!(f, "{title}")?;
        }
        sep(f)?;
        if !self.headers.is_empty() {
            render_row(f, &self.headers)?;
            sep(f)?;
        }
        for row in &self.rows {
            render_row(f, row)?;
        }
        sep(f)
    }
}

/// A horizontal ASCII bar chart with a reference line — used to render the
/// paper's figures (execution-time bars against the deadline Δ) in a
/// terminal.
///
/// ```
/// use cdsf_core::report::BarChart;
/// let mut chart = BarChart::new(40).reference(3250.0, "Δ");
/// chart.bar("app 1 / FAC", 1360.0);
/// chart.bar("app 3 / AF", 3624.0);
/// let s = chart.to_string();
/// assert!(s.contains("app 1 / FAC"));
/// assert!(s.contains('Δ'));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    width: usize,
    bars: Vec<(String, f64)>,
    reference: Option<(f64, String)>,
}

impl BarChart {
    /// Creates a chart whose longest bar spans `width` characters (≥ 8).
    pub fn new(width: usize) -> Self {
        Self {
            width: width.max(8),
            bars: Vec::new(),
            reference: None,
        }
    }

    /// Adds a vertical reference line at `value` labelled `label`
    /// (e.g. the deadline Δ).
    pub fn reference(mut self, value: f64, label: impl Into<String>) -> Self {
        self.reference = Some((value, label.into()));
        self
    }

    /// Appends one bar. Non-finite or negative values are clamped to 0.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        self.bars.push((label.into(), v));
        self
    }

    /// Number of bars.
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// Whether the chart has no bars.
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }

    fn scale_max(&self) -> f64 {
        let bar_max = self.bars.iter().map(|b| b.1).fold(0.0f64, f64::max);
        let ref_max = self.reference.as_ref().map_or(0.0, |r| r.0);
        bar_max.max(ref_max).max(f64::MIN_POSITIVE)
    }
}

impl fmt::Display for BarChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.scale_max();
        let label_width = self
            .bars
            .iter()
            .map(|(l, _)| display_width(l))
            .max()
            .unwrap_or(0);
        let ref_col = self
            .reference
            .as_ref()
            .map(|(v, _)| ((v / max) * self.width as f64).round() as usize);
        for (label, value) in &self.bars {
            let filled = ((value / max) * self.width as f64).round() as usize;
            let mut line = String::with_capacity(self.width + 2);
            for col in 0..=self.width {
                let ch = if Some(col) == ref_col {
                    '|'
                } else if col < filled {
                    '█'
                } else {
                    ' '
                };
                line.push(ch);
            }
            writeln!(
                f,
                "{label}{pad} {line} {value:.0}",
                pad = " ".repeat(label_width - display_width(label)),
            )?;
        }
        if let Some((v, label)) = &self.reference {
            let col = ref_col.unwrap_or(0);
            writeln!(
                f,
                "{}{} {label} = {v:.0}",
                " ".repeat(label_width + 1),
                " ".repeat(col) + "^",
            )?;
        }
        Ok(())
    }
}

/// Renders an executor chunk log as an ASCII Gantt chart: one row per
/// worker, `█` where the worker computes, `·` where it idles, time scaled
/// to `width` columns.
///
/// Overhead windows (between dispatch and compute) count as busy — the
/// resolution is a column, far coarser than `h`. Useful for eyeballing
/// how a technique distributes work after an availability drop.
pub fn gantt(log: &[cdsf_dls::executor::ChunkRecord], workers: usize, width: usize) -> String {
    let width = width.max(8);
    if log.is_empty() || workers == 0 {
        return String::from("(empty chunk log)\n");
    }
    let t_end = log
        .iter()
        .map(|c| c.finish)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let col_of = |t: f64| ((t / t_end) * width as f64) as usize;
    let mut rows = vec![vec!['·'; width + 1]; workers];
    for c in log {
        if c.worker >= workers {
            continue;
        }
        let (a, b) = (col_of(c.start), col_of(c.finish).min(width));
        for cell in &mut rows[c.worker][a..=b] {
            *cell = '█';
        }
    }
    let mut out = String::new();
    for (w, row) in rows.iter().enumerate() {
        out.push_str(&format!("w{w:<3} "));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "     0{}{t_end:.0}\n",
        " ".repeat(width.saturating_sub(6))
    ));
    out
}

/// Formats a probability as a percentage with one decimal (paper style).
pub fn pct(p: f64) -> String {
    format!("{:.1}%", 100.0 * p)
}

/// Formats a time value with two decimals (paper style, e.g. `3800.02`).
pub fn time(t: f64) -> String {
    format!("{t:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = AsciiTable::new(["A", "Longer"]).title("T");
        t.row(["x", "y"]);
        t.row(["wide-cell", "z"]);
        let s = t.to_string();
        assert!(s.starts_with("T\n"));
        // All border lines have the same width.
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('+')).collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
        assert!(s.contains("wide-cell"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = AsciiTable::new(["A", "B", "C"]);
        t.row(["only-one"]);
        let s = t.to_string();
        assert!(s.contains("only-one"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.745), "74.5%");
        assert_eq!(time(3800.018), "3800.02");
    }

    #[test]
    fn empty_table_renders() {
        let t = AsciiTable::new(["H"]);
        assert!(t.is_empty());
        let s = t.to_string();
        assert!(s.contains('H'));
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let mut c = BarChart::new(10);
        c.bar("a", 50.0);
        c.bar("bb", 100.0);
        let s = c.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        // The longer bar has twice the filled cells.
        let filled = |l: &str| l.chars().filter(|&c| c == '█').count();
        assert_eq!(filled(lines[1]), 2 * filled(lines[0]));
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("bb"));
    }

    #[test]
    fn bar_chart_reference_line_appears() {
        let mut c = BarChart::new(20).reference(100.0, "Δ");
        c.bar("x", 50.0);
        let s = c.to_string();
        assert!(s.contains('|'), "{s}");
        assert!(s.contains("Δ = 100"), "{s}");
    }

    #[test]
    fn gantt_renders_busy_and_idle() {
        use cdsf_dls::executor::ChunkRecord;
        let log = vec![
            ChunkRecord {
                worker: 0,
                size: 10,
                start: 0.0,
                finish: 50.0,
            },
            ChunkRecord {
                worker: 1,
                size: 10,
                start: 50.0,
                finish: 100.0,
            },
        ];
        let g = gantt(&log, 2, 20);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3); // two workers + the time axis
        assert!(lines[0].starts_with("w0"));
        // Worker 0 busy in the first half, idle in the second; worker 1
        // mirrored.
        assert!(lines[0].contains('█') && lines[0].contains('·'));
        assert!(lines[1].contains('█') && lines[1].contains('·'));
        let busy0 = lines[0].chars().filter(|&c| c == '█').count();
        let busy1 = lines[1].chars().filter(|&c| c == '█').count();
        assert!((busy0 as i64 - busy1 as i64).abs() <= 1);
        assert!(lines[2].contains("100"));
    }

    #[test]
    fn gantt_handles_empty_input() {
        assert!(gantt(&[], 2, 20).contains("empty"));
        assert!(gantt(&[], 0, 20).contains("empty"));
    }

    #[test]
    fn bar_chart_handles_degenerate_values() {
        let mut c = BarChart::new(8);
        c.bar("nan", f64::NAN);
        c.bar("neg", -5.0);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        let s = c.to_string();
        assert!(!s.contains('█'));
    }
}
