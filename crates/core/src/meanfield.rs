//! Mean-field (fluid) predictions of Stage-II outcomes.
//!
//! The full simulation grid costs `apps × cases × techniques × replicates`
//! executor runs. For screening — "is this case obviously safe or
//! obviously hopeless?" — a fluid model is enough: availability averages
//! to its stationary mean over a run, the serial prologue runs on one
//! processor, and a dynamic self-schedule keeps all processors busy until
//! the loop drains:
//!
//! ```text
//! T̂(app, case) = s·W / ē  +  p·W / (n·ē)  +  h·ĉ
//! ```
//!
//! with `W` the app's single-processor expected time, `s/p` its
//! serial/parallel fractions, `ē` the expected availability of the
//! assigned type under the case, `n` the group size, and `h·ĉ` the
//! scheduling overhead of roughly `ĉ = 2n·log₂(total/n)`-ish chunks
//! (factoring-family estimate).
//!
//! The prediction is a *lower-bound-flavoured* estimate for dynamic
//! techniques (they approach the fluid limit from above) and an
//! *optimistic* one for STATIC (which adds the max-of-draws penalty), so
//! verdicts carry a [`Confidence`]: cells far from the deadline are
//! `Clear`, near-deadline cells are `Marginal` and should be simulated.
//! The integration tests check the mean-field verdicts agree with the
//! simulated ones on every `Clear` cell of the paper example.

use crate::{CoreError, Result};
use cdsf_ra::Allocation;
use cdsf_system::{AppId, Batch, Platform};
use serde::{Deserialize, Serialize};

/// How decisive a mean-field verdict is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Confidence {
    /// Prediction at least `margin` away from the deadline — trust it.
    Clear,
    /// Within the margin — simulate before concluding anything.
    Marginal,
}

/// One mean-field cell prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeanFieldCell {
    /// Application index (0-based).
    pub app: usize,
    /// Case index (1-based).
    pub case: usize,
    /// Predicted execution time.
    pub predicted: f64,
    /// Whether the prediction meets the deadline.
    pub meets_deadline: bool,
    /// Verdict confidence given the configured margin.
    pub confidence: Confidence,
}

/// Mean-field predictor over a mapped batch.
#[derive(Debug, Clone)]
pub struct MeanField {
    /// Relative margin (of the deadline) below which verdicts are
    /// [`Confidence::Marginal`]. Default 0.15.
    pub margin: f64,
    /// Per-chunk scheduling overhead assumed (matches `SimParams`).
    pub overhead: f64,
}

impl Default for MeanField {
    fn default() -> Self {
        Self {
            margin: 0.15,
            overhead: 1.0,
        }
    }
}

impl MeanField {
    /// Predicts one application's execution time under one case platform.
    pub fn predict_app(
        &self,
        batch: &Batch,
        alloc: &Allocation,
        case: &Platform,
        app_idx: usize,
    ) -> Result<f64> {
        let app = batch.app(AppId(app_idx))?;
        let asg = alloc.assignment(app_idx).ok_or(CoreError::BadConfig {
            what: "allocation does not cover application",
        })?;
        let e_avail = case.proc_type(asg.proc_type)?.expected_availability();
        let w = app.expected_exec_time(asg.proc_type)?;
        let s = app.serial_fraction();
        let p = app.parallel_fraction();
        let n = asg.procs as f64;
        // Factoring-family chunk count: each batch issues `n` chunks and
        // halves the remaining, so ~log2(parallel/n) batches.
        let chunk_estimate = if app.parallel_iters() > 0 {
            let batches = ((app.parallel_iters() as f64 / n).log2()).max(1.0);
            n * batches
        } else {
            0.0
        };
        Ok(s * w / e_avail + p * w / (n * e_avail) + self.overhead * chunk_estimate)
    }

    /// Predicts the whole (app × case) grid for a technique-agnostic
    /// dynamic schedule.
    pub fn predict_grid(
        &self,
        batch: &Batch,
        alloc: &Allocation,
        cases: &[Platform],
        deadline: f64,
    ) -> Result<Vec<MeanFieldCell>> {
        if !(deadline > 0.0) {
            return Err(CoreError::BadParameter {
                name: "deadline",
                value: deadline,
            });
        }
        let mut out = Vec::with_capacity(batch.len() * cases.len());
        for app in 0..batch.len() {
            for (c_idx, case) in cases.iter().enumerate() {
                let predicted = self.predict_app(batch, alloc, case, app)?;
                let distance = (predicted - deadline).abs() / deadline;
                out.push(MeanFieldCell {
                    app,
                    case: c_idx + 1,
                    predicted,
                    meets_deadline: predicted <= deadline,
                    confidence: if distance >= self.margin {
                        Confidence::Clear
                    } else {
                        Confidence::Marginal
                    },
                });
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsf_ra::{Allocation, Assignment};
    use cdsf_system::ProcTypeId;
    use cdsf_workloads::paper;

    fn robust_alloc() -> Allocation {
        Allocation::new(vec![
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2,
            },
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2,
            },
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 8,
            },
        ])
    }

    #[test]
    fn prediction_matches_hand_computation() {
        // App 1 robust mapping, case 1: serial 0.3·1800/0.875 + parallel
        // 0.7·1800/(2·0.875) + overhead·chunks.
        let mf = MeanField {
            margin: 0.15,
            overhead: 0.0,
        };
        let batch = paper::batch_with_pulses(16);
        let t = mf
            .predict_app(&batch, &robust_alloc(), &paper::platform_case(1), 0)
            .unwrap();
        let want = 0.3 * 1800.0 / 0.875 + 0.7 * 1800.0 / (2.0 * 0.875);
        assert!((t - want).abs() < want * 0.02, "{t} vs {want}");
    }

    #[test]
    fn grid_covers_all_cells_and_orders_cases() {
        let mf = MeanField::default();
        let batch = paper::batch_with_pulses(16);
        let cases: Vec<_> = (1..=4).map(paper::platform_case).collect();
        let grid = mf
            .predict_grid(&batch, &robust_alloc(), &cases, paper::DEADLINE)
            .unwrap();
        assert_eq!(grid.len(), 12);
        // Case-1 predictions all meet the deadline for the robust mapping.
        assert!(grid
            .iter()
            .filter(|c| c.case == 1)
            .all(|c| c.meets_deadline));
        // App 2 in case 4 is hopeless (paper agrees).
        let app2c4 = grid.iter().find(|c| c.app == 1 && c.case == 4).unwrap();
        assert!(!app2c4.meets_deadline);
        assert_eq!(app2c4.confidence, Confidence::Clear);
    }

    #[test]
    fn marginal_cells_are_flagged() {
        // App 2 case 2 sits ~50 time units under Δ — must be Marginal.
        let mf = MeanField::default();
        let batch = paper::batch_with_pulses(16);
        let cases: Vec<_> = (1..=4).map(paper::platform_case).collect();
        let grid = mf
            .predict_grid(&batch, &robust_alloc(), &cases, paper::DEADLINE)
            .unwrap();
        let app2c2 = grid.iter().find(|c| c.app == 1 && c.case == 2).unwrap();
        assert_eq!(app2c2.confidence, Confidence::Marginal, "{app2c2:?}");
    }

    #[test]
    fn rejects_bad_deadline_and_missing_assignment() {
        let mf = MeanField::default();
        let batch = paper::batch_with_pulses(8);
        let cases = vec![paper::platform_case(1)];
        assert!(mf
            .predict_grid(&batch, &robust_alloc(), &cases, 0.0)
            .is_err());
        let short = Allocation::new(vec![Assignment {
            proc_type: ProcTypeId(0),
            procs: 2,
        }]);
        assert!(mf.predict_app(&batch, &short, &cases[0], 2).is_err());
    }
}
