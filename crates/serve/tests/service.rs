//! End-to-end suite for the scheduling service.
//!
//! Three contracts, all exact — no tolerances anywhere:
//!
//! 1. **Coalescing is invisible.** K submissions served from one
//!    admission batch (sharing one engine build) produce replies
//!    byte-identical to the same K submissions served one at a time —
//!    and byte-identical across engine build-thread counts 1/2/4.
//! 2. **Restores are byte-exact.** Snapshot a tenant mid-stream, kill
//!    the server, restore on a fresh one, replay the event tail: the
//!    final engine tables are byte-identical to the server that never
//!    died (asserted via `Phi1Engine::table_fingerprint`).
//! 3. **The TCP front end works.** Ephemeral-port server, concurrent
//!    clients, aggregated stats, clean shutdown.

use cdsf_serve::protocol::InjectRequest;
use cdsf_serve::{
    Client, Request, Response, ServeConfig, Server, ShardCore, SubmitRequest, TenantEvent,
    WorkloadSpec,
};
use proptest::prelude::*;

fn test_cfg(build_threads: usize) -> ServeConfig {
    ServeConfig {
        build_threads,
        ..ServeConfig::default()
    }
}

fn submit(tenant: &str, spec: WorkloadSpec, deadline: f64) -> Request {
    Request::Submit(SubmitRequest {
        tenant: tenant.to_string(),
        spec,
        deadline,
        allocator: None,
        threshold: None,
        qos: None,
    })
}

/// Byte-level reply comparison: the vendored `serde_json` is configured
/// with `float_roundtrip`, so equal JSON strings mean equal `f64` bits.
fn reply_bytes(resps: &[Response]) -> Vec<String> {
    resps
        .iter()
        .map(|r| serde_json::to_string(r).expect("serializable"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite 3: K concurrent (coalesced) submissions for the same
    /// spec are bit-identical to K serial submissions, for 1/2/4 build
    /// threads — and the replies agree *across* thread counts.
    #[test]
    fn coalesced_submits_bit_identical_to_serial(
        seed in 0u64..1_000_000,
        apps in 2usize..=5,
        types in 2usize..=3,
        pulses in 4usize..=8,
        k in 2usize..=4,
        same_tenant in prop_oneof![Just(true), Just(false)],
    ) {
        let spec = WorkloadSpec::simple(apps, types, pulses, seed);
        let deadline = 2_800.0;
        let reqs: Vec<Request> = (0..k)
            .map(|i| {
                let tenant = if same_tenant {
                    "tenant-0".to_string()
                } else {
                    format!("tenant-{i}")
                };
                submit(&tenant, spec.clone(), deadline)
            })
            .collect();

        let mut per_thread_bytes = Vec::new();
        for threads in [1usize, 2, 4] {
            // Serial: every request is its own admission batch.
            let mut serial = ShardCore::new(0, test_cfg(threads));
            let serial_replies: Vec<Response> =
                reqs.iter().map(|r| serial.handle(r)).collect();
            // Coalesced: one admission batch, one engine build.
            let mut batched = ShardCore::new(0, test_cfg(threads));
            let batched_replies = batched.process_batch(&reqs);

            let serial_bytes = reply_bytes(&serial_replies);
            let batched_bytes = reply_bytes(&batched_replies);
            prop_assert_eq!(
                &serial_bytes, &batched_bytes,
                "coalescing changed reply bytes at {} threads", threads
            );
            // The coalesced run paid for exactly one build.
            let stats = batched.stats();
            prop_assert_eq!(stats.builds, 1);
            prop_assert_eq!(stats.coalesced, k as u64 - 1);
            per_thread_bytes.push(batched_bytes);
        }
        // Thread count must not leak into replies either.
        prop_assert_eq!(&per_thread_bytes[0], &per_thread_bytes[1]);
        prop_assert_eq!(&per_thread_bytes[0], &per_thread_bytes[2]);
    }
}

/// Drives one request over an open client connection, panicking on
/// transport errors (the tests below assert on the typed response).
fn ask(client: &mut Client, req: &Request) -> Response {
    client.request(req).expect("request round-trips")
}

/// Satellite 4: snapshot → kill → restore → replay tail → byte-identical
/// engine tables, exercised over real sockets.
#[test]
fn crash_restart_replay_is_byte_identical() {
    let spec = WorkloadSpec::simple(4, 3, 6, 2_026);
    let events = [
        TenantEvent::Degrade {
            proc_type: 1,
            factor: 0.6,
        },
        TenantEvent::Drift { factor: 0.85 },
        TenantEvent::Crash { proc_type: 0 },
        TenantEvent::Degrade {
            proc_type: 0,
            factor: 0.9,
        },
    ];
    let inject = |tenant: &str, event: TenantEvent| {
        Request::Inject(InjectRequest {
            tenant: tenant.to_string(),
            event,
        })
    };

    // Server A lives through the whole stream.
    let server_a = Server::bind("127.0.0.1:0", test_cfg(2)).expect("bind A");
    let mut a = Client::connect(server_a.addr()).expect("connect A");
    ask(&mut a, &submit("acme", spec, 2_800.0));
    for e in &events[..2] {
        let resp = ask(&mut a, &inject("acme", *e));
        assert!(matches!(resp, Response::Inject(_)), "{resp:?}");
    }
    // Snapshot mid-stream (after two of four events).
    let Response::Snapshot { snapshot } = ask(
        &mut a,
        &Request::Snapshot {
            tenant: "acme".to_string(),
        },
    ) else {
        panic!("expected snapshot");
    };
    assert_eq!(snapshot.events_applied, 2);
    // The tail the restored server must replay.
    for e in &events[2..] {
        let resp = ask(&mut a, &inject("acme", *e));
        assert!(matches!(resp, Response::Inject(_)), "{resp:?}");
    }
    let Response::Fingerprint(survivor) = ask(
        &mut a,
        &Request::Fingerprint {
            tenant: "acme".to_string(),
        },
    ) else {
        panic!("expected fingerprint");
    };

    // "Kill" server A.
    assert!(matches!(ask(&mut a, &Request::Shutdown), Response::Bye));
    server_a.wait();

    // Server B restores from the snapshot and replays the tail.
    let server_b = Server::bind("127.0.0.1:0", test_cfg(2)).expect("bind B");
    let mut b = Client::connect(server_b.addr()).expect("connect B");
    let Response::Restored(restored) = ask(&mut b, &Request::Restore { snapshot }) else {
        panic!("expected restore reply");
    };
    for e in &events[2..] {
        let resp = ask(&mut b, &inject("acme", *e));
        assert!(matches!(resp, Response::Inject(_)), "{resp:?}");
    }
    let Response::Fingerprint(replayed) = ask(
        &mut b,
        &Request::Fingerprint {
            tenant: "acme".to_string(),
        },
    ) else {
        panic!("expected fingerprint");
    };
    assert!(matches!(ask(&mut b, &Request::Shutdown), Response::Bye));
    server_b.wait();

    assert_eq!(
        replayed.engine_key, survivor.engine_key,
        "replayed inputs diverged from the surviving server's"
    );
    assert_eq!(
        replayed.fingerprint, survivor.fingerprint,
        "restored + tail-replayed engine tables are not byte-identical"
    );
    assert_ne!(
        restored.engine_key, replayed.engine_key,
        "tail must evolve the state"
    );
}

/// TCP smoke: concurrent clients against a 2-shard server, aggregated
/// stats, clean shutdown.
#[test]
fn tcp_server_serves_concurrent_clients() {
    let cfg = ServeConfig {
        shards: 2,
        build_threads: 2,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.addr();

    let mut handles = Vec::new();
    for c in 0..3 {
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            for t in 0..2 {
                // One shared spec: with 6 tenants on 2 shards, some shard
                // must serve it repeatedly — hits or coalesces.
                let spec = WorkloadSpec::simple(3, 2, 5, 100);
                let tenant = format!("client{c}-tenant{t}");
                let resp = client
                    .request(&submit(&tenant, spec, 2_800.0))
                    .expect("submit");
                assert!(
                    matches!(resp, Response::Submit(_)),
                    "unexpected reply {resp:?}"
                );
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }

    let mut client = Client::connect(addr).expect("connect");
    let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") else {
        panic!("expected stats");
    };
    assert_eq!(stats.shards, 2);
    assert_eq!(stats.per_shard.len(), 2);
    assert_eq!(stats.total.submits, 6);
    assert_eq!(stats.total.tenants, 6);
    assert_eq!(stats.total.errors, 0);
    // Same-spec submissions from one client hit the cache or coalesce.
    assert!(stats.total.cache_hits + stats.total.coalesced > 0);
    // Pool telemetry flows through from the engine builds.
    assert!(stats.total.pool_runs == stats.total.builds || stats.total.pool_runs == 0);

    assert!(matches!(
        client.request(&Request::Shutdown).expect("shutdown"),
        Response::Bye
    ));
    let final_stats = server.wait();
    assert_eq!(final_stats.total.submits, 6);
}

/// The pipelined data plane is invisible in the bytes: a connection with
/// many requests in flight gets exactly the replies — in exactly the
/// order — a lockstep connection gets for the same stream, even though
/// the requests fan out across shards and complete out of order.
#[test]
fn pipelined_replies_match_lockstep_in_order_and_bytes() {
    // Tenants spread across both shards; repeated specs exercise the
    // caches; injections force cross-request state dependencies.
    let mut reqs = Vec::new();
    for i in 0..10 {
        let spec = WorkloadSpec::simple(3, 2, 5, 300 + (i % 3) as u64);
        reqs.push(submit(&format!("tenant-{i}"), spec.clone(), 2_800.0));
    }
    for i in 0..10 {
        reqs.push(Request::Inject(InjectRequest {
            tenant: format!("tenant-{i}"),
            event: TenantEvent::Drift { factor: 0.9 },
        }));
        reqs.push(Request::Fingerprint {
            tenant: format!("tenant-{i}"),
        });
    }

    let run = |pipelined: bool| -> Vec<String> {
        let cfg = ServeConfig {
            shards: 2,
            build_threads: 2,
            ..ServeConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
        let mut client = Client::connect(server.addr()).expect("connect");
        let mut replies = Vec::with_capacity(reqs.len());
        if pipelined {
            // Everything in flight at once, then drain in order.
            for req in &reqs {
                client.send(req).expect("send");
            }
            client.flush().expect("flush");
            for _ in &reqs {
                replies.push(client.recv().expect("recv"));
            }
        } else {
            for req in &reqs {
                replies.push(client.request(req).expect("request"));
            }
        }
        assert!(matches!(
            client.request(&Request::Shutdown).expect("shutdown"),
            Response::Bye
        ));
        server.wait();
        reply_bytes(&replies)
    };

    let lockstep = run(false);
    let pipelined = run(true);
    assert_eq!(
        lockstep, pipelined,
        "pipelining changed reply bytes or order"
    );
    // Order check independent of determinism: reply i echoes request i's
    // tenant.
    for (req, reply) in reqs.iter().zip(&pipelined) {
        let tenant = req.tenant().expect("tenant-scoped");
        assert!(
            reply.contains(&format!("\"{tenant}\"")),
            "reply out of order: expected {tenant} in {reply}"
        );
    }
}

/// Satellite 1 over the wire: the aggregated totals row omits the
/// `shard` field entirely (it used to carry a `u64::MAX` sentinel),
/// while per-shard rows keep their real ids — checked on the raw JSON,
/// not the deserialized struct.
#[test]
fn stats_totals_row_omits_shard_id_on_the_wire() {
    let cfg = ServeConfig {
        shards: 2,
        build_threads: 2,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let spec = WorkloadSpec::simple(3, 2, 5, 7);
    ask(&mut client, &submit("acme", spec, 2_800.0));

    // Speak the protocol by hand to inspect the raw reply line.
    let mut raw = std::net::TcpStream::connect(server.addr()).expect("connect raw");
    {
        use std::io::Write;
        raw.write_all(b"\"Stats\"\n").expect("write stats request");
        raw.flush().expect("flush");
    }
    let mut line = String::new();
    {
        use std::io::BufRead;
        std::io::BufReader::new(&raw)
            .read_line(&mut line)
            .expect("read stats reply");
    }
    let v: serde_json::Value = serde_json::from_str(&line).expect("stats reply parses");
    let stats = v.get("Stats").expect("Stats variant");
    let total = stats.get("total").expect("total row");
    assert!(
        total.get("shard").is_none(),
        "totals row serialized a shard id: {line}"
    );
    assert!(!line.contains("18446744073709551615"), "sentinel leaked");
    let per_shard = stats
        .get("per_shard")
        .and_then(|p| p.as_array())
        .expect("per_shard rows");
    for (i, row) in per_shard.iter().enumerate() {
        assert_eq!(
            row.get("shard").and_then(|s| s.as_u64()),
            Some(i as u64),
            "per-shard row keeps its id"
        );
    }
    // Close the raw connection before shutdown: `Server::wait` joins
    // every connection thread, and this one's reader needs the EOF.
    drop(raw);

    // The codec counters flow through the typed reply too.
    let Response::Stats(typed) = ask(&mut client, &Request::Stats) else {
        panic!("expected stats");
    };
    assert_eq!(typed.total.shard, None);
    assert!(typed.codec.reply_frames > 0, "writers recorded frames");

    assert!(matches!(
        ask(&mut client, &Request::Shutdown),
        Response::Bye
    ));
    server.wait();
}
