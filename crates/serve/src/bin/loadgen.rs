//! `loadgen` — replay a seeded synthetic tenant stream against the
//! scheduling service and write a benchmark report.
//!
//! ```text
//! loadgen [--requests N] [--tenants N] [--connections N] [--shards N]
//!         [--seed N] [--skew F] [--fault-rate F] [--policy-mix F]
//!         [--catalog-overlap F] [--threads N] [--pipeline N] [--warmup N]
//!         [--addr HOST:PORT] [--shutdown] [--out PATH]
//! ```
//!
//! Without `--addr` an in-process server is started on an ephemeral port
//! and shut down cleanly after the run. With `--addr`, `--shutdown`
//! additionally sends a `Shutdown` request after the replay so a scripted
//! server process (e.g. a CI smoke test around `cdsf serve`) exits
//! cleanly. The report (see [`cdsf_serve::LoadgenReport`]) is written as
//! JSON to `--out` (default `BENCH_serve.json`).

use cdsf_serve::loadgen::{run, run_local, LoadgenConfig};
use cdsf_serve::{Client, Request, ServeConfig, ShardStats};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--requests N] [--tenants N] [--connections N] [--shards N]\n\
         \u{20}              [--seed N] [--skew F] [--fault-rate F] [--policy-mix F]\n\
         \u{20}              [--catalog-overlap F] [--threads N] [--pipeline N] [--warmup N]\n\
         \u{20}              [--addr HOST:PORT] [--shutdown] [--out PATH]"
    );
    std::process::exit(2)
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("loadgen: {flag} needs a value");
        usage()
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("loadgen: bad value `{value}` for {flag}");
            usage()
        }
    }
}

fn main() -> ExitCode {
    let mut cfg = LoadgenConfig::default();
    let mut serve_cfg = ServeConfig::default();
    let mut addr: Option<String> = None;
    let mut shutdown = false;
    let mut out = "BENCH_serve.json".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--requests" => cfg.requests = parse(&arg, args.next()),
            "--tenants" => cfg.tenants = parse(&arg, args.next()),
            "--connections" => cfg.connections = parse(&arg, args.next()),
            "--shards" => serve_cfg.shards = parse(&arg, args.next()),
            "--seed" => cfg.seed = parse(&arg, args.next()),
            "--skew" => cfg.skew = parse(&arg, args.next()),
            "--fault-rate" => cfg.fault_rate = parse(&arg, args.next()),
            "--policy-mix" => cfg.policy_mix = parse(&arg, args.next()),
            "--catalog-overlap" => cfg.catalog_overlap = parse(&arg, args.next()),
            "--pipeline" => cfg.pipeline = parse(&arg, args.next()),
            "--warmup" => cfg.warmup = parse(&arg, args.next()),
            "--threads" => serve_cfg.build_threads = parse(&arg, args.next()),
            "--addr" => addr = Some(parse(&arg, args.next())),
            "--shutdown" => shutdown = true,
            "--out" => out = parse(&arg, args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("loadgen: unknown flag `{other}`");
                usage()
            }
        }
    }

    let result = match &addr {
        Some(addr) => {
            let report = run(&cfg, addr.clone());
            if shutdown {
                if let Ok(mut client) = Client::connect(addr.as_str()) {
                    let _ = client.request(&Request::Shutdown);
                }
            }
            report
        }
        None => run_local(&cfg, serve_cfg),
    };
    let report = match result {
        Ok(report) => report,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };

    let json = match serde_json::to_string_pretty(&report) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("loadgen: serializing report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&out, json + "\n") {
        eprintln!("loadgen: writing {out}: {e}");
        return ExitCode::FAILURE;
    }

    let t = &report.stats.total;
    println!(
        "loadgen: {} requests over {} tenants / {} shards in {:.2}s ({:.0} req/s)",
        report.requests, report.tenants, report.shards, report.elapsed_s, report.throughput_rps
    );
    println!(
        "  latency p50 {} us | p99 {} us | p999 {} us | max {} us ({} warm-up discarded)",
        report.latency_p50_us,
        report.latency_p99_us,
        report.latency_p999_us,
        report.latency_max_us,
        report.warmup_discarded
    );
    println!(
        "  cache hit rate {:.3} | coalescing {:.3} | builds {} | rebuilds {} | errors {}",
        report.cache_hit_rate, report.coalescing_factor, t.builds, t.cache_rebuilds, report.errors
    );
    print_pool(t);
    let cs = &report.stats.cell_store;
    println!(
        "  cell store: {} hits / {} misses (rate {:.3}), {} verify rejects, {}/{} resident",
        cs.hits,
        cs.misses,
        cs.hit_rate(),
        cs.verify_rejects,
        cs.resident,
        cs.capacity
    );
    println!("  report -> {out}");
    ExitCode::SUCCESS
}

fn print_pool(t: &ShardStats) {
    println!(
        "  pool: {} runs, {} tasks, {} chunks stolen",
        t.pool_runs, t.pool_tasks_run, t.pool_chunks_stolen
    );
}
