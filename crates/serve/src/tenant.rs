//! Per-tenant durable state: workload specs, live inputs, snapshots.
//!
//! A tenant's workload arrives as a [`WorkloadSpec`] — a deterministic
//! generator recipe, not inline PMFs — so identical submissions hash to
//! identical engine inputs (the cache/coalescing key) and a snapshot
//! stays small. Events then evolve the expanded `(batch, platform)` pair
//! in place through the shared remap entry points
//! ([`cdsf_events::remap`]), and a [`TenantSnapshot`] captures the
//! evolved inputs bit-exactly: restoring and rebuilding is guaranteed to
//! reproduce byte-identical engine tables because engine builds are
//! deterministic functions of their input bits.

use crate::error::{Result, ServeError};
use cdsf_events::remap;
use cdsf_system::{Batch, Platform};
use cdsf_workloads::generators::{BatchGenerator, PlatformGenerator};
use serde::{Deserialize, Serialize};

/// Bounds on what one request may ask a shard to build — admission
/// control against a single tenant monopolizing a shard with one
/// pathological spec.
const MAX_APPS: usize = 64;
const MAX_TYPES: usize = 16;
const MAX_PULSES: usize = 256;

/// A deterministic workload recipe: the seeded generator parameters the
/// shard expands into a `(batch, platform)` pair.
///
/// The optional catalog fields let tenants *share* pieces of a workload:
/// `platform_seed` pins the platform independently of the batch seed,
/// and `app_seeds` names each application by its own generator seed — so
/// two tenants whose catalogs overlap produce bit-identical PMFs for the
/// shared applications, which the cross-shard
/// [`cdsf_ra::CellStore`] then interns exactly once. Both default
/// to absent, where expansion is byte-for-byte the legacy single-seed
/// recipe (deserialization fills them in for old wire payloads).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Applications in the batch.
    pub apps: usize,
    /// Processor types in the platform.
    pub types: usize,
    /// Pulses per execution-time PMF.
    pub pulses: usize,
    /// Generator seed (platform and batch, unless overridden below).
    pub seed: u64,
    /// Platform seed override — tenants sharing it (and `types`) expand
    /// to bit-identical platforms regardless of their batch seeds.
    #[serde(default)]
    pub platform_seed: Option<u64>,
    /// Per-application seeds (must have length `apps` when present):
    /// application `i` is generated alone from `app_seeds[i]`, so equal
    /// seeds yield bit-identical applications across specs and tenants.
    #[serde(default)]
    pub app_seeds: Option<Vec<u64>>,
}

impl WorkloadSpec {
    /// The legacy single-seed recipe — no catalog fields.
    pub fn simple(apps: usize, types: usize, pulses: usize, seed: u64) -> Self {
        Self {
            apps,
            types,
            pulses,
            seed,
            platform_seed: None,
            app_seeds: None,
        }
    }

    /// Validates the bounds and expands the spec into concrete inputs.
    /// Deterministic: equal specs expand to bit-identical pairs.
    pub fn expand(&self) -> Result<(Batch, Platform)> {
        if self.apps == 0 || self.apps > MAX_APPS {
            return Err(ServeError::Protocol(format!(
                "spec.apps = {} out of [1, {MAX_APPS}]",
                self.apps
            )));
        }
        if self.types == 0 || self.types > MAX_TYPES {
            return Err(ServeError::Protocol(format!(
                "spec.types = {} out of [1, {MAX_TYPES}]",
                self.types
            )));
        }
        if self.pulses < 2 || self.pulses > MAX_PULSES {
            return Err(ServeError::Protocol(format!(
                "spec.pulses = {} out of [2, {MAX_PULSES}]",
                self.pulses
            )));
        }
        let platform = PlatformGenerator {
            num_types: self.types,
            ..PlatformGenerator::default()
        }
        .generate(self.platform_seed.unwrap_or(self.seed))?;
        let batch = match &self.app_seeds {
            None => BatchGenerator {
                num_apps: self.apps,
                pulses: self.pulses,
                ..BatchGenerator::default()
            }
            .generate(&platform, self.seed)?,
            Some(seeds) => {
                if seeds.len() != self.apps {
                    return Err(ServeError::Protocol(format!(
                        "spec.app_seeds has {} entries for {} apps",
                        seeds.len(),
                        self.apps
                    )));
                }
                let per_app = BatchGenerator {
                    num_apps: 1,
                    pulses: self.pulses,
                    ..BatchGenerator::default()
                };
                let mut apps = Vec::with_capacity(seeds.len());
                for &s in seeds {
                    let one = per_app.generate(&platform, s)?;
                    apps.push(one.apps()[0].clone());
                }
                Batch::new(apps)
            }
        };
        Ok((batch, platform))
    }
}

/// A disruption injected into a tenant's live workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TenantEvent {
    /// A processor type is lost outright.
    Crash {
        /// Index of the lost type in the tenant's *current* platform.
        proc_type: usize,
    },
    /// One type's availability degrades (or recovers) by a factor.
    Degrade {
        /// Index of the affected type.
        proc_type: usize,
        /// Availability scale in `[0.05, 4]` (clamped into `(0, 1]`
        /// per level after scaling).
        factor: f64,
    },
    /// Every type's availability drifts by a common factor.
    Drift {
        /// Availability scale in `[0.05, 4]`.
        factor: f64,
    },
}

/// Domain check shared by `Degrade` and `Drift` factors.
fn check_factor(factor: f64) -> Result<()> {
    if !(0.05..=4.0).contains(&factor) {
        return Err(ServeError::Protocol(format!(
            "event factor {factor} out of [0.05, 4]"
        )));
    }
    Ok(())
}

/// Everything needed to re-create a tenant on a fresh server and land on
/// byte-identical engine tables: the original spec (provenance), the
/// *evolved* inputs bit-exactly, and the scheduling parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantSnapshot {
    /// Tenant identity (shard routing key).
    pub tenant: String,
    /// The spec of the most recent submission.
    pub spec: WorkloadSpec,
    /// Common deadline Δ.
    pub deadline: f64,
    /// Stage-I allocator name.
    pub allocator: String,
    /// φ₁ robustness threshold.
    pub threshold: f64,
    /// Current (post-event) batch, exact bits.
    pub batch: Batch,
    /// Current (post-event) platform, exact bits.
    pub platform: Platform,
    /// Events applied since the last submission.
    pub events_applied: u64,
}

/// A shard's live record of one tenant.
#[derive(Debug, Clone)]
pub(crate) struct TenantState {
    pub spec: WorkloadSpec,
    pub deadline: f64,
    pub allocator: String,
    pub threshold: f64,
    pub batch: Batch,
    pub platform: Platform,
    /// Input fingerprint of the engine currently serving this tenant —
    /// the `prev_key` a later incremental rebuild starts from.
    pub engine_key: u64,
    pub events_applied: u64,
}

impl TenantState {
    /// Captures the durable parts.
    pub fn snapshot(&self, tenant: &str) -> TenantSnapshot {
        TenantSnapshot {
            tenant: tenant.to_string(),
            spec: self.spec.clone(),
            deadline: self.deadline,
            allocator: self.allocator.clone(),
            threshold: self.threshold,
            batch: self.batch.clone(),
            platform: self.platform.clone(),
            events_applied: self.events_applied,
        }
    }

    /// Rebuilds the live record from a snapshot; the engine key is filled
    /// in by the shard once the engine is resident again.
    pub fn from_snapshot(s: &TenantSnapshot) -> Self {
        Self {
            spec: s.spec.clone(),
            deadline: s.deadline,
            allocator: s.allocator.clone(),
            threshold: s.threshold,
            batch: s.batch.clone(),
            platform: s.platform.clone(),
            engine_key: 0,
            events_applied: s.events_applied,
        }
    }

    /// Derives the post-event inputs plus the [`cdsf_ra::RebuildMap`]
    /// index correspondences (per new app / new type, the previous
    /// index). Pure — the state itself is updated only after the rebuild
    /// succeeds.
    #[allow(clippy::type_complexity)]
    pub fn apply_event(
        &self,
        event: &TenantEvent,
    ) -> Result<(Batch, Platform, Vec<Option<usize>>, Vec<Option<usize>>)> {
        match *event {
            TenantEvent::Crash { proc_type } => {
                let (batch, platform, types_map) =
                    remap::crashed(&self.batch, &self.platform, proc_type)?;
                let apps_map = (0..batch.len()).map(Some).collect();
                Ok((batch, platform, apps_map, types_map))
            }
            TenantEvent::Degrade { proc_type, factor } => {
                check_factor(factor)?;
                let platform = remap::degraded_platform(&self.platform, proc_type, factor)?;
                let (apps_map, types_map) =
                    remap::identity_maps(self.batch.len(), platform.num_types());
                Ok((self.batch.clone(), platform, apps_map, types_map))
            }
            TenantEvent::Drift { factor } => {
                check_factor(factor)?;
                let platform = remap::drifted_platform(&self.platform, factor)?;
                let (apps_map, types_map) =
                    remap::identity_maps(self.batch.len(), platform.num_types());
                Ok((self.batch.clone(), platform, apps_map, types_map))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic() {
        let spec = WorkloadSpec::simple(3, 2, 6, 99);
        let (b1, p1) = spec.expand().unwrap();
        let (b2, p2) = spec.expand().unwrap();
        assert_eq!(cdsf_ra::inputs_key(&b1, &p1), cdsf_ra::inputs_key(&b2, &p2));
    }

    #[test]
    fn expansion_rejects_out_of_bounds_specs() {
        for spec in [
            WorkloadSpec::simple(0, 2, 6, 1),
            WorkloadSpec::simple(3, 99, 6, 1),
            WorkloadSpec::simple(3, 2, 1, 1),
        ] {
            assert!(spec.expand().is_err(), "{spec:?}");
        }
    }

    #[test]
    fn snapshot_round_trips_bit_exactly_through_json() {
        let spec = WorkloadSpec::simple(2, 2, 5, 7);
        let (batch, platform) = spec.expand().unwrap();
        let state = TenantState {
            spec,
            deadline: 2_800.0,
            allocator: "sufferage".into(),
            threshold: 0.8,
            batch,
            platform,
            engine_key: 123,
            events_applied: 2,
        };
        let snap = state.snapshot("acme");
        let json = serde_json::to_string(&snap).unwrap();
        let back: TenantSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(
            cdsf_ra::inputs_key(&back.batch, &back.platform),
            cdsf_ra::inputs_key(&snap.batch, &snap.platform),
            "wire transport must preserve every input bit"
        );
        assert_eq!(back.events_applied, 2);
    }
}
