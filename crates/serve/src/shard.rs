//! Worker shards: single-threaded scheduling cores behind mpsc queues.
//!
//! Each shard owns its tenants and a bounded LRU [`EngineCache`]
//! outright — no locks, no shared state — so every operation on a shard
//! is a deterministic function of its request sequence. Tenants hash to
//! shards by FNV-1a of the tenant name, which keeps a tenant's requests
//! totally ordered without any cross-shard coordination.
//!
//! **Admission coalescing.** A shard drains its queue into an admission
//! batch (up to [`ServeConfig::drain_limit`] requests) and serves the
//! batch in arrival order against the shared cache. When several queued
//! requests need the same engine — same workload spec bits — the first
//! runs `build_parallel` once and the rest are served from the entry it
//! inserted; they are accounted as `coalesced`. Because the cache only
//! ever returns engines bit-identical to a fresh build (exact-input
//! verification, deterministic kernels), a coalesced request's reply is
//! bit-identical to the reply it would have received had it run its own
//! build serially — concurrency changes latency, never bytes.
//!
//! **Hot-path caches.** Two deterministic per-shard LRUs sit in front of
//! the engine cache: a *spec-expansion* cache (`WorkloadSpec → (inputs
//! key, batch, platform)`, skipping the generator run and the full-input
//! hash on repeat submissions) and an *allocation-result* cache
//! (`(engine key, deadline bits, allocator) → allocation + scores`,
//! skipping the allocator and evaluator entirely). Both are sound
//! bit-for-bit: spec expansion is a pure function of the spec, the
//! engine cache structurally verifies every hit, and every Stage-I
//! allocator is a deterministic function of the engine-key-identified
//! inputs — so a cached reply carries exactly the bytes a cold one
//! would. Eviction (`VecDeque` promote-to-front + truncate) is itself a
//! deterministic function of the request sequence.

use crate::error::{Result, ServeError};
use crate::protocol::{
    FallbackReason, FingerprintReply, InjectReply, InjectRequest, Request, Response, RestoreReply,
    RobustVerdict, ShardStats, SubmitReply, SubmitRequest, WireAssignment, DRAIN_DEPTH_BUCKETS,
};
use crate::tenant::{TenantSnapshot, TenantState, WorkloadSpec};
use cdsf_core::{CoreError, ImPolicy};
use cdsf_ra::robustness::evaluate_with_engine;
use cdsf_ra::{
    Allocation, CellStore, EngineCache, Lattice, LatticeScratch, LatticeSolution, MultiStartReport,
    Phi1Engine, RaError, RebuildMap, SimulatedAnnealing,
};
use cdsf_system::{Batch, Platform};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::{mpsc, Arc};

/// Service configuration, shared by every shard.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards (tenants hash across them).
    pub shards: usize,
    /// Engines resident per shard ([`EngineCache`] bound).
    pub cache_capacity: usize,
    /// Worker threads per engine build (the work-stealing pool width).
    pub build_threads: usize,
    /// Allocator when a `Submit` names none.
    pub default_allocator: String,
    /// φ₁ threshold when a `Submit` names none.
    pub phi1_threshold: f64,
    /// Most requests one admission batch may drain from the queue.
    pub drain_limit: usize,
    /// Cells resident in the service-wide content-addressed
    /// [`CellStore`] (shared by every shard's engine builds).
    pub cell_store_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            cache_capacity: 8,
            build_threads: cdsf_core::default_threads(),
            default_allocator: "sufferage".to_string(),
            phi1_threshold: 0.8,
            drain_limit: 128,
            cell_store_capacity: cdsf_ra::cell_store::DEFAULT_CELL_CAPACITY,
        }
    }
}

impl ServeConfig {
    /// Clamps the knobs into their sane domains.
    pub fn normalized(mut self) -> Self {
        self.shards = self.shards.max(1);
        self.cache_capacity = self.cache_capacity.max(1);
        self.build_threads = self.build_threads.max(1);
        self.drain_limit = self.drain_limit.max(1);
        self.cell_store_capacity = self.cell_store_capacity.max(1);
        self
    }
}

/// FNV-1a of a tenant name — the shard routing hash. Stable across runs
/// and platforms so a tenant always lands on the same shard.
pub fn shard_of(tenant: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// One sequence-numbered reply frame on a connection's reply lane.
#[derive(Debug)]
pub struct ConnFrame {
    /// Position in the connection's request order.
    pub seq: u64,
    /// The reply; the connection's writer thread serializes it into its
    /// retained buffer (keeping `Snapshot` serialization — and every
    /// other reply's — off the shard loop).
    pub resp: Response,
    /// The writer exits after writing this frame (`Bye`).
    pub last: bool,
}

/// Where a served request's reply goes.
pub enum ReplyTo {
    /// An in-process caller blocking on a channel ([`crate::Router`]'s
    /// synchronous path, tests, the stats poller).
    Sync(mpsc::Sender<Response>),
    /// A connection's pipelined reply lane: frames are re-sequenced and
    /// batch-flushed by the connection's writer thread.
    Framed {
        /// Position in the connection's request order.
        seq: u64,
        /// The connection's frame channel.
        tx: mpsc::Sender<ConnFrame>,
    },
}

impl ReplyTo {
    /// Delivers `resp`; a hung-up receiver just discards it.
    pub fn send(self, resp: Response) {
        match self {
            ReplyTo::Sync(tx) => {
                let _ = tx.send(resp);
            }
            ReplyTo::Framed { seq, tx } => {
                let _ = tx.send(ConnFrame {
                    seq,
                    resp,
                    last: false,
                });
            }
        }
    }
}

/// A message on a shard's queue.
pub enum ShardMsg {
    /// Serve one request; reply to the provided destination.
    Req(Request, ReplyTo),
    /// Report the shard's counters.
    Stats(mpsc::Sender<ShardStats>),
    /// Exit the shard loop.
    Stop,
}

/// A cached spec expansion: the inputs key plus the expanded pair, so a
/// repeat submission pays neither the generator run nor the full-input
/// FNV walk.
struct SpecEntry {
    spec: WorkloadSpec,
    key: u64,
    batch: Batch,
    platform: Platform,
}

/// A cached allocation outcome. Allocators are deterministic functions
/// of the engine (identified by `engine_key`) and the deadline, so the
/// stored reply fields are bit-identical to what a fresh run produces.
struct AllocEntry {
    engine_key: u64,
    deadline_bits: u64,
    allocator: String,
    assignments: Vec<WireAssignment>,
    per_app: Vec<f64>,
    expected_times: Vec<f64>,
    joint: f64,
    fallback: Option<FallbackReason>,
}

/// One shard's entire state. Public so tests (and the loadgen's in-process
/// mode) can drive a shard without sockets.
pub struct ShardCore {
    id: usize,
    cfg: ServeConfig,
    cache: EngineCache,
    tenants: BTreeMap<String, TenantState>,
    spec_cache: VecDeque<SpecEntry>,
    spec_cache_cap: usize,
    alloc_cache: VecDeque<AllocEntry>,
    alloc_cache_cap: usize,
    submits: u64,
    injects: u64,
    snapshots: u64,
    restores: u64,
    errors: u64,
    alloc_fallbacks: u64,
    alloc_fallbacks_infeasible: u64,
    alloc_fallbacks_infeasible_proven: u64,
    alloc_fallbacks_infeasible_heuristic: u64,
    alloc_fallbacks_other: u64,
    spec_cache_hits: u64,
    spec_cache_misses: u64,
    alloc_cache_hits: u64,
    alloc_cache_misses: u64,
    drain_depths: [u64; DRAIN_DEPTH_BUCKETS],
    sa_multistart_runs: u64,
    sa_restart_wins: Vec<u64>,
    coalesced: u64,
    builds: u64,
}

impl ShardCore {
    /// A fresh shard with an empty cache, no tenants, and its own
    /// private cell store. The server passes a shared store via
    /// [`ShardCore::with_store`] instead so cells intern service-wide.
    pub fn new(id: usize, cfg: ServeConfig) -> Self {
        let store = Arc::new(CellStore::new(cfg.clone().normalized().cell_store_capacity));
        Self::with_store(id, cfg, store)
    }

    /// A fresh shard whose engine builds resolve cells against `store`
    /// — the cross-shard sharing path used by [`crate::Server`].
    pub fn with_store(id: usize, cfg: ServeConfig, store: Arc<CellStore>) -> Self {
        let cfg = cfg.normalized();
        // The front caches are cheap per entry (a spec expansion is a few
        // KB, an allocation outcome a few hundred bytes), so they run 4×
        // deeper than the engine cache they shield.
        let front_cap = (cfg.cache_capacity * 4).max(8);
        Self {
            id,
            cache: EngineCache::with_capacity_and_store(cfg.cache_capacity, store),
            cfg,
            tenants: BTreeMap::new(),
            spec_cache: VecDeque::new(),
            spec_cache_cap: front_cap,
            alloc_cache: VecDeque::new(),
            alloc_cache_cap: front_cap,
            submits: 0,
            injects: 0,
            snapshots: 0,
            restores: 0,
            errors: 0,
            alloc_fallbacks: 0,
            alloc_fallbacks_infeasible: 0,
            alloc_fallbacks_infeasible_proven: 0,
            alloc_fallbacks_infeasible_heuristic: 0,
            alloc_fallbacks_other: 0,
            spec_cache_hits: 0,
            spec_cache_misses: 0,
            alloc_cache_hits: 0,
            alloc_cache_misses: 0,
            drain_depths: [0; DRAIN_DEPTH_BUCKETS],
            sa_multistart_runs: 0,
            sa_restart_wins: Vec::new(),
            coalesced: 0,
            builds: 0,
        }
    }

    /// Serves one request (an admission batch of one).
    pub fn handle(&mut self, req: &Request) -> Response {
        self.process_batch(std::slice::from_ref(req))
            .pop()
            .expect("one reply per request")
    }

    /// Serves an admission batch in arrival order, coalescing same-spec
    /// engine builds within the batch. Replies line up index-for-index
    /// with `reqs`.
    pub fn process_batch(&mut self, reqs: &[Request]) -> Vec<Response> {
        let mut keys_built: HashSet<u64> = HashSet::new();
        reqs.iter()
            .map(|req| self.serve_owned(req.clone(), &mut keys_built))
            .collect()
    }

    /// Serves one owned request within an admission batch whose
    /// coalescing state lives in `keys_built`. Owning the request lets
    /// the reply *move* the tenant id (and other strings) instead of
    /// cloning them — the shard loop's zero-clone path.
    pub fn serve_owned(&mut self, req: Request, keys_built: &mut HashSet<u64>) -> Response {
        match self.dispatch(req, keys_built) {
            Ok(resp) => resp,
            Err(e) => {
                self.errors += 1;
                Response::Error {
                    message: e.to_string(),
                }
            }
        }
    }

    fn dispatch(&mut self, req: Request, keys_built: &mut HashSet<u64>) -> Result<Response> {
        match req {
            Request::Submit(r) => self.submit(r, keys_built),
            Request::Inject(r) => self.inject(r, keys_built),
            Request::Snapshot { tenant } => self.snapshot(tenant),
            Request::Restore { snapshot } => self.restore(snapshot, keys_built),
            Request::Fingerprint { tenant } => self.fingerprint(tenant),
            Request::Stats | Request::Shutdown => Err(ServeError::Protocol(
                "control requests are handled by the router, not a shard".to_string(),
            )),
        }
    }

    /// Folds one engine-producing (or engine-finding) cache outcome into
    /// the admission counters.
    fn account(&mut self, key: u64, hit: bool, keys_built: &mut HashSet<u64>) {
        if hit {
            if keys_built.contains(&key) {
                self.coalesced += 1;
            }
        } else {
            self.builds += 1;
            keys_built.insert(key);
        }
    }

    /// Per-request fallback accounting — cached outcomes count too, so
    /// the rate keeps meaning "requests whose allocation fell back",
    /// independent of cache warmth.
    fn record_fallback(&mut self, fallback: Option<FallbackReason>) {
        let Some(reason) = fallback else { return };
        self.alloc_fallbacks += 1;
        match reason {
            FallbackReason::Infeasible { proven } => {
                self.alloc_fallbacks_infeasible += 1;
                if proven {
                    self.alloc_fallbacks_infeasible_proven += 1;
                } else {
                    self.alloc_fallbacks_infeasible_heuristic += 1;
                }
            }
            FallbackReason::Other => self.alloc_fallbacks_other += 1,
        }
    }

    fn record_sa(&mut self, report: &MultiStartReport) {
        self.sa_multistart_runs += 1;
        if self.sa_restart_wins.len() < report.restarts {
            self.sa_restart_wins.resize(report.restarts, 0);
        }
        self.sa_restart_wins[report.winner] += 1;
    }

    /// Ensures the front spec-cache entry expands `spec`, running the
    /// generator + input hash only on a miss.
    fn spec_to_front(&mut self, spec: &WorkloadSpec) -> Result<()> {
        match self.spec_cache.iter().position(|e| &e.spec == spec) {
            Some(pos) => {
                self.spec_cache_hits += 1;
                if pos > 0 {
                    let e = self.spec_cache.remove(pos).expect("position exists");
                    self.spec_cache.push_front(e);
                }
            }
            None => {
                self.spec_cache_misses += 1;
                let (batch, platform) = spec.expand()?;
                let key = cdsf_ra::inputs_key(&batch, &platform);
                self.spec_cache.push_front(SpecEntry {
                    spec: spec.clone(),
                    key,
                    batch,
                    platform,
                });
                self.spec_cache.truncate(self.spec_cache_cap);
            }
        }
        Ok(())
    }

    fn submit(&mut self, r: SubmitRequest, keys_built: &mut HashSet<u64>) -> Result<Response> {
        let SubmitRequest {
            tenant,
            spec,
            deadline,
            allocator,
            threshold,
            qos,
        } = r;
        if !(deadline > 0.0) || !deadline.is_finite() {
            return Err(ServeError::Protocol(format!(
                "deadline {deadline} must be finite and positive"
            )));
        }
        let threshold = threshold.unwrap_or(self.cfg.phi1_threshold);
        if !(threshold > 0.0) || threshold > 1.0 {
            return Err(ServeError::Protocol(format!(
                "threshold {threshold} out of (0, 1]"
            )));
        }
        let guaranteed = match qos.as_deref() {
            None | Some("probabilistic") => false,
            Some("guaranteed") => true,
            Some(other) => {
                return Err(ServeError::Protocol(format!(
                    "unknown qos tier `{other}` (expected `guaranteed` or `probabilistic`)"
                )))
            }
        };
        // The guaranteed tier is *defined* by the Γ-robust solver; it
        // overrides any requested allocator.
        let allocator_name = if guaranteed {
            "gamma-robust".to_string()
        } else {
            allocator.unwrap_or_else(|| self.cfg.default_allocator.clone())
        };
        let policy = resolve_policy(&allocator_name, &self.cfg)?;

        self.spec_to_front(&spec)?;
        let threads = self.cfg.build_threads;
        let entry = &self.spec_cache[0];
        let key = entry.key;
        let outcome = self
            .cache
            .get_or_build_keyed(key, &entry.batch, &entry.platform, threads)?;
        let hit = outcome.hit;

        let deadline_bits = deadline.to_bits();
        let cached_pos = self.alloc_cache.iter().position(|e| {
            e.engine_key == key && e.deadline_bits == deadline_bits && e.allocator == allocator_name
        });
        let mut sa_report = None;
        let (assignments, per_app, expected_times, joint, fallback) = match cached_pos {
            // Served start-to-finish from the result cache: no allocator,
            // no evaluator. (Promotion happens below, after the engine
            // borrow ends.)
            Some(pos) => {
                let e = &self.alloc_cache[pos];
                (
                    e.assignments.clone(),
                    e.per_app.clone(),
                    e.expected_times.clone(),
                    e.joint,
                    e.fallback,
                )
            }
            None => {
                let run = allocate_or_fallback(
                    &policy,
                    &entry.batch,
                    &entry.platform,
                    outcome.engine,
                    deadline,
                    threads,
                )?;
                let report = evaluate_with_engine(
                    outcome.engine,
                    &entry.batch,
                    &entry.platform,
                    &run.alloc,
                    deadline,
                )?;
                sa_report = run.sa;
                (
                    wire_assignments(&run.alloc),
                    report.per_app,
                    report.expected_times,
                    report.joint,
                    run.fallback,
                )
            }
        };
        // Engine borrow over; fold the outcome into the caches/counters.
        match cached_pos {
            Some(pos) => {
                self.alloc_cache_hits += 1;
                if pos > 0 {
                    let e = self.alloc_cache.remove(pos).expect("position exists");
                    self.alloc_cache.push_front(e);
                }
            }
            None => {
                self.alloc_cache_misses += 1;
                self.alloc_cache.push_front(AllocEntry {
                    engine_key: key,
                    deadline_bits,
                    allocator: allocator_name.clone(),
                    assignments: assignments.clone(),
                    per_app: per_app.clone(),
                    expected_times: expected_times.clone(),
                    joint,
                    fallback,
                });
                self.alloc_cache.truncate(self.alloc_cache_cap);
            }
        }
        if let Some(sa) = sa_report {
            self.record_sa(&sa);
        }
        self.record_fallback(fallback);
        self.account(key, hit, keys_built);

        // A successful Γ-robust run *is* the guaranteed-tier certificate
        // (infeasible guaranteed requests error out above).
        let guaranteed_tier = (allocator_name == "gamma-robust").then_some(true);
        let entry = &self.spec_cache[0];
        match self.tenants.get_mut(&tenant) {
            Some(state) => {
                // Re-submission of inputs the state already holds: skip
                // the batch/platform clones, just refresh the parameters.
                if state.engine_key != key || state.spec != spec || state.events_applied != 0 {
                    state.batch = entry.batch.clone();
                    state.platform = entry.platform.clone();
                }
                state.spec = spec;
                state.deadline = deadline;
                state.allocator = allocator_name;
                state.threshold = threshold;
                state.engine_key = key;
                state.events_applied = 0;
            }
            None => {
                self.tenants.insert(
                    tenant.clone(),
                    TenantState {
                        spec,
                        deadline,
                        allocator: allocator_name,
                        threshold,
                        batch: entry.batch.clone(),
                        platform: entry.platform.clone(),
                        engine_key: key,
                        events_applied: 0,
                    },
                );
            }
        }
        self.submits += 1;
        Ok(Response::Submit(SubmitReply {
            tenant,
            engine_key: key,
            assignments,
            per_app_phi1: per_app,
            expected_times,
            verdict: RobustVerdict {
                phi1: joint,
                threshold,
                robust: joint >= threshold,
                guaranteed_tier,
            },
        }))
    }

    fn inject(&mut self, r: InjectRequest, keys_built: &mut HashSet<u64>) -> Result<Response> {
        let InjectRequest { tenant, event } = r;
        let state = self
            .tenants
            .get(&tenant)
            .ok_or_else(|| unknown_tenant(&tenant))?;
        let (batch, platform, apps_map, types_map) = state.apply_event(&event)?;
        let allocator_name = state.allocator.clone();
        let policy = resolve_policy(&allocator_name, &self.cfg)?;
        let (prev_key, deadline, threshold) = (state.engine_key, state.deadline, state.threshold);

        let threads = self.cfg.build_threads;
        let outcome = self.cache.rebuild_keyed(
            prev_key,
            &batch,
            &platform,
            RebuildMap {
                apps: &apps_map,
                types: &types_map,
            },
            threads,
        )?;
        let (key, hit, reused) = (outcome.key, outcome.hit, outcome.reused_cells);
        let deadline_bits = deadline.to_bits();
        let cached_pos = self.alloc_cache.iter().position(|e| {
            e.engine_key == key && e.deadline_bits == deadline_bits && e.allocator == allocator_name
        });
        let mut sa_report = None;
        let (assignments, per_app, expected_times, joint, fallback) = match cached_pos {
            Some(pos) => {
                let e = &self.alloc_cache[pos];
                (
                    e.assignments.clone(),
                    e.per_app.clone(),
                    e.expected_times.clone(),
                    e.joint,
                    e.fallback,
                )
            }
            None => {
                let run = allocate_or_fallback(
                    &policy,
                    &batch,
                    &platform,
                    outcome.engine,
                    deadline,
                    threads,
                )?;
                let report =
                    evaluate_with_engine(outcome.engine, &batch, &platform, &run.alloc, deadline)?;
                sa_report = run.sa;
                (
                    wire_assignments(&run.alloc),
                    report.per_app,
                    report.expected_times,
                    report.joint,
                    run.fallback,
                )
            }
        };
        match cached_pos {
            Some(pos) => {
                self.alloc_cache_hits += 1;
                if pos > 0 {
                    let e = self.alloc_cache.remove(pos).expect("position exists");
                    self.alloc_cache.push_front(e);
                }
            }
            None => {
                self.alloc_cache_misses += 1;
                self.alloc_cache.push_front(AllocEntry {
                    engine_key: key,
                    deadline_bits,
                    allocator: allocator_name.clone(),
                    assignments: assignments.clone(),
                    per_app: per_app.clone(),
                    expected_times,
                    joint,
                    fallback,
                });
                self.alloc_cache.truncate(self.alloc_cache_cap);
            }
        }
        if let Some(sa) = sa_report {
            self.record_sa(&sa);
        }
        self.record_fallback(fallback);
        self.account(key, hit, keys_built);

        let state = self.tenants.get_mut(&tenant).expect("checked above");
        state.batch = batch;
        state.platform = platform;
        state.engine_key = key;
        state.events_applied += 1;
        self.injects += 1;
        Ok(Response::Inject(InjectReply {
            tenant,
            engine_key: key,
            reused_cells: reused as u64,
            assignments,
            per_app_phi1: per_app,
            verdict: RobustVerdict {
                phi1: joint,
                threshold,
                robust: joint >= threshold,
                // A guaranteed tenant's reactive remap re-proves the
                // worst case or errors above, like its submit did.
                guaranteed_tier: (allocator_name == "gamma-robust").then_some(true),
            },
        }))
    }

    fn snapshot(&mut self, tenant: String) -> Result<Response> {
        let state = self
            .tenants
            .get(&tenant)
            .ok_or_else(|| unknown_tenant(&tenant))?;
        // The shard only clones the state here (cheap relative to JSON);
        // the expensive serialization of this reply happens on the
        // connection's writer thread, off the shard loop.
        let snapshot = state.snapshot(&tenant);
        self.snapshots += 1;
        Ok(Response::Snapshot { snapshot })
    }

    fn restore(
        &mut self,
        snapshot: TenantSnapshot,
        keys_built: &mut HashSet<u64>,
    ) -> Result<Response> {
        let mut state = TenantState::from_snapshot(&snapshot);
        let threads = self.cfg.build_threads;
        let outcome = self
            .cache
            .get_or_build(&state.batch, &state.platform, threads)?;
        let (key, hit) = (outcome.key, outcome.hit);
        let fingerprint = outcome.engine.table_fingerprint();
        self.account(key, hit, keys_built);
        state.engine_key = key;
        let tenant = snapshot.tenant;
        self.tenants.insert(tenant.clone(), state);
        self.restores += 1;
        Ok(Response::Restored(RestoreReply {
            tenant,
            engine_key: key,
            fingerprint,
        }))
    }

    fn fingerprint(&mut self, tenant: String) -> Result<Response> {
        let state = self
            .tenants
            .get(&tenant)
            .ok_or_else(|| unknown_tenant(&tenant))?;
        let key = state.engine_key;
        let fingerprint = match self.cache.peek(key) {
            Some(engine) => engine.table_fingerprint(),
            // Evicted: rebuild from the tenant's stored inputs. The build
            // is deterministic, so the digest matches the evicted engine's.
            None => {
                let (batch, platform) = (state.batch.clone(), state.platform.clone());
                let threads = self.cfg.build_threads;
                self.cache
                    .get_or_build(&batch, &platform, threads)?
                    .engine
                    .table_fingerprint()
            }
        };
        Ok(Response::Fingerprint(FingerprintReply {
            tenant,
            engine_key: key,
            fingerprint,
        }))
    }

    /// Buckets one admission batch's drain depth into the log₂ histogram.
    pub fn record_drain_depth(&mut self, depth: usize) {
        if depth == 0 {
            return;
        }
        let bucket = (usize::BITS - 1 - depth.leading_zeros()) as usize;
        self.drain_depths[bucket.min(DRAIN_DEPTH_BUCKETS - 1)] += 1;
    }

    /// The shard's counters, cache and pool telemetry included.
    pub fn stats(&self) -> ShardStats {
        let pool = self.cache.pool_totals();
        ShardStats {
            shard: Some(self.id as u64),
            tenants: self.tenants.len() as u64,
            submits: self.submits,
            injects: self.injects,
            snapshots: self.snapshots,
            restores: self.restores,
            errors: self.errors,
            alloc_fallbacks: self.alloc_fallbacks,
            alloc_fallbacks_infeasible: self.alloc_fallbacks_infeasible,
            alloc_fallbacks_infeasible_proven: self.alloc_fallbacks_infeasible_proven,
            alloc_fallbacks_infeasible_heuristic: self.alloc_fallbacks_infeasible_heuristic,
            alloc_fallbacks_other: self.alloc_fallbacks_other,
            spec_cache_hits: self.spec_cache_hits,
            spec_cache_misses: self.spec_cache_misses,
            alloc_cache_hits: self.alloc_cache_hits,
            alloc_cache_misses: self.alloc_cache_misses,
            drain_depths: self.drain_depths.to_vec(),
            sa_multistart_runs: self.sa_multistart_runs,
            sa_restart_wins: self.sa_restart_wins.clone(),
            cache_len: self.cache.len() as u64,
            cache_capacity: self.cache.capacity() as u64,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_rebuilds: self.cache.rebuilds(),
            coalesced: self.coalesced,
            builds: self.builds,
            pool_runs: pool.runs,
            pool_tasks_run: pool.tasks_run,
            pool_chunks_stolen: pool.chunks_stolen,
        }
    }
}

fn unknown_tenant(tenant: &str) -> ServeError {
    ServeError::Protocol(format!("unknown tenant `{tenant}` (submit first)"))
}

/// How a shard runs a named allocator.
enum ShardPolicy {
    /// The framework's policy dispatch, unchanged.
    Standard(ImPolicy),
    /// `sa`/`annealing` resolve to the pooled multi-start annealer with
    /// the shard's configured pool width — same seeds, same in-order
    /// argmax, so the allocation (and reply bytes) are identical to the
    /// serial annealer for every width.
    PooledSa(SimulatedAnnealing),
}

fn resolve_policy(name: &str, cfg: &ServeConfig) -> Result<ShardPolicy> {
    match name {
        "sa" | "annealing" => Ok(ShardPolicy::PooledSa(SimulatedAnnealing {
            threads: cfg.build_threads,
            ..SimulatedAnnealing::default()
        })),
        _ => ImPolicy::by_name(name)
            .map(ShardPolicy::Standard)
            .ok_or_else(|| ServeError::Protocol(format!("unknown allocator `{name}`"))),
    }
}

/// One allocation run's outcome: the allocation, whether (and why) it
/// fell back, and the pooled-SA telemetry when that path ran.
struct AllocRun {
    alloc: Allocation,
    fallback: Option<FallbackReason>,
    sa: Option<MultiStartReport>,
}

/// Whether a Stage-I failure is an infeasibility claim — the class of
/// failure the exact lattice solver can adjudicate.
fn is_infeasible_claim(e: &CoreError) -> bool {
    matches!(e, CoreError::Ra(RaError::NoFeasibleAllocation))
}

/// Runs the requested policy. A Γ-robust infeasibility *proof*
/// propagates as an error (the message carries the tightest feasible
/// deadline for the client to retry with). A heuristic's
/// `NoFeasibleAllocation` claim is adjudicated by the exact lattice
/// solver instead of blindly falling back to equal-share: if a feasible
/// allocation exists the solver's optimum is served (`proven: false` —
/// the heuristic merely painted itself into a corner); if none does,
/// the solver's best-effort minimum-expected-time allocation is served
/// under a proof (`proven: true`). Other Stage-I failures keep the
/// deterministic equal-share fallback; the original error propagates
/// when even that cannot pack the batch.
fn allocate_or_fallback(
    policy: &ShardPolicy,
    batch: &Batch,
    platform: &Platform,
    engine: &Phi1Engine,
    deadline: f64,
    threads: usize,
) -> Result<AllocRun> {
    let primary: std::result::Result<AllocRun, (String, bool)> = match policy {
        ShardPolicy::Standard(p) => match p.allocate_with_engine(batch, platform, engine, deadline)
        {
            Ok(alloc) => Ok(AllocRun {
                alloc,
                fallback: None,
                sa: None,
            }),
            // The guaranteed tier's rejection path: no fallback softens
            // a worst-case infeasibility proof.
            Err(CoreError::Ra(e @ RaError::ProvenInfeasible { .. })) => {
                return Err(ServeError::Framework(e.to_string()))
            }
            Err(e) => Err((e.to_string(), is_infeasible_claim(&e))),
        },
        ShardPolicy::PooledSa(sa) => match sa.allocate_multi_start(platform, engine, deadline) {
            Ok((alloc, report)) => Ok(AllocRun {
                alloc,
                fallback: None,
                sa: Some(report),
            }),
            Err(e) => {
                let infeasible = matches!(e, RaError::NoFeasibleAllocation);
                Err((e.to_string(), infeasible))
            }
        },
    };
    let (message, claims_infeasible) = match primary {
        Ok(run) => return Ok(run),
        Err(pair) => pair,
    };
    if matches!(policy, ShardPolicy::Standard(ImPolicy::Naive)) {
        return Err(ServeError::Framework(message));
    }
    if claims_infeasible {
        let lattice = Lattice { threads };
        let mut scratch = LatticeScratch::new();
        if let Ok((solution, _)) =
            lattice.solve_with_engine(platform, engine, deadline, &mut scratch)
        {
            let proven = matches!(solution, LatticeSolution::Infeasible { .. });
            return Ok(AllocRun {
                alloc: solution.allocation().clone(),
                fallback: Some(FallbackReason::Infeasible { proven }),
                sa: None,
            });
        }
        // Even the exact solver has no packing (capacity infeasibility).
        // Equal-share allocates within the same lattice, so it cannot
        // succeed either — propagate the primary failure.
        return Err(ServeError::Framework(message));
    }
    match ImPolicy::Naive.allocate_with_engine(batch, platform, engine, deadline) {
        Ok(alloc) => Ok(AllocRun {
            alloc,
            fallback: Some(FallbackReason::Other),
            sa: None,
        }),
        Err(_) => Err(ServeError::Framework(message)),
    }
}

fn wire_assignments(alloc: &Allocation) -> Vec<WireAssignment> {
    alloc
        .assignments()
        .iter()
        .map(|a| WireAssignment {
            proc_type: a.proc_type.0,
            procs: a.procs,
        })
        .collect()
}

/// The shard thread loop: block for one message, drain the queue into an
/// admission batch (stopping at [`ServeConfig::drain_limit`] or a control
/// message), serve it in arrival order — each reply leaves for its
/// connection's writer the moment it is computed — then handle the
/// control message. The admission arena and the per-batch coalescing set
/// are reused across batches, so a warm shard loop allocates nothing for
/// the batching itself. Exits on [`ShardMsg::Stop`] or a closed queue.
pub fn run_shard(core: &mut ShardCore, rx: &mpsc::Receiver<ShardMsg>) {
    let mut admitted: Vec<(Request, ReplyTo)> = Vec::new();
    let mut keys_built: HashSet<u64> = HashSet::new();
    loop {
        let Ok(first) = rx.recv() else { break };
        let mut control = None;
        match first {
            ShardMsg::Req(req, to) => admitted.push((req, to)),
            other => control = Some(other),
        }
        if control.is_none() {
            while admitted.len() < core.cfg.drain_limit {
                match rx.try_recv() {
                    Ok(ShardMsg::Req(req, to)) => admitted.push((req, to)),
                    Ok(other) => {
                        control = Some(other);
                        break;
                    }
                    Err(_) => break,
                }
            }
        }
        if !admitted.is_empty() {
            core.record_drain_depth(admitted.len());
            keys_built.clear();
            for (req, to) in admitted.drain(..) {
                let reply = core.serve_owned(req, &mut keys_built);
                to.send(reply);
            }
        }
        match control {
            Some(ShardMsg::Stats(tx)) => {
                let _ = tx.send(core.stats());
            }
            Some(ShardMsg::Stop) => break,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::{TenantEvent, WorkloadSpec};

    fn spec(seed: u64) -> WorkloadSpec {
        WorkloadSpec::simple(3, 2, 6, seed)
    }

    fn submit(tenant: &str, seed: u64) -> Request {
        Request::Submit(SubmitRequest {
            tenant: tenant.to_string(),
            spec: spec(seed),
            deadline: 2_800.0,
            allocator: None,
            threshold: None,
            qos: None,
        })
    }

    fn test_cfg() -> ServeConfig {
        ServeConfig {
            build_threads: 2,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for name in ["acme", "globex", "initech", "umbrella"] {
                let s = shard_of(name, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(name, shards));
            }
        }
    }

    #[test]
    fn submit_then_inject_then_fingerprint() {
        let mut core = ShardCore::new(0, test_cfg());
        let resp = core.handle(&submit("acme", 7));
        let Response::Submit(reply) = resp else {
            panic!("expected submit reply, got {resp:?}");
        };
        assert_eq!(reply.assignments.len(), 3);
        assert_eq!(reply.per_app_phi1.len(), 3);
        assert!((0.0..=1.0).contains(&reply.verdict.phi1));

        let resp = core.handle(&Request::Inject(crate::protocol::InjectRequest {
            tenant: "acme".to_string(),
            event: TenantEvent::Degrade {
                proc_type: 0,
                factor: 0.5,
            },
        }));
        let Response::Inject(inj) = resp else {
            panic!("expected inject reply, got {resp:?}");
        };
        assert_ne!(inj.engine_key, reply.engine_key, "inputs changed");
        assert!(
            inj.reused_cells > 0,
            "degrading one type keeps the other's cells"
        );

        let resp = core.handle(&Request::Fingerprint {
            tenant: "acme".to_string(),
        });
        let Response::Fingerprint(fp) = resp else {
            panic!("expected fingerprint reply, got {resp:?}");
        };
        assert_eq!(fp.engine_key, inj.engine_key);

        let stats = core.stats();
        assert_eq!(stats.submits, 1);
        assert_eq!(stats.injects, 1);
        assert_eq!(stats.tenants, 1);
        assert_eq!(stats.cache_rebuilds, 1);
    }

    #[test]
    fn same_spec_submits_coalesce_within_a_batch() {
        let mut core = ShardCore::new(0, test_cfg());
        let reqs: Vec<Request> = (0..4).map(|i| submit(&format!("tenant-{i}"), 42)).collect();
        let replies = core.process_batch(&reqs);
        assert_eq!(replies.len(), 4);
        let keys: Vec<u64> = replies
            .iter()
            .map(|r| match r {
                Response::Submit(s) => s.engine_key,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert!(
            keys.windows(2).all(|w| w[0] == w[1]),
            "one engine serves all"
        );
        let stats = core.stats();
        assert_eq!(stats.builds, 1, "one build for four same-spec submits");
        assert_eq!(stats.coalesced, 3);
        assert!((core.stats().coalescing_factor() - 4.0).abs() < 1e-12);
        // The front caches shielded the repeats: one expansion, one
        // allocator run, three hits each.
        assert_eq!(stats.spec_cache_misses, 1);
        assert_eq!(stats.spec_cache_hits, 3);
        assert_eq!(stats.alloc_cache_misses, 1);
        assert_eq!(stats.alloc_cache_hits, 3);
    }

    #[test]
    fn coalesced_reply_is_bit_identical_to_serial() {
        let reqs: Vec<Request> = (0..3).map(|i| submit(&format!("t{i}"), 9)).collect();
        // Serial: every request in its own admission batch.
        let mut serial = ShardCore::new(0, test_cfg());
        let serial_replies: Vec<Response> = reqs.iter().map(|r| serial.handle(r)).collect();
        // Coalesced: all in one batch.
        let mut batched = ShardCore::new(0, test_cfg());
        let batched_replies = batched.process_batch(&reqs);
        for (a, b) in serial_replies.iter().zip(&batched_replies) {
            let (Response::Submit(a), Response::Submit(b)) = (a, b) else {
                panic!("unexpected reply shape");
            };
            assert_eq!(a.engine_key, b.engine_key);
            for (x, y) in a.per_app_phi1.iter().zip(&b.per_app_phi1) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in a.expected_times.iter().zip(&b.expected_times) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(a.verdict.phi1.to_bits(), b.verdict.phi1.to_bits());
            assert_eq!(a.assignments, b.assignments);
        }
    }

    #[test]
    fn warm_cached_reply_is_bit_identical_to_cold() {
        // The spec-expansion and allocation-result caches must be
        // invisible in the bytes: the same submit served cold (all
        // misses) and warm (all hits) produces identical replies.
        let mut core = ShardCore::new(0, test_cfg());
        let req = submit("acme", 1_234);
        let cold = core.handle(&req);
        let warm = core.handle(&req);
        let warm2 = core.handle(&req);
        let cold_bytes = serde_json::to_string(&cold).unwrap();
        assert_eq!(cold_bytes, serde_json::to_string(&warm).unwrap());
        assert_eq!(cold_bytes, serde_json::to_string(&warm2).unwrap());
        let stats = core.stats();
        assert_eq!(stats.spec_cache_misses, 1);
        assert_eq!(stats.alloc_cache_misses, 1);
        assert_eq!(stats.alloc_cache_hits, 2);
    }

    #[test]
    fn fallback_is_a_function_of_the_spec_not_the_shard() {
        // Satellite: the committed bench shows shard 0 with 949 fallbacks
        // vs shard 1 with 3 — that skew is tenant routing (which shard
        // *sees* the fallback-y spec), not shard-dependent behavior.
        // Serve the same requests on shards with different ids: replies
        // and fallback counters must be identical.
        let reqs: Vec<Request> = (0..24)
            .flat_map(|i| {
                vec![
                    submit(&format!("tenant-{i}"), 40 + (i % 6) as u64),
                    Request::Inject(crate::protocol::InjectRequest {
                        tenant: format!("tenant-{i}"),
                        event: TenantEvent::Degrade {
                            proc_type: 0,
                            factor: 0.5 + 0.01 * (i % 5) as f64,
                        },
                    }),
                ]
            })
            .collect();
        let mut shard0 = ShardCore::new(0, test_cfg());
        let mut shard7 = ShardCore::new(7, test_cfg());
        let replies0 = shard0.process_batch(&reqs);
        let replies7 = shard7.process_batch(&reqs);
        assert_eq!(
            serde_json::to_string(&replies0).unwrap(),
            serde_json::to_string(&replies7).unwrap(),
            "shard id leaked into replies"
        );
        let (s0, s7) = (shard0.stats(), shard7.stats());
        assert_eq!(s0.alloc_fallbacks, s7.alloc_fallbacks);
        assert_eq!(s0.alloc_fallbacks_infeasible, s7.alloc_fallbacks_infeasible);
        assert_eq!(
            s0.alloc_fallbacks_infeasible_proven,
            s7.alloc_fallbacks_infeasible_proven
        );
        assert_eq!(s0.alloc_fallbacks_other, s7.alloc_fallbacks_other);
        // Every fallback is accounted to exactly one reason, and every
        // infeasibility claim is adjudicated one way or the other.
        assert_eq!(
            s0.alloc_fallbacks,
            s0.alloc_fallbacks_infeasible + s0.alloc_fallbacks_other
        );
        assert_eq!(
            s0.alloc_fallbacks_infeasible,
            s0.alloc_fallbacks_infeasible_proven + s0.alloc_fallbacks_infeasible_heuristic
        );
    }

    #[test]
    fn guaranteed_qos_stamps_tier_or_rejects_with_tightest_deadline() {
        let mut core = ShardCore::new(0, test_cfg());
        // A generous deadline: the Γ-robust solver certifies positive
        // worst-case φ₁ and the reply carries the tier stamp.
        let resp = core.handle(&Request::Submit(SubmitRequest {
            tenant: "acme".to_string(),
            spec: spec(7),
            deadline: 1.0e9,
            allocator: None,
            threshold: None,
            qos: Some("guaranteed".to_string()),
        }));
        let Response::Submit(reply) = resp else {
            panic!("expected submit reply, got {resp:?}");
        };
        assert_eq!(reply.verdict.guaranteed_tier, Some(true));
        assert!(reply.verdict.phi1 > 0.0);
        // A hopeless deadline: rejected with the infeasibility proof —
        // the tightest feasible deadline — never served best-effort.
        let resp = core.handle(&Request::Submit(SubmitRequest {
            tenant: "acme".to_string(),
            spec: spec(7),
            deadline: 1.0e-6,
            allocator: None,
            threshold: None,
            qos: Some("guaranteed".to_string()),
        }));
        let Response::Error { message } = resp else {
            panic!("expected rejection, got {resp:?}");
        };
        assert!(message.contains("tightest"), "{message}");
        assert_eq!(
            core.stats().alloc_fallbacks,
            0,
            "rejections never fall back"
        );
        // Unknown tiers are protocol errors.
        let resp = core.handle(&Request::Submit(SubmitRequest {
            tenant: "acme".to_string(),
            spec: spec(7),
            deadline: 2_800.0,
            allocator: None,
            threshold: None,
            qos: Some("platinum".to_string()),
        }));
        let Response::Error { message } = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert!(message.contains("qos"), "{message}");
    }

    #[test]
    fn probabilistic_qos_is_the_default_tier() {
        // `qos: probabilistic` must be byte-identical to omitting it.
        let mut a = ShardCore::new(0, test_cfg());
        let mut b = ShardCore::new(0, test_cfg());
        let explicit = b.handle(&Request::Submit(SubmitRequest {
            tenant: "acme".to_string(),
            spec: spec(5),
            deadline: 2_800.0,
            allocator: None,
            threshold: None,
            qos: Some("probabilistic".to_string()),
        }));
        let implicit = a.handle(&submit("acme", 5));
        assert_eq!(
            serde_json::to_string(&implicit).unwrap(),
            serde_json::to_string(&explicit).unwrap()
        );
    }

    #[test]
    fn infeasible_claims_are_adjudicated_by_the_exact_solver() {
        // A deadline no allocation can meet: the heuristic's fallback is
        // served from the lattice's best-effort optimum under a *proof*,
        // and the proven counter (not the heuristic one) records it.
        let mut core = ShardCore::new(0, test_cfg());
        let resp = core.handle(&Request::Submit(SubmitRequest {
            tenant: "acme".to_string(),
            spec: spec(7),
            deadline: 1.0e-6,
            allocator: Some("greedy-min-time".to_string()),
            threshold: None,
            qos: None,
        }));
        let stats = core.stats();
        if stats.alloc_fallbacks_infeasible > 0 {
            let Response::Submit(reply) = resp else {
                panic!("probabilistic tier still serves best-effort, got {resp:?}");
            };
            assert_eq!(reply.verdict.phi1, 0.0);
            assert_eq!(stats.alloc_fallbacks_infeasible_proven, 1);
            assert_eq!(stats.alloc_fallbacks_infeasible_heuristic, 0);
        } else {
            // The heuristic allocated without erroring; nothing to prove.
            assert!(matches!(resp, Response::Submit(_)));
        }
    }

    #[test]
    fn pooled_sa_allocator_serves_and_reports_wins() {
        let mut core = ShardCore::new(0, test_cfg());
        let resp = core.handle(&Request::Submit(SubmitRequest {
            tenant: "acme".to_string(),
            spec: spec(3),
            deadline: 2_800.0,
            allocator: Some("sa".to_string()),
            threshold: None,
            qos: None,
        }));
        let Response::Submit(reply) = resp else {
            panic!("expected submit reply, got {resp:?}");
        };
        assert_eq!(reply.assignments.len(), 3);
        let stats = core.stats();
        assert_eq!(stats.sa_multistart_runs, 1);
        assert_eq!(stats.sa_restart_wins.iter().sum::<u64>(), 1);
        // A warm repeat is served from the result cache — no second run.
        let warm = core.handle(&Request::Submit(SubmitRequest {
            tenant: "acme".to_string(),
            spec: spec(3),
            deadline: 2_800.0,
            allocator: Some("sa".to_string()),
            threshold: None,
            qos: None,
        }));
        assert_eq!(
            serde_json::to_string(&Response::Submit(reply)).unwrap(),
            serde_json::to_string(&warm).unwrap()
        );
        assert_eq!(core.stats().sa_multistart_runs, 1);
    }

    #[test]
    fn drain_depths_land_in_log2_buckets() {
        let mut core = ShardCore::new(0, test_cfg());
        for depth in [1, 2, 3, 4, 7, 8, 127, 128, 4096] {
            core.record_drain_depth(depth);
        }
        assert_eq!(core.stats().drain_depths, vec![1, 2, 2, 1, 0, 0, 1, 2]);
    }

    #[test]
    fn snapshot_restore_round_trip_is_byte_identical() {
        let mut a = ShardCore::new(0, test_cfg());
        a.handle(&submit("acme", 5));
        a.handle(&Request::Inject(crate::protocol::InjectRequest {
            tenant: "acme".to_string(),
            event: TenantEvent::Drift { factor: 0.8 },
        }));
        let Response::Snapshot { snapshot } = a.handle(&Request::Snapshot {
            tenant: "acme".to_string(),
        }) else {
            panic!("expected snapshot");
        };
        let Response::Fingerprint(before) = a.handle(&Request::Fingerprint {
            tenant: "acme".to_string(),
        }) else {
            panic!("expected fingerprint");
        };

        // "Crash": a brand-new shard restores from the snapshot (via JSON,
        // as the wire would carry it).
        let json = serde_json::to_string(&snapshot).unwrap();
        let snapshot: TenantSnapshot = serde_json::from_str(&json).unwrap();
        let mut b = ShardCore::new(0, test_cfg());
        let Response::Restored(rest) = b.handle(&Request::Restore { snapshot }) else {
            panic!("expected restore reply");
        };
        assert_eq!(rest.engine_key, before.engine_key);
        assert_eq!(
            rest.fingerprint, before.fingerprint,
            "tables byte-identical"
        );
    }

    #[test]
    fn unknown_tenant_and_allocator_are_protocol_errors() {
        let mut core = ShardCore::new(0, test_cfg());
        let resp = core.handle(&Request::Inject(crate::protocol::InjectRequest {
            tenant: "ghost".to_string(),
            event: TenantEvent::Drift { factor: 0.9 },
        }));
        assert!(matches!(resp, Response::Error { .. }));
        let resp = core.handle(&Request::Submit(SubmitRequest {
            tenant: "acme".to_string(),
            spec: spec(1),
            deadline: 2_800.0,
            allocator: Some("no-such-policy".to_string()),
            threshold: None,
            qos: None,
        }));
        assert!(matches!(resp, Response::Error { .. }));
        assert_eq!(core.stats().errors, 2);
    }
}
