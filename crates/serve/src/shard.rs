//! Worker shards: single-threaded scheduling cores behind mpsc queues.
//!
//! Each shard owns its tenants and a bounded LRU [`EngineCache`]
//! outright — no locks, no shared state — so every operation on a shard
//! is a deterministic function of its request sequence. Tenants hash to
//! shards by FNV-1a of the tenant name, which keeps a tenant's requests
//! totally ordered without any cross-shard coordination.
//!
//! **Admission coalescing.** A shard drains its queue into an admission
//! batch (up to [`ServeConfig::drain_limit`] requests) and serves the
//! batch in arrival order against the shared cache. When several queued
//! requests need the same engine — same workload spec bits — the first
//! runs `build_parallel` once and the rest are served from the entry it
//! inserted; they are accounted as `coalesced`. Because the cache only
//! ever returns engines bit-identical to a fresh build (exact-input
//! verification, deterministic kernels), a coalesced request's reply is
//! bit-identical to the reply it would have received had it run its own
//! build serially — concurrency changes latency, never bytes.

use crate::error::{Result, ServeError};
use crate::protocol::{
    FingerprintReply, InjectReply, Request, Response, RestoreReply, RobustVerdict, ShardStats,
    SubmitReply, SubmitRequest, WireAssignment,
};
use crate::tenant::{TenantSnapshot, TenantState};
use cdsf_core::ImPolicy;
use cdsf_ra::robustness::evaluate_with_engine;
use cdsf_ra::{Allocation, EngineCache, Phi1Engine, RebuildMap};
use cdsf_system::{Batch, Platform};
use std::collections::{BTreeMap, HashSet};
use std::sync::mpsc;

/// Service configuration, shared by every shard.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards (tenants hash across them).
    pub shards: usize,
    /// Engines resident per shard ([`EngineCache`] bound).
    pub cache_capacity: usize,
    /// Worker threads per engine build (the work-stealing pool width).
    pub build_threads: usize,
    /// Allocator when a `Submit` names none.
    pub default_allocator: String,
    /// φ₁ threshold when a `Submit` names none.
    pub phi1_threshold: f64,
    /// Most requests one admission batch may drain from the queue.
    pub drain_limit: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            cache_capacity: 8,
            build_threads: cdsf_core::default_threads(),
            default_allocator: "sufferage".to_string(),
            phi1_threshold: 0.8,
            drain_limit: 128,
        }
    }
}

impl ServeConfig {
    /// Clamps the knobs into their sane domains.
    pub fn normalized(mut self) -> Self {
        self.shards = self.shards.max(1);
        self.cache_capacity = self.cache_capacity.max(1);
        self.build_threads = self.build_threads.max(1);
        self.drain_limit = self.drain_limit.max(1);
        self
    }
}

/// FNV-1a of a tenant name — the shard routing hash. Stable across runs
/// and platforms so a tenant always lands on the same shard.
pub fn shard_of(tenant: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// A message on a shard's queue.
pub enum ShardMsg {
    /// Serve one request; reply on the provided channel.
    Req(Request, mpsc::Sender<Response>),
    /// Report the shard's counters.
    Stats(mpsc::Sender<ShardStats>),
    /// Exit the shard loop.
    Stop,
}

/// One shard's entire state. Public so tests (and the loadgen's in-process
/// mode) can drive a shard without sockets.
pub struct ShardCore {
    id: usize,
    cfg: ServeConfig,
    cache: EngineCache,
    tenants: BTreeMap<String, TenantState>,
    submits: u64,
    injects: u64,
    snapshots: u64,
    restores: u64,
    errors: u64,
    alloc_fallbacks: u64,
    coalesced: u64,
    builds: u64,
}

impl ShardCore {
    /// A fresh shard with an empty cache and no tenants.
    pub fn new(id: usize, cfg: ServeConfig) -> Self {
        let cfg = cfg.normalized();
        Self {
            id,
            cache: EngineCache::with_capacity(cfg.cache_capacity),
            cfg,
            tenants: BTreeMap::new(),
            submits: 0,
            injects: 0,
            snapshots: 0,
            restores: 0,
            errors: 0,
            alloc_fallbacks: 0,
            coalesced: 0,
            builds: 0,
        }
    }

    /// Serves one request (an admission batch of one).
    pub fn handle(&mut self, req: &Request) -> Response {
        self.process_batch(std::slice::from_ref(req))
            .pop()
            .expect("one reply per request")
    }

    /// Serves an admission batch in arrival order, coalescing same-spec
    /// engine builds within the batch. Replies line up index-for-index
    /// with `reqs`.
    pub fn process_batch(&mut self, reqs: &[Request]) -> Vec<Response> {
        let mut keys_built: HashSet<u64> = HashSet::new();
        reqs.iter()
            .map(|req| match self.dispatch(req, &mut keys_built) {
                Ok(resp) => resp,
                Err(e) => {
                    self.errors += 1;
                    Response::Error {
                        message: e.to_string(),
                    }
                }
            })
            .collect()
    }

    fn dispatch(&mut self, req: &Request, keys_built: &mut HashSet<u64>) -> Result<Response> {
        match req {
            Request::Submit(r) => self.submit(r, keys_built),
            Request::Inject(r) => self.inject(&r.tenant, &r.event, keys_built),
            Request::Snapshot { tenant } => self.snapshot(tenant),
            Request::Restore { snapshot } => self.restore(snapshot, keys_built),
            Request::Fingerprint { tenant } => self.fingerprint(tenant),
            Request::Stats | Request::Shutdown => Err(ServeError::Protocol(
                "control requests are handled by the router, not a shard".to_string(),
            )),
        }
    }

    /// Folds one engine-producing (or engine-finding) cache outcome into
    /// the admission counters.
    fn account(&mut self, key: u64, hit: bool, keys_built: &mut HashSet<u64>) {
        if hit {
            if keys_built.contains(&key) {
                self.coalesced += 1;
            }
        } else {
            self.builds += 1;
            keys_built.insert(key);
        }
    }

    fn submit(&mut self, r: &SubmitRequest, keys_built: &mut HashSet<u64>) -> Result<Response> {
        if !(r.deadline > 0.0) || !r.deadline.is_finite() {
            return Err(ServeError::Protocol(format!(
                "deadline {} must be finite and positive",
                r.deadline
            )));
        }
        let threshold = r.threshold.unwrap_or(self.cfg.phi1_threshold);
        if !(threshold > 0.0) || threshold > 1.0 {
            return Err(ServeError::Protocol(format!(
                "threshold {threshold} out of (0, 1]"
            )));
        }
        let allocator_name = r
            .allocator
            .clone()
            .unwrap_or_else(|| self.cfg.default_allocator.clone());
        let policy = resolve_allocator(&allocator_name)?;

        let (batch, platform) = r.spec.expand()?;
        let threads = self.cfg.build_threads;
        let outcome = self.cache.get_or_build(&batch, &platform, threads)?;
        let (key, hit) = (outcome.key, outcome.hit);
        let (alloc, fell_back) =
            allocate_or_fallback(&policy, &batch, &platform, outcome.engine, r.deadline)?;
        let report = evaluate_with_engine(outcome.engine, &batch, &platform, &alloc, r.deadline)?;
        self.alloc_fallbacks += u64::from(fell_back);
        self.account(key, hit, keys_built);

        self.tenants.insert(
            r.tenant.clone(),
            TenantState {
                spec: r.spec,
                deadline: r.deadline,
                allocator: allocator_name,
                threshold,
                batch,
                platform,
                engine_key: key,
                events_applied: 0,
            },
        );
        self.submits += 1;
        Ok(Response::Submit(SubmitReply {
            tenant: r.tenant.clone(),
            engine_key: key,
            assignments: wire_assignments(&alloc),
            per_app_phi1: report.per_app,
            expected_times: report.expected_times,
            verdict: RobustVerdict {
                phi1: report.joint,
                threshold,
                robust: report.joint >= threshold,
                guaranteed_tier: None,
            },
        }))
    }

    fn inject(
        &mut self,
        tenant: &str,
        event: &crate::tenant::TenantEvent,
        keys_built: &mut HashSet<u64>,
    ) -> Result<Response> {
        let state = self
            .tenants
            .get(tenant)
            .ok_or_else(|| unknown_tenant(tenant))?;
        let (batch, platform, apps_map, types_map) = state.apply_event(event)?;
        let policy = resolve_allocator(&state.allocator)?;
        let (prev_key, deadline, threshold) = (state.engine_key, state.deadline, state.threshold);

        let threads = self.cfg.build_threads;
        let outcome = self.cache.rebuild_keyed(
            prev_key,
            &batch,
            &platform,
            RebuildMap {
                apps: &apps_map,
                types: &types_map,
            },
            threads,
        )?;
        let (key, hit, reused) = (outcome.key, outcome.hit, outcome.reused_cells);
        let (alloc, fell_back) =
            allocate_or_fallback(&policy, &batch, &platform, outcome.engine, deadline)?;
        let report = evaluate_with_engine(outcome.engine, &batch, &platform, &alloc, deadline)?;
        self.alloc_fallbacks += u64::from(fell_back);
        self.account(key, hit, keys_built);

        let state = self.tenants.get_mut(tenant).expect("checked above");
        state.batch = batch;
        state.platform = platform;
        state.engine_key = key;
        state.events_applied += 1;
        self.injects += 1;
        Ok(Response::Inject(InjectReply {
            tenant: tenant.to_string(),
            engine_key: key,
            reused_cells: reused as u64,
            assignments: wire_assignments(&alloc),
            per_app_phi1: report.per_app,
            verdict: RobustVerdict {
                phi1: report.joint,
                threshold,
                robust: report.joint >= threshold,
                guaranteed_tier: None,
            },
        }))
    }

    fn snapshot(&mut self, tenant: &str) -> Result<Response> {
        let state = self
            .tenants
            .get(tenant)
            .ok_or_else(|| unknown_tenant(tenant))?;
        let snapshot = state.snapshot(tenant);
        self.snapshots += 1;
        Ok(Response::Snapshot { snapshot })
    }

    fn restore(
        &mut self,
        snapshot: &TenantSnapshot,
        keys_built: &mut HashSet<u64>,
    ) -> Result<Response> {
        let mut state = TenantState::from_snapshot(snapshot);
        let threads = self.cfg.build_threads;
        let outcome = self
            .cache
            .get_or_build(&state.batch, &state.platform, threads)?;
        let (key, hit) = (outcome.key, outcome.hit);
        let fingerprint = outcome.engine.table_fingerprint();
        self.account(key, hit, keys_built);
        state.engine_key = key;
        self.tenants.insert(snapshot.tenant.clone(), state);
        self.restores += 1;
        Ok(Response::Restored(RestoreReply {
            tenant: snapshot.tenant.clone(),
            engine_key: key,
            fingerprint,
        }))
    }

    fn fingerprint(&mut self, tenant: &str) -> Result<Response> {
        let state = self
            .tenants
            .get(tenant)
            .ok_or_else(|| unknown_tenant(tenant))?;
        let key = state.engine_key;
        let fingerprint = match self.cache.peek(key) {
            Some(engine) => engine.table_fingerprint(),
            // Evicted: rebuild from the tenant's stored inputs. The build
            // is deterministic, so the digest matches the evicted engine's.
            None => {
                let (batch, platform) = (state.batch.clone(), state.platform.clone());
                let threads = self.cfg.build_threads;
                self.cache
                    .get_or_build(&batch, &platform, threads)?
                    .engine
                    .table_fingerprint()
            }
        };
        Ok(Response::Fingerprint(FingerprintReply {
            tenant: tenant.to_string(),
            engine_key: key,
            fingerprint,
        }))
    }

    /// The shard's counters, cache and pool telemetry included.
    pub fn stats(&self) -> ShardStats {
        let pool = self.cache.pool_totals();
        ShardStats {
            shard: self.id as u64,
            tenants: self.tenants.len() as u64,
            submits: self.submits,
            injects: self.injects,
            snapshots: self.snapshots,
            restores: self.restores,
            errors: self.errors,
            alloc_fallbacks: self.alloc_fallbacks,
            cache_len: self.cache.len() as u64,
            cache_capacity: self.cache.capacity() as u64,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_rebuilds: self.cache.rebuilds(),
            coalesced: self.coalesced,
            builds: self.builds,
            pool_runs: pool.runs,
            pool_tasks_run: pool.tasks_run,
            pool_chunks_stolen: pool.chunks_stolen,
        }
    }
}

fn unknown_tenant(tenant: &str) -> ServeError {
    ServeError::Protocol(format!("unknown tenant `{tenant}` (submit first)"))
}

fn resolve_allocator(name: &str) -> Result<ImPolicy> {
    ImPolicy::by_name(name)
        .ok_or_else(|| ServeError::Protocol(format!("unknown allocator `{name}`")))
}

/// Runs the requested policy; if its greedy packing paints itself into a
/// corner ("no feasible allocation" on an instance equal-share can still
/// fit), falls back deterministically to equal-share rather than
/// rejecting the workload. Returns whether the fallback was taken; the
/// original error propagates when even equal-share cannot pack the batch.
fn allocate_or_fallback(
    policy: &ImPolicy,
    batch: &Batch,
    platform: &Platform,
    engine: &Phi1Engine,
    deadline: f64,
) -> Result<(Allocation, bool)> {
    match policy.allocate_with_engine(batch, platform, engine, deadline) {
        Ok(alloc) => Ok((alloc, false)),
        Err(primary) => {
            if matches!(policy, ImPolicy::Naive) {
                return Err(ServeError::Framework(primary.to_string()));
            }
            match ImPolicy::Naive.allocate_with_engine(batch, platform, engine, deadline) {
                Ok(alloc) => Ok((alloc, true)),
                Err(_) => Err(ServeError::Framework(primary.to_string())),
            }
        }
    }
}

fn wire_assignments(alloc: &Allocation) -> Vec<WireAssignment> {
    alloc
        .assignments()
        .iter()
        .map(|a| WireAssignment {
            proc_type: a.proc_type.0,
            procs: a.procs,
        })
        .collect()
}

/// The shard thread loop: block for one message, drain the queue into an
/// admission batch (stopping at [`ServeConfig::drain_limit`] or a control
/// message), serve it, reply in arrival order, then handle the control
/// message. Exits on [`ShardMsg::Stop`] or a closed queue.
pub fn run_shard(core: &mut ShardCore, rx: &mpsc::Receiver<ShardMsg>) {
    loop {
        let Ok(first) = rx.recv() else { break };
        let mut control = None;
        let mut admitted: Vec<(Request, mpsc::Sender<Response>)> = Vec::new();
        match first {
            ShardMsg::Req(req, tx) => admitted.push((req, tx)),
            other => control = Some(other),
        }
        if control.is_none() {
            while admitted.len() < core.cfg.drain_limit {
                match rx.try_recv() {
                    Ok(ShardMsg::Req(req, tx)) => admitted.push((req, tx)),
                    Ok(other) => {
                        control = Some(other);
                        break;
                    }
                    Err(_) => break,
                }
            }
        }
        if !admitted.is_empty() {
            let reqs: Vec<Request> = admitted.iter().map(|(r, _)| r.clone()).collect();
            let replies = core.process_batch(&reqs);
            for ((_, tx), reply) in admitted.into_iter().zip(replies) {
                // A client that hung up just discards its reply.
                let _ = tx.send(reply);
            }
        }
        match control {
            Some(ShardMsg::Stats(tx)) => {
                let _ = tx.send(core.stats());
            }
            Some(ShardMsg::Stop) => break,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::{TenantEvent, WorkloadSpec};

    fn spec(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            apps: 3,
            types: 2,
            pulses: 6,
            seed,
        }
    }

    fn submit(tenant: &str, seed: u64) -> Request {
        Request::Submit(SubmitRequest {
            tenant: tenant.to_string(),
            spec: spec(seed),
            deadline: 2_800.0,
            allocator: None,
            threshold: None,
        })
    }

    fn test_cfg() -> ServeConfig {
        ServeConfig {
            build_threads: 2,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for name in ["acme", "globex", "initech", "umbrella"] {
                let s = shard_of(name, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(name, shards));
            }
        }
    }

    #[test]
    fn submit_then_inject_then_fingerprint() {
        let mut core = ShardCore::new(0, test_cfg());
        let resp = core.handle(&submit("acme", 7));
        let Response::Submit(reply) = resp else {
            panic!("expected submit reply, got {resp:?}");
        };
        assert_eq!(reply.assignments.len(), 3);
        assert_eq!(reply.per_app_phi1.len(), 3);
        assert!((0.0..=1.0).contains(&reply.verdict.phi1));

        let resp = core.handle(&Request::Inject(crate::protocol::InjectRequest {
            tenant: "acme".to_string(),
            event: TenantEvent::Degrade {
                proc_type: 0,
                factor: 0.5,
            },
        }));
        let Response::Inject(inj) = resp else {
            panic!("expected inject reply, got {resp:?}");
        };
        assert_ne!(inj.engine_key, reply.engine_key, "inputs changed");
        assert!(
            inj.reused_cells > 0,
            "degrading one type keeps the other's cells"
        );

        let resp = core.handle(&Request::Fingerprint {
            tenant: "acme".to_string(),
        });
        let Response::Fingerprint(fp) = resp else {
            panic!("expected fingerprint reply, got {resp:?}");
        };
        assert_eq!(fp.engine_key, inj.engine_key);

        let stats = core.stats();
        assert_eq!(stats.submits, 1);
        assert_eq!(stats.injects, 1);
        assert_eq!(stats.tenants, 1);
        assert_eq!(stats.cache_rebuilds, 1);
    }

    #[test]
    fn same_spec_submits_coalesce_within_a_batch() {
        let mut core = ShardCore::new(0, test_cfg());
        let reqs: Vec<Request> = (0..4).map(|i| submit(&format!("tenant-{i}"), 42)).collect();
        let replies = core.process_batch(&reqs);
        assert_eq!(replies.len(), 4);
        let keys: Vec<u64> = replies
            .iter()
            .map(|r| match r {
                Response::Submit(s) => s.engine_key,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert!(
            keys.windows(2).all(|w| w[0] == w[1]),
            "one engine serves all"
        );
        let stats = core.stats();
        assert_eq!(stats.builds, 1, "one build for four same-spec submits");
        assert_eq!(stats.coalesced, 3);
        assert!((core.stats().coalescing_factor() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn coalesced_reply_is_bit_identical_to_serial() {
        let reqs: Vec<Request> = (0..3).map(|i| submit(&format!("t{i}"), 9)).collect();
        // Serial: every request in its own admission batch.
        let mut serial = ShardCore::new(0, test_cfg());
        let serial_replies: Vec<Response> = reqs.iter().map(|r| serial.handle(r)).collect();
        // Coalesced: all in one batch.
        let mut batched = ShardCore::new(0, test_cfg());
        let batched_replies = batched.process_batch(&reqs);
        for (a, b) in serial_replies.iter().zip(&batched_replies) {
            let (Response::Submit(a), Response::Submit(b)) = (a, b) else {
                panic!("unexpected reply shape");
            };
            assert_eq!(a.engine_key, b.engine_key);
            for (x, y) in a.per_app_phi1.iter().zip(&b.per_app_phi1) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in a.expected_times.iter().zip(&b.expected_times) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(a.verdict.phi1.to_bits(), b.verdict.phi1.to_bits());
            assert_eq!(a.assignments, b.assignments);
        }
    }

    #[test]
    fn snapshot_restore_round_trip_is_byte_identical() {
        let mut a = ShardCore::new(0, test_cfg());
        a.handle(&submit("acme", 5));
        a.handle(&Request::Inject(crate::protocol::InjectRequest {
            tenant: "acme".to_string(),
            event: TenantEvent::Drift { factor: 0.8 },
        }));
        let Response::Snapshot { snapshot } = a.handle(&Request::Snapshot {
            tenant: "acme".to_string(),
        }) else {
            panic!("expected snapshot");
        };
        let Response::Fingerprint(before) = a.handle(&Request::Fingerprint {
            tenant: "acme".to_string(),
        }) else {
            panic!("expected fingerprint");
        };

        // "Crash": a brand-new shard restores from the snapshot (via JSON,
        // as the wire would carry it).
        let json = serde_json::to_string(&snapshot).unwrap();
        let snapshot: TenantSnapshot = serde_json::from_str(&json).unwrap();
        let mut b = ShardCore::new(0, test_cfg());
        let Response::Restored(rest) = b.handle(&Request::Restore { snapshot }) else {
            panic!("expected restore reply");
        };
        assert_eq!(rest.engine_key, before.engine_key);
        assert_eq!(
            rest.fingerprint, before.fingerprint,
            "tables byte-identical"
        );
    }

    #[test]
    fn unknown_tenant_and_allocator_are_protocol_errors() {
        let mut core = ShardCore::new(0, test_cfg());
        let resp = core.handle(&Request::Inject(crate::protocol::InjectRequest {
            tenant: "ghost".to_string(),
            event: TenantEvent::Drift { factor: 0.9 },
        }));
        assert!(matches!(resp, Response::Error { .. }));
        let resp = core.handle(&Request::Submit(SubmitRequest {
            tenant: "acme".to_string(),
            spec: spec(1),
            deadline: 2_800.0,
            allocator: Some("no-such-policy".to_string()),
            threshold: None,
        }));
        assert!(matches!(resp, Response::Error { .. }));
        assert_eq!(core.stats().errors, 2);
    }
}
