//! The service's error type and the conversions that feed it.

use std::fmt;
use std::io;

/// Convenient alias used throughout the serve crate.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Errors produced by the scheduling service.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// Socket or channel plumbing failed.
    Io(io::Error),
    /// A request was malformed or out of the admitted domain; the message
    /// is sent back to the client verbatim.
    Protocol(String),
    /// A framework layer rejected the work (allocation, engine build,
    /// event remap).
    Framework(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Framework(msg) => write!(f, "scheduling error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<cdsf_ra::RaError> for ServeError {
    fn from(e: cdsf_ra::RaError) -> Self {
        ServeError::Framework(e.to_string())
    }
}

impl From<cdsf_system::SystemError> for ServeError {
    fn from(e: cdsf_system::SystemError) -> Self {
        ServeError::Framework(e.to_string())
    }
}

impl From<cdsf_events::EventsError> for ServeError {
    fn from(e: cdsf_events::EventsError) -> Self {
        ServeError::Framework(e.to_string())
    }
}

impl From<cdsf_core::CoreError> for ServeError {
    fn from(e: cdsf_core::CoreError) -> Self {
        ServeError::Framework(e.to_string())
    }
}
