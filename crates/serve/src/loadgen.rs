//! Replayable load generation against a running service.
//!
//! The stream is a pure function of [`LoadgenConfig`]: tenants are drawn
//! from a Zipf-like skew, each tenant cycles a small pool of workload
//! specs (so the engine cache sees realistic re-submission), and faults
//! arrive as Degrade/Drift injections at a configurable rate. Replaying
//! the same config therefore issues byte-identical request lines — only
//! the measured latencies differ between runs.
//!
//! Per-tenant ordering is preserved by pinning every tenant to one
//! client connection (`tenant index mod connections`), mirroring how the
//! server pins tenants to shards; an `Inject` can never overtake the
//! `Submit` that must precede it.

use crate::error::{Result, ServeError};
use crate::protocol::{Request, Response, StatsReply, SubmitRequest};
use crate::server::{Client, Server};
use crate::shard::ServeConfig;
use crate::tenant::{TenantEvent, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::net::ToSocketAddrs;
use std::time::Instant;

/// A seeded synthetic tenant stream.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Distinct tenants (the ISSUE floor for a benchmark run is 4).
    pub tenants: usize,
    /// Total requests to replay (the benchmark floor is 10 000).
    pub requests: usize,
    /// Concurrent client connections.
    pub connections: usize,
    /// Stream seed — same seed, same request bytes.
    pub seed: u64,
    /// Zipf exponent for tenant popularity (0 = uniform).
    pub skew: f64,
    /// Fraction of requests that inject a fault/drift event.
    pub fault_rate: f64,
    /// Fraction of requests that snapshot a tenant.
    pub snapshot_rate: f64,
    /// Workload specs each tenant cycles through (re-submission → cache
    /// hits; distinct specs → builds).
    pub specs_per_tenant: usize,
    /// Globally shared specs (popular "template" workloads).
    pub shared_specs: usize,
    /// Fraction of submissions drawing from the shared pool — the source
    /// of cross-tenant cache hits and same-batch coalescing.
    pub shared_rate: f64,
    /// Probability that each application in a generated spec is drawn
    /// from a *shared app catalog* instead of seeded privately. Zero
    /// (the default) keeps the legacy whole-spec seeding; anything
    /// positive switches every spec to per-app seeds on a common
    /// platform, so specs that differ as wholes still share individual
    /// applications — the cross-tenant interning the service-wide
    /// cell store exists for.
    pub catalog_overlap: f64,
    /// Fraction of submissions naming an explicit Stage-I policy instead
    /// of the server default, split evenly between the pooled
    /// multi-start annealer (`sa`) and the exact branch-and-bound
    /// (`lattice`) — so a replay exercises both solver paths and their
    /// counters (`sa_multistart_runs`, per-policy cache keys).
    pub policy_mix: f64,
    /// Common deadline Δ for every submission.
    pub deadline: f64,
    /// Requests each connection keeps in flight (1 = lockstep). The
    /// pipelined server answers in request order, so per-tenant ordering
    /// is untouched; only the transport dead time changes.
    pub pipeline: usize,
    /// Warm-up replies discarded from the latency distribution (spread
    /// across connections, rounded up per connection). They still count
    /// toward `ok`/`errors` and throughput — the discard only keeps
    /// cold-cache builds out of the percentiles.
    pub warmup: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            tenants: 6,
            requests: 10_000,
            connections: 4,
            seed: 42,
            skew: 1.0,
            fault_rate: 0.05,
            snapshot_rate: 0.01,
            specs_per_tenant: 3,
            shared_specs: 2,
            shared_rate: 0.3,
            catalog_overlap: 0.0,
            policy_mix: 0.2,
            deadline: 2_800.0,
            pipeline: 16,
            warmup: 200,
        }
    }
}

impl LoadgenConfig {
    fn validated(mut self) -> Result<Self> {
        self.tenants = self.tenants.max(1);
        self.connections = self.connections.clamp(1, self.tenants);
        self.specs_per_tenant = self.specs_per_tenant.max(1);
        self.pipeline = self.pipeline.max(1);
        if self.requests == 0 {
            return Err(ServeError::Protocol("requests must be positive".into()));
        }
        for (name, v, lo, hi) in [
            ("skew", self.skew, 0.0, 8.0),
            ("fault_rate", self.fault_rate, 0.0, 1.0),
            ("snapshot_rate", self.snapshot_rate, 0.0, 1.0),
            ("shared_rate", self.shared_rate, 0.0, 1.0),
            ("policy_mix", self.policy_mix, 0.0, 1.0),
            ("catalog_overlap", self.catalog_overlap, 0.0, 1.0),
        ] {
            if !(lo..=hi).contains(&v) {
                return Err(ServeError::Protocol(format!(
                    "{name} {v} out of [{lo}, {hi}]"
                )));
            }
        }
        if !(self.deadline > 0.0) || !self.deadline.is_finite() {
            return Err(ServeError::Protocol(
                "deadline must be finite and positive".into(),
            ));
        }
        Ok(self)
    }

    fn tenant_name(i: usize) -> String {
        format!("tenant-{i:03}")
    }

    /// The full deterministic request stream, in issue order.
    pub fn stream(&self) -> Result<Vec<Request>> {
        let cfg = self.clone().validated()?;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Catalog mode: every spec shares one platform seed and one
        // (types, pulses) shape — per-app PMFs can only be bit-identical
        // across specs when the platform and pulse count match — and
        // each application is drawn from a small global seed catalog
        // with probability `catalog_overlap`, seeded privately otherwise.
        let catalog_mode = cfg.catalog_overlap > 0.0;
        let platform_seed = cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let catalog: Vec<u64> = (0..24)
            .map(|i| cfg.seed.wrapping_mul(2_147_483_647).wrapping_add(i))
            .collect();
        let (cat_types, cat_pulses) = (rng.gen_range(2..=3), rng.gen_range(5..=8));
        let catalog_spec = |rng: &mut StdRng| -> WorkloadSpec {
            let apps = rng.gen_range(3..=6);
            let app_seeds: Vec<u64> = (0..apps)
                .map(|_| {
                    if rng.gen_bool(cfg.catalog_overlap) {
                        catalog[rng.gen_range(0..catalog.len())]
                    } else {
                        rng.gen::<u64>()
                    }
                })
                .collect();
            WorkloadSpec {
                apps,
                types: cat_types,
                pulses: cat_pulses,
                seed: rng.gen::<u64>(),
                platform_seed: Some(platform_seed),
                app_seeds: Some(app_seeds),
            }
        };

        // Per-tenant spec pools. Sizes stay small enough that a single
        // engine build is milliseconds, large enough to exercise the
        // pool-backed parallel kernels.
        let mut pools: Vec<Vec<WorkloadSpec>> = Vec::with_capacity(cfg.tenants);
        for t in 0..cfg.tenants {
            let mut pool = Vec::with_capacity(cfg.specs_per_tenant);
            for s in 0..cfg.specs_per_tenant {
                pool.push(if catalog_mode {
                    catalog_spec(&mut rng)
                } else {
                    WorkloadSpec::simple(
                        rng.gen_range(3..=6),
                        rng.gen_range(2..=3),
                        rng.gen_range(5..=8),
                        cfg.seed
                            .wrapping_mul(1_000_003)
                            .wrapping_add((t * cfg.specs_per_tenant + s) as u64),
                    )
                });
            }
            pools.push(pool);
        }
        // Popular "template" workloads many tenants submit verbatim.
        let shared: Vec<WorkloadSpec> = (0..cfg.shared_specs.max(1))
            .map(|s| {
                if catalog_mode {
                    catalog_spec(&mut rng)
                } else {
                    WorkloadSpec::simple(
                        rng.gen_range(3..=6),
                        rng.gen_range(2..=3),
                        rng.gen_range(5..=8),
                        cfg.seed.wrapping_mul(7_368_787).wrapping_add(s as u64),
                    )
                }
            })
            .collect();

        // Zipf-like tenant popularity: weight 1/(rank+1)^skew.
        let weights: Vec<f64> = (0..cfg.tenants)
            .map(|i| 1.0 / ((i + 1) as f64).powf(cfg.skew))
            .collect();
        let total_weight: f64 = weights.iter().sum();

        let mut submitted = vec![false; cfg.tenants];
        let mut types_now = vec![0usize; cfg.tenants];
        let mut stream = Vec::with_capacity(cfg.requests);
        for n in 0..cfg.requests {
            // Warm-up: the first pass touches every tenant once so
            // injections always have a submission to land on.
            let t = if n < cfg.tenants {
                n
            } else {
                let mut x = rng.gen::<f64>() * total_weight;
                let mut pick = cfg.tenants - 1;
                for (i, w) in weights.iter().enumerate() {
                    if x < *w {
                        pick = i;
                        break;
                    }
                    x -= w;
                }
                pick
            };
            let roll: f64 = rng.gen();
            let req = if submitted[t] && roll < cfg.fault_rate {
                let event = if rng.gen_bool(0.6) {
                    TenantEvent::Degrade {
                        proc_type: rng.gen_range(0..types_now[t]),
                        factor: rng.gen_range(0.5..0.95),
                    }
                } else {
                    TenantEvent::Drift {
                        factor: rng.gen_range(0.7..1.3),
                    }
                };
                Request::Inject(crate::protocol::InjectRequest {
                    tenant: Self::tenant_name(t),
                    event,
                })
            } else if submitted[t] && roll < cfg.fault_rate + cfg.snapshot_rate {
                Request::Snapshot {
                    tenant: Self::tenant_name(t),
                }
            } else {
                let spec = if rng.gen_bool(cfg.shared_rate) {
                    shared[rng.gen_range(0..shared.len())].clone()
                } else {
                    pools[t][rng.gen_range(0..cfg.specs_per_tenant)].clone()
                };
                submitted[t] = true;
                types_now[t] = spec.types;
                // Both rolls are always drawn, so streams with different
                // mixes share the same tenant/spec sequence per seed.
                let mixed = rng.gen_bool(cfg.policy_mix);
                let pick_sa = rng.gen_bool(0.5);
                let allocator = mixed.then(|| if pick_sa { "sa" } else { "lattice" }.to_string());
                Request::Submit(SubmitRequest {
                    tenant: Self::tenant_name(t),
                    spec,
                    deadline: cfg.deadline,
                    allocator,
                    threshold: None,
                    qos: None,
                })
            };
            stream.push(req);
        }
        Ok(stream)
    }
}

/// What a replay measured. Serialized verbatim into `BENCH_serve.json`.
#[derive(Debug, Clone, Serialize)]
pub struct LoadgenReport {
    /// Report schema version (bump on breaking shape changes).
    pub schema_version: u32,
    /// Requests replayed.
    pub requests: u64,
    /// Distinct tenants in the stream.
    pub tenants: u64,
    /// Client connections used.
    pub connections: u64,
    /// Worker shards serving the run.
    pub shards: u64,
    /// Stream seed.
    pub seed: u64,
    /// Zipf exponent used.
    pub skew: f64,
    /// Fault-injection rate used.
    pub fault_rate: f64,
    /// Fraction of submissions naming an explicit policy (split between
    /// `sa` and `lattice`).
    pub policy_mix: f64,
    /// Per-application catalog draw probability used for the stream
    /// (zero = legacy whole-spec seeding).
    pub catalog_overlap: f64,
    /// Wall-clock seconds for the whole replay.
    pub elapsed_s: f64,
    /// Requests per second over the replay.
    pub throughput_rps: f64,
    /// Requests each connection kept in flight.
    pub pipeline: u64,
    /// Warm-up replies excluded from the latency percentiles (they still
    /// count toward `requests`, `ok`/`errors`, and throughput).
    pub warmup_discarded: u64,
    /// Worker threads the serving host reports
    /// ([`cdsf_core::default_threads`]) — floors in the snapshot check
    /// are host-aware, so the report records what the host was.
    pub host_threads: u64,
    /// Median request latency, microseconds.
    pub latency_p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub latency_p99_us: u64,
    /// 99.9th-percentile request latency, microseconds.
    pub latency_p999_us: u64,
    /// Mean request latency, microseconds.
    pub latency_mean_us: u64,
    /// Worst request latency, microseconds.
    pub latency_max_us: u64,
    /// Requests answered without error.
    pub ok: u64,
    /// Requests answered with `Response::Error`.
    pub errors: u64,
    /// Exact-input cache hit rate across shards.
    pub cache_hit_rate: f64,
    /// Requests served per engine build across shards.
    pub coalescing_factor: f64,
    /// Cells served from the service-wide store (no kernel ran).
    pub cell_store_hits: u64,
    /// Cell lookups that ran the kernel.
    pub cell_store_misses: u64,
    /// Hash matches rejected by the bitwise input comparison.
    pub cell_store_verify_rejects: u64,
    /// Store hit rate over all cell lookups.
    pub cell_store_hit_rate: f64,
    /// The server's final counters.
    pub stats: StatsReply,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// Replays the stream against an already-running server. The server is
/// left running (stats are read, nothing is shut down).
pub fn run<A: ToSocketAddrs + Clone + Send + 'static>(
    cfg: &LoadgenConfig,
    addr: A,
) -> Result<LoadgenReport> {
    let cfg = cfg.clone().validated()?;
    let stream = cfg.stream()?;

    // Pin tenants to connections so per-tenant order survives concurrency.
    let mut per_conn: Vec<Vec<Request>> = vec![Vec::new(); cfg.connections];
    for req in stream {
        let t: usize = req
            .tenant()
            .and_then(|name| name.rsplit('-').next())
            .and_then(|d| d.parse().ok())
            .unwrap_or(0);
        per_conn[t % cfg.connections].push(req);
    }

    // Each connection keeps a window of requests in flight; the server's
    // writer answers in request order, so replies pair with send times
    // FIFO. Warm-up replies are measured but discarded from the
    // distribution afterwards.
    let window = cfg.pipeline;
    let warmup_per_conn = cfg.warmup.div_ceil(cfg.connections);
    let started = Instant::now();
    let mut handles = Vec::with_capacity(cfg.connections);
    for reqs in per_conn {
        let addr = addr.clone();
        handles.push(std::thread::spawn(
            move || -> std::io::Result<(Vec<u64>, u64, u64, u64)> {
                let mut client = Client::connect(addr)?;
                let mut lat_us = Vec::with_capacity(reqs.len());
                let (mut ok, mut errors) = (0u64, 0u64);
                let mut sent_at: std::collections::VecDeque<Instant> =
                    std::collections::VecDeque::with_capacity(window);
                let mut next = reqs.iter();
                loop {
                    while sent_at.len() < window {
                        let Some(req) = next.next() else { break };
                        sent_at.push_back(Instant::now());
                        client.send(req)?;
                    }
                    let Some(t0) = sent_at.pop_front() else { break };
                    let resp = client.recv()?;
                    lat_us.push(t0.elapsed().as_micros() as u64);
                    match resp {
                        Response::Error { .. } => errors += 1,
                        _ => ok += 1,
                    }
                }
                let discard = warmup_per_conn.min(lat_us.len());
                lat_us.drain(..discard);
                Ok((lat_us, discard as u64, ok, errors))
            },
        ));
    }
    let mut lat_us = Vec::new();
    let (mut discarded, mut ok, mut errors) = (0u64, 0u64, 0u64);
    for handle in handles {
        let (l, d, o, e) = handle
            .join()
            .map_err(|_| ServeError::Protocol("a replay connection panicked".into()))??;
        lat_us.extend(l);
        discarded += d;
        ok += o;
        errors += e;
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    lat_us.sort_unstable();

    let mut client = Client::connect(addr)?;
    let stats = match client.request(&Request::Stats)? {
        Response::Stats(s) => s,
        other => {
            return Err(ServeError::Protocol(format!(
                "stats request answered with {other:?}"
            )))
        }
    };

    let mean = if lat_us.is_empty() {
        0
    } else {
        lat_us.iter().sum::<u64>() / lat_us.len() as u64
    };
    let replayed = ok + errors;
    Ok(LoadgenReport {
        schema_version: 4,
        requests: replayed,
        tenants: cfg.tenants as u64,
        connections: cfg.connections as u64,
        shards: stats.shards,
        seed: cfg.seed,
        skew: cfg.skew,
        fault_rate: cfg.fault_rate,
        policy_mix: cfg.policy_mix,
        catalog_overlap: cfg.catalog_overlap,
        elapsed_s,
        throughput_rps: if elapsed_s > 0.0 {
            replayed as f64 / elapsed_s
        } else {
            0.0
        },
        pipeline: window as u64,
        warmup_discarded: discarded,
        host_threads: cdsf_core::default_threads() as u64,
        latency_p50_us: percentile(&lat_us, 50.0),
        latency_p99_us: percentile(&lat_us, 99.0),
        latency_p999_us: percentile(&lat_us, 99.9),
        latency_mean_us: mean,
        latency_max_us: lat_us.last().copied().unwrap_or(0),
        ok,
        errors,
        cache_hit_rate: stats.total.cache_hit_rate(),
        coalescing_factor: stats.total.coalescing_factor(),
        cell_store_hits: stats.cell_store.hits,
        cell_store_misses: stats.cell_store.misses,
        cell_store_verify_rejects: stats.cell_store.verify_rejects,
        cell_store_hit_rate: stats.cell_store.hit_rate(),
        stats,
    })
}

/// Spins up an in-process server on an ephemeral port, replays the
/// stream, shuts the server down cleanly, and reports.
pub fn run_local(cfg: &LoadgenConfig, serve_cfg: ServeConfig) -> Result<LoadgenReport> {
    let server = Server::bind("127.0.0.1:0", serve_cfg)?;
    let addr = server.addr();
    let result = run(cfg, addr);
    let mut client = Client::connect(addr)?;
    let _ = client.request(&Request::Shutdown)?;
    server.wait();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_well_formed() {
        let cfg = LoadgenConfig {
            requests: 200,
            tenants: 4,
            ..LoadgenConfig::default()
        };
        let a = cfg.stream().unwrap();
        let b = cfg.stream().unwrap();
        assert_eq!(a.len(), 200);
        let (ja, jb) = (
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
        );
        assert_eq!(ja, jb, "same config, same bytes");
        // The warm-up pass covers every tenant before any injection.
        let mut seen = std::collections::HashSet::new();
        for req in a.iter().take(4) {
            assert!(matches!(req, Request::Submit(_)));
            seen.insert(req.tenant().unwrap().to_string());
        }
        assert_eq!(seen.len(), 4);
        assert!(
            a.iter().any(|r| matches!(r, Request::Inject(_))),
            "stream exercises injections"
        );
    }

    #[test]
    fn policy_mix_routes_submits_through_both_solvers() {
        let named = |cfg: &LoadgenConfig, name: &str| {
            cfg.stream()
                .unwrap()
                .iter()
                .filter(|r| matches!(r, Request::Submit(s) if s.allocator.as_deref() == Some(name)))
                .count()
        };
        let cfg = LoadgenConfig {
            requests: 400,
            tenants: 4,
            policy_mix: 0.5,
            ..LoadgenConfig::default()
        };
        assert!(named(&cfg, "sa") > 0, "mix must route submits through sa");
        assert!(
            named(&cfg, "lattice") > 0,
            "mix must route submits through lattice"
        );
        let off = LoadgenConfig {
            policy_mix: 0.0,
            ..cfg.clone()
        };
        assert_eq!(named(&off, "sa") + named(&off, "lattice"), 0);
        // The mix knob changes only the allocator column: same seed,
        // same tenants and specs in the same order.
        let tenants = |cfg: &LoadgenConfig| -> Vec<String> {
            cfg.stream()
                .unwrap()
                .iter()
                .filter_map(|r| r.tenant().map(str::to_string))
                .collect()
        };
        assert_eq!(tenants(&cfg), tenants(&off));
        assert!(LoadgenConfig {
            policy_mix: 1.5,
            ..LoadgenConfig::default()
        }
        .stream()
        .is_err());
    }

    #[test]
    fn catalog_overlap_shares_app_seeds_across_specs() {
        let cfg = LoadgenConfig {
            requests: 300,
            tenants: 4,
            catalog_overlap: 0.8,
            ..LoadgenConfig::default()
        };
        let stream = cfg.stream().unwrap();
        // Every submission carries catalog fields, all on one platform.
        let mut platform_seeds = std::collections::HashSet::new();
        let mut seed_uses: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let mut specs = std::collections::HashSet::new();
        for req in &stream {
            let Request::Submit(s) = req else { continue };
            platform_seeds.insert(
                s.spec
                    .platform_seed
                    .expect("catalog mode pins the platform"),
            );
            let seeds = s.spec.app_seeds.as_ref().expect("catalog mode names apps");
            assert_eq!(seeds.len(), s.spec.apps);
            if specs.insert(serde_json::to_string(&s.spec).unwrap()) {
                for &seed in seeds {
                    *seed_uses.entry(seed).or_default() += 1;
                }
            }
        }
        assert_eq!(platform_seeds.len(), 1);
        assert!(specs.len() > 1, "stream cycles distinct specs");
        assert!(
            seed_uses.values().any(|&n| n > 1),
            "0.8 overlap must reuse catalog apps across distinct specs"
        );
        // Zero overlap keeps the legacy whole-spec seeding.
        let legacy = LoadgenConfig {
            catalog_overlap: 0.0,
            ..cfg.clone()
        };
        for req in legacy.stream().unwrap() {
            if let Request::Submit(s) = req {
                assert!(s.spec.platform_seed.is_none() && s.spec.app_seeds.is_none());
            }
        }
        assert!(LoadgenConfig {
            catalog_overlap: 1.5,
            ..LoadgenConfig::default()
        }
        .stream()
        .is_err());
    }

    #[test]
    fn catalog_replay_hits_the_shared_cell_store() {
        let cfg = LoadgenConfig {
            requests: 80,
            tenants: 4,
            connections: 2,
            pipeline: 8,
            warmup: 8,
            catalog_overlap: 0.8,
            ..LoadgenConfig::default()
        };
        let serve_cfg = ServeConfig {
            shards: 2,
            build_threads: 2,
            ..ServeConfig::default()
        };
        let report = run_local(&cfg, serve_cfg).unwrap();
        assert_eq!(report.errors, 0);
        assert!((report.catalog_overlap - 0.8).abs() < 1e-12);
        assert!(
            report.cell_store_hits > 0,
            "overlapping catalogs must intern cells across tenants: {:?}",
            report.stats.cell_store
        );
        assert_eq!(report.cell_store_hits, report.stats.cell_store.hits);
        assert!(report.cell_store_hit_rate > 0.0);
    }

    #[test]
    fn percentiles_pick_from_sorted_tail() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 51);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&[], 50.0), 0);
        let w: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile(&w, 99.9), 999);
        assert_eq!(percentile(&w, 99.0), 990);
    }

    #[test]
    fn small_replay_end_to_end() {
        let cfg = LoadgenConfig {
            requests: 120,
            tenants: 4,
            connections: 2,
            pipeline: 8,
            warmup: 20,
            ..LoadgenConfig::default()
        };
        let serve_cfg = ServeConfig {
            shards: 2,
            build_threads: 2,
            ..ServeConfig::default()
        };
        let report = run_local(&cfg, serve_cfg).unwrap();
        assert_eq!(report.schema_version, 4);
        assert_eq!(report.requests, 120);
        assert_eq!(report.errors, 0, "clean stream replays without errors");
        assert!(
            report.stats.total.sa_multistart_runs > 0,
            "default policy mix exercises the pooled annealer"
        );
        assert_eq!(report.shards, 2);
        assert_eq!(report.pipeline, 8);
        assert_eq!(
            report.warmup_discarded, 20,
            "10 cold replies per connection"
        );
        assert!(report.host_threads >= 1);
        assert!(report.latency_p999_us >= report.latency_p99_us);
        assert!(report.cache_hit_rate > 0.0, "spec pools re-hit the cache");
        assert!(report.stats.total.submits > 0);
        assert!(
            report.stats.total.drain_depths.iter().sum::<u64>() > 0,
            "shards recorded admission batches"
        );
        assert!(
            report.stats.codec.reply_frames >= 120,
            "writers framed every reply"
        );
        assert!(
            report.stats.codec.flushes <= report.stats.codec.reply_frames,
            "at most one flush per frame"
        );
    }
}
