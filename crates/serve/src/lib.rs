//! `cdsf-serve` — the CDSF scheduling framework as a long-running,
//! multi-tenant network service.
//!
//! The batch pipeline (workload → Stage-I allocation → φ₁ verdict →
//! reactive remap on events) is exposed over a newline-delimited JSON
//! protocol on a plain `std::net` TCP socket: no async runtime, no
//! external server dependencies. Architecture:
//!
//! * **Thread-per-shard.** Tenants hash across `N` worker shards
//!   ([`shard::shard_of`]); each shard owns its tenants and a bounded
//!   LRU [`cdsf_ra::EngineCache`] outright, so shards never lock.
//! * **Admission coalescing.** A shard drains its queue into an
//!   admission batch; queued requests wanting the same engine (same
//!   workload-spec bits) share one `Phi1Engine::build_parallel` call.
//!   Replies are bit-identical to serial handling — the cache only
//!   serves engines that are bit-identical to a fresh build.
//! * **Byte-exact snapshots.** [`Request::Snapshot`] captures a
//!   tenant's evolved inputs through the vendored
//!   `serde_json`/`float_roundtrip` path; restoring on a fresh server
//!   and rebuilding yields byte-identical engine tables, verified by
//!   [`cdsf_ra::Phi1Engine::table_fingerprint`].
//! * **Replayable load generation.** [`loadgen`] replays a seeded
//!   synthetic multi-tenant stream (tenants / requests / skew /
//!   fault-rate) against a server and reports latency percentiles,
//!   throughput, cache hit rate, and the coalescing factor.
//!
//! ```no_run
//! use cdsf_serve::{Client, Request, Server, ServeConfig};
//!
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default())?;
//! let mut client = Client::connect(server.addr())?;
//! let reply = client.request(&Request::Stats)?;
//! # let _ = reply;
//! # std::io::Result::Ok(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod shard;
pub mod tenant;

pub use error::{Result, ServeError};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use protocol::{
    FingerprintReply, InjectReply, Request, Response, RestoreReply, RobustVerdict, ShardStats,
    StatsReply, SubmitReply, SubmitRequest, WireAssignment,
};
pub use server::{Client, Router, Server};
pub use shard::{shard_of, ServeConfig, ShardCore};
pub use tenant::{TenantEvent, TenantSnapshot, WorkloadSpec};
