//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response per line, answered in request
//! order per connection. The encoding is the workspace's vendored
//! `serde`/`serde_json` pair with `float_roundtrip`, so every `f64`
//! survives the wire bit-exactly — the same property that makes the
//! event log byte-replayable makes snapshots transported through this
//! protocol restore to byte-identical engine state.
//!
//! Submissions carry an optional `qos` tier: `probabilistic` (the
//! default — maximize the joint deadline probability φ₁) or
//! `guaranteed` (the Γ-robust tier — the allocation must keep positive
//! worst-case φ₁ when up to Γ processor types degrade; a request whose
//! deadline is *proven* unachievable is rejected with the tightest
//! feasible deadline in the error detail rather than served
//! best-effort). The [`RobustVerdict::guaranteed_tier`] slot, reserved
//! since schema v1, is populated on guaranteed-tier replies.

use crate::tenant::{TenantEvent, TenantSnapshot, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::io::{BufRead, Write};

/// A client request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Submit a batch-scheduling workload: allocate, score, verdict.
    Submit(SubmitRequest),
    /// Inject a fault/drift event into a tenant's live workload and
    /// reactively remap through the incremental engine rebuild.
    Inject(InjectRequest),
    /// Capture a tenant's full durable state.
    Snapshot {
        /// The tenant to snapshot.
        tenant: String,
    },
    /// Re-create a tenant from a snapshot (possibly on a fresh server).
    Restore {
        /// The state to restore.
        snapshot: TenantSnapshot,
    },
    /// Digest of the tenant's current Stage-I engine tables.
    Fingerprint {
        /// The tenant to fingerprint.
        tenant: String,
    },
    /// Service-wide counters, aggregated across shards.
    Stats,
    /// Stop accepting connections and shut the shards down cleanly.
    Shutdown,
}

impl Request {
    /// The tenant this request must be routed by, if it is tenant-scoped.
    pub fn tenant(&self) -> Option<&str> {
        match self {
            Request::Submit(r) => Some(&r.tenant),
            Request::Inject(r) => Some(&r.tenant),
            Request::Snapshot { tenant } | Request::Fingerprint { tenant } => Some(tenant),
            Request::Restore { snapshot } => Some(&snapshot.tenant),
            Request::Stats | Request::Shutdown => None,
        }
    }
}

/// `Submit`: schedule a seeded synthetic workload for a tenant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmitRequest {
    /// Tenant identity (shard routing key).
    pub tenant: String,
    /// The workload, as a deterministic generator spec.
    pub spec: WorkloadSpec,
    /// Common deadline Δ.
    pub deadline: f64,
    /// Stage-I allocator name (`sufferage`, `greedy-max-robust`, `sa`,
    /// …); the server default when absent.
    pub allocator: Option<String>,
    /// φ₁ level above which the verdict reports `robust`; the server
    /// default when absent.
    pub threshold: Option<f64>,
    /// QoS tier: `"probabilistic"` (default) serves the named
    /// allocator's best φ₁ allocation; `"guaranteed"` routes through the
    /// Γ-robust solver and *rejects* (with the tightest feasible
    /// deadline) instead of serving a deadline proven unachievable.
    /// Absent on v1 clients — defaults to probabilistic.
    #[serde(default)]
    pub qos: Option<String>,
}

/// `Inject`: a disruption to an already-submitted tenant workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InjectRequest {
    /// Tenant identity (shard routing key).
    pub tenant: String,
    /// What happened.
    pub event: TenantEvent,
}

/// One `(processor type, power-of-two count)` assignment on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireAssignment {
    /// Processor-type index.
    pub proc_type: usize,
    /// Processors assigned (a power of two).
    pub procs: u32,
}

/// The per-request robustness verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustVerdict {
    /// Joint deadline probability `φ₁ = Π_i Pr(T_i ≤ Δ)`.
    pub phi1: f64,
    /// The level `phi1` was judged against.
    pub threshold: f64,
    /// `phi1 ≥ threshold`.
    pub robust: bool,
    /// Worst-case feasibility under the budgeted availability
    /// uncertainty set: `Some(true)` on guaranteed-tier replies (the
    /// Γ-robust solver proved positive worst-case φ₁ — infeasible
    /// guaranteed requests are rejected, never answered `Some(false)`),
    /// `None` on probabilistic-tier replies.
    pub guaranteed_tier: Option<bool>,
}

/// Reply to [`Request::Submit`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmitReply {
    /// Echoed tenant.
    pub tenant: String,
    /// Input fingerprint of the engine that served this request.
    pub engine_key: u64,
    /// The Stage-I allocation, one assignment per application.
    pub assignments: Vec<WireAssignment>,
    /// Per-application `Pr(T_i ≤ Δ)` under the allocation.
    pub per_app_phi1: Vec<f64>,
    /// Per-application expected completion times.
    pub expected_times: Vec<f64>,
    /// The verdict (joint φ₁ and threshold call).
    pub verdict: RobustVerdict,
}

/// Reply to [`Request::Inject`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InjectReply {
    /// Echoed tenant.
    pub tenant: String,
    /// Input fingerprint of the rebuilt engine.
    pub engine_key: u64,
    /// Cells the incremental rebuild carried over bit-identically.
    pub reused_cells: u64,
    /// The post-event reactive allocation.
    pub assignments: Vec<WireAssignment>,
    /// Per-application `Pr(T_i ≤ Δ)` under the new allocation.
    pub per_app_phi1: Vec<f64>,
    /// The post-event verdict.
    pub verdict: RobustVerdict,
}

/// Reply to [`Request::Restore`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RestoreReply {
    /// Echoed tenant.
    pub tenant: String,
    /// Input fingerprint of the restored engine.
    pub engine_key: u64,
    /// Digest of the restored engine's tables (equal to the digest the
    /// snapshotted server would report — restores are bit-exact).
    pub fingerprint: u64,
}

/// Reply to [`Request::Fingerprint`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FingerprintReply {
    /// Echoed tenant.
    pub tenant: String,
    /// Input fingerprint of the tenant's current engine.
    pub engine_key: u64,
    /// Digest of the engine's tables ([`cdsf_ra::Phi1Engine::table_fingerprint`]).
    pub fingerprint: u64,
}

/// Why an allocation fell back from the requested heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The requested heuristic reported `NoFeasibleAllocation`. The
    /// shard adjudicates the claim with the exact lattice solver:
    /// `proven` records whether the instance really admits no
    /// positive-φ₁ allocation (a property of the spec/deadline) or the
    /// heuristic merely painted itself into a corner on a feasible
    /// instance.
    Infeasible {
        /// `true`: the exact solver confirmed infeasibility; `false`:
        /// a feasible allocation exists and was served instead.
        proven: bool,
    },
    /// Any other Stage-I failure the fallback absorbed.
    Other,
}

/// Log₂ buckets of the admission batch-depth histogram
/// ([`ShardStats::drain_depths`]): 1, 2–3, 4–7, 8–15, 16–31, 32–63,
/// 64–127, ≥128.
pub const DRAIN_DEPTH_BUCKETS: usize = 8;

/// One shard's counters.
///
/// `Serialize`/`Deserialize` are hand-written (the vendored serde
/// stand-in's derive cannot express skip-if-`None`): the `shard` field is
/// *omitted* — not `null` — on the totals row, and every counter added
/// after schema v1 defaults to zero/empty when absent, so v1 payloads
/// still parse.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Shard index; `None` on the aggregated totals row.
    pub shard: Option<u64>,
    /// Tenants resident on this shard.
    pub tenants: u64,
    /// `Submit` requests served.
    pub submits: u64,
    /// `Inject` requests served.
    pub injects: u64,
    /// `Snapshot` requests served.
    pub snapshots: u64,
    /// `Restore` requests served.
    pub restores: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Allocations that fell back to equal-share after the requested
    /// heuristic found no feasible packing.
    pub alloc_fallbacks: u64,
    /// Fallbacks whose primary failure was `NoFeasibleAllocation` —
    /// a property of the spec/deadline, never of the serving shard.
    /// Always `alloc_fallbacks_infeasible_proven +
    /// alloc_fallbacks_infeasible_heuristic`.
    pub alloc_fallbacks_infeasible: u64,
    /// Infeasibility claims the exact lattice solver *confirmed*: no
    /// allocation of the instance reaches positive φ₁ at the deadline.
    pub alloc_fallbacks_infeasible_proven: u64,
    /// Infeasibility claims the exact solver *refuted*: a feasible
    /// allocation existed and was served in place of the heuristic's.
    pub alloc_fallbacks_infeasible_heuristic: u64,
    /// Fallbacks absorbed for any other Stage-I failure.
    pub alloc_fallbacks_other: u64,
    /// Spec-expansion cache hits (submission reused an expanded
    /// `(batch, platform, key)` triple without regenerating it).
    pub spec_cache_hits: u64,
    /// Spec-expansion cache misses (fresh generator run + input hash).
    pub spec_cache_misses: u64,
    /// Allocation-result cache hits: `(engine key, deadline bits,
    /// allocator)` seen before, so no allocator or evaluator ran at all.
    pub alloc_cache_hits: u64,
    /// Allocation-result cache misses (the allocator actually ran).
    pub alloc_cache_misses: u64,
    /// Admission batch-depth histogram in log₂ buckets
    /// ([`DRAIN_DEPTH_BUCKETS`]): how many requests each queue drain
    /// coalesced into one batch.
    pub drain_depths: Vec<u64>,
    /// Pooled multi-start SA runs this shard executed.
    pub sa_multistart_runs: u64,
    /// Wins per SA restart-chain index (`sa_restart_wins[c]` counts runs
    /// chain `c` won) — evidence the extra restarts earn their keep.
    pub sa_restart_wins: Vec<u64>,
    /// Engines resident in the shard's LRU cache.
    pub cache_len: u64,
    /// The cache's entry bound.
    pub cache_capacity: u64,
    /// Exact-input cache hits (no kernel ran).
    pub cache_hits: u64,
    /// Cache misses (fresh engine builds).
    pub cache_misses: u64,
    /// Incremental engine rebuilds (`rebuild_with` reuse path).
    pub cache_rebuilds: u64,
    /// Requests that found their engine already built by an earlier
    /// request of the *same admission batch* — the work one
    /// `build_parallel` call absorbed on behalf of its whole group.
    pub coalesced: u64,
    /// Fresh `build_parallel` invocations.
    pub builds: u64,
    /// Work-stealing pool runs absorbed by this shard's builds.
    pub pool_runs: u64,
    /// Pool tasks executed, summed over runs and workers.
    pub pool_tasks_run: u64,
    /// Pool chunks stolen, summed over runs and workers.
    pub pool_chunks_stolen: u64,
}

impl ShardStats {
    /// Folds another shard's counters into this one (used for the
    /// service-wide totals row; `shard`/`cache_capacity` keep `self`'s).
    pub fn merge(&mut self, other: &ShardStats) {
        fn merge_hist(into: &mut Vec<u64>, from: &[u64]) {
            if into.len() < from.len() {
                into.resize(from.len(), 0);
            }
            for (a, b) in into.iter_mut().zip(from) {
                *a += b;
            }
        }
        self.tenants += other.tenants;
        self.submits += other.submits;
        self.injects += other.injects;
        self.snapshots += other.snapshots;
        self.restores += other.restores;
        self.errors += other.errors;
        self.alloc_fallbacks += other.alloc_fallbacks;
        self.alloc_fallbacks_infeasible += other.alloc_fallbacks_infeasible;
        self.alloc_fallbacks_infeasible_proven += other.alloc_fallbacks_infeasible_proven;
        self.alloc_fallbacks_infeasible_heuristic += other.alloc_fallbacks_infeasible_heuristic;
        self.alloc_fallbacks_other += other.alloc_fallbacks_other;
        self.spec_cache_hits += other.spec_cache_hits;
        self.spec_cache_misses += other.spec_cache_misses;
        self.alloc_cache_hits += other.alloc_cache_hits;
        self.alloc_cache_misses += other.alloc_cache_misses;
        merge_hist(&mut self.drain_depths, &other.drain_depths);
        self.sa_multistart_runs += other.sa_multistart_runs;
        merge_hist(&mut self.sa_restart_wins, &other.sa_restart_wins);
        self.cache_len += other.cache_len;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_rebuilds += other.cache_rebuilds;
        self.coalesced += other.coalesced;
        self.builds += other.builds;
        self.pool_runs += other.pool_runs;
        self.pool_tasks_run += other.pool_tasks_run;
        self.pool_chunks_stolen += other.pool_chunks_stolen;
    }

    /// Exact-hit rate over all cache lookups (`0.0` before any lookup).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Requests served per engine build (`1.0` before any build): the
    /// admission layer's coalescing factor.
    pub fn coalescing_factor(&self) -> f64 {
        if self.builds == 0 {
            1.0
        } else {
            (self.builds + self.coalesced) as f64 / self.builds as f64
        }
    }
}

impl Serialize for ShardStats {
    fn to_content(&self) -> serde::Content {
        let mut m: Vec<(String, serde::Content)> = Vec::with_capacity(29);
        // Omitted entirely (not `null`) on the totals row.
        if let Some(id) = self.shard {
            m.push(("shard".to_string(), id.to_content()));
        }
        m.push(("tenants".to_string(), self.tenants.to_content()));
        m.push(("submits".to_string(), self.submits.to_content()));
        m.push(("injects".to_string(), self.injects.to_content()));
        m.push(("snapshots".to_string(), self.snapshots.to_content()));
        m.push(("restores".to_string(), self.restores.to_content()));
        m.push(("errors".to_string(), self.errors.to_content()));
        m.push((
            "alloc_fallbacks".to_string(),
            self.alloc_fallbacks.to_content(),
        ));
        m.push((
            "alloc_fallbacks_infeasible".to_string(),
            self.alloc_fallbacks_infeasible.to_content(),
        ));
        m.push((
            "alloc_fallbacks_infeasible_proven".to_string(),
            self.alloc_fallbacks_infeasible_proven.to_content(),
        ));
        m.push((
            "alloc_fallbacks_infeasible_heuristic".to_string(),
            self.alloc_fallbacks_infeasible_heuristic.to_content(),
        ));
        m.push((
            "alloc_fallbacks_other".to_string(),
            self.alloc_fallbacks_other.to_content(),
        ));
        m.push((
            "spec_cache_hits".to_string(),
            self.spec_cache_hits.to_content(),
        ));
        m.push((
            "spec_cache_misses".to_string(),
            self.spec_cache_misses.to_content(),
        ));
        m.push((
            "alloc_cache_hits".to_string(),
            self.alloc_cache_hits.to_content(),
        ));
        m.push((
            "alloc_cache_misses".to_string(),
            self.alloc_cache_misses.to_content(),
        ));
        m.push(("drain_depths".to_string(), self.drain_depths.to_content()));
        m.push((
            "sa_multistart_runs".to_string(),
            self.sa_multistart_runs.to_content(),
        ));
        m.push((
            "sa_restart_wins".to_string(),
            self.sa_restart_wins.to_content(),
        ));
        m.push(("cache_len".to_string(), self.cache_len.to_content()));
        m.push((
            "cache_capacity".to_string(),
            self.cache_capacity.to_content(),
        ));
        m.push(("cache_hits".to_string(), self.cache_hits.to_content()));
        m.push(("cache_misses".to_string(), self.cache_misses.to_content()));
        m.push((
            "cache_rebuilds".to_string(),
            self.cache_rebuilds.to_content(),
        ));
        m.push(("coalesced".to_string(), self.coalesced.to_content()));
        m.push(("builds".to_string(), self.builds.to_content()));
        m.push(("pool_runs".to_string(), self.pool_runs.to_content()));
        m.push((
            "pool_tasks_run".to_string(),
            self.pool_tasks_run.to_content(),
        ));
        m.push((
            "pool_chunks_stolen".to_string(),
            self.pool_chunks_stolen.to_content(),
        ));
        serde::Content::Map(m)
    }
}

impl Deserialize for ShardStats {
    fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        let serde::Content::Map(entries) = content else {
            return Err(serde::DeError::custom(format!(
                "expected map for ShardStats, got {content:?}"
            )));
        };
        // Every counter defaults when absent, so schema-v1 payloads
        // (no histograms, no per-reason fallbacks) still parse.
        fn get<T: Deserialize + Default>(
            entries: &[(String, serde::Content)],
            name: &str,
        ) -> Result<T, serde::DeError> {
            match serde::__field(entries, name) {
                Some(c) => T::from_content(c),
                None => Ok(T::default()),
            }
        }
        Ok(ShardStats {
            shard: get(entries, "shard")?,
            tenants: get(entries, "tenants")?,
            submits: get(entries, "submits")?,
            injects: get(entries, "injects")?,
            snapshots: get(entries, "snapshots")?,
            restores: get(entries, "restores")?,
            errors: get(entries, "errors")?,
            alloc_fallbacks: get(entries, "alloc_fallbacks")?,
            alloc_fallbacks_infeasible: get(entries, "alloc_fallbacks_infeasible")?,
            alloc_fallbacks_infeasible_proven: get(entries, "alloc_fallbacks_infeasible_proven")?,
            alloc_fallbacks_infeasible_heuristic: get(
                entries,
                "alloc_fallbacks_infeasible_heuristic",
            )?,
            alloc_fallbacks_other: get(entries, "alloc_fallbacks_other")?,
            spec_cache_hits: get(entries, "spec_cache_hits")?,
            spec_cache_misses: get(entries, "spec_cache_misses")?,
            alloc_cache_hits: get(entries, "alloc_cache_hits")?,
            alloc_cache_misses: get(entries, "alloc_cache_misses")?,
            drain_depths: get(entries, "drain_depths")?,
            sa_multistart_runs: get(entries, "sa_multistart_runs")?,
            sa_restart_wins: get(entries, "sa_restart_wins")?,
            cache_len: get(entries, "cache_len")?,
            cache_capacity: get(entries, "cache_capacity")?,
            cache_hits: get(entries, "cache_hits")?,
            cache_misses: get(entries, "cache_misses")?,
            cache_rebuilds: get(entries, "cache_rebuilds")?,
            coalesced: get(entries, "coalesced")?,
            builds: get(entries, "builds")?,
            pool_runs: get(entries, "pool_runs")?,
            pool_tasks_run: get(entries, "pool_tasks_run")?,
            pool_chunks_stolen: get(entries, "pool_chunks_stolen")?,
        })
    }
}

/// Reply-path codec counters, aggregated over every connection writer.
/// The pre-pipeline data plane paid one `String` allocation and one
/// socket flush per reply; after it, `reply_frames` replies were encoded
/// into retained per-connection buffers (`reply_frames` Strings saved)
/// and drained in `flushes` flushes (`reply_frames - flushes` syscall
/// round-trips saved).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CodecStats {
    /// Reply bytes written (JSON lines, newline included).
    pub reply_bytes: u64,
    /// Reply frames encoded into retained buffers.
    pub reply_frames: u64,
    /// Socket flushes issued (one per drained burst, not per reply).
    pub flushes: u64,
}

/// Reply to [`Request::Stats`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsReply {
    /// Worker shards configured.
    pub shards: u64,
    /// Per-shard counters, shard-index order.
    pub per_shard: Vec<ShardStats>,
    /// The sum across shards.
    pub total: ShardStats,
    /// Reply-codec counters across all connection writers.
    #[serde(default)]
    pub codec: CodecStats,
    /// Content-addressed cell store counters — one store is shared by
    /// every shard, so these are service-wide, not per shard.
    #[serde(default)]
    pub cell_store: cdsf_ra::CellStoreStats,
}

/// A server response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Answer to `Submit`.
    Submit(SubmitReply),
    /// Answer to `Inject`.
    Inject(InjectReply),
    /// Answer to `Snapshot`.
    Snapshot {
        /// The captured state.
        snapshot: TenantSnapshot,
    },
    /// Answer to `Restore`.
    Restored(RestoreReply),
    /// Answer to `Fingerprint`.
    Fingerprint(FingerprintReply),
    /// Answer to `Stats`.
    Stats(StatsReply),
    /// Answer to `Shutdown` — the last line the server writes.
    Bye,
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

/// A borrowed, serialize-only view of the hot [`Response`] variants.
///
/// Variant and field names mirror [`Response`] exactly, and the vendored
/// `serde_json` emits identical bytes for a borrowed `&str`/slice and its
/// owned counterpart — so `encode_line(buf, &view)` produces the same
/// line `encode_line(buf, &response)` would, without ever cloning the
/// tenant id, error message, or result vectors into an owned `Response`.
/// The server's own data plane gets zero-clone replies by *moving* owned
/// strings out of the request; this view is for encoders that only hold
/// borrows (in-process embedders, benches, golden tests).
#[derive(Debug)]
pub enum ResponseView<'a> {
    /// Borrowed form of [`Response::Submit`].
    Submit(SubmitReplyView<'a>),
    /// Borrowed form of [`Response::Error`].
    Error {
        /// Human-readable cause.
        message: Cow<'a, str>,
    },
}

/// Borrowed form of [`SubmitReply`]: same field names, identical bytes.
#[derive(Debug)]
pub struct SubmitReplyView<'a> {
    /// Echoed tenant.
    pub tenant: Cow<'a, str>,
    /// Input fingerprint of the engine that served this request.
    pub engine_key: u64,
    /// The Stage-I allocation, one assignment per application.
    pub assignments: &'a [WireAssignment],
    /// Per-application `Pr(T_i ≤ Δ)` under the allocation.
    pub per_app_phi1: &'a [f64],
    /// Per-application expected completion times.
    pub expected_times: &'a [f64],
    /// The verdict (joint φ₁ and threshold call).
    pub verdict: &'a RobustVerdict,
}

// The stand-in derive does not take lifetime-generic types, so the views
// spell out the same external conventions the derive uses: newtype
// variant -> single-entry object, struct variant -> single-entry object
// of a field map, fields in declaration order.
impl Serialize for ResponseView<'_> {
    fn to_content(&self) -> serde::Content {
        match self {
            ResponseView::Submit(v) => {
                serde::Content::Map(vec![("Submit".to_string(), v.to_content())])
            }
            ResponseView::Error { message } => serde::Content::Map(vec![(
                "Error".to_string(),
                serde::Content::Map(vec![("message".to_string(), message.as_ref().to_content())]),
            )]),
        }
    }
}

impl Serialize for SubmitReplyView<'_> {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![
            ("tenant".to_string(), self.tenant.as_ref().to_content()),
            ("engine_key".to_string(), self.engine_key.to_content()),
            ("assignments".to_string(), self.assignments.to_content()),
            ("per_app_phi1".to_string(), self.per_app_phi1.to_content()),
            (
                "expected_times".to_string(),
                self.expected_times.to_content(),
            ),
            ("verdict".to_string(), self.verdict.to_content()),
        ])
    }
}

/// Serializes one message as a JSON line appended to `buf` (no flush, no
/// intermediate `String`). Callers that retain `buf` across calls pay
/// zero allocations per line once the buffer has grown to the working
/// line length; the bytes are identical to `serde_json::to_string` + `\n`
/// (`to_writer` and `to_string` share one serializer).
pub fn encode_line<T: Serialize>(buf: &mut Vec<u8>, msg: &T) -> std::io::Result<()> {
    serde_json::to_writer(&mut *buf, msg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    buf.push(b'\n');
    Ok(())
}

/// Writes one message as a JSON line and flushes it — the lockstep
/// (request/reply) convenience used by [`crate::Client`] and tests. The
/// pipelined server writer uses [`encode_line`] into a retained buffer
/// with one flush per burst instead.
pub fn write_line<T: Serialize, W: Write>(w: &mut W, msg: &T) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(256);
    encode_line(&mut buf, msg)?;
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one JSON line into the caller's retained `line` buffer;
/// `Ok(None)` on a clean EOF. Reusing `line` across calls keeps the
/// read path allocation-free in steady state.
pub fn read_line_into<T: serde::Deserialize, R: BufRead>(
    r: &mut R,
    line: &mut String,
) -> std::io::Result<Option<Result<T, String>>> {
    loop {
        line.clear();
        if r.read_line(line)? == 0 {
            return Ok(None);
        }
        if !line.trim().is_empty() {
            break;
        }
    }
    Ok(Some(
        serde_json::from_str(line.trim()).map_err(|e| e.to_string()),
    ))
}

/// Reads one JSON line; `Ok(None)` on a clean EOF.
pub fn read_line<T: serde::Deserialize, R: BufRead>(
    r: &mut R,
) -> std::io::Result<Option<Result<T, String>>> {
    let mut line = String::new();
    read_line_into(r, &mut line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json_lines() {
        let reqs = vec![
            Request::Submit(SubmitRequest {
                tenant: "acme".into(),
                spec: WorkloadSpec::simple(4, 3, 8, 42),
                deadline: 2_800.0,
                allocator: Some("sufferage".into()),
                threshold: None,
                qos: Some("guaranteed".into()),
            }),
            Request::Inject(InjectRequest {
                tenant: "acme".into(),
                event: TenantEvent::Degrade {
                    proc_type: 1,
                    factor: 0.5,
                },
            }),
            Request::Snapshot {
                tenant: "acme".into(),
            },
            Request::Stats,
            Request::Shutdown,
        ];
        let mut buf = Vec::new();
        for r in &reqs {
            write_line(&mut buf, r).unwrap();
        }
        let mut rd = std::io::BufReader::new(buf.as_slice());
        let mut back = Vec::new();
        while let Some(parsed) = read_line::<Request, _>(&mut rd).unwrap() {
            back.push(parsed.expect("parses"));
        }
        assert_eq!(back.len(), reqs.len());
        match (&back[0], &reqs[0]) {
            (Request::Submit(a), Request::Submit(b)) => {
                assert_eq!(a.tenant, b.tenant);
                assert_eq!(a.spec.seed, b.spec.seed);
                assert_eq!(a.deadline.to_bits(), b.deadline.to_bits());
                assert_eq!(a.allocator, b.allocator);
                assert!(a.threshold.is_none());
                assert_eq!(a.qos, b.qos);
            }
            _ => panic!("variant changed in transit"),
        }
        assert!(matches!(back[4], Request::Shutdown));
    }

    #[test]
    fn v1_submit_without_qos_still_parses() {
        // A pre-QoS client's payload (no `qos` key) must keep parsing,
        // defaulting to the probabilistic tier.
        let line = r#"{"Submit":{"tenant":"acme","spec":{"apps":3,"types":2,"pulses":6,"seed":1},"deadline":2800.0,"allocator":null,"threshold":null}}"#;
        let req: Request = serde_json::from_str(line).unwrap();
        let Request::Submit(s) = req else {
            panic!("expected submit");
        };
        assert_eq!(s.qos, None);
    }

    #[test]
    fn encode_line_matches_write_line_bytes() {
        let resp = Response::Submit(SubmitReply {
            tenant: "acme".into(),
            engine_key: 0xDEAD_BEEF,
            assignments: vec![WireAssignment {
                proc_type: 1,
                procs: 4,
            }],
            per_app_phi1: vec![0.25, 0.1 + 0.2], // non-representable bits
            expected_times: vec![1_234.567_89],
            verdict: RobustVerdict {
                phi1: 0.075,
                threshold: 0.8,
                robust: false,
                guaranteed_tier: None,
            },
        });
        let mut via_write = Vec::new();
        write_line(&mut via_write, &resp).unwrap();
        let mut via_encode = Vec::with_capacity(8); // forces regrowth
        encode_line(&mut via_encode, &resp).unwrap();
        assert_eq!(via_write, via_encode);
        // A retained buffer appends, preserving earlier lines.
        encode_line(&mut via_encode, &resp).unwrap();
        assert_eq!(via_encode.len(), 2 * via_write.len());
    }

    #[test]
    fn borrowed_response_view_serializes_byte_identically() {
        let owned = Response::Submit(SubmitReply {
            tenant: "tenant-007".into(),
            engine_key: 42,
            assignments: vec![
                WireAssignment {
                    proc_type: 0,
                    procs: 2,
                },
                WireAssignment {
                    proc_type: 2,
                    procs: 1,
                },
            ],
            per_app_phi1: vec![0.9, 0.99],
            expected_times: vec![100.5, 7.0 / 3.0],
            verdict: RobustVerdict {
                phi1: 0.891,
                threshold: 0.8,
                robust: true,
                guaranteed_tier: None,
            },
        });
        let Response::Submit(reply) = &owned else {
            unreachable!()
        };
        let view = ResponseView::Submit(SubmitReplyView {
            tenant: Cow::Borrowed(&reply.tenant),
            engine_key: reply.engine_key,
            assignments: &reply.assignments,
            per_app_phi1: &reply.per_app_phi1,
            expected_times: &reply.expected_times,
            verdict: &reply.verdict,
        });
        let (mut a, mut b) = (Vec::new(), Vec::new());
        encode_line(&mut a, &owned).unwrap();
        encode_line(&mut b, &view).unwrap();
        assert_eq!(a, b, "borrowed view changed the wire bytes");

        let owned_err = Response::Error {
            message: "bad request line: trailing garbage".into(),
        };
        let view_err = ResponseView::Error {
            message: Cow::Borrowed("bad request line: trailing garbage"),
        };
        let (mut a, mut b) = (Vec::new(), Vec::new());
        encode_line(&mut a, &owned_err).unwrap();
        encode_line(&mut b, &view_err).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn totals_row_omits_the_shard_field() {
        let mut total = ShardStats::default();
        total.merge(&ShardStats {
            shard: Some(0),
            submits: 3,
            drain_depths: vec![1, 2],
            sa_restart_wins: vec![0, 1, 0, 0],
            ..ShardStats::default()
        });
        total.merge(&ShardStats {
            shard: Some(1),
            submits: 4,
            drain_depths: vec![5],
            sa_restart_wins: vec![2],
            ..ShardStats::default()
        });
        assert_eq!(total.shard, None);
        assert_eq!(total.submits, 7);
        assert_eq!(total.drain_depths, vec![6, 2]);
        assert_eq!(total.sa_restart_wins, vec![2, 1, 0, 0]);
        let json = serde_json::to_string(&total).unwrap();
        assert!(
            !json.contains("18446744073709551615") && !json.contains("\"shard\""),
            "totals row must not serialize a shard id: {json}"
        );
        // Old v1 payloads (no histograms, numeric shard) still parse.
        let back: ShardStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.shard, None);
        let per_shard: ShardStats = serde_json::from_str(
            &serde_json::to_string(&ShardStats {
                shard: Some(3),
                ..ShardStats::default()
            })
            .unwrap(),
        )
        .unwrap();
        assert_eq!(per_shard.shard, Some(3));
    }

    #[test]
    fn verdict_keeps_reserved_tier_slot() {
        let v = RobustVerdict {
            phi1: 0.91,
            threshold: 0.8,
            robust: true,
            guaranteed_tier: None,
        };
        let json = serde_json::to_string(&v).unwrap();
        let back: RobustVerdict = serde_json::from_str(&json).unwrap();
        assert_eq!(back.phi1.to_bits(), v.phi1.to_bits());
        assert!(back.guaranteed_tier.is_none());
    }
}
