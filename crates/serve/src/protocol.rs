//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response per line, answered in request
//! order per connection. The encoding is the workspace's vendored
//! `serde`/`serde_json` pair with `float_roundtrip`, so every `f64`
//! survives the wire bit-exactly — the same property that makes the
//! event log byte-replayable makes snapshots transported through this
//! protocol restore to byte-identical engine state.
//!
//! The response schema is deliberately extensible: the
//! [`RobustVerdict`] carries a reserved `guaranteed_tier` slot for the
//! Γ-robust "guaranteed" QoS tier (worst-case feasibility within a
//! budgeted availability-degradation set, ROADMAP item 5) next to the
//! probabilistic φ₁ verdict served today.

use crate::tenant::{TenantEvent, TenantSnapshot, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// A client request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Submit a batch-scheduling workload: allocate, score, verdict.
    Submit(SubmitRequest),
    /// Inject a fault/drift event into a tenant's live workload and
    /// reactively remap through the incremental engine rebuild.
    Inject(InjectRequest),
    /// Capture a tenant's full durable state.
    Snapshot {
        /// The tenant to snapshot.
        tenant: String,
    },
    /// Re-create a tenant from a snapshot (possibly on a fresh server).
    Restore {
        /// The state to restore.
        snapshot: TenantSnapshot,
    },
    /// Digest of the tenant's current Stage-I engine tables.
    Fingerprint {
        /// The tenant to fingerprint.
        tenant: String,
    },
    /// Service-wide counters, aggregated across shards.
    Stats,
    /// Stop accepting connections and shut the shards down cleanly.
    Shutdown,
}

impl Request {
    /// The tenant this request must be routed by, if it is tenant-scoped.
    pub fn tenant(&self) -> Option<&str> {
        match self {
            Request::Submit(r) => Some(&r.tenant),
            Request::Inject(r) => Some(&r.tenant),
            Request::Snapshot { tenant } | Request::Fingerprint { tenant } => Some(tenant),
            Request::Restore { snapshot } => Some(&snapshot.tenant),
            Request::Stats | Request::Shutdown => None,
        }
    }
}

/// `Submit`: schedule a seeded synthetic workload for a tenant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmitRequest {
    /// Tenant identity (shard routing key).
    pub tenant: String,
    /// The workload, as a deterministic generator spec.
    pub spec: WorkloadSpec,
    /// Common deadline Δ.
    pub deadline: f64,
    /// Stage-I allocator name (`sufferage`, `greedy-max-robust`, `sa`,
    /// …); the server default when absent.
    pub allocator: Option<String>,
    /// φ₁ level above which the verdict reports `robust`; the server
    /// default when absent.
    pub threshold: Option<f64>,
}

/// `Inject`: a disruption to an already-submitted tenant workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InjectRequest {
    /// Tenant identity (shard routing key).
    pub tenant: String,
    /// What happened.
    pub event: TenantEvent,
}

/// One `(processor type, power-of-two count)` assignment on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireAssignment {
    /// Processor-type index.
    pub proc_type: usize,
    /// Processors assigned (a power of two).
    pub procs: u32,
}

/// The per-request robustness verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobustVerdict {
    /// Joint deadline probability `φ₁ = Π_i Pr(T_i ≤ Δ)`.
    pub phi1: f64,
    /// The level `phi1` was judged against.
    pub threshold: f64,
    /// `phi1 ≥ threshold`.
    pub robust: bool,
    /// Reserved: worst-case feasibility under a budgeted availability
    /// uncertainty set (the Γ-robust "guaranteed tier"). Always `None`
    /// until that allocator lands; kept in the schema so clients can
    /// depend on its presence.
    pub guaranteed_tier: Option<bool>,
}

/// Reply to [`Request::Submit`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmitReply {
    /// Echoed tenant.
    pub tenant: String,
    /// Input fingerprint of the engine that served this request.
    pub engine_key: u64,
    /// The Stage-I allocation, one assignment per application.
    pub assignments: Vec<WireAssignment>,
    /// Per-application `Pr(T_i ≤ Δ)` under the allocation.
    pub per_app_phi1: Vec<f64>,
    /// Per-application expected completion times.
    pub expected_times: Vec<f64>,
    /// The verdict (joint φ₁ and threshold call).
    pub verdict: RobustVerdict,
}

/// Reply to [`Request::Inject`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InjectReply {
    /// Echoed tenant.
    pub tenant: String,
    /// Input fingerprint of the rebuilt engine.
    pub engine_key: u64,
    /// Cells the incremental rebuild carried over bit-identically.
    pub reused_cells: u64,
    /// The post-event reactive allocation.
    pub assignments: Vec<WireAssignment>,
    /// Per-application `Pr(T_i ≤ Δ)` under the new allocation.
    pub per_app_phi1: Vec<f64>,
    /// The post-event verdict.
    pub verdict: RobustVerdict,
}

/// Reply to [`Request::Restore`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RestoreReply {
    /// Echoed tenant.
    pub tenant: String,
    /// Input fingerprint of the restored engine.
    pub engine_key: u64,
    /// Digest of the restored engine's tables (equal to the digest the
    /// snapshotted server would report — restores are bit-exact).
    pub fingerprint: u64,
}

/// Reply to [`Request::Fingerprint`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FingerprintReply {
    /// Echoed tenant.
    pub tenant: String,
    /// Input fingerprint of the tenant's current engine.
    pub engine_key: u64,
    /// Digest of the engine's tables ([`cdsf_ra::Phi1Engine::table_fingerprint`]).
    pub fingerprint: u64,
}

/// One shard's counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: u64,
    /// Tenants resident on this shard.
    pub tenants: u64,
    /// `Submit` requests served.
    pub submits: u64,
    /// `Inject` requests served.
    pub injects: u64,
    /// `Snapshot` requests served.
    pub snapshots: u64,
    /// `Restore` requests served.
    pub restores: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Allocations that fell back to equal-share after the requested
    /// heuristic found no feasible packing.
    pub alloc_fallbacks: u64,
    /// Engines resident in the shard's LRU cache.
    pub cache_len: u64,
    /// The cache's entry bound.
    pub cache_capacity: u64,
    /// Exact-input cache hits (no kernel ran).
    pub cache_hits: u64,
    /// Cache misses (fresh engine builds).
    pub cache_misses: u64,
    /// Incremental engine rebuilds (`rebuild_with` reuse path).
    pub cache_rebuilds: u64,
    /// Requests that found their engine already built by an earlier
    /// request of the *same admission batch* — the work one
    /// `build_parallel` call absorbed on behalf of its whole group.
    pub coalesced: u64,
    /// Fresh `build_parallel` invocations.
    pub builds: u64,
    /// Work-stealing pool runs absorbed by this shard's builds.
    pub pool_runs: u64,
    /// Pool tasks executed, summed over runs and workers.
    pub pool_tasks_run: u64,
    /// Pool chunks stolen, summed over runs and workers.
    pub pool_chunks_stolen: u64,
}

impl ShardStats {
    /// Folds another shard's counters into this one (used for the
    /// service-wide totals row; `shard`/`cache_capacity` keep `self`'s).
    pub fn merge(&mut self, other: &ShardStats) {
        self.tenants += other.tenants;
        self.submits += other.submits;
        self.injects += other.injects;
        self.snapshots += other.snapshots;
        self.restores += other.restores;
        self.errors += other.errors;
        self.alloc_fallbacks += other.alloc_fallbacks;
        self.cache_len += other.cache_len;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_rebuilds += other.cache_rebuilds;
        self.coalesced += other.coalesced;
        self.builds += other.builds;
        self.pool_runs += other.pool_runs;
        self.pool_tasks_run += other.pool_tasks_run;
        self.pool_chunks_stolen += other.pool_chunks_stolen;
    }

    /// Exact-hit rate over all cache lookups (`0.0` before any lookup).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Requests served per engine build (`1.0` before any build): the
    /// admission layer's coalescing factor.
    pub fn coalescing_factor(&self) -> f64 {
        if self.builds == 0 {
            1.0
        } else {
            (self.builds + self.coalesced) as f64 / self.builds as f64
        }
    }
}

/// Reply to [`Request::Stats`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsReply {
    /// Worker shards configured.
    pub shards: u64,
    /// Per-shard counters, shard-index order.
    pub per_shard: Vec<ShardStats>,
    /// The sum across shards.
    pub total: ShardStats,
}

/// A server response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Answer to `Submit`.
    Submit(SubmitReply),
    /// Answer to `Inject`.
    Inject(InjectReply),
    /// Answer to `Snapshot`.
    Snapshot {
        /// The captured state.
        snapshot: TenantSnapshot,
    },
    /// Answer to `Restore`.
    Restored(RestoreReply),
    /// Answer to `Fingerprint`.
    Fingerprint(FingerprintReply),
    /// Answer to `Stats`.
    Stats(StatsReply),
    /// Answer to `Shutdown` — the last line the server writes.
    Bye,
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

/// Writes one message as a JSON line and flushes it.
pub fn write_line<T: Serialize, W: Write>(w: &mut W, msg: &T) -> std::io::Result<()> {
    let json = serde_json::to_string(msg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    w.write_all(json.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Reads one JSON line; `Ok(None)` on a clean EOF.
pub fn read_line<T: serde::Deserialize, R: BufRead>(
    r: &mut R,
) -> std::io::Result<Option<Result<T, String>>> {
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        if !line.trim().is_empty() {
            break;
        }
    }
    Ok(Some(
        serde_json::from_str(line.trim()).map_err(|e| e.to_string()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json_lines() {
        let reqs = vec![
            Request::Submit(SubmitRequest {
                tenant: "acme".into(),
                spec: WorkloadSpec {
                    apps: 4,
                    types: 3,
                    pulses: 8,
                    seed: 42,
                },
                deadline: 2_800.0,
                allocator: Some("sufferage".into()),
                threshold: None,
            }),
            Request::Inject(InjectRequest {
                tenant: "acme".into(),
                event: TenantEvent::Degrade {
                    proc_type: 1,
                    factor: 0.5,
                },
            }),
            Request::Snapshot {
                tenant: "acme".into(),
            },
            Request::Stats,
            Request::Shutdown,
        ];
        let mut buf = Vec::new();
        for r in &reqs {
            write_line(&mut buf, r).unwrap();
        }
        let mut rd = std::io::BufReader::new(buf.as_slice());
        let mut back = Vec::new();
        while let Some(parsed) = read_line::<Request, _>(&mut rd).unwrap() {
            back.push(parsed.expect("parses"));
        }
        assert_eq!(back.len(), reqs.len());
        match (&back[0], &reqs[0]) {
            (Request::Submit(a), Request::Submit(b)) => {
                assert_eq!(a.tenant, b.tenant);
                assert_eq!(a.spec.seed, b.spec.seed);
                assert_eq!(a.deadline.to_bits(), b.deadline.to_bits());
                assert_eq!(a.allocator, b.allocator);
                assert!(a.threshold.is_none());
            }
            _ => panic!("variant changed in transit"),
        }
        assert!(matches!(back[4], Request::Shutdown));
    }

    #[test]
    fn verdict_keeps_reserved_tier_slot() {
        let v = RobustVerdict {
            phi1: 0.91,
            threshold: 0.8,
            robust: true,
            guaranteed_tier: None,
        };
        let json = serde_json::to_string(&v).unwrap();
        let back: RobustVerdict = serde_json::from_str(&json).unwrap();
        assert_eq!(back.phi1.to_bits(), v.phi1.to_bits());
        assert!(back.guaranteed_tier.is_none());
    }
}
