//! The TCP front end: accept loop, per-connection threads, shard router.
//!
//! Plain `std::net` — one listener thread accepting connections, two
//! threads per connection (a reader and a writer), N shard threads doing
//! the scheduling work. Connection threads never compute anything.
//!
//! **Pipelined connections.** The reader parses each JSON line, stamps
//! it with its position in the connection's request order, and forwards
//! it to the owning shard's queue *without waiting for the reply* — a
//! client may have any number of requests in flight on one connection.
//! Shards answer onto the connection's frame channel as they finish;
//! the writer thread re-sequences frames with a [`std::collections::BTreeMap`]
//! keyed by sequence number and writes every reply in request order, so
//! the wire contract (replies in request order per connection) is
//! unchanged from the lockstep server. Per-tenant ordering stays total
//! because one shard owns a tenant and the reader enqueues in read order.
//!
//! **Batched reply codec.** The writer encodes each contiguous run of
//! ready frames into one retained byte buffer ([`encode_line`], no
//! intermediate `String`s) and issues a single `write_all` + `flush` per
//! burst rather than per reply. Snapshot serialization — the largest
//! reply by far — therefore happens here, off the shard loop. Aggregate
//! codec counters (bytes, frames, flushes) surface in
//! [`StatsReply::codec`].
//!
//! Shutdown: `Shutdown` flips an atomic flag and pokes the listener with
//! a throwaway self-connection so `accept` returns; the accept loop then
//! exits, shard queues get `Stop`, and [`Server::wait`] joins everything
//! and returns the final service-wide stats.

use crate::protocol::{
    encode_line, read_line_into, CodecStats, Request, Response, ShardStats, StatsReply,
};
use crate::shard::{run_shard, shard_of, ConnFrame, ReplyTo, ServeConfig, ShardCore, ShardMsg};
use std::collections::BTreeMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Reply-codec counters shared by every connection writer.
#[derive(Default)]
struct CodecCounters {
    reply_bytes: AtomicU64,
    reply_frames: AtomicU64,
    flushes: AtomicU64,
}

impl CodecCounters {
    fn record(&self, bytes: u64, frames: u64) {
        self.reply_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.reply_frames.fetch_add(frames, Ordering::Relaxed);
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> CodecStats {
        CodecStats {
            reply_bytes: self.reply_bytes.load(Ordering::Relaxed),
            reply_frames: self.reply_frames.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
        }
    }
}

/// Routes requests to shard queues. Cheap to clone — one per connection
/// thread, plus one kept by the [`Server`] for its own shutdown path.
#[derive(Clone)]
pub struct Router {
    shards: Vec<mpsc::Sender<ShardMsg>>,
    shutdown: Arc<AtomicBool>,
    codec: Arc<CodecCounters>,
    cell_store: Arc<cdsf_ra::CellStore>,
    addr: SocketAddr,
}

impl Router {
    /// Serves one request to completion, whichever shard owns it — the
    /// synchronous in-process path (tests, embedders). TCP connections
    /// use the pipelined frame path instead.
    pub fn route(&self, req: Request) -> Response {
        match req.tenant() {
            Some(tenant) => {
                let shard = shard_of(tenant, self.shards.len());
                let (tx, rx) = mpsc::channel();
                if self.shards[shard]
                    .send(ShardMsg::Req(req, ReplyTo::Sync(tx)))
                    .is_err()
                {
                    return Response::Error {
                        message: "shard is down".to_string(),
                    };
                }
                rx.recv().unwrap_or(Response::Error {
                    message: "shard dropped the request".to_string(),
                })
            }
            None => match req {
                Request::Stats => Response::Stats(self.gather_stats()),
                Request::Shutdown => {
                    self.begin_shutdown();
                    Response::Bye
                }
                _ => Response::Error {
                    message: "unroutable request".to_string(),
                },
            },
        }
    }

    /// Collects and aggregates every shard's counters.
    pub fn gather_stats(&self) -> StatsReply {
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (tx, rx) = mpsc::channel();
            if shard.send(ShardMsg::Stats(tx)).is_ok() {
                if let Ok(stats) = rx.recv() {
                    per_shard.push(stats);
                }
            }
        }
        // The totals row carries no shard index (`shard: None`).
        let mut total = ShardStats::default();
        for s in &per_shard {
            total.merge(s);
        }
        StatsReply {
            shards: self.shards.len() as u64,
            per_shard,
            total,
            codec: self.codec.snapshot(),
            cell_store: self.cell_store.stats(),
        }
    }

    /// Flips the shutdown flag and unblocks the accept loop.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // The accept loop is blocked in `accept`; a throwaway
            // connection makes it return and observe the flag.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A running scheduling service.
pub struct Server {
    addr: SocketAddr,
    router: Router,
    accept_handle: Option<JoinHandle<()>>,
    shard_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use `"127.0.0.1:0"` for an ephemeral port), spawns
    /// the shard and accept threads, and starts serving immediately.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: ServeConfig) -> io::Result<Server> {
        let cfg = cfg.normalized();
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;

        // One content-addressed cell store serves every shard: a PMF
        // cell interned by any tenant's build is reused by all of them.
        let cell_store = Arc::new(cdsf_ra::CellStore::new(cfg.cell_store_capacity));
        let mut senders = Vec::with_capacity(cfg.shards);
        let mut shard_handles = Vec::with_capacity(cfg.shards);
        for id in 0..cfg.shards {
            let (tx, rx) = mpsc::channel::<ShardMsg>();
            senders.push(tx);
            let cfg = cfg.clone();
            let store = Arc::clone(&cell_store);
            shard_handles.push(
                std::thread::Builder::new()
                    .name(format!("cdsf-shard-{id}"))
                    .spawn(move || {
                        let mut core = ShardCore::with_store(id, cfg, store);
                        run_shard(&mut core, &rx);
                    })?,
            );
        }

        let router = Router {
            shards: senders,
            shutdown: Arc::new(AtomicBool::new(false)),
            codec: Arc::new(CodecCounters::default()),
            cell_store,
            addr,
        };

        let accept_router = router.clone();
        let conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = std::thread::Builder::new()
            .name("cdsf-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_router.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let router = accept_router.clone();
                    if let Ok(handle) = std::thread::Builder::new()
                        .name("cdsf-conn".to_string())
                        .spawn(move || serve_connection(stream, &router))
                    {
                        let mut handles = conn_handles.lock().expect("connection registry");
                        handles.push(handle);
                        // Reap finished connections so a long-lived server
                        // does not accumulate dead handles.
                        let (done, live): (Vec<_>, Vec<_>) =
                            handles.drain(..).partition(|h| h.is_finished());
                        for h in done {
                            let _ = h.join();
                        }
                        *handles = live;
                    }
                }
                // Drain the remaining connection threads before exiting so
                // `wait` observes a fully quiescent service.
                let handles = std::mem::take(&mut *conn_handles.lock().expect("registry"));
                for h in handles {
                    let _ = h.join();
                }
            })?;

        Ok(Server {
            addr,
            router,
            accept_handle: Some(accept_handle),
            shard_handles,
        })
    }

    /// The bound address (the actual port when bound ephemerally).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A router handle for driving the server in-process (no socket).
    pub fn router(&self) -> Router {
        self.router.clone()
    }

    /// Requests shutdown as if a client had sent [`Request::Shutdown`].
    pub fn shutdown(&self) {
        self.router.begin_shutdown();
    }

    /// Blocks until the accept loop exits (a client sent `Shutdown`, or
    /// [`Server::shutdown`] ran), then stops the shards and returns the
    /// final service-wide stats.
    pub fn wait(mut self) -> StatsReply {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let stats = self.router.gather_stats();
        for shard in &self.router.shards {
            let _ = shard.send(ShardMsg::Stop);
        }
        for h in self.shard_handles.drain(..) {
            let _ = h.join();
        }
        stats
    }
}

/// One connection's reader half: parse each line, stamp it with its
/// sequence number, and forward it — tenant-scoped requests go to their
/// shard's queue without blocking; control requests and parse errors are
/// answered directly onto the frame channel (still in sequence, so the
/// writer interleaves them correctly with in-flight shard replies). On
/// EOF the frame channel is dropped and the writer joined.
fn serve_connection(stream: TcpStream, router: &Router) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<ConnFrame>();
    let codec = Arc::clone(&router.codec);
    let Ok(writer) = std::thread::Builder::new()
        .name("cdsf-conn-writer".to_string())
        .spawn(move || connection_writer(write_half, &rx, &codec))
    else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut seq: u64 = 0;
    while let Ok(Some(parsed)) = read_line_into::<Request, _>(&mut reader, &mut line) {
        let mut last = false;
        match parsed {
            Ok(req) => match req.tenant() {
                Some(tenant) => {
                    let shard = shard_of(tenant, router.shards.len());
                    let framed = ReplyTo::Framed {
                        seq,
                        tx: tx.clone(),
                    };
                    if let Err(mpsc::SendError(ShardMsg::Req(_, to))) =
                        router.shards[shard].send(ShardMsg::Req(req, framed))
                    {
                        to.send(Response::Error {
                            message: "shard is down".to_string(),
                        });
                    }
                }
                None => {
                    let resp = match req {
                        Request::Stats => Response::Stats(router.gather_stats()),
                        Request::Shutdown => {
                            router.begin_shutdown();
                            last = true;
                            Response::Bye
                        }
                        _ => Response::Error {
                            message: "unroutable request".to_string(),
                        },
                    };
                    let _ = tx.send(ConnFrame { seq, resp, last });
                }
            },
            Err(e) => {
                let _ = tx.send(ConnFrame {
                    seq,
                    resp: Response::Error {
                        message: format!("bad request line: {e}"),
                    },
                    last: false,
                });
            }
        }
        seq += 1;
        if last {
            break;
        }
    }
    drop(tx);
    let _ = writer.join();
}

/// One connection's writer half: re-sequence reply frames and write each
/// contiguous run as a single buffered burst.
///
/// Frames may arrive out of request order (different shards finish at
/// different times); `pending` holds them until the next expected
/// sequence number shows up. Each iteration blocks for one frame,
/// absorbs whatever else is already queued, encodes the ready run into
/// the retained buffer, and issues one `write_all` + `flush`. A gap in
/// the run is never a deadlock: the missing sequence number is in flight
/// at a shard (or the reader), and `recv` will deliver it. Exits after
/// writing a frame marked `last` (`Bye`), or when every sender
/// (reader + shards) has hung up.
fn connection_writer(
    stream: TcpStream,
    rx: &mpsc::Receiver<ConnFrame>,
    codec: &CodecCounters,
) -> io::Result<()> {
    let mut w = BufWriter::new(stream);
    let mut pending: BTreeMap<u64, ConnFrame> = BTreeMap::new();
    let mut next_seq: u64 = 0;
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    loop {
        let Ok(frame) = rx.recv() else {
            return Ok(());
        };
        pending.insert(frame.seq, frame);
        while let Ok(f) = rx.try_recv() {
            pending.insert(f.seq, f);
        }
        buf.clear();
        let mut frames: u64 = 0;
        let mut done = false;
        while let Some(f) = pending.remove(&next_seq) {
            next_seq += 1;
            encode_line(&mut buf, &f.resp)?;
            frames += 1;
            if f.last {
                done = true;
                break;
            }
        }
        if frames > 0 {
            w.write_all(&buf)?;
            w.flush()?;
            codec.record(buf.len() as u64, frames);
        }
        if done {
            return Ok(());
        }
    }
}

/// A blocking client speaking the line protocol over one connection.
///
/// [`Client::request`] is the lockstep convenience; for pipelining, queue
/// any number of [`Client::send`]s, [`Client::flush`], then drain with
/// [`Client::recv`] — the server answers in send order.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    buf: Vec<u8>,
    line: String,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            buf: Vec::with_capacity(256),
            line: String::new(),
        })
    }

    /// Queues one request without flushing (pipelining path).
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.buf.clear();
        encode_line(&mut self.buf, req)?;
        self.writer.write_all(&self.buf)
    }

    /// Pushes every queued request to the server.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Blocks for the next in-order reply (flushes queued requests
    /// first, so a bare `send` + `recv` cannot deadlock).
    pub fn recv(&mut self) -> io::Result<Response> {
        self.writer.flush()?;
        match read_line_into::<Response, _>(&mut self.reader, &mut self.line)? {
            Some(Ok(resp)) => Ok(resp),
            Some(Err(e)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unparseable response: {e}"),
            )),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
        }
    }

    /// Sends one request and blocks for its reply (lockstep).
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        self.send(req)?;
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_line, write_line};

    #[test]
    fn write_line_and_read_line_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_line(&mut buf, &Request::Stats).unwrap();
        let mut rd = BufReader::new(buf.as_slice());
        let parsed = read_line::<Request, _>(&mut rd).unwrap().unwrap().unwrap();
        assert!(matches!(parsed, Request::Stats));
    }
}
