//! The TCP front end: accept loop, per-connection threads, shard router.
//!
//! Plain `std::net` — one listener thread accepting connections, one
//! thread per connection reading JSON lines, N shard threads doing the
//! scheduling work. A connection thread never computes anything: it
//! parses a request, routes it to the owning shard's queue, blocks on a
//! reply channel, and writes the reply line. Per-connection ordering is
//! therefore request order, and per-tenant ordering is total (one shard
//! owns a tenant).
//!
//! Shutdown: `Shutdown` flips an atomic flag and pokes the listener with
//! a throwaway self-connection so `accept` returns; the accept loop then
//! exits, shard queues get `Stop`, and [`Server::wait`] joins everything
//! and returns the final service-wide stats.

use crate::protocol::{read_line, write_line, Request, Response, ShardStats, StatsReply};
use crate::shard::{run_shard, shard_of, ServeConfig, ShardCore, ShardMsg};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Routes requests to shard queues. Cheap to clone — one per connection
/// thread, plus one kept by the [`Server`] for its own shutdown path.
#[derive(Clone)]
pub struct Router {
    shards: Vec<mpsc::Sender<ShardMsg>>,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl Router {
    /// Serves one request to completion, whichever shard owns it.
    pub fn route(&self, req: Request) -> Response {
        match req.tenant() {
            Some(tenant) => {
                let shard = shard_of(tenant, self.shards.len());
                let (tx, rx) = mpsc::channel();
                if self.shards[shard].send(ShardMsg::Req(req, tx)).is_err() {
                    return Response::Error {
                        message: "shard is down".to_string(),
                    };
                }
                rx.recv().unwrap_or(Response::Error {
                    message: "shard dropped the request".to_string(),
                })
            }
            None => match req {
                Request::Stats => Response::Stats(self.gather_stats()),
                Request::Shutdown => {
                    self.begin_shutdown();
                    Response::Bye
                }
                _ => Response::Error {
                    message: "unroutable request".to_string(),
                },
            },
        }
    }

    /// Collects and aggregates every shard's counters.
    pub fn gather_stats(&self) -> StatsReply {
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (tx, rx) = mpsc::channel();
            if shard.send(ShardMsg::Stats(tx)).is_ok() {
                if let Ok(stats) = rx.recv() {
                    per_shard.push(stats);
                }
            }
        }
        let mut total = ShardStats {
            shard: u64::MAX,
            ..ShardStats::default()
        };
        for s in &per_shard {
            total.merge(s);
        }
        StatsReply {
            shards: self.shards.len() as u64,
            per_shard,
            total,
        }
    }

    /// Flips the shutdown flag and unblocks the accept loop.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // The accept loop is blocked in `accept`; a throwaway
            // connection makes it return and observe the flag.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A running scheduling service.
pub struct Server {
    addr: SocketAddr,
    router: Router,
    accept_handle: Option<JoinHandle<()>>,
    shard_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use `"127.0.0.1:0"` for an ephemeral port), spawns
    /// the shard and accept threads, and starts serving immediately.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: ServeConfig) -> io::Result<Server> {
        let cfg = cfg.normalized();
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;

        let mut senders = Vec::with_capacity(cfg.shards);
        let mut shard_handles = Vec::with_capacity(cfg.shards);
        for id in 0..cfg.shards {
            let (tx, rx) = mpsc::channel::<ShardMsg>();
            senders.push(tx);
            let cfg = cfg.clone();
            shard_handles.push(
                std::thread::Builder::new()
                    .name(format!("cdsf-shard-{id}"))
                    .spawn(move || {
                        let mut core = ShardCore::new(id, cfg);
                        run_shard(&mut core, &rx);
                    })?,
            );
        }

        let router = Router {
            shards: senders,
            shutdown: Arc::new(AtomicBool::new(false)),
            addr,
        };

        let accept_router = router.clone();
        let conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = std::thread::Builder::new()
            .name("cdsf-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_router.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let router = accept_router.clone();
                    if let Ok(handle) = std::thread::Builder::new()
                        .name("cdsf-conn".to_string())
                        .spawn(move || serve_connection(stream, &router))
                    {
                        let mut handles = conn_handles.lock().expect("connection registry");
                        handles.push(handle);
                        // Reap finished connections so a long-lived server
                        // does not accumulate dead handles.
                        let (done, live): (Vec<_>, Vec<_>) =
                            handles.drain(..).partition(|h| h.is_finished());
                        for h in done {
                            let _ = h.join();
                        }
                        *handles = live;
                    }
                }
                // Drain the remaining connection threads before exiting so
                // `wait` observes a fully quiescent service.
                let handles = std::mem::take(&mut *conn_handles.lock().expect("registry"));
                for h in handles {
                    let _ = h.join();
                }
            })?;

        Ok(Server {
            addr,
            router,
            accept_handle: Some(accept_handle),
            shard_handles,
        })
    }

    /// The bound address (the actual port when bound ephemerally).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A router handle for driving the server in-process (no socket).
    pub fn router(&self) -> Router {
        self.router.clone()
    }

    /// Requests shutdown as if a client had sent [`Request::Shutdown`].
    pub fn shutdown(&self) {
        self.router.begin_shutdown();
    }

    /// Blocks until the accept loop exits (a client sent `Shutdown`, or
    /// [`Server::shutdown`] ran), then stops the shards and returns the
    /// final service-wide stats.
    pub fn wait(mut self) -> StatsReply {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let stats = self.router.gather_stats();
        for shard in &self.router.shards {
            let _ = shard.send(ShardMsg::Stop);
        }
        for h in self.shard_handles.drain(..) {
            let _ = h.join();
        }
        stats
    }
}

/// One connection: read a line, route, write the reply, repeat until EOF
/// or `Shutdown`'s `Bye`.
fn serve_connection(stream: TcpStream, router: &Router) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    while let Ok(Some(parsed)) = read_line::<Request, _>(&mut reader) {
        let response = match parsed {
            Ok(req) => router.route(req),
            Err(e) => Response::Error {
                message: format!("bad request line: {e}"),
            },
        };
        let last = matches!(response, Response::Bye);
        if write_line(&mut writer, &response).is_err() || last {
            break;
        }
    }
}

/// A blocking client speaking the line protocol over one connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and blocks for its reply.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_line(&mut self.writer, req)?;
        match read_line::<Response, _>(&mut self.reader)? {
            Some(Ok(resp)) => Ok(resp),
            Some(Err(e)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unparseable response: {e}"),
            )),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
        }
    }
}
