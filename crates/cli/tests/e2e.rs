//! End-to-end tests of the `cdsf` binary itself (not the library layer):
//! exit codes, stdout/stderr routing, and JSON well-formedness.

use std::process::Command;

fn cdsf(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cdsf"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = cdsf(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"), "{text}");
}

#[test]
fn unknown_command_exits_nonzero_with_stderr() {
    let out = cdsf(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"), "{err}");
    assert!(out.stdout.is_empty());
}

#[test]
fn missing_command_suggests_help() {
    let out = cdsf(&[]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cdsf help"), "{err}");
}

#[test]
fn stage1_json_is_valid_json_on_stdout() {
    let out = cdsf(&["stage1", "--pulses", "8", "--json"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("stdout is valid JSON");
    assert!(v["phi1"].as_f64().unwrap() > 0.5);
    assert!(v["system_radius"].is_number());
}

#[test]
fn bad_flag_value_exits_nonzero() {
    let out = cdsf(&["stage1", "--pulses", "banana"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("banana"), "{err}");
}

#[test]
fn init_and_run_config_through_the_binary() {
    let dir = std::env::temp_dir().join("cdsf-e2e-config");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("exp.json");
    let path_s = path.to_str().unwrap();

    let out = cdsf(&[
        "init-config",
        "--file",
        path_s,
        "--pulses",
        "8",
        "--replicates",
        "2",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(path.exists());

    let out = cdsf(&["run-config", "--file", path_s, "--json"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(v["name"], "paper-example");
    assert!(v["robustness"]["rho1"].as_f64().unwrap() > 0.5);
    let _ = std::fs::remove_dir_all(&dir);
}
