//! # `cdsf-cli` — command-line interface to the CDSF framework
//!
//! The `cdsf` binary exposes the library's main workflows without writing
//! Rust:
//!
//! ```text
//! cdsf paper                     # reproduce the paper's example end to end
//! cdsf stage1 --allocator sufferage --pulses 64
//! cdsf scenarios --replicates 50 --dwell 300 --json
//! cdsf sweep --steps 10 --max-decrease 0.5
//! cdsf generate --apps 10 --types 4 --seed 7
//! cdsf queue --batches 4
//! cdsf events --scenario crash --remap 0
//! cdsf help
//! ```
//!
//! The argument parser is deliberately tiny (flag/value pairs only); every
//! command accepts `--json` for machine-readable output. The library part
//! of the crate exists so the parsing and command logic are unit-testable.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod args;
pub mod commands;

pub use args::{Args, CliError};

/// Entry point used by the binary: parse and dispatch.
pub fn run(raw: Vec<String>) -> Result<String, CliError> {
    let args = Args::parse(raw)?;
    match args.command.as_str() {
        "paper" => commands::paper::run(&args),
        "stage1" => commands::stage1::run(&args),
        "scenarios" => commands::scenarios::run(&args),
        "sweep" => commands::sweep::run(&args),
        "generate" => commands::generate::run(&args),
        "correlate" => commands::correlate::run(&args),
        "advise" => commands::advise::run(&args),
        "surface" => commands::surface::run(&args),
        "init-config" => commands::config::run_init(&args),
        "run-config" => commands::config::run_config(&args),
        "queue" => commands::queue::run(&args),
        "events" => commands::events::run(&args),
        "serve" => commands::serve::run(&args),
        "help" | "--help" | "-h" => Ok(commands::help_text().to_string()),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}
