//! `cdsf generate` — synthetic instance + allocator comparison.

use crate::args::{Args, CliError};
use cdsf_core::report::pct;
use cdsf_core::AsciiTable;
use cdsf_ra::allocators::{
    EqualShare, GeneticAlgorithm, GreedyMaxRobust, GreedyMinTime, SimulatedAnnealing, Sufferage,
};
use cdsf_ra::robustness::evaluate;
use cdsf_ra::Allocator;
use cdsf_workloads::generators::{BatchGenerator, PlatformGenerator, Range};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct AllocatorJson {
    name: String,
    phi1: Option<f64>,
    millis: f64,
}

/// Runs the command.
pub fn run(args: &Args) -> Result<String, CliError> {
    let apps: usize = args.get_parsed("apps", 8usize)?;
    let types: usize = args.get_parsed("types", 3usize)?;
    let seed: u64 = args.get_parsed("seed", 7u64)?;
    let deadline: f64 = args.get_parsed("deadline", 2_500.0f64)?;
    let err = |e: String| CliError::Framework(e);

    let platform = PlatformGenerator {
        num_types: types,
        procs_per_type: (8, 24),
        availability_pulses: 3,
        availability_range: Range::new(0.25, 1.0).map_err(|e| err(e.to_string()))?,
    }
    .generate(seed)
    .map_err(|e| err(e.to_string()))?;
    let batch = BatchGenerator {
        num_apps: apps,
        ..Default::default()
    }
    .generate(&platform, seed.wrapping_add(1))
    .map_err(|e| err(e.to_string()))?;

    let policies: Vec<Box<dyn Allocator>> = vec![
        Box::new(EqualShare::new()),
        Box::new(GreedyMinTime::new()),
        Box::new(GreedyMaxRobust::new()),
        Box::new(Sufferage::new()),
        Box::new(SimulatedAnnealing::default()),
        Box::new(GeneticAlgorithm::default()),
    ];

    let mut rows = Vec::new();
    for policy in &policies {
        let t0 = Instant::now();
        let phi1 = policy
            .allocate(&batch, &platform, deadline)
            .ok()
            .and_then(|alloc| evaluate(&batch, &platform, &alloc, deadline).ok())
            .map(|r| r.joint);
        rows.push(AllocatorJson {
            name: policy.name().to_string(),
            phi1,
            millis: t0.elapsed().as_secs_f64() * 1_000.0,
        });
    }

    if args.json() {
        return serde_json::to_string_pretty(&rows).map_err(|e| CliError::Framework(e.to_string()));
    }

    let mut table = AsciiTable::new(["Allocator", "φ1", "time (ms)"]).title(format!(
        "{apps} apps on {} processors of {types} types (seed {seed}, Δ = {deadline})",
        platform.total_processors()
    ));
    for r in &rows {
        table.row([
            r.name.clone(),
            r.phi1.map_or("infeasible".to_string(), pct),
            format!("{:.1}", r.millis),
        ]);
    }
    Ok(table.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from).collect()).unwrap()
    }

    #[test]
    fn generates_and_compares() {
        let out = run(&args("generate --apps 4 --types 2 --seed 3")).unwrap();
        assert!(out.contains("EqualShare"));
        assert!(out.contains("GeneticAlgorithm"));
    }

    #[test]
    fn json_lists_all_allocators() {
        let out = run(&args("generate --apps 4 --types 2 --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 6);
    }
}
