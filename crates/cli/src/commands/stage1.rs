//! `cdsf stage1` — run one Stage-I mapping on the paper instance.

use crate::args::{Args, CliError};
use crate::commands::paper_cdsf;
use cdsf_core::report::pct;
use cdsf_core::{AsciiTable, ImPolicy};
use cdsf_ra::allocators::{
    EqualShare, Exhaustive, GammaRobust, GeneticAlgorithm, GreedyMaxRobust, GreedyMinTime, Lattice,
    SimulatedAnnealing, Sufferage,
};
use cdsf_ra::Allocator;
use serde::Serialize;

#[derive(Serialize)]
struct Stage1Json {
    allocator: String,
    phi1: f64,
    per_app_prob: Vec<f64>,
    expected_times: Vec<f64>,
    assignments: Vec<(usize, u32)>, // (type index, procs)
    /// FePIA robustness radii (availability units) per application.
    radius: Vec<f64>,
    system_radius: f64,
}

/// Builds the allocator named on the command line.
pub fn allocator_by_name(name: &str) -> Result<Box<dyn Allocator + Send + Sync>, CliError> {
    Ok(match name {
        "equal-share" => Box::new(EqualShare::new()),
        "exhaustive" => Box::new(Exhaustive::default()),
        "greedy-min-time" => Box::new(GreedyMinTime::new()),
        "greedy-max-robust" => Box::new(GreedyMaxRobust::new()),
        "sufferage" => Box::new(Sufferage::new()),
        "annealing" => Box::new(SimulatedAnnealing::default()),
        "genetic" => Box::new(GeneticAlgorithm::default()),
        "lattice" => Box::new(Lattice::default()),
        "gamma-robust" => Box::new(GammaRobust::default()),
        other => {
            return Err(CliError::BadValue {
                flag: "--allocator".to_string(),
                value: other.to_string(),
            })
        }
    })
}

/// Runs the command.
pub fn run(args: &Args) -> Result<String, CliError> {
    let name = args.get("allocator").unwrap_or("exhaustive").to_string();
    let allocator = allocator_by_name(&name)?;
    let cdsf = paper_cdsf(args)?;
    let (alloc, report) = cdsf
        .stage_one(&ImPolicy::Custom(allocator))
        .map_err(|e| CliError::Framework(e.to_string()))?;
    let radius =
        cdsf_ra::radius::robustness_radius(cdsf.batch(), cdsf.reference(), &alloc, cdsf.deadline())
            .map_err(|e| CliError::Framework(e.to_string()))?;

    if args.json() {
        let out = Stage1Json {
            allocator: name,
            phi1: report.joint,
            per_app_prob: report.per_app.clone(),
            expected_times: report.expected_times.clone(),
            assignments: alloc
                .assignments()
                .iter()
                .map(|a| (a.proc_type.0, a.procs))
                .collect(),
            radius: radius.radius.clone(),
            system_radius: radius.system_radius,
        };
        return serde_json::to_string_pretty(&out).map_err(|e| CliError::Framework(e.to_string()));
    }

    let mut table =
        AsciiTable::new(["App", "Type", "Procs", "Pr(T ≤ Δ)", "E[T]", "radius"]).title(format!(
            "Stage-I mapping ({name}), φ1 = {}, FePIA system radius = {:.3}",
            pct(report.joint),
            radius.system_radius
        ));
    for (i, asg) in alloc.assignments().iter().enumerate() {
        table.row([
            (i + 1).to_string(),
            (asg.proc_type.0 + 1).to_string(),
            asg.procs.to_string(),
            pct(report.per_app[i]),
            format!("{:.1}", report.expected_times[i]),
            format!("{:.3}", radius.radius[i]),
        ]);
    }
    Ok(table.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from).collect()).unwrap()
    }

    #[test]
    fn default_is_exhaustive_and_matches_paper() {
        let out = run(&args("stage1 --pulses 32 --replicates 2")).unwrap();
        assert!(out.contains("exhaustive"));
        assert!(out.contains("74."), "{out}");
    }

    #[test]
    fn json_output_parses() {
        let out = run(&args("stage1 --pulses 16 --allocator sufferage --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["allocator"], "sufferage");
        assert!(v["phi1"].as_f64().unwrap() > 0.0);
        assert_eq!(v["assignments"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn unknown_allocator_is_an_error() {
        assert!(matches!(
            run(&args("stage1 --allocator nope")),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn every_named_allocator_builds() {
        for name in [
            "equal-share",
            "exhaustive",
            "greedy-min-time",
            "greedy-max-robust",
            "sufferage",
            "annealing",
            "genetic",
            "lattice",
            "gamma-robust",
        ] {
            assert!(allocator_by_name(name).is_ok(), "{name}");
        }
    }

    #[test]
    fn lattice_matches_exhaustive_on_the_paper_instance() {
        let ex = run(&args("stage1 --pulses 32 --allocator exhaustive --json")).unwrap();
        let la = run(&args("stage1 --pulses 32 --allocator lattice --json")).unwrap();
        let ex: serde_json::Value = serde_json::from_str(&ex).unwrap();
        let la: serde_json::Value = serde_json::from_str(&la).unwrap();
        assert_eq!(ex["assignments"], la["assignments"]);
        assert_eq!(ex["phi1"], la["phi1"]);
    }
}
