//! `cdsf surface` — the φ1 robustness surface over per-type availability
//! scales.

use crate::args::{Args, CliError};
use crate::commands::paper_cdsf;
use cdsf_core::report::pct;
use cdsf_core::{AsciiTable, ImPolicy};
use cdsf_ra::surface::{diagonal_tolerance, robustness_surface, surface_to_csv};

/// Runs the command.
pub fn run(args: &Args) -> Result<String, CliError> {
    let steps: usize = args.get_parsed("steps", 5usize)?;
    if steps < 2 {
        return Err(CliError::BadValue {
            flag: "--steps".into(),
            value: steps.to_string(),
        });
    }
    let min_scale: f64 = args.get_parsed("min-scale", 0.4f64)?;
    if !(min_scale > 0.0 && min_scale < 1.0) {
        return Err(CliError::BadValue {
            flag: "--min-scale".into(),
            value: min_scale.to_string(),
        });
    }
    let err = |e: String| CliError::Framework(e);

    let cdsf = paper_cdsf(args)?;
    let allocator = args.get("allocator").unwrap_or("exhaustive");
    let policy = ImPolicy::Custom(super::stage1::allocator_by_name(allocator)?);
    let (alloc, _) = cdsf.stage_one(&policy).map_err(|e| err(e.to_string()))?;

    let scales: Vec<f64> = (0..steps)
        .map(|k| min_scale + (1.0 - min_scale) * k as f64 / (steps - 1) as f64)
        .collect();
    let surface = robustness_surface(
        cdsf.batch(),
        cdsf.reference(),
        &alloc,
        cdsf.deadline(),
        &scales,
    )
    .map_err(|e| err(e.to_string()))?;

    if args.json() {
        // CSV is the natural machine format for a surface; --json emits it
        // wrapped in a JSON object for uniformity.
        let payload = serde_json::json!({
            "allocator": allocator,
            "csv": surface_to_csv(&surface),
        });
        return serde_json::to_string_pretty(&payload)
            .map_err(|e| CliError::Framework(e.to_string()));
    }

    // Render the 2-type case as a grid table; higher dimensions fall back
    // to CSV.
    if cdsf.reference().num_types() != 2 {
        return Ok(surface_to_csv(&surface));
    }
    let mut headers = vec!["type1 \\ type2".to_string()];
    headers.extend(scales.iter().map(|s| format!("{s:.2}")));
    let mut table = AsciiTable::new(headers).title(format!(
        "φ1 surface for the {allocator} mapping (rows: type-1 scale, cols: type-2 scale)"
    ));
    for &s1 in &scales {
        let mut row = vec![format!("{s1:.2}")];
        for &s2 in &scales {
            let p = surface
                .iter()
                .find(|pt| pt.scales == vec![s1, s2])
                .expect("full grid");
            row.push(pct(p.phi1));
        }
        table.row(row);
    }
    let tol = diagonal_tolerance(
        cdsf.batch(),
        cdsf.reference(),
        &alloc,
        cdsf.deadline(),
        0.5,
        40,
    )
    .map_err(|e| err(e.to_string()))?;
    Ok(format!(
        "{table}\nlargest uniform availability decrease keeping φ1 ≥ 50%: {}\n",
        pct(tol)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from).collect()).unwrap()
    }

    #[test]
    fn surface_renders_grid() {
        let out = run(&args("surface --pulses 8 --steps 3")).unwrap();
        assert!(out.contains("φ1 surface"), "{out}");
        assert!(out.contains("uniform availability decrease"), "{out}");
    }

    #[test]
    fn surface_json_carries_csv() {
        let out = run(&args("surface --pulses 8 --steps 3 --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v["csv"].as_str().unwrap().starts_with("scale_type1"));
    }

    #[test]
    fn surface_validates_flags() {
        assert!(run(&args("surface --steps 1")).is_err());
        assert!(run(&args("surface --min-scale 0")).is_err());
        assert!(run(&args("surface --min-scale 1.2")).is_err());
    }
}
