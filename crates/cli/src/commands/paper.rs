//! `cdsf paper` — the whole small-scale example in one command.

use crate::args::{Args, CliError};
use crate::commands::paper_cdsf;
use cdsf_core::report::pct;
use cdsf_core::{AsciiTable, Scenario};
use cdsf_workloads::paper;
use serde::Serialize;

#[derive(Serialize)]
struct PaperJson {
    phi1_naive: f64,
    phi1_robust: f64,
    rho1: f64,
    rho2: f64,
    critical_case: Option<usize>,
    verdicts: Vec<ScenarioJson>,
}

#[derive(Serialize)]
struct ScenarioJson {
    scenario: u8,
    label: String,
    cases_met: Vec<bool>,
}

/// Runs the command.
pub fn run(args: &Args) -> Result<String, CliError> {
    let cdsf = paper_cdsf(args)?;
    let err = |e: cdsf_core::CoreError| CliError::Framework(e.to_string());

    let (_, naive) = cdsf.stage_one(&cdsf_core::ImPolicy::Naive).map_err(err)?;
    let (_, robust) = cdsf.stage_one(&cdsf_core::ImPolicy::Robust).map_err(err)?;

    let mut verdicts = Vec::new();
    let mut s4_robustness = None;
    let mut table = AsciiTable::new(["Scenario", "Case 1", "Case 2", "Case 3", "Case 4"])
        .title("Deadline verdicts per scenario (paper: only scenario 4 is robust, through case 3)");
    for scenario in Scenario::all() {
        let (im, ras) = scenario.policies();
        let result = cdsf.run_scenario(&im, &ras).map_err(err)?;
        let met: Vec<bool> = (1..=paper::NUM_CASES)
            .map(|c| result.case_is_robust(c, cdsf.batch().len()))
            .collect();
        let mut row = vec![format!("{} ({})", scenario.number(), scenario.label())];
        row.extend(met.iter().map(|&m| {
            if m {
                "met".to_string()
            } else {
                "VIOLATED".into()
            }
        }));
        table.row(row);
        if scenario == Scenario::RobustRobust {
            s4_robustness = Some(cdsf.system_robustness(&result));
        }
        verdicts.push(ScenarioJson {
            scenario: scenario.number(),
            label: scenario.label().to_string(),
            cases_met: met,
        });
    }
    let r = s4_robustness.expect("scenario 4 ran");

    if args.json() {
        let out = PaperJson {
            phi1_naive: naive.joint,
            phi1_robust: robust.joint,
            rho1: r.rho1,
            rho2: r.rho2,
            critical_case: r.critical_case,
            verdicts,
        };
        return serde_json::to_string_pretty(&out).map_err(|e| CliError::Framework(e.to_string()));
    }

    let mut out = String::new();
    out.push_str(&format!(
        "φ1: naive IM = {} (paper 26%), robust IM = {} (paper 74.5%)\n\n",
        pct(naive.joint),
        pct(robust.joint)
    ));
    out.push_str(&table.to_string());
    out.push_str(&format!(
        "\nSystem robustness (ρ1, ρ2) = ({}, {})  [paper: (74.5%, 30.77%)]\n",
        pct(r.rho1),
        pct(r.rho2)
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from).collect()).unwrap()
    }

    #[test]
    fn paper_command_produces_summary() {
        let out = run(&args("paper --pulses 16 --replicates 5")).unwrap();
        assert!(out.contains("ρ1"), "{out}");
        assert!(out.contains("Scenario"), "{out}");
    }

    #[test]
    fn paper_json_has_headline_fields() {
        let out = run(&args("paper --pulses 16 --replicates 5 --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v["phi1_robust"].as_f64().unwrap() > 0.7);
        assert_eq!(v["verdicts"].as_array().unwrap().len(), 4);
    }
}
