//! `cdsf sweep` — robustness envelope over a continuum of availability
//! decreases.

use crate::args::{Args, CliError};
use crate::commands::sim_params;
use cdsf_core::report::pct;
use cdsf_core::{AsciiTable, Cdsf, ImPolicy, RasPolicy};
use cdsf_workloads::generators::degraded_case;
use cdsf_workloads::paper;
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    decrease: f64,
    static_met: bool,
    robust_met: bool,
}

/// Runs the command.
pub fn run(args: &Args) -> Result<String, CliError> {
    let steps: usize = args.get_parsed("steps", 8usize)?;
    let max_decrease: f64 = args.get_parsed("max-decrease", 0.5f64)?;
    if steps == 0 || !(0.0..1.0).contains(&max_decrease) {
        return Err(CliError::BadValue {
            flag: "--steps/--max-decrease".to_string(),
            value: format!("{steps}/{max_decrease}"),
        });
    }
    let err = |e: String| CliError::Framework(e);

    let reference = paper::platform();
    let mut cases = vec![reference.clone()];
    let mut achieved = vec![0.0f64];
    for k in 1..=steps {
        let d = max_decrease * k as f64 / steps as f64;
        let (p, a) = degraded_case(&reference, d, 777).map_err(|e| err(e.to_string()))?;
        cases.push(p);
        achieved.push(a);
    }

    let cdsf = Cdsf::builder()
        .batch(paper::batch_with_pulses(
            args.get_parsed("pulses", 32usize)?,
        ))
        .reference_platform(reference)
        .runtime_cases(cases)
        .deadline(args.get_parsed("deadline", paper::DEADLINE)?)
        .sim_params(sim_params(args)?)
        .build()
        .map_err(|e| err(e.to_string()))?;

    let s_static = cdsf
        .run_scenario(&ImPolicy::Robust, &RasPolicy::Naive)
        .map_err(|e| err(e.to_string()))?;
    let s_robust = cdsf
        .run_scenario(&ImPolicy::Robust, &RasPolicy::Robust)
        .map_err(|e| err(e.to_string()))?;

    let napps = cdsf.batch().len();
    let points: Vec<SweepPoint> = achieved
        .iter()
        .enumerate()
        .map(|(i, &a)| SweepPoint {
            decrease: a,
            static_met: s_static.case_is_robust(i + 1, napps),
            robust_met: s_robust.case_is_robust(i + 1, napps),
        })
        .collect();

    if args.json() {
        return serde_json::to_string_pretty(&points)
            .map_err(|e| CliError::Framework(e.to_string()));
    }

    let mut table = AsciiTable::new(["Decrease", "STATIC", "robust DLS"])
        .title("Robustness envelope (robust IM in both columns)");
    for p in &points {
        table.row([
            pct(p.decrease),
            if p.static_met { "met" } else { "violated" }.to_string(),
            if p.robust_met { "met" } else { "violated" }.to_string(),
        ]);
    }
    Ok(table.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from).collect()).unwrap()
    }

    #[test]
    fn sweep_produces_requested_points() {
        let out = run(&args("sweep --steps 3 --pulses 8 --replicates 2 --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 4); // reference + 3 steps
    }

    #[test]
    fn sweep_validates_flags() {
        assert!(run(&args("sweep --steps 0")).is_err());
        assert!(run(&args("sweep --max-decrease 1.5")).is_err());
    }
}
