//! `cdsf events` — run a named online fault scenario through the
//! event-driven scheduler and report robustness metrics.

use crate::args::{Args, CliError};
use cdsf_core::report::pct;
use cdsf_core::{AsciiTable, ImPolicy};
use cdsf_events::{EngineConfig, EventEngine, LogEntry, RunReport};
use cdsf_workloads::faults;
use serde::Serialize;

#[derive(Serialize)]
struct EventsJson {
    scenario: String,
    deadline: f64,
    seed: u64,
    remap: bool,
    report: RunReport,
}

/// Runs the command.
pub fn run(args: &Args) -> Result<String, CliError> {
    let scenario = args.get("scenario").unwrap_or("crash").to_string();
    let Some(plan) = faults::scenario(&scenario) else {
        return Err(CliError::BadValue {
            flag: "--scenario".to_string(),
            value: format!(
                "{scenario} (known: {})",
                faults::scenario_names().join(", ")
            ),
        });
    };
    let pulses: usize = args.get_parsed("pulses", faults::SCENARIO_PULSES)?;
    let deadline: f64 = args.get_parsed("deadline", faults::SCENARIO_DEADLINE)?;

    let mut cfg = EngineConfig::new(deadline);
    cfg.seed = args.get_parsed("seed", cfg.seed)?;
    cfg.mean_dwell = args.get_parsed("dwell", cfg.mean_dwell)?;
    cfg.overhead = args.get_parsed("overhead", cfg.overhead)?;
    cfg.watchdog_checks = args.get_parsed("watchdogs", cfg.watchdog_checks)?;
    cfg.phi1_threshold = args.get_parsed("threshold", cfg.phi1_threshold)?;
    cfg.threads = args.get_parsed("threads", cfg.threads)?;
    cfg.remap = args.get_parsed("remap", 1u8)? != 0;
    if let Some(name) = args.get("allocator") {
        cfg.allocator = ImPolicy::by_name(name).ok_or_else(|| CliError::BadValue {
            flag: "--allocator".to_string(),
            value: name.to_string(),
        })?;
    }

    let batch = cdsf_workloads::paper::batch_with_pulses(pulses);
    let platform = cdsf_workloads::paper::platform();
    let report = EventEngine::new(&batch, &platform, &plan, &cfg)
        .map_err(|e| CliError::Framework(e.to_string()))?
        .run()
        .map_err(|e| CliError::Framework(e.to_string()))?;

    if args.json() {
        let out = EventsJson {
            scenario,
            deadline,
            seed: cfg.seed,
            remap: cfg.remap,
            report,
        };
        return serde_json::to_string_pretty(&out).map_err(|e| CliError::Framework(e.to_string()));
    }

    let m = &report.metrics;
    let mut table = AsciiTable::new(["App", "Arrival", "End", "Outcome"]).title(format!(
        "Online scenario `{scenario}` (Δ = {deadline}, remap {}): hit rate {}, \
         {} remap(s), {} clamp(s), wasted work {:.1}",
        if cfg.remap { "on" } else { "off" },
        pct(m.deadline_hit_rate),
        m.remap_count,
        m.clamp_count,
        m.wasted_work,
    ));
    for o in &m.per_app {
        table.row([
            (o.app + 1).to_string(),
            format!("{:.0}", o.arrival),
            format!("{:.1}", o.end),
            o.outcome.clone(),
        ]);
    }
    let mut out = table.to_string();
    out.push_str(&format!(
        "\n{} log events; faults seen: {}\n",
        report.log.len(),
        report
            .log
            .records
            .iter()
            .filter(|r| {
                matches!(
                    r.entry,
                    LogEntry::Crash { .. }
                        | LogEntry::Collapse { .. }
                        | LogEntry::StallStart { .. }
                        | LogEntry::Drift { .. }
                )
            })
            .count()
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from).collect()).unwrap()
    }

    #[test]
    fn crash_scenario_renders_a_table() {
        let out = run(&args("events --threads 2")).unwrap();
        assert!(out.contains("Online scenario `crash`"), "{out}");
        assert!(out.contains("finished"), "{out}");
    }

    #[test]
    fn json_output_round_trips() {
        let out = run(&args("events --scenario stall --threads 2 --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["scenario"], "stall");
        assert_eq!(v["report"]["metrics"]["apps"].as_u64(), Some(3));
    }

    #[test]
    fn remap_flag_disables_reaction() {
        let out = run(&args("events --remap 0 --threads 2 --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["remap"], false);
        assert_eq!(v["report"]["metrics"]["remap_count"].as_u64(), Some(0));
    }

    #[test]
    fn unknown_scenario_is_an_error() {
        assert!(matches!(
            run(&args("events --scenario nope")),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn unknown_allocator_is_an_error() {
        assert!(matches!(
            run(&args("events --allocator nope")),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn every_named_scenario_runs() {
        for name in faults::scenario_names() {
            let out = run(&args(&format!("events --scenario {name} --threads 2")));
            assert!(out.is_ok(), "{name}: {out:?}");
        }
    }
}
