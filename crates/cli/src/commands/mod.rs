//! Subcommand implementations. Every command returns its full output as a
//! `String` so the logic is unit-testable without capturing stdout.

pub mod advise;
pub mod config;
pub mod correlate;
pub mod events;
pub mod generate;
pub mod paper;
pub mod queue;
pub mod scenarios;
pub mod serve;
pub mod stage1;
pub mod surface;
pub mod sweep;

use crate::args::{Args, CliError};
use cdsf_core::{Cdsf, SimParams};
use cdsf_workloads::paper as paper_fixture;

/// The `cdsf help` text.
pub fn help_text() -> &'static str {
    "cdsf — Combined Dual-Stage Framework for robust scheduling

USAGE: cdsf <command> [--flag value]... [--json]

COMMANDS:
  paper       reproduce the paper's small-scale example end to end
  stage1      run a Stage-I mapping on the paper instance
              [--allocator equal-share|exhaustive|greedy-min-time|
                           greedy-max-robust|sufferage|annealing|genetic]
              [--pulses N] [--deadline D]
  scenarios   run the four scenarios (Figures 3-6)
              [--replicates N] [--dwell T] [--overhead H] [--seed S]
  sweep       availability-decrease sweep of the robustness envelope
              [--steps K] [--max-decrease X] [--replicates N]
  generate    generate a synthetic instance and compare allocators
              [--apps N] [--types K] [--seed S] [--deadline D]
  correlate   φ1 under correlated availability (Gaussian copula)
              [--steps K] [--replicates N] [--allocator NAME]
  surface     φ1 robustness surface over per-type availability scales
              [--steps K] [--min-scale X] [--allocator NAME]
  advise      mean-field screening + targeted simulation
              [--allocator NAME] [--replicates N]
  init-config write a JSON experiment template [--file PATH]
  run-config  run a JSON experiment spec --file PATH
  queue       run a multi-batch queue (paper batch repeated)
              [--batches N] [--replicates R] [--seed S]
  events      run a named online fault scenario (event-driven scheduler)
              [--scenario crash|collapse|stall|drift|mixed] [--seed S]
              [--deadline D] [--remap 0|1] [--threshold P] [--watchdogs N]
              [--allocator NAME] [--pulses N] [--dwell T] [--overhead H]
  serve       run the multi-tenant scheduling service (NDJSON over TCP)
              [--host H] [--port N (0 = ephemeral)] [--shards N]
              [--cache N] [--threads N] [--allocator NAME] [--threshold P]
  help        this text

All commands accept --json for machine-readable output."
}

/// Shared: builds the paper-fixture CDSF with CLI-tunable simulation
/// parameters.
pub(crate) fn paper_cdsf(args: &Args) -> Result<Cdsf, CliError> {
    let sim = sim_params(args)?;
    let pulses: usize = args.get_parsed("pulses", paper_fixture::DEFAULT_PULSES)?;
    Cdsf::builder()
        .batch(paper_fixture::batch_with_pulses(pulses))
        .reference_platform(paper_fixture::platform())
        .runtime_cases(
            (1..=paper_fixture::NUM_CASES)
                .map(paper_fixture::platform_case)
                .collect(),
        )
        .deadline(args.get_parsed("deadline", paper_fixture::DEADLINE)?)
        .sim_params(sim)
        .build()
        .map_err(|e| CliError::Framework(e.to_string()))
}

/// Shared: simulation parameters from flags.
pub(crate) fn sim_params(args: &Args) -> Result<SimParams, CliError> {
    let defaults = SimParams::default();
    Ok(SimParams {
        replicates: args.get_parsed("replicates", 30usize)?,
        mean_dwell: args.get_parsed("dwell", defaults.mean_dwell)?,
        overhead: args.get_parsed("overhead", defaults.overhead)?,
        seed: args.get_parsed("seed", defaults.seed)?,
        threads: args.get_parsed("threads", defaults.threads)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from).collect()).unwrap()
    }

    #[test]
    fn help_mentions_every_command() {
        for cmd in [
            "paper",
            "stage1",
            "scenarios",
            "sweep",
            "generate",
            "queue",
            "events",
            "correlate",
            "init-config",
            "run-config",
            "advise",
            "surface",
            "serve",
        ] {
            assert!(help_text().contains(cmd), "help missing {cmd}");
        }
    }

    #[test]
    fn sim_params_from_flags() {
        let p = sim_params(&args("scenarios --replicates 7 --dwell 99 --seed 5")).unwrap();
        assert_eq!(p.replicates, 7);
        assert_eq!(p.mean_dwell, 99.0);
        assert_eq!(p.seed, 5);
    }

    #[test]
    fn paper_cdsf_builds() {
        let cdsf = paper_cdsf(&args("paper --pulses 8")).unwrap();
        assert_eq!(cdsf.batch().len(), 3);
        assert_eq!(cdsf.runtime_cases().len(), 4);
    }
}
