//! `cdsf scenarios` — the four scenarios with full per-cell output.

use crate::args::{Args, CliError};
use crate::commands::paper_cdsf;
use cdsf_core::{AsciiTable, Scenario};
use cdsf_workloads::paper;
use serde::Serialize;

#[derive(Serialize)]
struct CellJson {
    app: usize,
    case: usize,
    technique: String,
    mean_makespan: f64,
    std_makespan: f64,
    meets_deadline: bool,
    deadline_hit_rate: f64,
}

#[derive(Serialize)]
struct ScenarioJson {
    scenario: u8,
    phi1: f64,
    cells: Vec<CellJson>,
}

/// Runs the command.
pub fn run(args: &Args) -> Result<String, CliError> {
    let cdsf = paper_cdsf(args)?;
    let err = |e: cdsf_core::CoreError| CliError::Framework(e.to_string());

    let mut json_out = Vec::new();
    let mut text = String::new();
    for scenario in Scenario::all() {
        let (im, ras) = scenario.policies();
        let result = cdsf.run_scenario(&im, &ras).map_err(err)?;

        if args.json() {
            json_out.push(ScenarioJson {
                scenario: scenario.number(),
                phi1: result.phi1,
                cells: result
                    .cells
                    .iter()
                    .map(|c| CellJson {
                        app: c.app + 1,
                        case: c.case,
                        technique: c.technique.clone(),
                        mean_makespan: c.mean_makespan,
                        std_makespan: c.std_makespan,
                        meets_deadline: c.meets_deadline,
                        deadline_hit_rate: c.deadline_hit_rate,
                    })
                    .collect(),
            });
            continue;
        }

        let techniques: Vec<String> = {
            let mut names = Vec::new();
            for c in &result.cells {
                if !names.contains(&c.technique) {
                    names.push(c.technique.clone());
                }
            }
            names
        };
        let mut headers = vec!["App".to_string(), "Case".to_string()];
        headers.extend(techniques.iter().cloned());
        let mut table = AsciiTable::new(headers).title(format!(
            "Scenario {} ({}): mean makespan, * = violates Δ",
            scenario.number(),
            scenario.label()
        ));
        for app in 0..cdsf.batch().len() {
            for case in 1..=paper::NUM_CASES {
                let mut row = vec![
                    if case == 1 {
                        (app + 1).to_string()
                    } else {
                        String::new()
                    },
                    case.to_string(),
                ];
                for t in &techniques {
                    let cell = result
                        .cells
                        .iter()
                        .find(|c| c.app == app && c.case == case && &c.technique == t)
                        .expect("complete grid");
                    row.push(format!(
                        "{:.0}{}",
                        cell.mean_makespan,
                        if cell.meets_deadline { "" } else { "*" }
                    ));
                }
                table.row(row);
            }
        }
        text.push_str(&table.to_string());
        text.push('\n');
    }

    if args.json() {
        serde_json::to_string_pretty(&json_out).map_err(|e| CliError::Framework(e.to_string()))
    } else {
        Ok(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from).collect()).unwrap()
    }

    #[test]
    fn text_output_has_four_scenarios() {
        let out = run(&args("scenarios --pulses 8 --replicates 2")).unwrap();
        for n in 1..=4 {
            assert!(out.contains(&format!("Scenario {n}")), "{out}");
        }
    }

    #[test]
    fn json_output_has_grid() {
        let out = run(&args("scenarios --pulses 8 --replicates 2 --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 4);
        // Scenario 4 grid: 3 apps × 4 cases × 4 techniques.
        assert_eq!(v[3]["cells"].as_array().unwrap().len(), 48);
    }
}
