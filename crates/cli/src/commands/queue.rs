//! `cdsf queue` — multi-batch queue demo.

use crate::args::{Args, CliError};
use crate::commands::sim_params;
use cdsf_core::multibatch::MultiBatch;
use cdsf_core::report::pct;
use cdsf_core::{AsciiTable, ImPolicy, RasPolicy};
use cdsf_workloads::paper;
use serde::Serialize;

#[derive(Serialize)]
struct QueueJson {
    policy: String,
    total_time: f64,
    deadlines_met: usize,
    batches: usize,
}

/// Runs the command.
pub fn run(args: &Args) -> Result<String, CliError> {
    let n: usize = args.get_parsed("batches", 3usize)?;
    if n == 0 {
        return Err(CliError::BadValue {
            flag: "--batches".into(),
            value: "0".into(),
        });
    }
    let seed: u64 = args.get_parsed("seed", 7u64)?;
    let pulses: usize = args.get_parsed("pulses", 16usize)?;
    let err = |e: String| CliError::Framework(e);

    let batches: Vec<_> = (0..n).map(|_| paper::batch_with_pulses(pulses)).collect();
    let reference = paper::platform();
    let runtime = paper::platform_case(args.get_parsed("case", 1usize)?);
    let mut sim = sim_params(args)?;
    sim.replicates = sim.replicates.min(5); // calibration runs per technique
    let mb = MultiBatch::new(&batches, &reference, &runtime, paper::DEADLINE, sim)
        .map_err(|e| err(e.to_string()))?;

    let runs = [
        ("naive-naive", ImPolicy::Naive, RasPolicy::Naive),
        ("robust-robust", ImPolicy::Robust, RasPolicy::Robust),
    ];
    let mut rows = Vec::new();
    for (label, im, ras) in runs {
        let result = mb.run(&im, &ras, seed).map_err(|e| err(e.to_string()))?;
        rows.push(QueueJson {
            policy: label.to_string(),
            total_time: result.total_time,
            deadlines_met: result.deadlines_met(),
            batches: result.batches.len(),
        });
    }

    if args.json() {
        return serde_json::to_string_pretty(&rows).map_err(|e| CliError::Framework(e.to_string()));
    }

    let mut table = AsciiTable::new(["Policy", "Total time", "Deadlines met"]).title(format!(
        "{n}-batch queue on the paper system (Δ = {} per batch)",
        paper::DEADLINE
    ));
    for r in &rows {
        table.row([
            r.policy.clone(),
            format!("{:.0}", r.total_time),
            format!("{}/{}", r.deadlines_met, r.batches),
        ]);
    }
    let speedup = rows[0].total_time / rows[1].total_time;
    Ok(format!(
        "{table}\nrobust-robust clears the queue {} faster than naive-naive\n",
        pct(speedup - 1.0)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from).collect()).unwrap()
    }

    #[test]
    fn queue_compares_policies() {
        let out = run(&args("queue --batches 2 --replicates 2 --pulses 8")).unwrap();
        assert!(out.contains("robust-robust"), "{out}");
        assert!(out.contains("naive-naive"), "{out}");
    }

    #[test]
    fn queue_json() {
        let out = run(&args("queue --batches 2 --replicates 2 --pulses 8 --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 2);
        assert_eq!(v[0]["batches"], 2);
    }

    #[test]
    fn rejects_zero_batches() {
        assert!(run(&args("queue --batches 0")).is_err());
    }
}
