//! `cdsf init-config` / `cdsf run-config` — declarative experiments.
//!
//! `init-config` writes the paper example as a JSON template;
//! `run-config` loads such a file and runs it end to end.

use crate::args::{Args, CliError};
use cdsf_core::experiment::ExperimentSpec;
use cdsf_core::report::pct;
use cdsf_core::{AsciiTable, SimParams};
use cdsf_workloads::paper;

/// Writes a ready-to-edit experiment spec for the paper example.
pub fn run_init(args: &Args) -> Result<String, CliError> {
    let path = args
        .get("file")
        .unwrap_or("cdsf-experiment.json")
        .to_string();
    let spec = ExperimentSpec {
        name: "paper-example".to_string(),
        batch: paper::batch_with_pulses(args.get_parsed("pulses", paper::DEFAULT_PULSES)?),
        reference: paper::platform(),
        runtime_cases: (1..=paper::NUM_CASES).map(paper::platform_case).collect(),
        deadline: args.get_parsed("deadline", paper::DEADLINE)?,
        sim: Some(SimParams {
            replicates: args.get_parsed("replicates", 30usize)?,
            ..Default::default()
        }),
        im: "robust".to_string(),
        ras: vec!["robust".to_string()],
    };
    let json = spec
        .to_json()
        .map_err(|e| CliError::Framework(e.to_string()))?;
    std::fs::write(&path, &json)
        .map_err(|e| CliError::Framework(format!("could not write {path}: {e}")))?;
    Ok(format!(
        "wrote experiment spec to {path} ({} bytes)",
        json.len()
    ))
}

/// Loads and runs an experiment spec.
pub fn run_config(args: &Args) -> Result<String, CliError> {
    let path = args
        .get("file")
        .ok_or(CliError::MissingValue("--file".to_string()))?
        .to_string();
    let json = std::fs::read_to_string(&path)
        .map_err(|e| CliError::Framework(format!("could not read {path}: {e}")))?;
    let spec = ExperimentSpec::from_json(&json).map_err(|e| CliError::Framework(e.to_string()))?;
    let result = spec.run().map_err(|e| CliError::Framework(e.to_string()))?;

    if args.json() {
        return serde_json::to_string_pretty(&result)
            .map_err(|e| CliError::Framework(e.to_string()));
    }

    let napps = spec.batch.len();
    let ncases = result
        .scenario
        .cells
        .iter()
        .map(|c| c.case)
        .max()
        .unwrap_or(1);
    let mut table = AsciiTable::new(["Case", "All apps meet Δ?"]).title(format!(
        "{}: im = {}, ras = {:?}, φ1 = {}, (ρ1, ρ2) = ({}, {})",
        result.name,
        spec.im,
        spec.ras,
        pct(result.scenario.phi1),
        pct(result.robustness.rho1),
        pct(result.robustness.rho2),
    ));
    for case in 1..=ncases {
        table.row([
            case.to_string(),
            if result.scenario.case_is_robust(case, napps) {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    Ok(table.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from).collect()).unwrap()
    }

    #[test]
    fn init_then_run_round_trip() {
        let dir = std::env::temp_dir().join("cdsf-cli-config-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exp.json");
        let path_s = path.to_str().unwrap();

        let out = run_init(&args(&format!(
            "init-config --file {path_s} --pulses 8 --replicates 2"
        )))
        .unwrap();
        assert!(out.contains("wrote experiment spec"), "{out}");

        let out = run_config(&args(&format!("run-config --file {path_s}"))).unwrap();
        assert!(out.contains("paper-example"), "{out}");
        assert!(out.contains("ρ1"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_config_requires_file() {
        assert!(matches!(
            run_config(&args("run-config")),
            Err(CliError::MissingValue(_))
        ));
        assert!(run_config(&args("run-config --file /nonexistent/x.json")).is_err());
    }
}
