//! `cdsf correlate` — availability-correlation sweep (paper future work).

use crate::args::{Args, CliError};
use cdsf_core::report::pct;
use cdsf_core::{AsciiTable, ImPolicy};
use cdsf_ra::correlation::correlation_sweep;
use cdsf_ra::robustness::MonteCarloConfig;
use serde::Serialize;

#[derive(Serialize)]
struct CorrelatePoint {
    rho: f64,
    phi1_independent_within_type: f64,
    phi1_shared_within_type: f64,
}

/// Runs the command.
pub fn run(args: &Args) -> Result<String, CliError> {
    let steps: usize = args.get_parsed("steps", 4usize)?;
    if steps == 0 {
        return Err(CliError::BadValue {
            flag: "--steps".into(),
            value: "0".into(),
        });
    }
    let replicates: usize = args.get_parsed("replicates", 100_000usize)?;
    let allocator = args.get("allocator").unwrap_or("exhaustive").to_string();
    let err = |e: String| CliError::Framework(e);

    let cdsf = super::paper_cdsf(args)?;
    let policy = ImPolicy::Custom(super::stage1::allocator_by_name(&allocator)?);
    let (alloc, report) = cdsf.stage_one(&policy).map_err(|e| err(e.to_string()))?;

    let rhos: Vec<f64> = (0..=steps).map(|k| k as f64 / steps as f64).collect();
    let cfg = MonteCarloConfig {
        replicates,
        threads: 1,
        seed: args.get_parsed("seed", 2718u64)?,
    };
    let batch = cdsf.batch();
    let platform = cdsf.reference();
    let indep = correlation_sweep(batch, platform, &alloc, cdsf.deadline(), &rhos, false, &cfg)
        .map_err(|e| err(e.to_string()))?;
    let shared = correlation_sweep(batch, platform, &alloc, cdsf.deadline(), &rhos, true, &cfg)
        .map_err(|e| err(e.to_string()))?;

    let points: Vec<CorrelatePoint> = indep
        .iter()
        .zip(&shared)
        .map(|(&(rho, pi), &(_, ps))| CorrelatePoint {
            rho,
            phi1_independent_within_type: pi,
            phi1_shared_within_type: ps,
        })
        .collect();

    if args.json() {
        return serde_json::to_string_pretty(&points)
            .map_err(|e| CliError::Framework(e.to_string()));
    }

    let mut table = AsciiTable::new(["ρ", "φ1 (indep. within type)", "φ1 (shared within type)"])
        .title(format!(
            "Correlated availability on the {allocator} mapping (independence φ1 = {})",
            pct(report.joint)
        ));
    for p in &points {
        table.row([
            format!("{:.2}", p.rho),
            pct(p.phi1_independent_within_type),
            pct(p.phi1_shared_within_type),
        ]);
    }
    Ok(table.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from).collect()).unwrap()
    }

    #[test]
    fn correlate_produces_sweep() {
        let out = run(&args("correlate --steps 2 --replicates 5000 --pulses 8")).unwrap();
        assert!(out.contains("0.50"), "{out}");
    }

    #[test]
    fn correlate_json() {
        let out = run(&args(
            "correlate --steps 2 --replicates 5000 --pulses 8 --allocator equal-share --json",
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 3);
    }

    #[test]
    fn correlate_rejects_zero_steps() {
        assert!(run(&args("correlate --steps 0")).is_err());
    }
}
