//! `cdsf advise` — mean-field screening + targeted simulation.

use crate::args::{Args, CliError};
use crate::commands::paper_cdsf;
use cdsf_core::advisor::{Advisor, VerdictSource};
use cdsf_core::report::pct;
use cdsf_core::{AsciiTable, ImPolicy, RasPolicy};

/// Runs the command.
pub fn run(args: &Args) -> Result<String, CliError> {
    let cdsf = paper_cdsf(args)?;
    let im = match args.get("allocator") {
        None => ImPolicy::Robust,
        Some(name) => ImPolicy::Custom(super::stage1::allocator_by_name(name)?),
    };
    let advice = Advisor::default()
        .advise(&cdsf, &im, &RasPolicy::Robust)
        .map_err(|e| CliError::Framework(e.to_string()))?;

    if args.json() {
        return serde_json::to_string_pretty(&advice)
            .map_err(|e| CliError::Framework(e.to_string()));
    }

    let mut table =
        AsciiTable::new(["App", "Case", "Verdict", "Source", "Recommendation"]).title(format!(
            "Advice on [{}] (φ1 = {}): {} cells screened, {} simulated",
            advice.allocation,
            pct(advice.phi1),
            advice.screened,
            advice.simulated
        ));
    for cell in &advice.cells {
        table.row([
            (cell.app + 1).to_string(),
            cell.case.to_string(),
            if cell.meets_deadline {
                "meets Δ"
            } else {
                "VIOLATES"
            }
            .to_string(),
            match cell.source {
                VerdictSource::MeanField => "mean-field".to_string(),
                VerdictSource::Simulation => "simulation".to_string(),
            },
            cell.recommended_technique
                .clone()
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    Ok(table.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from).collect()).unwrap()
    }

    #[test]
    fn advise_produces_grid() {
        let out = run(&args("advise --pulses 8 --replicates 3")).unwrap();
        assert!(out.contains("screened"), "{out}");
        assert!(out.contains("mean-field"), "{out}");
    }

    #[test]
    fn advise_json() {
        let out = run(&args("advise --pulses 8 --replicates 3 --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["cells"].as_array().unwrap().len(), 12);
    }
}
