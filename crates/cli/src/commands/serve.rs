//! `cdsf serve` — run the scheduling service until a client shuts it down.

use crate::args::{Args, CliError};
use cdsf_serve::{ServeConfig, Server};
use std::io::Write;

/// Binds the service, announces the address on stdout (so scripts can
/// scrape the ephemeral port), and blocks until a client sends
/// `Shutdown`. Returns a final stats summary.
pub fn run(args: &Args) -> Result<String, CliError> {
    let host = args.get("host").unwrap_or("127.0.0.1");
    let port: u16 = args.get_parsed("port", 0)?;
    let mut cfg = ServeConfig {
        shards: args.get_parsed("shards", ServeConfig::default().shards)?,
        cache_capacity: args.get_parsed("cache", ServeConfig::default().cache_capacity)?,
        build_threads: args.get_parsed("threads", ServeConfig::default().build_threads)?,
        phi1_threshold: args.get_parsed("threshold", ServeConfig::default().phi1_threshold)?,
        ..ServeConfig::default()
    };
    if let Some(allocator) = args.get("allocator") {
        if cdsf_core::ImPolicy::by_name(allocator).is_none() {
            return Err(CliError::BadValue {
                flag: "--allocator".to_string(),
                value: allocator.to_string(),
            });
        }
        cfg.default_allocator = allocator.to_string();
    }

    let server = Server::bind((host, port), cfg.clone())
        .map_err(|e| CliError::Framework(format!("bind {host}:{port}: {e}")))?;
    // Announce immediately and flush: scripts block on this line to learn
    // the ephemeral port before they connect.
    println!("cdsf-serve listening on {}", server.addr());
    println!(
        "  shards {} | cache {} engines/shard | {} build threads | allocator {} | threshold {}",
        cfg.shards,
        cfg.cache_capacity,
        cfg.build_threads,
        cfg.default_allocator,
        cfg.phi1_threshold
    );
    let _ = std::io::stdout().flush();

    let stats = server.wait();
    let total = &stats.total;
    if args.json() {
        serde_json::to_string_pretty(&stats).map_err(|e| CliError::Framework(e.to_string()))
    } else {
        Ok(format!(
            "cdsf-serve stopped\n\
               requests: {} submits, {} injects, {} snapshots, {} restores, {} errors\n\
               tenants: {} | cache: {} hits / {} misses / {} rebuilds | coalescing {:.3}\n\
               pool: {} runs, {} tasks, {} chunks stolen",
            total.submits,
            total.injects,
            total.snapshots,
            total.restores,
            total.errors,
            total.tenants,
            total.cache_hits,
            total.cache_misses,
            total.cache_rebuilds,
            total.coalescing_factor(),
            total.pool_runs,
            total.pool_tasks_run,
            total.pool_chunks_stolen,
        ))
    }
}
