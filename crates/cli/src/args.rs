//! A deliberately tiny `--flag value` argument parser.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: a command word plus `--key value` options and
/// boolean `--switch`es.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// CLI-level errors (parse failures and command failures).
#[derive(Debug)]
pub enum CliError {
    /// No subcommand given.
    MissingCommand,
    /// Unrecognized subcommand.
    UnknownCommand(String),
    /// A `--flag` at the end of the line with no value.
    MissingValue(String),
    /// A value failed to parse.
    BadValue {
        /// The flag.
        flag: String,
        /// The raw value.
        value: String,
    },
    /// An underlying framework operation failed.
    Framework(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingCommand => {
                write!(f, "no command given — try `cdsf help`")
            }
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command `{c}` — try `cdsf help`")
            }
            CliError::MissingValue(flag) => write!(f, "flag `{flag}` needs a value"),
            CliError::BadValue { flag, value } => {
                write!(f, "could not parse `{value}` for flag `{flag}`")
            }
            CliError::Framework(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Flags that take no value.
const SWITCHES: &[&str] = &["--json"];

impl Args {
    /// Parses `raw` (excluding the program name).
    pub fn parse(raw: Vec<String>) -> Result<Self, CliError> {
        let mut iter = raw.into_iter();
        let command = iter.next().ok_or(CliError::MissingCommand)?;
        let mut options = BTreeMap::new();
        let mut switches = Vec::new();
        let mut iter = iter.peekable();
        while let Some(arg) = iter.next() {
            if SWITCHES.contains(&arg.as_str()) {
                switches.push(arg.trim_start_matches("--").to_string());
            } else if let Some(key) = arg.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::MissingValue(arg.clone()))?;
                options.insert(key.to_string(), value);
            } else {
                return Err(CliError::UnknownCommand(arg));
            }
        }
        Ok(Self {
            command,
            options,
            switches,
        })
    }

    /// Whether `--json` was passed.
    pub fn json(&self) -> bool {
        self.switches.iter().any(|s| s == "json")
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A parsed option with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError::BadValue {
                flag: format!("--{key}"),
                value: v.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, CliError> {
        Args::parse(s.split_whitespace().map(String::from).collect())
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse("scenarios --replicates 50 --dwell 300 --json").unwrap();
        assert_eq!(a.command, "scenarios");
        assert_eq!(a.get("replicates"), Some("50"));
        assert_eq!(a.get_parsed("dwell", 0.0).unwrap(), 300.0);
        assert!(a.json());
    }

    #[test]
    fn defaults_apply() {
        let a = parse("stage1").unwrap();
        assert_eq!(a.get_parsed("pulses", 64usize).unwrap(), 64);
        assert!(!a.json());
    }

    #[test]
    fn rejects_missing_command() {
        assert!(matches!(parse(""), Err(CliError::MissingCommand)));
    }

    #[test]
    fn rejects_dangling_flag() {
        assert!(matches!(
            parse("stage1 --pulses"),
            Err(CliError::MissingValue(_))
        ));
    }

    #[test]
    fn rejects_bad_value() {
        let a = parse("stage1 --pulses abc").unwrap();
        assert!(matches!(
            a.get_parsed::<usize>("pulses", 1),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn rejects_stray_positional() {
        assert!(matches!(
            parse("stage1 oops"),
            Err(CliError::UnknownCommand(_))
        ));
    }
}
