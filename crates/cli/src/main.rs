//! The `cdsf` binary: parse argv, dispatch, print, exit non-zero on error.

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match cdsf_cli::run(raw) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
