//! Regenerates Table V: expected parallel completion times of each
//! application under the naïve and robust initial mappings (paper:
//! 3800.02 / 1306.39 / 4599.76 and 1365.46 / 1959.59 / 2699.86).

use cdsf_bench::{paper_cdsf, repro_sim_params};
use cdsf_core::report::time;
use cdsf_core::{AsciiTable, ImPolicy};

fn main() {
    let cdsf = paper_cdsf(repro_sim_params());

    let mut table = AsciiTable::new(["RA", "T_max1,1", "T_max2,2", "T_max3,3"]).title(
        "Table V: parallel PMF estimated values of application completion times (time units)",
    );
    let paper_rows = [
        ("naive IM", ImPolicy::Naive, [3800.02, 1306.39, 4599.76]),
        ("robust IM", ImPolicy::Robust, [1365.46, 1959.59, 2699.86]),
    ];
    for (label, policy, paper_values) in paper_rows {
        let (_, report) = cdsf.stage_one(&policy).expect("stage I succeeds");
        table.row([
            label.to_string(),
            time(report.expected_times[0]),
            time(report.expected_times[1]),
            time(report.expected_times[2]),
        ]);
        table.row([
            "  (paper)".to_string(),
            time(paper_values[0]),
            time(paper_values[1]),
            time(paper_values[2]),
        ]);
    }
    println!("{table}");
}
