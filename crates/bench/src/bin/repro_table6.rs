//! Regenerates Table VI: the DLS technique providing the best application
//! performance while meeting the system deadline, per application and
//! availability case, under the robust IM — robust RAS scenario.
//!
//! Paper's Table VI:
//! app 1: WF, AF, AF, AF — app 2: WF, WF, AF, — — app 3: AF, AF, AF, AF.

use cdsf_bench::{paper_cdsf, repro_sim_params};
use cdsf_core::{AsciiTable, ImPolicy, RasPolicy};
use cdsf_workloads::paper;

fn main() {
    let cdsf = paper_cdsf(repro_sim_params());
    let result = cdsf
        .run_scenario(&ImPolicy::Robust, &RasPolicy::Robust)
        .expect("scenario 4 runs");

    let table6 = result.table6(cdsf.batch().len(), paper::NUM_CASES);
    let mut table = AsciiTable::new(["Application", "Case 1", "Case 2", "Case 3", "Case 4"])
        .title("Table VI: best deadline-meeting DLS technique per application and case");
    let paper_rows = [
        ["WF", "AF", "AF", "AF"],
        ["WF", "WF", "AF", "-"],
        ["AF", "AF", "AF", "AF"],
    ];
    for (app, row) in table6.iter().enumerate() {
        let mut cells = vec![format!("{}", app + 1)];
        cells.extend(
            row.iter()
                .map(|t| t.clone().unwrap_or_else(|| "-".to_string())),
        );
        table.row(cells);
        let mut paper_cells = vec!["  (paper)".to_string()];
        paper_cells.extend(paper_rows[app].iter().map(|s| s.to_string()));
        table.row(paper_cells);
    }
    println!("{table}");
}
