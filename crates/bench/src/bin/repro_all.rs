//! One command, the whole evaluation: runs every table and figure of the
//! paper plus the headline robustness result, printing to stdout and
//! writing machine-readable copies (CSV + JSON per scenario) into
//! `results/` (or the directory given as the first argument).
//!
//! ```text
//! cargo run --release -p cdsf-bench --bin repro_all [-- results-dir]
//! ```

use cdsf_bench::{paper_cdsf, repro_sim_params};
use cdsf_core::export::write_scenario;
use cdsf_core::report::pct;
use cdsf_core::Scenario;
use cdsf_workloads::paper;
use std::path::PathBuf;

fn main() {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results".to_string())
        .into();
    println!(
        "Writing machine-readable results to {}/\n",
        out_dir.display()
    );

    let cdsf = paper_cdsf(repro_sim_params());

    // Stage I: Tables IV and V.
    for (policy, label) in [
        (cdsf_core::ImPolicy::Naive, "naive"),
        (cdsf_core::ImPolicy::Robust, "robust"),
    ] {
        let (alloc, report) = cdsf.stage_one(&policy).expect("stage I");
        println!(
            "{label} IM: {alloc}\n  φ1 = {}, E[T] = {:?}",
            pct(report.joint),
            report
                .expected_times
                .iter()
                .map(|t| format!("{t:.1}"))
                .collect::<Vec<_>>()
        );
    }
    println!();

    // Stage II: all four scenarios, exported.
    let mut rho = None;
    for scenario in Scenario::all() {
        let (im, ras) = scenario.policies();
        let result = cdsf.run_scenario(&im, &ras).expect("scenario runs");
        let stem = format!("scenario{}", scenario.number());
        write_scenario(&result, &out_dir, &stem).expect("export succeeds");
        let verdicts: Vec<String> = (1..=paper::NUM_CASES)
            .map(|c| {
                format!(
                    "case {c}: {}",
                    if result.case_is_robust(c, cdsf.batch().len()) {
                        "met"
                    } else {
                        "violated"
                    }
                )
            })
            .collect();
        println!(
            "scenario {} ({}): φ1 = {} — {}  → {stem}.csv/.json",
            scenario.number(),
            scenario.label(),
            pct(result.phi1),
            verdicts.join(", "),
        );
        if scenario == Scenario::RobustRobust {
            rho = Some(cdsf.system_robustness(&result));
        }
    }

    let r = rho.expect("scenario 4 ran");
    println!(
        "\nheadline: (ρ1, ρ2) = ({}, {})   [paper: (74.5%, 30.77%)]",
        pct(r.rho1),
        pct(r.rho2)
    );
}
