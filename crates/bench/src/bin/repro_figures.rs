//! Regenerates the data behind Figures 3–6: mean application execution
//! times per availability case and technique, for each of the paper's four
//! scenarios. Values violating the deadline Δ = 3250 are marked `*`.
//!
//! The paper does not publish the bar values numerically; the claims to
//! check are qualitative (which bars cross Δ) and are summarized after
//! each figure. The final block prints the system robustness `(ρ1, ρ2)`
//! of scenario 4 (paper: `(74.5 %, 30.77 %)`).

use cdsf_bench::{deadline_mark, mean_std, paper_cdsf, repro_sim_params};
use cdsf_core::report::pct;
use cdsf_core::{AsciiTable, Scenario};
use cdsf_workloads::paper;

fn main() {
    let cdsf = paper_cdsf(repro_sim_params());
    let deadline = cdsf.deadline();

    for scenario in Scenario::all() {
        let (im, ras) = scenario.policies();
        let result = cdsf.run_scenario(&im, &ras).expect("scenario runs");
        let techniques: Vec<String> = {
            let mut names: Vec<String> = Vec::new();
            for c in &result.cells {
                if !names.contains(&c.technique) {
                    names.push(c.technique.clone());
                }
            }
            names
        };

        let mut headers = vec!["App".to_string(), "Case".to_string()];
        headers.extend(techniques.iter().cloned());
        let mut table = AsciiTable::new(headers).title(format!(
            "Figure {} data: scenario {} ({}), mean execution time ± std over replicates; * = violates Δ = {:.0}",
            scenario.figure(),
            scenario.number(),
            scenario.label(),
            deadline,
        ));

        for app in 0..cdsf.batch().len() {
            for case in 1..=paper::NUM_CASES {
                let mut row = vec![
                    if case == 1 {
                        format!("{}", app + 1)
                    } else {
                        String::new()
                    },
                    format!("{case}"),
                ];
                for tech in &techniques {
                    let cell = result
                        .cells
                        .iter()
                        .find(|c| c.app == app && c.case == case && &c.technique == tech)
                        .expect("grid is complete");
                    row.push(format!(
                        "{}{}",
                        mean_std(cell.mean_makespan, cell.std_makespan),
                        deadline_mark(cell.mean_makespan, deadline)
                    ));
                }
                table.row(row);
            }
        }
        println!("{table}");

        // Qualitative summary per case.
        for case in 1..=paper::NUM_CASES {
            let robust = result.case_is_robust(case, cdsf.batch().len());
            println!(
                "  case {case}: {}",
                if robust {
                    "deadline met for all applications"
                } else {
                    "deadline VIOLATED"
                }
            );
        }
        println!();

        if scenario == Scenario::RobustRobust {
            // Visual summary: each application's best-technique time per
            // case, against the deadline line.
            let mut chart = cdsf_core::report::BarChart::new(48).reference(deadline, "Δ");
            for app in 0..cdsf.batch().len() {
                for case in 1..=paper::NUM_CASES {
                    let (label, value) = match result.best_technique(app, case) {
                        Some(cell) => (
                            format!("app {} case {case} ({})", app + 1, cell.technique),
                            cell.mean_makespan,
                        ),
                        None => {
                            // No technique met Δ: show the least-bad one.
                            let worst = result
                                .cells_for(app, case)
                                .into_iter()
                                .min_by(|a, b| a.mean_makespan.total_cmp(&b.mean_makespan))
                                .expect("grid is complete");
                            (
                                format!("app {} case {case} (none ≤ Δ)", app + 1),
                                worst.mean_makespan,
                            )
                        }
                    };
                    chart.bar(label, value);
                }
            }
            println!("Scenario 4, best technique per (app, case):\n{chart}");

            let r = cdsf.system_robustness(&result);
            println!(
                "Scenario 4 system robustness: (ρ1, ρ2) = ({}, {})   [paper: (74.5%, 30.77%)]",
                pct(r.rho1),
                pct(r.rho2),
            );
            if let Some(c) = r.critical_case {
                println!("  most degraded robust case: case {c}");
            }
            println!();
        }
    }
}
