//! Regenerates the golden regression snapshots under `tests/golden/`.
//!
//! The snapshots freeze the paper-reproduction outputs (Tables IV, V and
//! VI) at the library-default simulation seed so `tests/paper_reproduction.rs`
//! can detect any behavioural drift in the Stage-I engine or the Stage-II
//! simulation, plus the canonical crash-scenario event log pinned by the
//! `cdsf-events` regression suite. Run this binary only when an intentional
//! change shifts the reproduced numbers:
//!
//! ```sh
//! cargo run --release -p cdsf-bench --bin golden_snapshot
//! ```

use cdsf_bench::paper_cdsf;
use cdsf_core::{ImPolicy, RasPolicy, SimParams};
use cdsf_events::{EngineConfig, EventEngine};
use cdsf_workloads::{faults, paper};
use serde_json::{json, Value};
use std::path::PathBuf;

/// The snapshot simulation parameters: library defaults (seed included)
/// with a fixed replicate count, so the grid is deterministic and
/// independent of the host's core count.
fn golden_sim_params() -> SimParams {
    SimParams {
        replicates: 25,
        threads: 4,
        ..Default::default()
    }
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn main() {
    let cdsf = paper_cdsf(golden_sim_params());

    let (naive_alloc, naive_report) = cdsf.stage_one(&ImPolicy::Naive).expect("naive stage one");
    let (robust_alloc, robust_report) =
        cdsf.stage_one(&ImPolicy::Robust).expect("robust stage one");

    let alloc_json = |alloc: &cdsf_ra::Allocation| -> Value {
        Value::Array(
            alloc
                .assignments()
                .iter()
                .map(|a| json!([a.proc_type.0, a.procs]))
                .collect(),
        )
    };

    let table4 = json!({
        "naive": json!({
            "allocation": alloc_json(&naive_alloc),
            "per_app": naive_report.per_app,
            "phi1": naive_report.joint,
        }),
        "robust": json!({
            "allocation": alloc_json(&robust_alloc),
            "per_app": robust_report.per_app,
            "phi1": robust_report.joint,
        }),
    });

    let table5 = json!({
        "naive": naive_report.expected_times,
        "robust": robust_report.expected_times,
    });

    let result = cdsf
        .run_scenario(&ImPolicy::Robust, &RasPolicy::Robust)
        .expect("scenario 4 runs");
    let table6 = json!({
        "techniques": result.table6(cdsf.batch().len(), paper::NUM_CASES),
    });

    // The canonical online fault scenario: staggered arrivals, a Type-1
    // group crash at t = 600, reactive remapping on. The full report
    // (event log + metrics) is pinned byte-for-byte.
    let (batch, platform, plan) =
        cdsf_events::paper_scenario("crash", faults::SCENARIO_PULSES).expect("crash scenario");
    let mut events_cfg = EngineConfig::new(faults::SCENARIO_DEADLINE);
    events_cfg.threads = 4;
    let report = EventEngine::new(&batch, &platform, &plan, &events_cfg)
        .expect("crash scenario validates")
        .run()
        .expect("crash scenario runs");
    let events_crash = serde_json::to_value(&report);

    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    for (name, value) in [
        ("table4.json", &table4),
        ("table5.json", &table5),
        ("table6.json", &table6),
        ("events_crash.json", &events_crash),
    ] {
        let path = dir.join(name);
        let pretty = serde_json::to_string_pretty(value).expect("serialize golden value");
        std::fs::write(&path, format!("{pretty}\n")).expect("write golden file");
        println!("wrote {}", path.display());
    }
}
