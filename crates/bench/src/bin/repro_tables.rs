//! Regenerates the paper's input tables — Table I (availability cases),
//! Table II (batch characteristics), Table III (execution-time means) —
//! from the fixture, printing computed expected/weighted availabilities so
//! they can be checked against the paper's columns.

use cdsf_core::report::pct;
use cdsf_core::AsciiTable;
use cdsf_workloads::paper;

fn main() {
    // ------------------------------------------------------------ Table I
    let mut t1 = AsciiTable::new([
        "Case",
        "Proc.",
        "Availability (%)",
        "Probability (%)",
        "Expected avail. (%)",
        "Weighted system avail. (%)",
        "Decrease vs Case 1",
    ])
    .title("Table I: processor availabilities by type and weighted system availabilities");
    for case in 1..=paper::NUM_CASES {
        let platform = paper::platform_case(case);
        let weighted = pct(paper::weighted_availability(case));
        let decrease = if case == 1 {
            "-".to_string()
        } else {
            format!("[{}]", pct(paper::availability_decrease(case)))
        };
        for (j, ty) in platform.types().iter().enumerate() {
            let avail: Vec<String> = ty
                .availability()
                .pulses()
                .iter()
                .map(|p| format!("{:.0}", p.value * 100.0))
                .collect();
            let prob: Vec<String> = ty
                .availability()
                .pulses()
                .iter()
                .map(|p| format!("{:.0}", p.prob * 100.0))
                .collect();
            t1.row([
                if j == 0 {
                    format!("Case {case}")
                } else {
                    String::new()
                },
                ty.name().to_string(),
                avail.join("/"),
                prob.join("/"),
                pct(ty.expected_availability()),
                if j == 0 {
                    weighted.clone()
                } else {
                    String::new()
                },
                if j == 0 {
                    decrease.clone()
                } else {
                    String::new()
                },
            ]);
        }
    }
    println!("{t1}");

    // ----------------------------------------------------------- Table II
    let batch = paper::batch();
    let mut t2 = AsciiTable::new([
        "App.",
        "# Serial iterations",
        "# Parallel iterations",
        "% Serial",
        "% Parallel",
    ])
    .title("Table II: characteristics of the batch of applications");
    for (id, app) in batch.iter() {
        t2.row([
            format!("{}", id.0 + 1),
            app.serial_iters().to_string(),
            app.parallel_iters().to_string(),
            format!("{:.0}", app.serial_fraction() * 100.0),
            format!("{:.0}", app.parallel_fraction() * 100.0),
        ]);
    }
    println!("{t2}");

    // ---------------------------------------------------------- Table III
    let mut t3 = AsciiTable::new(["Processor", "App 1", "App 2", "App 3"])
        .title("Table III: normal-distribution mean single-processor execution times (σ = μ/10)");
    for j in 0..2 {
        t3.row([
            format!("Type {}", j + 1),
            format!("{:.0}", paper::MEANS[0][j]),
            format!("{:.0}", paper::MEANS[1][j]),
            format!("{:.0}", paper::MEANS[2][j]),
        ]);
    }
    println!("{t3}");
}
