//! Regenerates Table IV (resource allocations for naïve and robust IM)
//! plus the paper's φ₁ values: 26 % for the naïve equal-share mapping and
//! 74.5 % for the robust (exhaustive) mapping.

use cdsf_bench::{paper_cdsf, repro_sim_params};
use cdsf_core::report::pct;
use cdsf_core::{AsciiTable, ImPolicy};

fn main() {
    let cdsf = paper_cdsf(repro_sim_params());

    let mut table = AsciiTable::new(["RA", "App i", "Proc. type j", "# Procs max_i"])
        .title("Table IV: resource allocation for naive and robust IM");
    let mut summary = AsciiTable::new(["RA", "Pr(Ψ ≤ Δ)", "paper"]).title("Stage-I robustness φ1");

    for (policy, label, paper_value) in [
        (ImPolicy::Naive, "naive IM", "26%"),
        (ImPolicy::Robust, "robust IM", "74.5%"),
    ] {
        let (alloc, report) = cdsf.stage_one(&policy).expect("stage I succeeds");
        for (i, asg) in alloc.assignments().iter().enumerate() {
            table.row([
                if i == 0 {
                    label.to_string()
                } else {
                    String::new()
                },
                (i + 1).to_string(),
                (asg.proc_type.0 + 1).to_string(),
                asg.procs.to_string(),
            ]);
        }
        summary.row([
            label.to_string(),
            pct(report.joint),
            paper_value.to_string(),
        ]);
    }

    println!("{table}");
    println!("{summary}");
}
