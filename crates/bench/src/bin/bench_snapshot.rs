//! Records the kernel performance snapshots (`BENCH_stage1.json` and
//! `BENCH_stage2.json`).
//!
//! The default (stage-1) suite runs the same kernel comparisons as the
//! `phi1_kernel` criterion suite (plus headline entries from
//! `pmf_ops`/`ra_search` territory); `--stage2` runs the Stage-II
//! hot-path suite mirroring `stage2_kernel` (prefix-table Timeline
//! queries vs. legacy linear walks, scratch-arena executor replicates,
//! replicate-parallel grid). Both use a self-contained median-of-samples
//! timer and write machine-normalized results — medians plus the derived
//! speedup ratios that the repo's perf trajectory tracks. Ratios, not
//! absolute nanoseconds, are the contract: they divide out the host's
//! clock so snapshots from different machines stay comparable.
//!
//! `--serve` switches to the service suite: it replays the canonical
//! loadgen stream (10k requests, 6 tenants, 2 shards) against an
//! in-process `cdsf-serve` instance and writes `BENCH_serve.json`.
//!
//! ```sh
//! cargo run --release -p cdsf-bench --bin bench_snapshot            # stage 1
//! cargo run --release -p cdsf-bench --bin bench_snapshot -- --stage2
//! cargo run --release -p cdsf-bench --bin bench_snapshot -- --serve
//! cargo run --release -p cdsf-bench --bin bench_snapshot -- --check
//! cargo run --release -p cdsf-bench --bin bench_snapshot -- --stage2 --check
//! cargo run --release -p cdsf-bench --bin bench_snapshot -- --serve --check
//! ```
//!
//! `--check` runs a reduced-iteration smoke pass (validating that every
//! kernel still executes — for `--serve`, a short error-free replay) and
//! then verifies the *committed* snapshot exists and is schema-valid,
//! without overwriting it — the CI guard.

use cdsf_core::simulation::simulate_grid;
use cdsf_core::SimParams;
use cdsf_dls::executor::{execute, execute_in, ExecutorConfig, ExecutorScratch};
use cdsf_dls::TechniqueKind;
use cdsf_pmf::discretize::{Discretize, Normal};
use cdsf_pmf::{CombineScratch, Pmf};
use cdsf_ra::cell_store::DEFAULT_CELL_CAPACITY;
use cdsf_ra::engine::{RebuildMap, PARALLEL_BUILD_MIN_WORK};
use cdsf_ra::robustness::ProbabilityTable;
use cdsf_ra::{
    Allocation, Assignment, CellStore, DeltaFitness, EngineCache, OptionProbs, Phi1Engine,
};
use cdsf_serve::loadgen::{run_local, LoadgenConfig};
use cdsf_serve::ServeConfig;
use cdsf_system::availability::{AvailabilitySpec, Timeline};
use cdsf_system::parallel_time::{amdahl_rescale, loaded_time_pmf_in};
use cdsf_system::{Application, Batch, Platform, ProcTypeId};
use cdsf_workloads::generators::{BatchGenerator, PlatformGenerator, Range};
use cdsf_workloads::paper;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::{json, Value};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Current stage-1 snapshot schema. Bump when the JSON shape changes.
/// v2 added the `pmf_build` section (fused loaded-PMF kernel, incremental
/// engine rebuilds) and its derived ratios. v3 moved the engine-build
/// benches onto a pulse-rich instance that actually engages the
/// work-stealing pool (the apps32/pulses12 instance sat below the
/// serial-fallback work threshold, so "t4" silently measured the serial
/// path), redefined `engine_build_t4_vs_t1` as a *speedup* (`t1 / t4`,
/// bigger is better, matching `grid_thread4_speedup`), and added
/// `host_threads` to the instance block so the guard can be host-aware.
/// v4 added the `pool` section: per-worker `PoolStats` from one
/// instrumented 4-thread engine build, so the work-stealing pool's
/// balance (tasks per worker, chunks stolen, starvation) is visible in
/// the committed snapshot, not only in the serve `Stats` endpoint.
/// v5 added the `ra_lattice` section and the `lattice_vs_sa_speedup`
/// derived ratio: the exact lattice branch-and-bound vs the SA baseline
/// on the apps16 instance, with the solve's node/prune counters and an
/// exactness guard (`lattice_phi1 >= sa_phi1` on the recorded values;
/// `serde_json` round-trips `f64` exactly, so the comparison is
/// bit-faithful).
/// v6 added the `cell_store` section (content-addressed cell interning:
/// cold vs store-warm partial-overlap engine builds on a 24-app catalog,
/// with the store's hit/miss/verify counters and a `≥ 5×` warm-speedup
/// floor), the `gamma_robust_speedup_vs_v5` derived ratio pinning the
/// screened Γ-robust solver against the v5 snapshot's committed
/// `ra/gamma_robust_allocate/apps16` median, and
/// `tasks_seeded_per_worker` in the `pool` section — the deterministic
/// initial-seeding balance of the work-stealing pool, guarded so the
/// old everything-on-one-deque skew cannot regress back in.
const SCHEMA_VERSION: u64 = 6;

/// Current stage-2 snapshot schema. Bump when the JSON shape changes.
/// v2 added the host-aware `grid_thread4_speedup` floor (≥ 3× on hosts
/// with ≥ 4 cores, no-regression bound elsewhere).
const STAGE2_SCHEMA_VERSION: u64 = 2;

/// Serve snapshot schema this guard understands — must match
/// [`cdsf_serve::LoadgenReport`]'s `schema_version`. v2 is the pipelined
/// data plane: the loadgen runs a closed-loop send window instead of
/// lockstep request/reply, discards a warm-up prefix from the latency
/// percentiles, and records `pipeline`, `warmup_discarded`,
/// `host_threads`, and `latency_p999_us` so the throughput/latency
/// guards below can be host-aware. v3 added `policy_mix`: the replay
/// routes that fraction of submits through the explicit "sa"/"lattice"
/// policies, so the committed snapshot exercises both Stage-I solvers
/// (`sa_multistart_runs` was silently 0 before). v4 added
/// `catalog_overlap` (the fraction of tenant specs drawing their
/// applications from a shared catalog) and the service-wide
/// content-addressed cell-store counters
/// (`cell_store_hits`/`_misses`/`_verify_rejects`/`_hit_rate`). The
/// canonical replay keeps `catalog_overlap` at 0.0 so the throughput
/// floors keep measuring the uncontended data plane; the CI smoke
/// separately drives an overlapping stream and asserts nonzero hits.
const SERVE_SCHEMA_VERSION: u64 = 4;

/// Floors the ISSUE pins for the committed serve benchmark: the replay
/// must exercise real multi-tenant sharding, not a toy stream.
const SERVE_MIN_REQUESTS: u64 = 10_000;
const SERVE_MIN_TENANTS: u64 = 4;
const SERVE_MIN_SHARDS: u64 = 2;

/// Performance floors for the committed serve snapshot. The v2 stream
/// was pure cache/data-plane traffic, anchored to the lockstep v1
/// snapshot (8 484.86 req/s at p99 1 309 µs; the pipelined rewrite had
/// to clear 3× that throughput at half the p99). The v3 canonical
/// stream deliberately routes a 2% `policy_mix` of submits through the
/// explicit "sa"/"lattice" Stage-I solvers, which puts a few dozen
/// multi-start SA runs (~20 ms each, single-threaded) *inside* the
/// replay — so the floors re-anchor to the first v3 runs on a 1-core
/// host (4.6-5.7 k req/s, 65 SA runs) with margin for the solver-bound
/// run-to-run spread, and the
/// wide-host p99 ceiling moves to the solver tail: an SA cache miss
/// *is* the p99 path now. Narrow hosts (CI containers are routinely
/// 1-2 cores) keep a degraded throughput bound so a thin runner cannot
/// mask a real regression on a real host. Selected by the snapshot's
/// recorded `host_threads` — numbers are always measured, never
/// assumed.
const SERVE_THROUGHPUT_MIN_WIDE_HOST: f64 = 9_000.0;
const SERVE_P99_MAX_WIDE_US: u64 = 50_000;
const SERVE_THROUGHPUT_MIN_NARROW_HOST: f64 = 3_500.0;

/// Parallel-speedup floors for the 4-thread bench guards. A host with at
/// least 4 cores must show real scaling from the work-stealing pool; on
/// narrower hosts (CI containers are routinely 1-2 cores) a 4-thread run
/// *cannot* beat serial, so the guard degrades to a bound proving the
/// pool at least does not wreck single-core throughput. The floor is
/// selected by the `host_threads` recorded in the snapshot's instance
/// block — numbers are always measured, never assumed.
const PARALLEL_SPEEDUP_MIN_WIDE_HOST: f64 = 3.0;
const PARALLEL_SPEEDUP_MIN_NARROW_HOST: f64 = 0.7;

/// The 4-thread speedup floor for a host with `host_threads` cores.
fn parallel_speedup_floor(host_threads: u64) -> f64 {
    if host_threads >= 4 {
        PARALLEL_SPEEDUP_MIN_WIDE_HOST
    } else {
        PARALLEL_SPEEDUP_MIN_NARROW_HOST
    }
}

/// The Stage-II grid clamps its worker count to the host width (and runs
/// strictly inline at one worker), so on a narrow host the `threads4`
/// configuration executes the *identical* serial code as `threads1` —
/// the ratio must not dip below parity anymore (it measured 0.93 when
/// 4 workers oversubscribed 1 core). Wide hosts keep the scaling floor.
fn grid_speedup_floor(host_threads: u64) -> f64 {
    if host_threads >= 4 {
        PARALLEL_SPEEDUP_MIN_WIDE_HOST
    } else {
        1.0
    }
}

/// Floor for the exact-lattice vs SA headline ratio. Both sides are
/// single-threaded CPU-bound medians on the same host, so the ratio
/// divides out the clock and needs no host awareness.
const LATTICE_VS_SA_SPEEDUP_MIN: f64 = 10.0;

/// The v5 snapshot's committed `ra/gamma_robust_allocate/apps16` median
/// (full mode, the repo's canonical 1-core bench host). The suffix-DP
/// screen added with the v6 schema must keep the Γ-robust solve at
/// least [`GAMMA_ROBUST_SPEEDUP_MIN`]× faster than this anchor. The
/// comparison is absolute nanoseconds against a committed baseline, so
/// it only binds snapshots regenerated on the same host class — which
/// is exactly how the committed artifact is produced; the margin
/// (measured ~2.4-2.6×) absorbs normal clock spread.
const GAMMA_ROBUST_BASELINE_V5_NS: f64 = 525_892.3;
const GAMMA_ROBUST_SPEEDUP_MIN: f64 = 2.0;

/// Floor for the store-warm partial-overlap engine build vs the cold
/// kernel path on the 24-app catalog. Both sides are single-threaded
/// medians from the same run, so the ratio divides out the clock.
/// Measured ~7.4× on the canonical host (23 of 24 applications
/// resident); 5× leaves room for run-to-run spread while still failing
/// if store resolution stops short-circuiting the kernel.
const CELL_STORE_WARM_SPEEDUP_MIN: f64 = 5.0;

const DEADLINE: f64 = 2_800.0;

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../{name}"))
}

/// Median wall-clock nanoseconds per call over `samples` samples of
/// `iters` calls each.
fn measure<F: FnMut()>(samples: usize, iters: usize, mut f: F) -> f64 {
    let mut medians = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        medians.push(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    medians.sort_by(f64::total_cmp);
    medians[medians.len() / 2]
}

/// The pre-rewrite `Pmf::cdf`: partition point plus a prefix re-sum.
fn legacy_cdf(pmf: &Pmf, x: f64) -> f64 {
    let idx = pmf.pulses().partition_point(|p| p.value <= x);
    pmf.pulses()[..idx].iter().map(|p| p.prob).sum()
}

/// The pre-rewrite `Landscape::fitness`: a full probability-table walk.
fn full_fitness(table: &ProbabilityTable, genome: &[Assignment]) -> f64 {
    let mut p = 1.0;
    for (i, asg) in genome.iter().enumerate() {
        match table.prob(i, asg.proc_type, asg.procs) {
            Some(q) => p *= q,
            None => return 0.0,
        }
    }
    p
}

/// `app` with every per-type execution PMF rescaled by `frac` (the shape a
/// remnant remap produces for a partially-finished application).
fn rescaled_app(app: &Application, frac: f64, num_types: usize) -> Application {
    let mut b = Application::builder(app.name())
        .serial_iters(app.serial_iters())
        .parallel_iters(app.parallel_iters());
    for j in 0..num_types {
        b = b.exec_time_pmf(app.exec_time(ProcTypeId(j)).unwrap().scale(frac).unwrap());
    }
    b.build().unwrap()
}

/// `batch` with application `changed` rescaled by `frac` — a single-app
/// remnant: everything else is bit-identical to the original.
fn single_app_remnant(batch: &Batch, num_types: usize, changed: usize, frac: f64) -> Batch {
    Batch::new(
        batch
            .apps()
            .iter()
            .enumerate()
            .map(|(i, app)| {
                if i == changed {
                    rescaled_app(app, frac, num_types)
                } else {
                    app.clone()
                }
            })
            .collect(),
    )
}

/// Every `(app, type, power-of-two count)` cell of the engine grid.
fn engine_cells(batch: &Batch, platform: &Platform) -> Vec<(usize, ProcTypeId, u32)> {
    let mut cells = Vec::new();
    for i in 0..batch.len() {
        for j in 0..platform.num_types() {
            let count = platform.proc_type(ProcTypeId(j)).unwrap().count();
            let mut n = 1u32;
            while n <= count {
                cells.push((i, ProcTypeId(j), n));
                n *= 2;
            }
        }
    }
    cells
}

fn bench_instance(num_apps: usize) -> (Batch, Platform) {
    let platform = PlatformGenerator {
        num_types: 3,
        procs_per_type: (8, 16),
        availability_pulses: 3,
        availability_range: Range::new(0.3, 1.0).unwrap(),
    }
    .generate(11)
    .unwrap();
    let batch = BatchGenerator {
        num_apps,
        total_iters: (1_000, 8_000),
        serial_fraction: Range::new(0.02, 0.2).unwrap(),
        mean_exec_time: Range::new(1_000.0, 6_000.0).unwrap(),
        type_heterogeneity: Range::new(0.6, 1.8).unwrap(),
        pulses: 12,
    }
    .generate(&platform, 12)
    .unwrap();
    (batch, platform)
}

/// A pulse-rich instance for the PMF-construction benches: 384 execution
/// pulses against the usual 3 availability pulses, the regime where the
/// legacy two-step chain's comparison sort and intermediate PMF dominate.
fn rich_instance() -> (Batch, Platform) {
    let platform = PlatformGenerator {
        num_types: 3,
        procs_per_type: (8, 16),
        availability_pulses: 3,
        availability_range: Range::new(0.3, 1.0).unwrap(),
    }
    .generate(11)
    .unwrap();
    let batch = BatchGenerator {
        num_apps: 8,
        total_iters: (1_000, 8_000),
        serial_fraction: Range::new(0.02, 0.2).unwrap(),
        mean_exec_time: Range::new(1_000.0, 6_000.0).unwrap(),
        type_heterogeneity: Range::new(0.6, 1.8).unwrap(),
        pulses: 384,
    }
    .generate(&platform, 12)
    .unwrap();
    (batch, platform)
}

/// Catalog apps shared by the two cell-store batches.
const CATALOG_APPS: usize = 24;
/// The one application `catalog_instance`'s second batch replaces.
const CATALOG_SWAP_INDEX: usize = 11;
const CATALOG_SWAP_SEED: u64 = 777;

/// One catalog application on the pulse-rich platform: generated alone
/// from its own seed, exactly like a serve `WorkloadSpec` with
/// `app_seeds` does it, so two batches naming the same seed carry
/// bit-identical applications.
fn catalog_app(platform: &Platform, seed: u64) -> Application {
    BatchGenerator {
        num_apps: 1,
        total_iters: (1_000, 8_000),
        serial_fraction: Range::new(0.02, 0.2).unwrap(),
        mean_exec_time: Range::new(1_000.0, 6_000.0).unwrap(),
        type_heterogeneity: Range::new(0.6, 1.8).unwrap(),
        pulses: 384,
    }
    .generate(platform, seed)
    .unwrap()
    .apps()[0]
        .clone()
}

/// The cell-store bench instance: two 24-app batches on the pulse-rich
/// platform sharing 23 applications (`next` swaps one mid-batch app for
/// a fresh seed). Building `prev` against a store and then timing the
/// `next` build measures the steady-state cross-tenant case: every
/// shared cell resolves from the store, only the swapped app pays the
/// kernel.
fn catalog_instance() -> (Platform, Batch, Batch) {
    let platform = PlatformGenerator {
        num_types: 3,
        procs_per_type: (8, 16),
        availability_pulses: 3,
        availability_range: Range::new(0.3, 1.0).unwrap(),
    }
    .generate(11)
    .unwrap();
    let apps: Vec<Application> = (0..CATALOG_APPS)
        .map(|i| catalog_app(&platform, 100 + i as u64))
        .collect();
    let prev = Batch::new(apps.clone());
    let mut next_apps = apps;
    next_apps[CATALOG_SWAP_INDEX] = catalog_app(&platform, CATALOG_SWAP_SEED);
    let next = Batch::new(next_apps);
    (platform, prev, next)
}

struct BenchResult {
    name: &'static str,
    median_ns: f64,
    per_unit: &'static str,
}

fn push(out: &mut Vec<BenchResult>, r: BenchResult) {
    eprintln!("  {:<42} {:>12.1} ns/{}", r.name, r.median_ns, r.per_unit);
    out.push(r);
}

fn run_suite(samples: usize, scale: usize) -> Vec<BenchResult> {
    let mut out = Vec::new();

    // --- pmf_ops territory: single-CDF lookup, prefix vs re-sum ---------
    let pmf = Normal::new(1_000.0, 100.0).unwrap().equiprobable(1024);
    push(
        &mut out,
        BenchResult {
            name: "pmf/cdf/prefix_1024",
            median_ns: measure(samples, 2_000 * scale, || {
                black_box(pmf.cdf(black_box(1_050.0)));
            }),
            per_unit: "lookup",
        },
    );
    push(
        &mut out,
        BenchResult {
            name: "pmf/cdf/legacy_scan_1024",
            median_ns: measure(samples, 500 * scale, || {
                black_box(legacy_cdf(&pmf, black_box(1_050.0)));
            }),
            per_unit: "lookup",
        },
    );

    // --- batched deadline sweep ------------------------------------------
    let sweep: Vec<f64> = (0..256).map(|i| 600.0 + 3.2 * i as f64).collect();
    push(
        &mut out,
        BenchResult {
            name: "pmf/cdf_many/batched_256",
            median_ns: measure(samples, 50 * scale, || {
                black_box(pmf.cdf_many(black_box(&sweep)));
            }),
            per_unit: "sweep",
        },
    );
    push(
        &mut out,
        BenchResult {
            name: "pmf/cdf_many/pointwise_256",
            median_ns: measure(samples, 50 * scale, || {
                let v: Vec<f64> = sweep.iter().map(|&x| pmf.cdf(x)).collect();
                black_box(v);
            }),
            per_unit: "sweep",
        },
    );

    // --- engine build (the reactive-remap latency path) -------------------
    // The threaded builds run on the pulse-rich instance: its estimated
    // kernel work clears the engine's serial-fallback threshold, so "t4"
    // measures the work-stealing pool, not the serial fallback (which is
    // what the old apps32/pulses12 instance silently measured).
    let (batch, platform) = bench_instance(32);
    let (rich_batch, rich_platform) = rich_instance();
    push(
        &mut out,
        BenchResult {
            name: "phi1/engine_build/t1_p384",
            median_ns: measure(samples, scale.max(1), || {
                black_box(Phi1Engine::build(&rich_batch, &rich_platform).unwrap());
            }),
            per_unit: "build",
        },
    );
    push(
        &mut out,
        BenchResult {
            name: "phi1/engine_build/t4_p384",
            median_ns: measure(samples, scale.max(1), || {
                black_box(Phi1Engine::build_parallel(&rich_batch, &rich_platform, 4).unwrap());
            }),
            per_unit: "build",
        },
    );

    // --- pmf_build: fused loaded-PMF kernel vs two-step reference ---------
    // Every (app, type, power-of-two count) cell of a pulse-rich grid
    // (the regime where the avoided re-sort and intermediate PMF dominate),
    // built once per iteration: fused single-pass scale→quotient with a
    // reused scratch arena vs the legacy amdahl_rescale + quotient chain.
    let cells = engine_cells(&rich_batch, &rich_platform);
    let n_cells = cells.len() as f64;
    let rich_apps = rich_batch.apps();
    push(
        &mut out,
        BenchResult {
            name: "pmf_build/loaded_fused_p384",
            median_ns: measure(samples, 2 * scale, || {
                let mut scratch = CombineScratch::new();
                for &(i, j, n) in &cells {
                    black_box(
                        loaded_time_pmf_in(&rich_apps[i], &rich_platform, j, n, &mut scratch)
                            .unwrap(),
                    );
                }
            }) / n_cells,
            per_unit: "cell",
        },
    );
    push(
        &mut out,
        BenchResult {
            name: "pmf_build/loaded_two_step_p384",
            median_ns: measure(samples, 2 * scale, || {
                for &(i, j, n) in &cells {
                    let app = &rich_apps[i];
                    let avail = rich_platform.proc_type(j).unwrap().availability();
                    let parallel =
                        amdahl_rescale(app.exec_time(j).unwrap(), app.serial_fraction(), n)
                            .unwrap();
                    black_box(parallel.quotient(avail).unwrap());
                }
            }) / n_cells,
            per_unit: "cell",
        },
    );

    // --- incremental rebuild: verified cell reuse vs full rebuild ---------
    // Alternating single-app remnants (app 0 at 0.5× / 0.25×) so every
    // iteration is a genuine one-app-changed rebuild, never a no-op.
    let num_types = platform.num_types();
    let remnants = [
        single_app_remnant(&batch, num_types, 0, 0.5),
        single_app_remnant(&batch, num_types, 0, 0.25),
    ];
    let identity_apps: Vec<Option<usize>> = (0..batch.len()).map(Some).collect();
    let identity_types: Vec<Option<usize>> = (0..num_types).map(Some).collect();
    let mut cache = EngineCache::build(&batch, &platform, 1).unwrap();
    let mut flip = 0usize;
    push(
        &mut out,
        BenchResult {
            name: "pmf_build/rebuild_remap_1app32",
            median_ns: measure(samples, 2 * scale, || {
                flip ^= 1;
                black_box(
                    cache
                        .rebuild_with(
                            &remnants[flip],
                            &platform,
                            RebuildMap {
                                apps: &identity_apps,
                                types: &identity_types,
                            },
                            1,
                        )
                        .unwrap(),
                );
            }),
            per_unit: "rebuild",
        },
    );
    let mut flip = 0usize;
    push(
        &mut out,
        BenchResult {
            name: "pmf_build/rebuild_full_1app32",
            median_ns: measure(samples, 2 * scale, || {
                flip ^= 1;
                black_box(Phi1Engine::build_parallel(&remnants[flip], &platform, 1).unwrap());
            }),
            per_unit: "rebuild",
        },
    );

    // --- probability-table derivation: SoA pass vs legacy nested scan -----
    let engine = Phi1Engine::build(&batch, &platform).unwrap();
    let deadlines: Vec<f64> = (0..32).map(|i| 1_200.0 + 100.0 * i as f64).collect();
    push(
        &mut out,
        BenchResult {
            name: "phi1/table_sweep/soa_32d",
            median_ns: measure(samples, 5 * scale, || {
                for &d in &deadlines {
                    black_box(engine.table(d).unwrap());
                }
            }),
            per_unit: "sweep",
        },
    );
    push(
        &mut out,
        BenchResult {
            name: "phi1/table_sweep/legacy_32d",
            median_ns: measure(samples, 5 * scale, || {
                for &d in &deadlines {
                    let mut probs = Vec::with_capacity(engine.num_apps());
                    for app in 0..engine.num_apps() {
                        let mut per_type: Vec<Option<Vec<f64>>> = vec![None; engine.num_types()];
                        for asg in engine.options(app) {
                            let pmf = engine.loaded_pmf(app, asg.proc_type, asg.procs).unwrap();
                            per_type[asg.proc_type.0]
                                .get_or_insert_with(Vec::new)
                                .push(legacy_cdf(pmf, d));
                        }
                        probs.push(per_type);
                    }
                    black_box(probs);
                }
            }),
            per_unit: "sweep",
        },
    );

    // --- SA mutation-evaluation throughput --------------------------------
    let (big_batch, big_platform) = bench_instance(64);
    let big_engine = Phi1Engine::build(&big_batch, &big_platform).unwrap();
    let table = big_engine.table(DEADLINE).unwrap();
    let probs = OptionProbs::from_engine(&big_engine, DEADLINE).unwrap();
    let options: Vec<Vec<Assignment>> = (0..big_engine.num_apps())
        .map(|a| big_engine.options(a))
        .collect();
    let mut rng = StdRng::seed_from_u64(7);
    let genome: Vec<Assignment> = options.iter().map(|o| o[o.len() - 1]).collect();
    let moves: Vec<(usize, Assignment)> = (0..4_096)
        .map(|_| {
            let app = rng.gen_range(0..genome.len());
            (app, options[app][rng.gen_range(0..options[app].len())])
        })
        .collect();
    let n_moves = moves.len() as f64;
    push(
        &mut out,
        BenchResult {
            name: "phi1/sa_mutation/delta_apps64",
            median_ns: measure(samples, scale.max(1), || {
                let mut delta = DeltaFitness::new(&probs, &genome);
                let mut acc = 0.0;
                for &(app, asg) in &moves {
                    delta.set_gene(app, asg);
                    acc += delta.fitness();
                }
                black_box(acc);
            }) / n_moves,
            per_unit: "mutation_eval",
        },
    );
    push(
        &mut out,
        BenchResult {
            name: "phi1/sa_mutation/full_recompute_apps64",
            median_ns: measure(samples, scale.max(1), || {
                let mut g = genome.clone();
                let mut acc = 0.0;
                for &(app, asg) in &moves {
                    g[app] = asg;
                    acc += full_fitness(&table, &g);
                }
                black_box(acc);
            }) / n_moves,
            per_unit: "mutation_eval",
        },
    );

    // --- ra_search territory: one full SA allocation ----------------------
    // 16 apps: comfortably within the seed-11 platform's 31 processors, so
    // the instance is feasible and `Landscape::repair` terminates.
    let (sa_batch, sa_platform) = bench_instance(16);
    let sa = cdsf_ra::allocators::SimulatedAnnealing {
        iterations: 2_000 * scale,
        seed: 3,
        threads: 1,
        restarts: 1,
        ..Default::default()
    };
    use cdsf_ra::Allocator;
    push(
        &mut out,
        BenchResult {
            name: "ra/sa_allocate/apps16",
            median_ns: measure(samples, 1, || {
                black_box(sa.allocate(&sa_batch, &sa_platform, DEADLINE).unwrap());
            }),
            per_unit: "allocation",
        },
    );

    // --- exact lattice branch-and-bound on the same instance --------------
    // Warm path (engine + scratch reused) is what a serve shard's repeated
    // allocations against a cached engine actually pay; it is the
    // numerator host of `lattice_vs_sa_speedup`.
    let sa_engine = Phi1Engine::build(&sa_batch, &sa_platform).unwrap();
    let lattice = cdsf_ra::Lattice::new(1).unwrap();
    let mut lattice_scratch = cdsf_ra::LatticeScratch::new();
    push(
        &mut out,
        BenchResult {
            name: "ra/lattice_allocate/apps16",
            median_ns: measure(samples, 20 * scale, || {
                black_box(
                    lattice
                        .solve_with_engine(&sa_platform, &sa_engine, DEADLINE, &mut lattice_scratch)
                        .unwrap(),
                );
            }),
            per_unit: "allocation",
        },
    );
    let robust = cdsf_ra::GammaRobust {
        threads: 1,
        ..Default::default()
    };
    push(
        &mut out,
        BenchResult {
            name: "ra/gamma_robust_allocate/apps16",
            median_ns: measure(samples, 20 * scale, || {
                black_box(
                    robust
                        .solve_with_engine(&sa_platform, &sa_engine, DEADLINE, &mut lattice_scratch)
                        .unwrap(),
                );
            }),
            per_unit: "allocation",
        },
    );

    // --- content-addressed cell store: cold vs store-warm builds ----------
    // Cold is the plain kernel path on the catalog's second batch. Warm
    // uses a *fresh store per sample*: the first batch is built into it
    // untimed, then a single build of the overlapping batch is timed —
    // one measurement per sample, because any further build against the
    // same store would be full-overlap warm, not the partial-overlap
    // case the ratio tracks.
    let (cat_platform, cat_prev, cat_next) = catalog_instance();
    push(
        &mut out,
        BenchResult {
            name: "cell_store/engine_build_cold/catalog24_p384",
            median_ns: measure(samples, scale.max(1), || {
                black_box(Phi1Engine::build_parallel(&cat_next, &cat_platform, 1).unwrap());
            }),
            per_unit: "build",
        },
    );
    let mut warm_ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let store = CellStore::new(DEFAULT_CELL_CAPACITY);
        Phi1Engine::build_parallel_with_store(&cat_prev, &cat_platform, 1, &store).unwrap();
        let t0 = Instant::now();
        black_box(
            Phi1Engine::build_parallel_with_store(&cat_next, &cat_platform, 1, &store).unwrap(),
        );
        warm_ns.push(t0.elapsed().as_nanos() as f64);
    }
    warm_ns.sort_by(f64::total_cmp);
    push(
        &mut out,
        BenchResult {
            name: "cell_store/engine_build_warm_partial/catalog24_p384",
            median_ns: warm_ns[warm_ns.len() / 2],
            per_unit: "build",
        },
    );

    out
}

/// One exact solve and one SA run on the apps16 instance, reported as a
/// JSON block: the optima's φ1 values (the exactness guard compares
/// them) and the search's node/prune counters at one worker, where the
/// counts are deterministic. `sa_iterations` matches the timed
/// `ra/sa_allocate/apps16` bench so the φ1 comparison describes the
/// exact runs the speedup ratio is built from.
fn ra_lattice_section(scale: usize) -> Value {
    use cdsf_ra::robustness::evaluate;
    use cdsf_ra::Allocator;

    let (batch, platform) = bench_instance(16);
    let engine = Phi1Engine::build(&batch, &platform).unwrap();
    let lattice = cdsf_ra::Lattice::new(1).unwrap();
    let mut scratch = cdsf_ra::LatticeScratch::new();
    let (solution, report) = lattice
        .solve_with_engine(&platform, &engine, DEADLINE, &mut scratch)
        .expect("lattice solve must succeed on the bench instance");
    let sa = cdsf_ra::allocators::SimulatedAnnealing {
        iterations: 2_000 * scale,
        seed: 3,
        threads: 1,
        restarts: 1,
        ..Default::default()
    };
    let sa_alloc = sa
        .allocate(&batch, &platform, DEADLINE)
        .expect("SA must allocate on the bench instance");
    let sa_phi1 = evaluate(&batch, &platform, &sa_alloc, DEADLINE)
        .expect("SA allocation must evaluate")
        .joint;
    json!({
        "apps": 16,
        "deadline": DEADLINE,
        "threads": 1,
        "sa_iterations": 2_000 * scale,
        "feasible": matches!(solution, cdsf_ra::LatticeSolution::Optimal { .. }),
        "lattice_phi1": report.phi1,
        "sa_phi1": sa_phi1,
        "counters": json!({
            "nodes": report.counters.nodes,
            "screen_pruned": report.counters.screen_pruned,
            "confirm_pruned": report.counters.confirm_pruned,
            "capacity_pruned": report.counters.capacity_pruned,
            "leaves": report.counters.leaves,
        }),
    })
}

// --- Stage-II suite ------------------------------------------------------

/// The pre-rewrite `Timeline::finish_time`: locate the dispatch segment by
/// a forward walk, then subtract each segment's capacity until the work is
/// exhausted. O(S) per query against the kernel's O(log S).
fn legacy_finish_time(starts: &[f64], levels: &[f64], start: f64, work: f64) -> f64 {
    let mut k = 0;
    while k + 1 < starts.len() && starts[k + 1] <= start {
        k += 1;
    }
    let mut t = start;
    let mut remaining = work;
    loop {
        let end = starts.get(k + 1).copied().unwrap_or(f64::INFINITY);
        let cap = (end - t) * levels[k];
        if cap >= remaining {
            return t + remaining / levels[k];
        }
        remaining -= cap;
        t = end;
        k += 1;
    }
}

/// The pre-rewrite `Timeline::work_between`: accumulate the overlap of
/// every materialized segment with `[t0, t1]`.
fn legacy_work_between(starts: &[f64], levels: &[f64], t0: f64, t1: f64) -> f64 {
    let mut acc = 0.0;
    for (k, &level) in levels.iter().enumerate() {
        let seg_start = starts[k];
        if seg_start >= t1 {
            break;
        }
        let seg_end = starts.get(k + 1).copied().unwrap_or(f64::INFINITY);
        let lo = seg_start.max(t0);
        let hi = seg_end.min(t1);
        if hi > lo {
            acc += (hi - lo) * level;
        }
    }
    acc
}

fn stage2_spec() -> AvailabilitySpec {
    AvailabilitySpec::Renewal {
        pmf: Pmf::from_pairs([(0.3, 0.25), (0.6, 0.35), (1.0, 0.4)]).unwrap(),
        mean_dwell: 5.0,
    }
}

/// A timeline materialized out to `horizon` plus query points that stay
/// inside the materialized range, so the timed lookups never extend the
/// realization (both kernels see the identical segment table).
fn warmed_timeline(horizon: f64) -> (Timeline, Vec<(f64, f64)>) {
    let mut rng = StdRng::seed_from_u64(42);
    let mut tl = Timeline::new(&stage2_spec()).unwrap();
    tl.work_between(0.0, horizon, &mut rng);
    let mut qrng = StdRng::seed_from_u64(7);
    let queries: Vec<(f64, f64)> = (0..64)
        .map(|_| {
            (
                qrng.gen_range(0.0..horizon * 0.8),
                qrng.gen_range(1.0..horizon * 0.05),
            )
        })
        .collect();
    (tl, queries)
}

const STAGE2_SEGMENTS: usize = 10_000;
const STAGE2_REPLICATES: u64 = 25;

fn run_stage2_suite(samples: usize, scale: usize) -> Vec<BenchResult> {
    let mut out = Vec::new();

    // --- Timeline queries: prefix kernels vs legacy linear walks ----------
    let (mut tl, queries) = warmed_timeline(STAGE2_SEGMENTS as f64 * 5.0);
    let mut rng = StdRng::seed_from_u64(1);
    let n_q = queries.len() as f64;
    push(
        &mut out,
        BenchResult {
            name: "timeline/finish_time/prefix_10k",
            median_ns: measure(samples, 200 * scale, || {
                let mut acc = 0.0;
                for &(start, work) in &queries {
                    acc += tl.finish_time(black_box(start), black_box(work), &mut rng);
                }
                black_box(acc);
            }) / n_q,
            per_unit: "lookup",
        },
    );
    let (starts, levels, _) = tl.segments();
    let (starts, levels) = (starts.to_vec(), levels.to_vec());
    push(
        &mut out,
        BenchResult {
            name: "timeline/finish_time/legacy_walk_10k",
            median_ns: measure(samples, 2 * scale, || {
                let mut acc = 0.0;
                for &(start, work) in &queries {
                    acc += legacy_finish_time(&starts, &levels, black_box(start), work);
                }
                black_box(acc);
            }) / n_q,
            per_unit: "lookup",
        },
    );
    push(
        &mut out,
        BenchResult {
            name: "timeline/work_between/prefix_10k",
            median_ns: measure(samples, 200 * scale, || {
                let mut acc = 0.0;
                for &(t0, span) in &queries {
                    acc += tl.work_between(black_box(t0), black_box(t0 + span), &mut rng);
                }
                black_box(acc);
            }) / n_q,
            per_unit: "lookup",
        },
    );
    push(
        &mut out,
        BenchResult {
            name: "timeline/work_between/legacy_scan_10k",
            median_ns: measure(samples, 2 * scale, || {
                let mut acc = 0.0;
                for &(t0, span) in &queries {
                    acc += legacy_work_between(&starts, &levels, black_box(t0), t0 + span);
                }
                black_box(acc);
            }) / n_q,
            per_unit: "lookup",
        },
    );
    push(
        &mut out,
        BenchResult {
            name: "timeline/mean_avail/prefix_10k",
            median_ns: measure(samples, 200 * scale, || {
                let mut acc = 0.0;
                for &(t, _) in &queries {
                    acc += tl.mean_availability_until(black_box(t.max(1.0)), &mut rng);
                }
                black_box(acc);
            }) / n_q,
            per_unit: "lookup",
        },
    );
    push(
        &mut out,
        BenchResult {
            name: "timeline/mean_avail/legacy_scan_10k",
            median_ns: measure(samples, 2 * scale, || {
                let mut acc = 0.0;
                for &(t, _) in &queries {
                    let t = t.max(1.0);
                    acc += legacy_work_between(&starts, &levels, 0.0, black_box(t)) / t;
                }
                black_box(acc);
            }) / n_q,
            per_unit: "lookup",
        },
    );

    // --- executor replicates: scratch arena vs fresh allocation -----------
    let cfg = ExecutorConfig::builder()
        .workers(12)
        .parallel_iters(2_048)
        .iter_time_mean_sigma(1.0, 0.1)
        .unwrap()
        .availability(stage2_spec())
        .overhead(0.01)
        .build()
        .unwrap();
    push(
        &mut out,
        BenchResult {
            name: "executor/replicates25/scratch_arena",
            median_ns: measure(samples, scale.max(1), || {
                let mut scratch = ExecutorScratch::new();
                let mut acc = 0.0;
                for r in 0..STAGE2_REPLICATES {
                    let mut rng = StdRng::seed_from_u64(100 + r);
                    acc += execute_in(&TechniqueKind::Fac, &cfg, &mut scratch, &mut rng)
                        .unwrap()
                        .makespan;
                }
                black_box(acc);
            }) / STAGE2_REPLICATES as f64,
            per_unit: "replicate",
        },
    );
    push(
        &mut out,
        BenchResult {
            name: "executor/replicates25/fresh_alloc",
            median_ns: measure(samples, scale.max(1), || {
                let mut acc = 0.0;
                for r in 0..STAGE2_REPLICATES {
                    let mut rng = StdRng::seed_from_u64(100 + r);
                    acc += execute(&TechniqueKind::Fac, &cfg, &mut rng)
                        .unwrap()
                        .makespan;
                }
                black_box(acc);
            }) / STAGE2_REPLICATES as f64,
            per_unit: "replicate",
        },
    );

    // --- replicate-parallel grid wall-clock --------------------------------
    let batch = paper::batch_with_pulses(8);
    let cases = vec![paper::platform_case(1)];
    let techniques = [TechniqueKind::Fac, TechniqueKind::Af];
    let alloc = Allocation::new(vec![
        Assignment {
            proc_type: ProcTypeId(0),
            procs: 2,
        },
        Assignment {
            proc_type: ProcTypeId(0),
            procs: 2,
        },
        Assignment {
            proc_type: ProcTypeId(1),
            procs: 8,
        },
    ]);
    for (name, threads) in [
        ("grid/replicates25/threads1", 1usize),
        ("grid/replicates25/threads4", 4),
    ] {
        let params = SimParams {
            replicates: STAGE2_REPLICATES as usize,
            threads,
            ..Default::default()
        };
        push(
            &mut out,
            BenchResult {
                name,
                median_ns: measure(samples, scale.max(1), || {
                    black_box(
                        simulate_grid(
                            &batch,
                            &alloc,
                            &cases,
                            &techniques,
                            paper::DEADLINE,
                            &params,
                        )
                        .unwrap(),
                    );
                }),
                per_unit: "grid",
            },
        );
    }

    out
}

/// One instrumented 4-thread build of the pulse-rich instance, reported
/// as a JSON block: the work-stealing pool's per-worker task/steal
/// balance for the exact build that the `t4_p384` bench times. Numbers
/// are measured on this host, never assumed — on a narrow host the
/// engine may clamp the worker count, and the guard only requires that
/// no worker starved.
fn pool_section() -> Value {
    let (batch, platform) = rich_instance();
    let (_, stats) =
        Phi1Engine::build_parallel_instrumented(&batch, &platform, 4, PARALLEL_BUILD_MIN_WORK)
            .expect("instrumented engine build must succeed on the bench instance");
    json!({
        "build_threads": 4,
        "workers": stats.workers,
        "tasks_total": stats.total_tasks(),
        "chunks_stolen_total": stats.total_steals(),
        "tasks_per_worker": stats.tasks_run,
        "tasks_seeded_per_worker": stats.tasks_seeded,
        "chunks_stolen_per_worker": stats.chunks_stolen,
        "no_worker_starved": stats.no_worker_starved(),
    })
}

/// One prev→next catalog build pair against a fresh store, reported as a
/// JSON block: the store's counters for the exact sequence the
/// `cell_store/*` benches time, plus a bit-identity cross-check — the
/// store-resolved engine must fingerprint identically to a storeless
/// build of the same batch (the equivalence suites prove this per-cell;
/// the committed artifact records it held for the benched instance too).
fn cell_store_section() -> Value {
    let (platform, prev, next) = catalog_instance();
    let store = CellStore::new(DEFAULT_CELL_CAPACITY);
    Phi1Engine::build_parallel_with_store(&prev, &platform, 1, &store)
        .expect("catalog prev build must succeed");
    let warm = Phi1Engine::build_parallel_with_store(&next, &platform, 1, &store)
        .expect("catalog next build must succeed");
    let cold =
        Phi1Engine::build_parallel(&next, &platform, 1).expect("catalog cold build must succeed");
    let stats = store.stats();
    json!({
        "catalog_apps": CATALOG_APPS,
        "shared_apps": CATALOG_APPS - 1,
        "exec_pulses": 384,
        "build_threads": 1,
        "hits": stats.hits,
        "misses": stats.misses,
        "verify_rejects": stats.verify_rejects,
        "insertions": stats.insertions,
        "evictions": stats.evictions,
        "resident": stats.resident,
        "capacity": stats.capacity,
        "hit_rate": stats.hit_rate(),
        "fingerprint_match": warm.table_fingerprint() == cold.table_fingerprint(),
    })
}

fn median_of(results: &[BenchResult], name: &str) -> f64 {
    results
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("missing bench {name}"))
        .median_ns
}

fn to_json(results: &[BenchResult], mode: &str, scale: usize) -> Value {
    let delta = median_of(results, "phi1/sa_mutation/delta_apps64");
    let full = median_of(results, "phi1/sa_mutation/full_recompute_apps64");
    let soa = median_of(results, "phi1/table_sweep/soa_32d");
    let legacy_table = median_of(results, "phi1/table_sweep/legacy_32d");
    let prefix = median_of(results, "pmf/cdf/prefix_1024");
    let scan = median_of(results, "pmf/cdf/legacy_scan_1024");
    let fused = median_of(results, "pmf_build/loaded_fused_p384");
    let two_step = median_of(results, "pmf_build/loaded_two_step_p384");
    let t1 = median_of(results, "phi1/engine_build/t1_p384");
    let t4 = median_of(results, "phi1/engine_build/t4_p384");
    let remap = median_of(results, "pmf_build/rebuild_remap_1app32");
    let full_rebuild = median_of(results, "pmf_build/rebuild_full_1app32");
    let sa_alloc = median_of(results, "ra/sa_allocate/apps16");
    let lattice_alloc = median_of(results, "ra/lattice_allocate/apps16");
    let gamma_alloc = median_of(results, "ra/gamma_robust_allocate/apps16");
    let store_cold = median_of(results, "cell_store/engine_build_cold/catalog24_p384");
    let store_warm = median_of(
        results,
        "cell_store/engine_build_warm_partial/catalog24_p384",
    );
    json!({
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "instance": json!({
            "sa_mutation_apps": 64,
            "sa_allocate_apps": 16,
            "table_sweep_apps": 32,
            "table_sweep_deadlines": 32,
            "pmf_build_apps": 8,
            "pmf_build_exec_pulses": 384,
            "pmf_build_avail_pulses": 3,
            "rebuild_apps": 32,
            "rebuild_changed_apps": 1,
            "engine_build_apps": 8,
            "engine_build_exec_pulses": 384,
            "deadline": DEADLINE,
            "host_threads": cdsf_core::default_threads(),
        }),
        "benches": results.iter().map(|r| json!({
            "name": r.name,
            "median_ns": r.median_ns,
            "per": r.per_unit,
        })).collect::<Vec<_>>(),
        "pool": pool_section(),
        "ra_lattice": ra_lattice_section(scale),
        "cell_store": cell_store_section(),
        "derived": json!({
            "sa_mutation_speedup": full / delta,
            "table_sweep_speedup": legacy_table / soa,
            "cdf_lookup_speedup": scan / prefix,
            "candidate_evals_per_sec": 1e9 / delta,
            "pmf_build_fused_speedup": two_step / fused,
            "engine_build_t4_vs_t1": t1 / t4,
            "remap_rebuild_speedup": full_rebuild / remap,
            "lattice_vs_sa_speedup": sa_alloc / lattice_alloc,
            "gamma_robust_speedup_vs_v5": GAMMA_ROBUST_BASELINE_V5_NS / gamma_alloc,
            "cell_store_warm_speedup": store_cold / store_warm,
        }),
    })
}

fn to_stage2_json(results: &[BenchResult], mode: &str) -> Value {
    let ft_prefix = median_of(results, "timeline/finish_time/prefix_10k");
    let ft_legacy = median_of(results, "timeline/finish_time/legacy_walk_10k");
    let wb_prefix = median_of(results, "timeline/work_between/prefix_10k");
    let wb_legacy = median_of(results, "timeline/work_between/legacy_scan_10k");
    let ma_prefix = median_of(results, "timeline/mean_avail/prefix_10k");
    let ma_legacy = median_of(results, "timeline/mean_avail/legacy_scan_10k");
    let scratch = median_of(results, "executor/replicates25/scratch_arena");
    let fresh = median_of(results, "executor/replicates25/fresh_alloc");
    let grid1 = median_of(results, "grid/replicates25/threads1");
    let grid4 = median_of(results, "grid/replicates25/threads4");
    json!({
        "schema_version": STAGE2_SCHEMA_VERSION,
        "mode": mode,
        "instance": json!({
            "timeline_segments": STAGE2_SEGMENTS,
            "replicates": STAGE2_REPLICATES,
            "executor_workers": 12,
            "executor_parallel_iters": 2_048,
            "grid_cells": 6,
            "host_threads": cdsf_core::default_threads(),
        }),
        "benches": results.iter().map(|r| json!({
            "name": r.name,
            "median_ns": r.median_ns,
            "per": r.per_unit,
        })).collect::<Vec<_>>(),
        "derived": json!({
            "finish_time_speedup": ft_legacy / ft_prefix,
            "work_between_speedup": wb_legacy / wb_prefix,
            "mean_availability_speedup": ma_legacy / ma_prefix,
            "executor_scratch_speedup": fresh / scratch,
            "grid_thread4_speedup": grid1 / grid4,
            "finish_lookups_per_sec": 1e9 / ft_prefix,
        }),
    })
}

/// Validates a committed snapshot's schema; returns an error string on
/// the first violation. `derived_keys` and the expected schema version
/// distinguish the stage-1 and stage-2 shapes.
fn validate_with(
    snapshot: &Value,
    expected_schema: u64,
    derived_keys: &[&str],
) -> Result<(), String> {
    let schema = snapshot
        .get("schema_version")
        .and_then(Value::as_u64)
        .ok_or("missing schema_version")?;
    if schema != expected_schema {
        return Err(format!(
            "schema_version {schema} != supported {expected_schema}"
        ));
    }
    let benches = snapshot
        .get("benches")
        .and_then(Value::as_array)
        .ok_or("missing benches array")?;
    if benches.is_empty() {
        return Err("benches array is empty".into());
    }
    for b in benches {
        let name = b
            .get("name")
            .and_then(Value::as_str)
            .ok_or("bench entry missing name")?;
        let ns = b
            .get("median_ns")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("bench {name} missing median_ns"))?;
        if !(ns > 0.0) || !ns.is_finite() {
            return Err(format!("bench {name} has invalid median_ns {ns}"));
        }
    }
    let derived = snapshot
        .get("derived")
        .ok_or("missing derived metrics object")?;
    for key in derived_keys {
        let v = derived
            .get(*key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("derived missing {key}"))?;
        if !(v > 0.0) || !v.is_finite() {
            return Err(format!("derived {key} is invalid: {v}"));
        }
    }
    Ok(())
}

const STAGE1_DERIVED: &[&str] = &[
    "sa_mutation_speedup",
    "table_sweep_speedup",
    "cdf_lookup_speedup",
    "candidate_evals_per_sec",
    "pmf_build_fused_speedup",
    "engine_build_t4_vs_t1",
    "remap_rebuild_speedup",
    "lattice_vs_sa_speedup",
    "gamma_robust_speedup_vs_v5",
    "cell_store_warm_speedup",
];

const STAGE2_DERIVED: &[&str] = &[
    "finish_time_speedup",
    "work_between_speedup",
    "mean_availability_speedup",
    "executor_scratch_speedup",
    "grid_thread4_speedup",
    "finish_lookups_per_sec",
];

/// Enforces a host-aware parallel-speedup floor on one derived metric:
/// the 4-thread run must beat the serial one by `floor_for(host_threads)`
/// for the `host_threads` recorded in the snapshot's instance block.
fn check_speedup_floor(
    snapshot: &Value,
    key: &str,
    floor_for: fn(u64) -> f64,
) -> Result<(), String> {
    let ratio = snapshot["derived"][key]
        .as_f64()
        .ok_or_else(|| format!("derived missing {key}"))?;
    let host = snapshot["instance"]["host_threads"]
        .as_u64()
        .ok_or("instance missing host_threads")?;
    let floor = floor_for(host);
    if ratio < floor {
        return Err(format!(
            "{key} {ratio:.3} is below the {floor} floor for a {host}-thread \
             host — the work-stealing pool has regressed"
        ));
    }
    Ok(())
}

/// Validates the stage-1 `ra_lattice` block: the exact solver must
/// record a deterministic search (nodes and leaves observed) and its
/// optimum must dominate the SA baseline — `lattice_phi1 >= sa_phi1`
/// compared on the recorded values, which `serde_json` round-trips
/// bit-exactly for finite `f64`s. The speedup floor is checked against
/// the derived ratio the same snapshot records.
fn check_ra_lattice_section(snapshot: &Value) -> Result<(), String> {
    let section = snapshot
        .get("ra_lattice")
        .ok_or("missing ra_lattice section")?;
    let lattice_phi1 = section
        .get("lattice_phi1")
        .and_then(Value::as_f64)
        .ok_or("ra_lattice missing lattice_phi1")?;
    let sa_phi1 = section
        .get("sa_phi1")
        .and_then(Value::as_f64)
        .ok_or("ra_lattice missing sa_phi1")?;
    if !lattice_phi1.is_finite() || !sa_phi1.is_finite() {
        return Err(format!(
            "ra_lattice φ1 values are not finite: lattice {lattice_phi1}, sa {sa_phi1}"
        ));
    }
    if lattice_phi1 < sa_phi1 {
        return Err(format!(
            "exactness violated: lattice_phi1 {lattice_phi1} < sa_phi1 {sa_phi1} — \
             the branch-and-bound is no longer optimal"
        ));
    }
    let counters = section
        .get("counters")
        .ok_or("ra_lattice missing counters")?;
    for key in [
        "nodes",
        "screen_pruned",
        "confirm_pruned",
        "capacity_pruned",
        "leaves",
    ] {
        let v = counters
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("ra_lattice counters missing {key}"))?;
        if (key == "nodes" || key == "leaves") && v == 0 {
            return Err(format!("ra_lattice counter {key} is 0 — no search ran"));
        }
    }
    let speedup = snapshot["derived"]["lattice_vs_sa_speedup"]
        .as_f64()
        .ok_or("derived missing lattice_vs_sa_speedup")?;
    if speedup < LATTICE_VS_SA_SPEEDUP_MIN {
        return Err(format!(
            "lattice_vs_sa_speedup {speedup:.2} is below the \
             {LATTICE_VS_SA_SPEEDUP_MIN} floor"
        ));
    }
    Ok(())
}

/// Validates the stage-1 `pool` block: the instrumented build's stats
/// must be internally consistent and starvation-free.
fn check_pool_section(snapshot: &Value) -> Result<(), String> {
    let pool = snapshot.get("pool").ok_or("missing pool section")?;
    let workers = pool
        .get("workers")
        .and_then(Value::as_u64)
        .ok_or("pool missing workers")?;
    if workers == 0 {
        return Err("pool workers is 0".into());
    }
    let tasks = pool
        .get("tasks_total")
        .and_then(Value::as_u64)
        .ok_or("pool missing tasks_total")?;
    if tasks == 0 {
        return Err("pool tasks_total is 0".into());
    }
    let per_worker = pool
        .get("tasks_per_worker")
        .and_then(Value::as_array)
        .ok_or("pool missing tasks_per_worker")?;
    if per_worker.len() != workers as usize {
        return Err(format!(
            "pool tasks_per_worker has {} entries for {workers} workers",
            per_worker.len()
        ));
    }
    // The initial seeding is deterministic (a pure function of the task
    // weights and worker count), so unlike the scheduling-noise columns
    // it can carry a hard balance bound: every worker starts with work,
    // and no deque holds more than twice the even share. The bench
    // instance's near-uniform cell weights make the task-count bound
    // valid; the pre-v6 seeding (everything after the reserved first
    // chunks on one deque — [1, 21, 1, 1] here) fails it outright.
    let seeded: Vec<u64> = pool
        .get("tasks_seeded_per_worker")
        .and_then(Value::as_array)
        .ok_or("pool missing tasks_seeded_per_worker")?
        .iter()
        .map(|v| v.as_u64().ok_or("tasks_seeded_per_worker entry not a u64"))
        .collect::<Result<_, _>>()?;
    if seeded.len() != workers as usize {
        return Err(format!(
            "pool tasks_seeded_per_worker has {} entries for {workers} workers",
            seeded.len()
        ));
    }
    if seeded.iter().sum::<u64>() != tasks {
        return Err(format!(
            "pool seeded {} tasks but ran {tasks} — the seeding no longer covers the grid",
            seeded.iter().sum::<u64>()
        ));
    }
    let even_share = tasks.div_ceil(workers);
    for (w, &s) in seeded.iter().enumerate() {
        if s == 0 {
            return Err(format!("pool worker {w} was seeded no tasks"));
        }
        if s > 2 * even_share {
            return Err(format!(
                "pool worker {w} was seeded {s} tasks, above 2× the even share \
                 {even_share} — the weight-balanced seeding has regressed"
            ));
        }
    }
    pool.get("chunks_stolen_total")
        .and_then(Value::as_u64)
        .ok_or("pool missing chunks_stolen_total")?;
    match pool.get("no_worker_starved").and_then(Value::as_bool) {
        Some(true) => Ok(()),
        Some(false) => Err("pool reports a starved worker".into()),
        None => Err("pool missing no_worker_starved".into()),
    }
}

/// Validates the stage-1 `cell_store` block and its two derived floors:
/// the counters must describe a real prev→next catalog pair (hits from
/// the shared applications, zero verify rejects, a fingerprint-identical
/// engine), the store-warm build must clear the
/// [`CELL_STORE_WARM_SPEEDUP_MIN`] ratio, and the screened Γ-robust
/// solver must hold its [`GAMMA_ROBUST_SPEEDUP_MIN`]× margin over the
/// committed v5 anchor.
fn check_cell_store_section(snapshot: &Value) -> Result<(), String> {
    let section = snapshot
        .get("cell_store")
        .ok_or("missing cell_store section")?;
    let hits = u64_field(section, "hits")?;
    let misses = u64_field(section, "misses")?;
    if hits == 0 {
        return Err("cell_store recorded no hits — the overlapping build resolved nothing".into());
    }
    if misses == 0 {
        return Err("cell_store recorded no misses — the cold build never consulted it".into());
    }
    let rejects = u64_field(section, "verify_rejects")?;
    if rejects != 0 {
        return Err(format!(
            "cell_store recorded {rejects} verify rejects — structural hashes \
             collided on the bench instance"
        ));
    }
    let resident = u64_field(section, "resident")?;
    let capacity = u64_field(section, "capacity")?;
    if resident > capacity {
        return Err(format!(
            "cell_store resident {resident} exceeds capacity {capacity}"
        ));
    }
    let hit_rate = f64_field(section, "hit_rate")?;
    if !(0.0..=1.0).contains(&hit_rate) {
        return Err(format!("cell_store hit_rate {hit_rate} outside [0, 1]"));
    }
    match section.get("fingerprint_match").and_then(Value::as_bool) {
        Some(true) => {}
        Some(false) => {
            return Err("cell_store fingerprint_match is false — a store-resolved \
                 engine diverged from the storeless build"
                .into())
        }
        None => return Err("cell_store missing fingerprint_match".into()),
    }
    let warm_speedup = snapshot["derived"]["cell_store_warm_speedup"]
        .as_f64()
        .ok_or("derived missing cell_store_warm_speedup")?;
    if warm_speedup < CELL_STORE_WARM_SPEEDUP_MIN {
        return Err(format!(
            "cell_store_warm_speedup {warm_speedup:.2} is below the \
             {CELL_STORE_WARM_SPEEDUP_MIN} floor — store resolution no longer \
             short-circuits the kernel"
        ));
    }
    let gamma_speedup = snapshot["derived"]["gamma_robust_speedup_vs_v5"]
        .as_f64()
        .ok_or("derived missing gamma_robust_speedup_vs_v5")?;
    if gamma_speedup < GAMMA_ROBUST_SPEEDUP_MIN {
        return Err(format!(
            "gamma_robust_speedup_vs_v5 {gamma_speedup:.2} is below the \
             {GAMMA_ROBUST_SPEEDUP_MIN} floor against the committed \
             {GAMMA_ROBUST_BASELINE_V5_NS} ns anchor"
        ));
    }
    Ok(())
}

fn validate(snapshot: &Value) -> Result<(), String> {
    validate_with(snapshot, SCHEMA_VERSION, STAGE1_DERIVED)?;
    check_pool_section(snapshot)?;
    check_ra_lattice_section(snapshot)?;
    check_cell_store_section(snapshot)?;
    check_speedup_floor(snapshot, "engine_build_t4_vs_t1", parallel_speedup_floor)
}

fn validate_stage2(snapshot: &Value) -> Result<(), String> {
    validate_with(snapshot, STAGE2_SCHEMA_VERSION, STAGE2_DERIVED)?;
    check_speedup_floor(snapshot, "grid_thread4_speedup", grid_speedup_floor)
}

// --- Serve suite ---------------------------------------------------------

/// The canonical loadgen replay behind the committed `BENCH_serve.json`:
/// 10k requests from 6 tenants over 4 connections against a 2-shard
/// in-process server, with 2% of submits routed through the explicit
/// "sa"/"lattice" policies — enough to exercise the multi-start SA and
/// exact-lattice counters without the solver work drowning the
/// data-plane signal the floors track. `--check` shrinks the stream but
/// keeps the tenant/shard multiplicity and the loadgen's default
/// (heavier) policy mix, so the smoke pass crosses shards *and* both
/// explicit solver paths.
fn serve_configs(check: bool) -> (LoadgenConfig, ServeConfig) {
    let load = if check {
        LoadgenConfig {
            requests: 400,
            tenants: 4,
            connections: 4,
            ..LoadgenConfig::default()
        }
    } else {
        LoadgenConfig {
            policy_mix: 0.02,
            ..LoadgenConfig::default()
        }
    };
    let serve = ServeConfig {
        shards: 2,
        ..ServeConfig::default()
    };
    (load, serve)
}

fn u64_field(snapshot: &Value, key: &str) -> Result<u64, String> {
    snapshot
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing {key}"))
}

fn f64_field(snapshot: &Value, key: &str) -> Result<f64, String> {
    let v = snapshot
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing {key}"))?;
    if !v.is_finite() {
        return Err(format!("{key} is not finite: {v}"));
    }
    Ok(v)
}

/// Validates a serve snapshot ([`cdsf_serve::LoadgenReport`] JSON): the
/// replay must meet the multi-tenant floors, finish without a single
/// error, and carry a coherent per-shard stats block.
fn validate_serve(snapshot: &Value) -> Result<(), String> {
    let schema = u64_field(snapshot, "schema_version")?;
    if schema != SERVE_SCHEMA_VERSION {
        return Err(format!(
            "schema_version {schema} != supported {SERVE_SCHEMA_VERSION}"
        ));
    }
    let requests = u64_field(snapshot, "requests")?;
    let tenants = u64_field(snapshot, "tenants")?;
    let shards = u64_field(snapshot, "shards")?;
    if requests < SERVE_MIN_REQUESTS || tenants < SERVE_MIN_TENANTS || shards < SERVE_MIN_SHARDS {
        return Err(format!(
            "replay {requests} requests / {tenants} tenants / {shards} shards is below \
             the {SERVE_MIN_REQUESTS}/{SERVE_MIN_TENANTS}/{SERVE_MIN_SHARDS} floors"
        ));
    }
    if u64_field(snapshot, "ok")? == 0 {
        return Err("no request succeeded".into());
    }
    let errors = u64_field(snapshot, "errors")?;
    if errors != 0 {
        return Err(format!("committed replay has {errors} request errors"));
    }
    let throughput = f64_field(snapshot, "throughput_rps")?;
    if !(throughput > 0.0) {
        return Err("throughput_rps is not positive".into());
    }
    if u64_field(snapshot, "pipeline")? == 0 {
        return Err("pipeline window is zero".into());
    }
    // Warm-up discard must be recorded (it may legitimately be 0 only if
    // the run was configured that way; the canonical replay discards 200).
    let warmup = u64_field(snapshot, "warmup_discarded")?;
    if warmup == 0 {
        return Err("warmup_discarded is zero — percentiles include cold builds".into());
    }
    let p50 = u64_field(snapshot, "latency_p50_us")?;
    let p99 = u64_field(snapshot, "latency_p99_us")?;
    let p999 = u64_field(snapshot, "latency_p999_us")?;
    if p99 < p50 {
        return Err(format!("latency p99 {p99}us below p50 {p50}us"));
    }
    if p999 < p99 {
        return Err(format!("latency p999 {p999}us below p99 {p99}us"));
    }
    let host_threads = u64_field(snapshot, "host_threads")?;
    if host_threads == 0 {
        return Err("host_threads is zero".into());
    }
    if host_threads >= 4 {
        if throughput < SERVE_THROUGHPUT_MIN_WIDE_HOST {
            return Err(format!(
                "throughput {throughput:.0} req/s below the wide-host floor \
                 {SERVE_THROUGHPUT_MIN_WIDE_HOST:.0} for the policy-mixed v3 stream"
            ));
        }
        if p99 > SERVE_P99_MAX_WIDE_US {
            return Err(format!(
                "p99 {p99}us above the wide-host ceiling {SERVE_P99_MAX_WIDE_US}us \
                 (the solver-tail bound of the policy-mixed v3 stream)"
            ));
        }
    } else if throughput < SERVE_THROUGHPUT_MIN_NARROW_HOST {
        return Err(format!(
            "throughput {throughput:.0} req/s below the narrow-host floor \
             {SERVE_THROUGHPUT_MIN_NARROW_HOST:.0} for the policy-mixed v3 stream"
        ));
    }
    let hit_rate = f64_field(snapshot, "cache_hit_rate")?;
    if !(0.0..=1.0).contains(&hit_rate) {
        return Err(format!("cache_hit_rate {hit_rate} outside [0, 1]"));
    }
    if f64_field(snapshot, "coalescing_factor")? < 1.0 {
        return Err("coalescing_factor below 1".into());
    }
    let stats = snapshot.get("stats").ok_or("missing stats block")?;
    let per_shard = stats
        .get("per_shard")
        .and_then(Value::as_array)
        .ok_or("stats missing per_shard")?;
    if per_shard.len() != shards as usize {
        return Err(format!(
            "stats has {} per-shard entries for {shards} shards",
            per_shard.len()
        ));
    }
    let total = stats.get("total").ok_or("stats missing total")?;
    if u64_field(total, "submits")? == 0 {
        return Err("stats total has no submits".into());
    }
    u64_field(total, "pool_runs")?;
    // v3 invariants: the replay declares its policy mix and, when it is
    // positive, must actually have driven the SA path (the exact-lattice
    // path shares the cache counters, so SA runs are the visible signal
    // that the mix routed around the default policy).
    let mix = f64_field(snapshot, "policy_mix")?;
    if !(0.0..=1.0).contains(&mix) {
        return Err(format!("policy_mix {mix} outside [0, 1]"));
    }
    if mix > 0.0 && u64_field(total, "sa_multistart_runs")? == 0 {
        return Err(format!(
            "policy_mix {mix} routed no submits through the SA policy"
        ));
    }
    // v4 invariants: the replay declares its catalog overlap and carries
    // coherent service-wide cell-store counters. Every engine build goes
    // through the shared store, so a replay with submits must at least
    // have recorded misses; hits are only required of overlapping
    // streams (the canonical replay keeps `catalog_overlap` at 0.0, and
    // per-tenant seeds make cross-tenant hits coincidental there).
    let overlap = f64_field(snapshot, "catalog_overlap")?;
    if !(0.0..=1.0).contains(&overlap) {
        return Err(format!("catalog_overlap {overlap} outside [0, 1]"));
    }
    let cs_hits = u64_field(snapshot, "cell_store_hits")?;
    let cs_misses = u64_field(snapshot, "cell_store_misses")?;
    if cs_hits + cs_misses == 0 {
        return Err("cell store was never consulted — engine builds bypassed it".into());
    }
    let cs_rejects = u64_field(snapshot, "cell_store_verify_rejects")?;
    if cs_rejects != 0 {
        return Err(format!(
            "replay recorded {cs_rejects} cell-store verify rejects"
        ));
    }
    let cs_rate = f64_field(snapshot, "cell_store_hit_rate")?;
    if !(0.0..=1.0).contains(&cs_rate) {
        return Err(format!("cell_store_hit_rate {cs_rate} outside [0, 1]"));
    }
    // v2 invariants: the totals row carries no shard id (the old
    // `u64::MAX` sentinel must never reappear on the wire), batched
    // drains were observed, and the reply codec flushed in bursts.
    if total.get("shard").is_some_and(|s| !s.is_null()) {
        return Err("stats total row carries a shard id".into());
    }
    let drains: u64 = total
        .get("drain_depths")
        .and_then(Value::as_array)
        .ok_or("stats total missing drain_depths")?
        .iter()
        .filter_map(Value::as_u64)
        .sum();
    if drains == 0 {
        return Err("drain-depth histogram is empty".into());
    }
    let codec = stats.get("codec").ok_or("stats missing codec block")?;
    let frames = u64_field(codec, "reply_frames")?;
    let flushes = u64_field(codec, "flushes")?;
    if frames == 0 {
        return Err("codec recorded no reply frames".into());
    }
    if flushes > frames {
        return Err(format!(
            "codec flushes {flushes} exceed reply frames {frames}"
        ));
    }
    Ok(())
}

/// The `--serve` entry point: replay the loadgen stream, then either
/// write the fresh report (full mode) or guard the committed one
/// (`--check`). Returns the process exit path directly like `main`.
fn run_serve(check: bool, path: &std::path::Path) {
    let (load_cfg, serve_cfg) = serve_configs(check);
    eprintln!(
        "running serve replay ({} mode): {} requests, {} tenants, {} shards...",
        if check { "check" } else { "full" },
        load_cfg.requests,
        load_cfg.tenants,
        serve_cfg.shards,
    );
    let report = run_local(&load_cfg, serve_cfg).unwrap_or_else(|e| {
        eprintln!("error: serve replay failed: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "  {:.0} req/s | p50 {} us | p99 {} us | hit rate {:.3} | \
         coalescing {:.3} | {} errors",
        report.throughput_rps,
        report.latency_p50_us,
        report.latency_p99_us,
        report.cache_hit_rate,
        report.coalescing_factor,
        report.errors,
    );
    if report.errors != 0 {
        eprintln!("error: smoke replay produced {} errors", report.errors);
        std::process::exit(1);
    }

    if check {
        let raw = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!(
                "error: committed snapshot {} unreadable: {e}",
                path.display()
            );
            std::process::exit(1);
        });
        let committed: Value = serde_json::from_str(&raw).unwrap_or_else(|e| {
            eprintln!("error: committed snapshot is not valid JSON: {e}");
            std::process::exit(1);
        });
        if let Err(msg) = validate_serve(&committed) {
            eprintln!("error: committed snapshot is schema-invalid: {msg}");
            std::process::exit(1);
        }
        eprintln!("ok: committed {} is schema-valid", path.display());
    } else {
        let snapshot = serde_json::to_value(&report);
        validate_serve(&snapshot).expect("freshly-produced serve snapshot must be schema-valid");
        std::fs::write(path, serde_json::to_string_pretty(&snapshot).unwrap())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let stage2 = args.iter().any(|a| a == "--stage2");
    let serve = args.iter().any(|a| a == "--serve");
    if serve {
        run_serve(check, &snapshot_path("BENCH_serve.json"));
        return;
    }
    let path = snapshot_path(if stage2 {
        "BENCH_stage2.json"
    } else {
        "BENCH_stage1.json"
    });

    let (samples, scale, mode) = if check {
        (3, 1, "check")
    } else {
        (9, 4, "full")
    };
    let (results, snapshot) = if stage2 {
        eprintln!("running Stage-II kernel suite ({mode} mode)...");
        let results = run_stage2_suite(samples, scale);
        let snapshot = to_stage2_json(&results, mode);
        (results, snapshot)
    } else {
        eprintln!("running φ₁ kernel suite ({mode} mode)...");
        let results = run_suite(samples, scale);
        let snapshot = to_json(&results, mode, scale);
        (results, snapshot)
    };
    drop(results);
    let derived = snapshot["derived"].as_object().unwrap();
    for (key, v) in derived.iter() {
        if key.ends_with("_speedup") {
            eprintln!("  {:<28} {:.2}x", key, v.as_f64().unwrap());
        } else {
            eprintln!("  {:<28} {:.3e}", key, v.as_f64().unwrap());
        }
    }
    let validator = if stage2 { validate_stage2 } else { validate };

    if check {
        // Smoke pass done; now guard the committed snapshot.
        let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!(
                "error: committed snapshot {} unreadable: {e}",
                path.display()
            );
            std::process::exit(1);
        });
        let committed: Value = serde_json::from_str(&raw).unwrap_or_else(|e| {
            eprintln!("error: committed snapshot is not valid JSON: {e}");
            std::process::exit(1);
        });
        if let Err(msg) = validator(&committed) {
            eprintln!("error: committed snapshot is schema-invalid: {msg}");
            std::process::exit(1);
        }
        eprintln!("ok: committed {} is schema-valid", path.display());
    } else {
        validator(&snapshot).expect("freshly-produced snapshot must be schema-valid");
        std::fs::write(&path, serde_json::to_string_pretty(&snapshot).unwrap())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
}
