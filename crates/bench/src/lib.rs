//! Shared helpers for the `repro_*` binaries and criterion benches.
//!
//! Everything here is a thin layer over `cdsf-core`/`cdsf-workloads`: the
//! binaries regenerate the paper's tables and figures, and this module
//! holds the common setup so each binary stays a short script.

use cdsf_core::{Cdsf, SimParams};
use cdsf_workloads::paper;

/// Builds the paper's CDSF instance at the fixture defaults.
pub fn paper_cdsf(sim: SimParams) -> Cdsf {
    Cdsf::builder()
        .batch(paper::batch())
        .reference_platform(paper::platform())
        .runtime_cases((1..=paper::NUM_CASES).map(paper::platform_case).collect())
        .deadline(paper::DEADLINE)
        .sim_params(sim)
        .build()
        .expect("paper fixture is valid")
}

/// Simulation parameters used by the repro binaries (more replicates than
/// the library default for smoother figure bars).
pub fn repro_sim_params() -> SimParams {
    SimParams {
        replicates: 100,
        threads: num_threads(),
        ..Default::default()
    }
}

/// Worker threads: all available cores, capped at 8.
pub fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4)
}

/// Formats a mean ± std pair.
pub fn mean_std(mean: f64, std: f64) -> String {
    format!("{mean:.0} ± {std:.0}")
}

/// Marks a value against the deadline: `*` when it violates Δ.
pub fn deadline_mark(mean: f64, deadline: f64) -> &'static str {
    if mean <= deadline {
        ""
    } else {
        "*"
    }
}
