//! Exact lattice branch-and-bound vs stochastic search on the snapshot's
//! apps16 instance: the serve hot path pays one Stage-I allocation per
//! `alloc_cache_miss`, so this suite times the warm (engine + scratch
//! reused) solve that path actually runs, the cold full-build path, the
//! Γ-robust worst-case variant, and the SA baseline it replaces.

use cdsf_ra::allocators::SimulatedAnnealing;
use cdsf_ra::{Allocator, GammaRobust, Lattice, LatticeScratch, Phi1Engine};
use cdsf_system::{Batch, Platform};
use cdsf_workloads::generators::{BatchGenerator, PlatformGenerator, Range};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const DEADLINE: f64 = 2_800.0;

/// The `bench_snapshot` apps16 instance (seeds 11/12), bit for bit.
fn bench_instance(num_apps: usize) -> (Batch, Platform) {
    let platform = PlatformGenerator {
        num_types: 3,
        procs_per_type: (8, 16),
        availability_pulses: 3,
        availability_range: Range::new(0.3, 1.0).unwrap(),
    }
    .generate(11)
    .unwrap();
    let batch = BatchGenerator {
        num_apps,
        total_iters: (1_000, 8_000),
        serial_fraction: Range::new(0.02, 0.2).unwrap(),
        mean_exec_time: Range::new(1_000.0, 6_000.0).unwrap(),
        type_heterogeneity: Range::new(0.6, 1.8).unwrap(),
        pulses: 12,
    }
    .generate(&platform, 12)
    .unwrap();
    (batch, platform)
}

/// Warm solve: the engine and scratch are reused across calls, exactly
/// like the serve shard's repeated allocations against a cached engine.
fn bench_lattice_warm(c: &mut Criterion) {
    let (batch, platform) = bench_instance(16);
    let engine = Phi1Engine::build(&batch, &platform).unwrap();
    let mut group = c.benchmark_group("ra_lattice/solve_warm_apps16");
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let lattice = Lattice::new(t).unwrap();
            let mut scratch = LatticeScratch::new();
            b.iter(|| {
                black_box(
                    lattice
                        .solve_with_engine(&platform, &engine, DEADLINE, &mut scratch)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// Cold path: engine build plus solve, the cost of a cache-missing
/// first allocation for a new tenant spec.
fn bench_lattice_cold(c: &mut Criterion) {
    let (batch, platform) = bench_instance(16);
    let mut group = c.benchmark_group("ra_lattice/allocate_cold_apps16");
    group.sample_size(20);
    group.bench_function("lattice_t1", |b| {
        let lattice = Lattice::new(1).unwrap();
        b.iter(|| black_box(lattice.allocate(&batch, &platform, DEADLINE).unwrap()))
    });
    group.finish();
}

/// The Γ-robust (guaranteed-QoS) variant on the same warm path: the
/// adversary enumeration multiplies leaf evaluation, not tree size.
fn bench_gamma_robust_warm(c: &mut Criterion) {
    let (batch, platform) = bench_instance(16);
    let engine = Phi1Engine::build(&batch, &platform).unwrap();
    let mut group = c.benchmark_group("ra_lattice/gamma_robust_warm_apps16");
    group.bench_function("budget1_t1", |b| {
        let robust = GammaRobust {
            threads: 1,
            ..Default::default()
        };
        let mut scratch = LatticeScratch::new();
        b.iter(|| {
            black_box(
                robust
                    .solve_with_engine(&platform, &engine, DEADLINE, &mut scratch)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

/// The baseline the lattice replaces: one full SA allocation with the
/// snapshot's configuration (2k iterations, single restart, 1 thread).
fn bench_sa_baseline(c: &mut Criterion) {
    let (batch, platform) = bench_instance(16);
    let mut group = c.benchmark_group("ra_lattice/sa_baseline_apps16");
    group.sample_size(20);
    group.bench_function("sa_2k", |b| {
        let sa = SimulatedAnnealing {
            iterations: 2_000,
            seed: 3,
            threads: 1,
            restarts: 1,
            ..Default::default()
        };
        b.iter(|| black_box(sa.allocate(&batch, &platform, DEADLINE).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lattice_warm,
    bench_lattice_cold,
    bench_gamma_robust_warm,
    bench_sa_baseline
);
criterion_main!(benches);
