//! Microbenchmarks of the fused PMF-construction kernels against their
//! two-step reference shapes: single-pass scale→quotient loaded-PMF
//! builds with a reused [`CombineScratch`] vs. the legacy
//! `amdahl_rescale` + `quotient` chain, the sorted-merge `max`/product
//! fast paths vs. the canonicalizing `combine`, and incremental
//! `Phi1Engine::rebuild_with` remnant rebuilds vs. rebuilding from
//! scratch.

use cdsf_pmf::CombineScratch;
use cdsf_ra::engine::RebuildMap;
use cdsf_ra::{EngineCache, Phi1Engine};
use cdsf_system::parallel_time::{amdahl_rescale, loaded_time_pmf_in};
use cdsf_system::{Application, Batch, Platform, ProcTypeId};
use cdsf_workloads::generators::{BatchGenerator, PlatformGenerator, Range};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// A pulse-rich instance: many execution pulses against a handful of
/// availability pulses, the regime where the legacy chain's comparison
/// sort and intermediate PMF dominate.
fn rich_instance(pulses: usize) -> (Batch, Platform) {
    let platform = PlatformGenerator {
        num_types: 3,
        procs_per_type: (8, 16),
        availability_pulses: 3,
        availability_range: Range::new(0.3, 1.0).unwrap(),
    }
    .generate(11)
    .unwrap();
    let batch = BatchGenerator {
        num_apps: 8,
        total_iters: (1_000, 8_000),
        serial_fraction: Range::new(0.02, 0.2).unwrap(),
        mean_exec_time: Range::new(1_000.0, 6_000.0).unwrap(),
        type_heterogeneity: Range::new(0.6, 1.8).unwrap(),
        pulses,
    }
    .generate(&platform, 12)
    .unwrap();
    (batch, platform)
}

/// Every `(app, type, power-of-two count)` cell of the engine grid.
fn engine_cells(batch: &Batch, platform: &Platform) -> Vec<(usize, ProcTypeId, u32)> {
    let mut cells = Vec::new();
    for i in 0..batch.len() {
        for j in 0..platform.num_types() {
            let count = platform.proc_type(ProcTypeId(j)).unwrap().count();
            let mut n = 1u32;
            while n <= count {
                cells.push((i, ProcTypeId(j), n));
                n *= 2;
            }
        }
    }
    cells
}

/// `batch` with application `changed` rescaled by `frac` — a single-app
/// remnant: everything else is bit-identical to the original.
fn single_app_remnant(batch: &Batch, num_types: usize, changed: usize, frac: f64) -> Batch {
    Batch::new(
        batch
            .apps()
            .iter()
            .enumerate()
            .map(|(i, app)| {
                if i != changed {
                    return app.clone();
                }
                let mut b = Application::builder(app.name())
                    .serial_iters(app.serial_iters())
                    .parallel_iters(app.parallel_iters());
                for j in 0..num_types {
                    b = b.exec_time_pmf(app.exec_time(ProcTypeId(j)).unwrap().scale(frac).unwrap());
                }
                b.build().unwrap()
            })
            .collect(),
    )
}

fn bench_loaded_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmf_build/loaded");
    for &pulses in &[48usize, 384] {
        let (batch, platform) = rich_instance(pulses);
        let cells = engine_cells(&batch, &platform);
        let apps = batch.apps();
        group.throughput(Throughput::Elements(cells.len() as u64));
        group.bench_with_input(BenchmarkId::new("fused", pulses), &pulses, |bench, _| {
            let mut scratch = CombineScratch::new();
            bench.iter(|| {
                for &(i, j, n) in &cells {
                    black_box(loaded_time_pmf_in(&apps[i], &platform, j, n, &mut scratch).unwrap());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("two_step", pulses), &pulses, |bench, _| {
            bench.iter(|| {
                for &(i, j, n) in &cells {
                    let app = &apps[i];
                    let avail = platform.proc_type(j).unwrap().availability();
                    let parallel =
                        amdahl_rescale(app.exec_time(j).unwrap(), app.serial_fraction(), n)
                            .unwrap();
                    black_box(parallel.quotient(avail).unwrap());
                }
            })
        });
    }
    group.finish();
}

fn bench_combine_monotone(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmf_build/combine");
    let (batch, platform) = rich_instance(384);
    let a = batch.apps()[0].exec_time(ProcTypeId(0)).unwrap();
    let b = batch.apps()[1].exec_time(ProcTypeId(0)).unwrap();
    group.throughput(Throughput::Elements(1));
    group.bench_function("max_with", |bench| {
        let mut scratch = CombineScratch::new();
        bench.iter(|| black_box(a.max_with(b, &mut scratch).unwrap()))
    });
    group.bench_function("max_combine", |bench| {
        bench.iter(|| black_box(a.max(b).unwrap()))
    });
    let avail = platform.proc_type(ProcTypeId(0)).unwrap().availability();
    group.bench_function("product_with", |bench| {
        let mut scratch = CombineScratch::new();
        bench.iter(|| black_box(a.product_with(avail, &mut scratch).unwrap()))
    });
    group.bench_function("product_combine", |bench| {
        bench.iter(|| black_box(a.combine(avail, |x, y| x * y).unwrap()))
    });
    group.finish();
}

fn bench_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmf_build/rebuild");
    let platform = PlatformGenerator {
        num_types: 3,
        procs_per_type: (8, 16),
        availability_pulses: 3,
        availability_range: Range::new(0.3, 1.0).unwrap(),
    }
    .generate(11)
    .unwrap();
    let batch = BatchGenerator {
        num_apps: 32,
        total_iters: (1_000, 8_000),
        serial_fraction: Range::new(0.02, 0.2).unwrap(),
        mean_exec_time: Range::new(1_000.0, 6_000.0).unwrap(),
        type_heterogeneity: Range::new(0.6, 1.8).unwrap(),
        pulses: 12,
    }
    .generate(&platform, 12)
    .unwrap();
    let num_types = platform.num_types();
    // Alternating single-app remnants so every iteration is a genuine
    // one-app-changed rebuild, never a no-op.
    let remnants = [
        single_app_remnant(&batch, num_types, 0, 0.5),
        single_app_remnant(&batch, num_types, 0, 0.25),
    ];
    let identity_apps: Vec<Option<usize>> = (0..batch.len()).map(Some).collect();
    let identity_types: Vec<Option<usize>> = (0..num_types).map(Some).collect();
    group.bench_function("remap_1app32", |bench| {
        let mut cache = EngineCache::build(&batch, &platform, 1).unwrap();
        let mut flip = 0usize;
        bench.iter(|| {
            flip ^= 1;
            black_box(
                cache
                    .rebuild_with(
                        &remnants[flip],
                        &platform,
                        RebuildMap {
                            apps: &identity_apps,
                            types: &identity_types,
                        },
                        1,
                    )
                    .unwrap(),
            );
        })
    });
    group.bench_function("full_1app32", |bench| {
        let mut flip = 0usize;
        bench.iter(|| {
            flip ^= 1;
            black_box(Phi1Engine::build_parallel(&remnants[flip], &platform, 1).unwrap());
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_loaded_build,
    bench_combine_monotone,
    bench_rebuild
);
criterion_main!(benches);
