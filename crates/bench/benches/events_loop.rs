//! Online event-engine throughput: full scenario runs per second, the cost
//! of reactive remapping vs the static clamp baseline, and scaling with
//! the watchdog checkpoint count.

use cdsf_events::{EngineConfig, EventEngine};
use cdsf_workloads::faults::{self, SCENARIO_DEADLINE, SCENARIO_PULSES};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn cfg(remap: bool, watchdogs: usize) -> EngineConfig {
    let mut cfg = EngineConfig::new(SCENARIO_DEADLINE);
    cfg.remap = remap;
    cfg.watchdog_checks = watchdogs;
    cfg.threads = 2;
    cfg
}

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("events/scenario");
    group.sample_size(20);
    for name in faults::scenario_names() {
        let (batch, platform, plan) =
            cdsf_events::paper_scenario(name, SCENARIO_PULSES).expect("scenario");
        let config = cfg(true, 2);
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| {
                let engine = EventEngine::new(&batch, &platform, &plan, &config).unwrap();
                black_box(engine.run().unwrap())
            })
        });
    }
    group.finish();
}

fn bench_remap_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("events/remap_cost");
    group.sample_size(20);
    let (batch, platform, plan) =
        cdsf_events::paper_scenario("crash", SCENARIO_PULSES).expect("scenario");
    for (label, remap) in [("reactive", true), ("static", false)] {
        let config = cfg(remap, 2);
        group.bench_function(label, |b| {
            b.iter(|| {
                let engine = EventEngine::new(&batch, &platform, &plan, &config).unwrap();
                black_box(engine.run().unwrap())
            })
        });
    }
    group.finish();
}

fn bench_watchdog_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("events/watchdog_scaling");
    group.sample_size(20);
    let (batch, platform, plan) =
        cdsf_events::paper_scenario("mixed", SCENARIO_PULSES).expect("scenario");
    for &n in &[1usize, 4, 16] {
        let config = cfg(true, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let engine = EventEngine::new(&batch, &platform, &plan, &config).unwrap();
                black_box(engine.run().unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scenarios,
    bench_remap_cost,
    bench_watchdog_scaling
);
criterion_main!(benches);
