//! Executor throughput per DLS technique: events per second, chunk counts,
//! and the cost of availability-timeline integration.

use cdsf_dls::executor::{execute, ExecutorConfig};
use cdsf_dls::TechniqueKind;
use cdsf_pmf::Pmf;
use cdsf_system::availability::AvailabilitySpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn renewal_spec() -> AvailabilitySpec {
    AvailabilitySpec::Renewal {
        pmf: Pmf::from_pairs([(0.25, 0.25), (0.5, 0.25), (1.0, 0.5)]).unwrap(),
        mean_dwell: 300.0,
    }
}

fn cfg(iters: u64, workers: usize) -> ExecutorConfig {
    ExecutorConfig::builder()
        .workers(workers)
        .parallel_iters(iters)
        .iter_time_mean_sigma(1.0, 0.1)
        .unwrap()
        .overhead(1.0)
        .availability(renewal_spec())
        .build()
        .unwrap()
}

fn bench_techniques(c: &mut Criterion) {
    let mut group = c.benchmark_group("dls/technique");
    let config = cfg(16_384, 8);
    group.throughput(Throughput::Elements(16_384));
    for kind in TechniqueKind::all(64) {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| {
                let mut rng = StdRng::seed_from_u64(7);
                b.iter(|| black_box(execute(kind, &config, &mut rng).unwrap()))
            },
        );
    }
    group.finish();
}

fn bench_worker_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dls/worker_scaling");
    group.sample_size(30);
    for &p in &[2usize, 8, 32, 128] {
        let config = cfg(65_536, p);
        group.throughput(Throughput::Elements(65_536));
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| black_box(execute(&TechniqueKind::Fac, &config, &mut rng).unwrap()))
        });
    }
    group.finish();
}

fn bench_availability_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("dls/availability_model");
    group.sample_size(30);
    let specs: Vec<(&str, AvailabilitySpec)> = vec![
        ("constant", AvailabilitySpec::Constant { a: 0.7 }),
        ("renewal", renewal_spec()),
        (
            "markov",
            AvailabilitySpec::TwoStateMarkov {
                up: 1.0,
                down: 0.25,
                mean_up: 400.0,
                mean_down: 150.0,
            },
        ),
        (
            "trace",
            AvailabilitySpec::Trace {
                segments: vec![(1.0, 200.0), (0.5, 100.0), (0.25, 50.0)],
            },
        ),
    ];
    for (name, spec) in specs {
        let config = ExecutorConfig::builder()
            .workers(8)
            .parallel_iters(16_384)
            .iter_time_mean_sigma(1.0, 0.1)
            .unwrap()
            .availability(spec)
            .build()
            .unwrap();
        group.bench_function(name, |b| {
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| black_box(execute(&TechniqueKind::Af, &config, &mut rng).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_techniques,
    bench_worker_scaling,
    bench_availability_models
);
criterion_main!(benches);
