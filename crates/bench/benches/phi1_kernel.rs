//! Microbenchmarks of the flat φ₁ kernels against their legacy shapes:
//! prefix-table CDF vs. linear re-sum, batched deadline sweeps, arena
//! engine builds, SoA table derivation, and incremental SA
//! mutation-evaluation throughput vs. the full O(N)-lookup recompute.

use cdsf_pmf::discretize::{Discretize, Normal};
use cdsf_pmf::Pmf;
use cdsf_ra::robustness::ProbabilityTable;
use cdsf_ra::{Assignment, DeltaFitness, OptionProbs, Phi1Engine};
use cdsf_system::{Batch, Platform};
use cdsf_workloads::generators::{BatchGenerator, PlatformGenerator, Range};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const DEADLINE: f64 = 2_800.0;

/// The pre-rewrite `Pmf::cdf`: partition point plus a prefix re-sum.
fn legacy_cdf(pmf: &Pmf, x: f64) -> f64 {
    let idx = pmf.pulses().partition_point(|p| p.value <= x);
    pmf.pulses()[..idx].iter().map(|p| p.prob).sum()
}

/// The pre-rewrite `Landscape::fitness`: a full probability-table walk.
fn full_fitness(table: &ProbabilityTable, genome: &[Assignment]) -> f64 {
    let mut p = 1.0;
    for (i, asg) in genome.iter().enumerate() {
        match table.prob(i, asg.proc_type, asg.procs) {
            Some(q) => p *= q,
            None => return 0.0,
        }
    }
    p
}

/// A Stage-I instance big enough that per-candidate scoring dominates.
fn bench_instance(num_apps: usize) -> (Batch, Platform) {
    let platform = PlatformGenerator {
        num_types: 3,
        procs_per_type: (8, 16),
        availability_pulses: 3,
        availability_range: Range::new(0.3, 1.0).unwrap(),
    }
    .generate(11)
    .unwrap();
    let batch = BatchGenerator {
        num_apps,
        total_iters: (1_000, 8_000),
        serial_fraction: Range::new(0.02, 0.2).unwrap(),
        mean_exec_time: Range::new(1_000.0, 6_000.0).unwrap(),
        type_heterogeneity: Range::new(0.6, 1.8).unwrap(),
        pulses: 12,
    }
    .generate(&platform, 12)
    .unwrap();
    (batch, platform)
}

fn bench_cdf_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("phi1/cdf");
    for &n in &[64usize, 1024, 16_384] {
        let pmf = Normal::new(1_000.0, 100.0).unwrap().equiprobable(n);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("prefix", n), &n, |bench, _| {
            bench.iter(|| black_box(pmf.cdf(black_box(1_050.0))))
        });
        group.bench_with_input(BenchmarkId::new("legacy_scan", n), &n, |bench, _| {
            bench.iter(|| black_box(legacy_cdf(&pmf, black_box(1_050.0))))
        });
    }
    group.finish();
}

fn bench_cdf_many(c: &mut Criterion) {
    let mut group = c.benchmark_group("phi1/cdf_many");
    let pmf = Normal::new(1_000.0, 100.0).unwrap().equiprobable(1024);
    let sweep: Vec<f64> = (0..256).map(|i| 600.0 + 3.2 * i as f64).collect();
    group.throughput(Throughput::Elements(sweep.len() as u64));
    group.bench_function("batched_sorted", |bench| {
        bench.iter(|| black_box(pmf.cdf_many(black_box(&sweep))))
    });
    group.bench_function("pointwise_loop", |bench| {
        bench.iter(|| {
            let out: Vec<f64> = sweep.iter().map(|&x| pmf.cdf(x)).collect();
            black_box(out)
        })
    });
    group.finish();
}

fn bench_engine_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("phi1/engine_build");
    let (batch, platform) = bench_instance(32);
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |bench, &t| {
                bench.iter(|| black_box(Phi1Engine::build_parallel(&batch, &platform, t).unwrap()))
            },
        );
    }
    group.finish();
}

fn bench_table_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("phi1/table");
    let (batch, platform) = bench_instance(32);
    let engine = Phi1Engine::build(&batch, &platform).unwrap();
    let deadlines: Vec<f64> = (0..32).map(|i| 1_200.0 + 100.0 * i as f64).collect();
    group.throughput(Throughput::Elements(deadlines.len() as u64));
    group.bench_function("soa_linear_pass", |bench| {
        bench.iter(|| {
            for &d in &deadlines {
                black_box(engine.table(d).unwrap());
            }
        })
    });
    // The pre-rewrite shape: walk the loaded PMFs and re-sum each CDF.
    group.bench_function("legacy_nested_scan", |bench| {
        bench.iter(|| {
            for &d in &deadlines {
                let mut probs = Vec::with_capacity(engine.num_apps());
                for app in 0..engine.num_apps() {
                    let mut per_type: Vec<Option<Vec<f64>>> = vec![None; engine.num_types()];
                    for asg in engine.options(app) {
                        let pmf = engine.loaded_pmf(app, asg.proc_type, asg.procs).unwrap();
                        per_type[asg.proc_type.0]
                            .get_or_insert_with(Vec::new)
                            .push(legacy_cdf(pmf, d));
                    }
                    probs.push(per_type);
                }
                black_box(probs);
            }
        })
    });
    group.finish();
}

fn bench_sa_mutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("phi1/sa_mutation");
    for &num_apps in &[16usize, 64] {
        let (batch, platform) = bench_instance(num_apps);
        let engine = Phi1Engine::build(&batch, &platform).unwrap();
        let table = engine.table(DEADLINE).unwrap();
        let probs = OptionProbs::from_engine(&engine, DEADLINE).unwrap();
        let options: Vec<Vec<Assignment>> =
            (0..engine.num_apps()).map(|a| engine.options(a)).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let genome: Vec<Assignment> = options.iter().map(|o| o[o.len() - 1]).collect();
        let moves: Vec<(usize, Assignment)> = (0..4_096)
            .map(|_| {
                let app = rng.gen_range(0..genome.len());
                (app, options[app][rng.gen_range(0..options[app].len())])
            })
            .collect();

        group.throughput(Throughput::Elements(moves.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("delta", num_apps),
            &num_apps,
            |bench, _| {
                bench.iter(|| {
                    let mut delta = DeltaFitness::new(&probs, &genome);
                    let mut acc = 0.0;
                    for &(app, asg) in &moves {
                        delta.set_gene(app, asg);
                        acc += delta.fitness();
                    }
                    black_box(acc)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_recompute", num_apps),
            &num_apps,
            |bench, _| {
                bench.iter(|| {
                    let mut g = genome.clone();
                    let mut acc = 0.0;
                    for &(app, asg) in &moves {
                        g[app] = asg;
                        acc += full_fitness(&table, &g);
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cdf_lookup,
    bench_cdf_many,
    bench_engine_build,
    bench_table_sweep,
    bench_sa_mutation
);
criterion_main!(benches);
