//! Benchmarks of the *live* multithreaded runtime (`cdsf_dls::runtime`):
//! scheduling overhead per technique on a real parallel loop, and scaling
//! with thread count.

use cdsf_dls::runtime::{run_parallel_loop, RuntimeConfig};
use cdsf_dls::TechniqueKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// A small fixed-cost body (a few ns) so scheduling overhead dominates.
fn tiny_body(i: u64) {
    black_box((i as f64).sqrt());
}

/// A moderately irregular body (cost ramps with the index).
fn ramped_body(i: u64) {
    let reps = 1 + (i % 64);
    let mut acc = 0.0f64;
    for k in 0..reps {
        acc += ((i + k) as f64).sqrt();
    }
    black_box(acc);
}

fn bench_scheduling_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/scheduling_overhead");
    group.sample_size(15);
    const N: u64 = 100_000;
    group.throughput(Throughput::Elements(N));
    for kind in [
        TechniqueKind::Static,
        TechniqueKind::SelfSched,
        TechniqueKind::Gss,
        TechniqueKind::Fac,
        TechniqueKind::Af,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| {
                let cfg = RuntimeConfig {
                    threads: 4,
                    kind: kind.clone(),
                };
                b.iter(|| black_box(run_parallel_loop(N, &cfg, tiny_body).unwrap()))
            },
        );
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/thread_scaling");
    group.sample_size(15);
    const N: u64 = 200_000;
    group.throughput(Throughput::Elements(N));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let cfg = RuntimeConfig {
                    threads,
                    kind: TechniqueKind::Fac,
                };
                b.iter(|| black_box(run_parallel_loop(N, &cfg, ramped_body).unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scheduling_overhead, bench_thread_scaling);
criterion_main!(benches);
