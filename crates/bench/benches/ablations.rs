//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * PMF pulse resolution vs Stage-I evaluation cost (accuracy values are
//!   printed once at startup so `cargo bench` output records them);
//! * coalesce budget vs makespan-PMF cost;
//! * scheduling-overhead sensitivity of the executor;
//! * availability dwell-time sensitivity of the technique ranking.

use cdsf_dls::executor::{execute, ExecutorConfig};
use cdsf_dls::TechniqueKind;
use cdsf_pmf::Pmf;
use cdsf_ra::robustness::evaluate;
use cdsf_ra::{Allocation, Assignment};
use cdsf_system::availability::AvailabilitySpec;
use cdsf_system::ProcTypeId;
use cdsf_workloads::paper;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn robust_alloc() -> Allocation {
    Allocation::new(vec![
        Assignment {
            proc_type: ProcTypeId(0),
            procs: 2,
        },
        Assignment {
            proc_type: ProcTypeId(0),
            procs: 2,
        },
        Assignment {
            proc_type: ProcTypeId(1),
            procs: 8,
        },
    ])
}

/// Pulse-resolution ablation: accuracy printed once, cost benchmarked.
fn bench_pulse_resolution(c: &mut Criterion) {
    let platform = paper::platform();
    let alloc = robust_alloc();
    let reference = evaluate(
        &paper::batch_with_pulses(1024),
        &platform,
        &alloc,
        paper::DEADLINE,
    )
    .unwrap()
    .joint;
    eprintln!("\nablation: φ1 error vs pulse resolution (reference = {reference:.4} @1024)");
    for &pulses in &[4usize, 8, 16, 32, 64, 128] {
        let phi1 = evaluate(
            &paper::batch_with_pulses(pulses),
            &platform,
            &alloc,
            paper::DEADLINE,
        )
        .unwrap()
        .joint;
        eprintln!(
            "  pulses {pulses:>4}: φ1 = {phi1:.4}, |error| = {:.4}",
            (phi1 - reference).abs()
        );
    }

    let mut group = c.benchmark_group("ablation/pulse_resolution");
    for &pulses in &[8usize, 64, 512] {
        let batch = paper::batch_with_pulses(pulses);
        group.bench_with_input(BenchmarkId::from_parameter(pulses), &pulses, |b, _| {
            b.iter(|| black_box(evaluate(&batch, &platform, &alloc, paper::DEADLINE).unwrap()))
        });
    }
    group.finish();
}

/// Coalesce-budget ablation on the makespan PMF.
fn bench_coalesce_budget(c: &mut Criterion) {
    use cdsf_system::parallel_time::makespan_pmf;
    let batch = paper::batch_with_pulses(64);
    let platform = paper::platform();
    let alloc = robust_alloc();
    let apps: Vec<_> = batch.iter().map(|(_, a)| a).collect();
    let assignments: Vec<_> = apps
        .iter()
        .zip(alloc.assignments())
        .map(|(app, asg)| (*app, asg.proc_type, asg.procs))
        .collect();

    eprintln!("\nablation: Pr(Ψ ≤ Δ) vs coalesce budget");
    for &budget in &[32usize, 128, 512, 4096] {
        let psi = makespan_pmf(&assignments, &platform, budget).unwrap();
        eprintln!(
            "  budget {budget:>5}: {} pulses, Pr(Ψ ≤ Δ) = {:.4}",
            psi.len(),
            psi.cdf(paper::DEADLINE)
        );
    }

    let mut group = c.benchmark_group("ablation/coalesce_budget");
    for &budget in &[64usize, 512, 4096] {
        group.bench_with_input(
            BenchmarkId::from_parameter(budget),
            &budget,
            |b, &budget| {
                b.iter(|| black_box(makespan_pmf(&assignments, &platform, budget).unwrap()))
            },
        );
    }
    group.finish();
}

/// Scheduling-overhead sensitivity: SS collapses, FAC/AF degrade gently.
fn bench_overhead_sensitivity(c: &mut Criterion) {
    eprintln!("\nablation: makespan vs per-chunk overhead (8 workers, 8192 iters)");
    for kind in [
        TechniqueKind::SelfSched,
        TechniqueKind::Fac,
        TechniqueKind::Af,
    ] {
        for &h in &[0.0f64, 0.5, 2.0] {
            let cfg = ExecutorConfig::builder()
                .workers(8)
                .parallel_iters(8_192)
                .iter_time_mean_sigma(1.0, 0.1)
                .unwrap()
                .overhead(h)
                .availability(AvailabilitySpec::Constant { a: 1.0 })
                .build()
                .unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            let run = execute(&kind, &cfg, &mut rng).unwrap();
            eprintln!(
                "  {:>6} h={h:>3}: makespan {:>8.0}, chunks {:>5}",
                kind.name(),
                run.makespan,
                run.chunks
            );
        }
    }

    let mut group = c.benchmark_group("ablation/overhead");
    group.sample_size(20);
    for &h in &[0.0f64, 2.0] {
        let cfg = ExecutorConfig::builder()
            .workers(8)
            .parallel_iters(8_192)
            .iter_time_mean_sigma(1.0, 0.1)
            .unwrap()
            .overhead(h)
            .availability(AvailabilitySpec::Constant { a: 1.0 })
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::new("fac", format!("h{h}")), &cfg, |b, cfg| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| black_box(execute(&TechniqueKind::Fac, cfg, &mut rng).unwrap()))
        });
    }
    group.finish();
}

/// Dwell-time sensitivity: how the STATIC-vs-DLS gap depends on how fast
/// availability fluctuates (the calibration study behind SimParams).
fn bench_dwell_sensitivity(c: &mut Criterion) {
    let pmf = Pmf::from_pairs([(0.25, 0.25), (0.5, 0.25), (1.0, 0.5)]).unwrap();
    eprintln!("\nablation: STATIC vs AF mean makespan (10 reps) vs renewal dwell");
    for &dwell in &[50.0f64, 300.0, 1_000.0, 5_000.0] {
        let cfg = ExecutorConfig::builder()
            .workers(4)
            .parallel_iters(4_096)
            .iter_time_mean_sigma(1.0, 0.1)
            .unwrap()
            .availability(AvailabilitySpec::Renewal {
                pmf: pmf.clone(),
                mean_dwell: dwell,
            })
            .build()
            .unwrap();
        let mut mean = [0.0f64; 2];
        for (i, kind) in [TechniqueKind::Static, TechniqueKind::Af]
            .iter()
            .enumerate()
        {
            let mut rng = StdRng::seed_from_u64(9);
            for _ in 0..10 {
                mean[i] += execute(kind, &cfg, &mut rng).unwrap().makespan;
            }
            mean[i] /= 10.0;
        }
        eprintln!(
            "  dwell {dwell:>6}: STATIC {:>7.0}, AF {:>7.0}, ratio {:.2}",
            mean[0],
            mean[1],
            mean[0] / mean[1]
        );
    }

    let mut group = c.benchmark_group("ablation/dwell");
    group.sample_size(20);
    for &dwell in &[50.0f64, 1_000.0] {
        let cfg = ExecutorConfig::builder()
            .workers(4)
            .parallel_iters(4_096)
            .iter_time_mean_sigma(1.0, 0.1)
            .unwrap()
            .availability(AvailabilitySpec::Renewal {
                pmf: pmf.clone(),
                mean_dwell: dwell,
            })
            .build()
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("af", format!("dwell{dwell}")),
            &cfg,
            |b, cfg| {
                let mut rng = StdRng::seed_from_u64(4);
                b.iter(|| black_box(execute(&TechniqueKind::Af, cfg, &mut rng).unwrap()))
            },
        );
    }
    group.finish();
}

/// Dwell-*shape* sensitivity: same stationary PMF and mean dwell, four
/// dwell distributions — does the process shape change the STATIC/AF gap?
fn bench_dwell_shape(c: &mut Criterion) {
    use cdsf_system::availability::DwellDistribution;
    let pmf = Pmf::from_pairs([(0.25, 0.25), (0.5, 0.25), (1.0, 0.5)]).unwrap();
    let shapes: Vec<(&str, DwellDistribution)> = vec![
        (
            "exponential",
            DwellDistribution::Exponential { mean: 400.0 },
        ),
        (
            "uniform",
            DwellDistribution::Uniform {
                lo: 100.0,
                hi: 700.0,
            },
        ),
        (
            "lognormal-heavy",
            DwellDistribution::LogNormal {
                mean: 400.0,
                cov: 2.0,
            },
        ),
        ("periodic", DwellDistribution::Deterministic { d: 400.0 }),
    ];
    eprintln!("\nablation: STATIC/AF makespan ratio vs dwell shape (mean dwell 400)");
    for (name, dwell) in &shapes {
        let cfg = ExecutorConfig::builder()
            .workers(4)
            .parallel_iters(4_096)
            .iter_time_mean_sigma(1.0, 0.1)
            .unwrap()
            .availability(AvailabilitySpec::RenewalGeneral {
                pmf: pmf.clone(),
                dwell: dwell.clone(),
            })
            .build()
            .unwrap();
        let mut means = [0.0f64; 2];
        for (i, kind) in [TechniqueKind::Static, TechniqueKind::Af]
            .iter()
            .enumerate()
        {
            let mut rng = StdRng::seed_from_u64(77);
            for _ in 0..10 {
                means[i] += execute(kind, &cfg, &mut rng).unwrap().makespan;
            }
            means[i] /= 10.0;
        }
        eprintln!(
            "  {name:>16}: STATIC {:>7.0}, AF {:>7.0}, ratio {:.2}",
            means[0],
            means[1],
            means[0] / means[1]
        );
    }

    let mut group = c.benchmark_group("ablation/dwell_shape");
    group.sample_size(20);
    for (name, dwell) in shapes {
        let cfg = ExecutorConfig::builder()
            .workers(4)
            .parallel_iters(4_096)
            .iter_time_mean_sigma(1.0, 0.1)
            .unwrap()
            .availability(AvailabilitySpec::RenewalGeneral {
                pmf: pmf.clone(),
                dwell,
            })
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| black_box(execute(&TechniqueKind::Af, cfg, &mut rng).unwrap()))
        });
    }
    group.finish();
}

/// Advisor vs full grid: how much simulation the mean-field screen saves.
fn bench_advisor_vs_grid(c: &mut Criterion) {
    use cdsf_core::advisor::Advisor;
    use cdsf_core::{Cdsf, ImPolicy, RasPolicy, SimParams};

    let cdsf = Cdsf::builder()
        .batch(cdsf_workloads::paper::batch_with_pulses(32))
        .reference_platform(paper::platform())
        .runtime_cases((1..=4).map(paper::platform_case).collect())
        .deadline(paper::DEADLINE)
        .sim_params(SimParams {
            replicates: 25,
            threads: 4,
            ..Default::default()
        })
        .build()
        .unwrap();

    let advice = Advisor::default()
        .advise(&cdsf, &ImPolicy::Robust, &RasPolicy::Robust)
        .unwrap();
    eprintln!(
        "\nablation: advisor screened {} of {} cells without simulation",
        advice.screened,
        advice.screened + advice.simulated
    );

    let mut group = c.benchmark_group("ablation/advisor_vs_grid");
    group.sample_size(10);
    group.bench_function("full_grid", |b| {
        b.iter(|| {
            black_box(
                cdsf.run_scenario(&ImPolicy::Robust, &RasPolicy::Robust)
                    .unwrap(),
            )
        })
    });
    group.bench_function("advisor", |b| {
        let advisor = Advisor::default();
        b.iter(|| {
            black_box(
                advisor
                    .advise(&cdsf, &ImPolicy::Robust, &RasPolicy::Robust)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pulse_resolution,
    bench_coalesce_budget,
    bench_overhead_sensitivity,
    bench_dwell_sensitivity,
    bench_dwell_shape,
    bench_advisor_vs_grid
);
criterion_main!(benches);
