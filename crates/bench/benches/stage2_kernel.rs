//! Microbenchmarks of the flat Stage-II kernels against their legacy
//! shapes: prefix-table Timeline queries (binary-search `finish_time`,
//! prefix-difference `work_between`, scaled-prefix mean availability) vs.
//! the pre-rewrite linear segment walks, scratch-arena executor replicates
//! vs. fresh per-replicate allocation, and the replicate-parallel
//! simulation grid across thread counts.

use cdsf_core::simulation::simulate_grid;
use cdsf_core::SimParams;
use cdsf_dls::executor::{execute, execute_in, ExecutorConfig, ExecutorScratch};
use cdsf_dls::TechniqueKind;
use cdsf_pmf::Pmf;
use cdsf_ra::{Allocation, Assignment};
use cdsf_system::availability::{AvailabilitySpec, Timeline};
use cdsf_system::ProcTypeId;
use cdsf_workloads::paper;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// The pre-rewrite `Timeline::finish_time`: locate the dispatch segment by
/// a forward walk, then subtract each segment's capacity until the work is
/// exhausted. O(S) per query against the kernel's O(log S).
fn legacy_finish_time(starts: &[f64], levels: &[f64], start: f64, work: f64) -> f64 {
    let mut k = 0;
    while k + 1 < starts.len() && starts[k + 1] <= start {
        k += 1;
    }
    let mut t = start;
    let mut remaining = work;
    loop {
        let end = starts.get(k + 1).copied().unwrap_or(f64::INFINITY);
        let cap = (end - t) * levels[k];
        if cap >= remaining {
            return t + remaining / levels[k];
        }
        remaining -= cap;
        t = end;
        k += 1;
    }
}

/// The pre-rewrite `Timeline::work_between`: accumulate the overlap of
/// every materialized segment with `[t0, t1]`.
fn legacy_work_between(starts: &[f64], levels: &[f64], t0: f64, t1: f64) -> f64 {
    let mut acc = 0.0;
    for (k, &level) in levels.iter().enumerate() {
        let seg_start = starts[k];
        if seg_start >= t1 {
            break;
        }
        let seg_end = starts.get(k + 1).copied().unwrap_or(f64::INFINITY);
        let lo = seg_start.max(t0);
        let hi = seg_end.min(t1);
        if hi > lo {
            acc += (hi - lo) * level;
        }
    }
    acc
}

fn bench_spec() -> AvailabilitySpec {
    AvailabilitySpec::Renewal {
        pmf: Pmf::from_pairs([(0.3, 0.25), (0.6, 0.35), (1.0, 0.4)]).unwrap(),
        mean_dwell: 5.0,
    }
}

/// A timeline materialized out to `horizon` (≈ `horizon / 5` segments),
/// plus query points that stay inside the materialized range so the
/// benchmarked lookups never extend the realization (and never touch the
/// RNG — identical realization for both kernels).
fn warmed_timeline(horizon: f64) -> (Timeline, Vec<(f64, f64)>) {
    let mut rng = StdRng::seed_from_u64(42);
    let mut tl = Timeline::new(&bench_spec()).unwrap();
    tl.work_between(0.0, horizon, &mut rng);
    let mut qrng = StdRng::seed_from_u64(7);
    let queries: Vec<(f64, f64)> = (0..64)
        .map(|_| {
            (
                qrng.gen_range(0.0..horizon * 0.8),
                qrng.gen_range(1.0..horizon * 0.05),
            )
        })
        .collect();
    (tl, queries)
}

fn bench_finish_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage2/finish_time");
    for &segments in &[1_000usize, 10_000] {
        let (mut tl, queries) = warmed_timeline(segments as f64 * 5.0);
        let mut rng = StdRng::seed_from_u64(1);
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("prefix_bsearch", segments),
            &segments,
            |bench, _| {
                bench.iter(|| {
                    let mut acc = 0.0;
                    for &(start, work) in &queries {
                        acc += tl.finish_time(black_box(start), black_box(work), &mut rng);
                    }
                    black_box(acc)
                })
            },
        );
        let (starts, levels, _) = tl.segments();
        let (starts, levels) = (starts.to_vec(), levels.to_vec());
        group.bench_with_input(
            BenchmarkId::new("legacy_walk", segments),
            &segments,
            |bench, _| {
                bench.iter(|| {
                    let mut acc = 0.0;
                    for &(start, work) in &queries {
                        acc += legacy_finish_time(&starts, &levels, black_box(start), work);
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

fn bench_work_between(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage2/work_between");
    let segments = 10_000usize;
    let (mut tl, queries) = warmed_timeline(segments as f64 * 5.0);
    let mut rng = StdRng::seed_from_u64(1);
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("prefix_diff", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for &(t0, span) in &queries {
                acc += tl.work_between(black_box(t0), black_box(t0 + span), &mut rng);
            }
            black_box(acc)
        })
    });
    let (starts, levels, _) = tl.segments();
    let (starts, levels) = (starts.to_vec(), levels.to_vec());
    group.bench_function("legacy_overlap_scan", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for &(t0, span) in &queries {
                acc += legacy_work_between(&starts, &levels, black_box(t0), t0 + span);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_mean_availability(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage2/mean_availability");
    let segments = 10_000usize;
    let (mut tl, queries) = warmed_timeline(segments as f64 * 5.0);
    let mut rng = StdRng::seed_from_u64(1);
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("scaled_prefix", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for &(t, _) in &queries {
                acc += tl.mean_availability_until(black_box(t.max(1.0)), &mut rng);
            }
            black_box(acc)
        })
    });
    let (starts, levels, _) = tl.segments();
    let (starts, levels) = (starts.to_vec(), levels.to_vec());
    group.bench_function("legacy_full_scan", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for &(t, _) in &queries {
                let t = t.max(1.0);
                acc += legacy_work_between(&starts, &levels, 0.0, black_box(t)) / t;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn replicate_cfg() -> ExecutorConfig {
    ExecutorConfig::builder()
        .workers(12)
        .parallel_iters(2_048)
        .iter_time_mean_sigma(1.0, 0.1)
        .unwrap()
        .availability(bench_spec())
        .overhead(0.01)
        .build()
        .unwrap()
}

fn bench_executor_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage2/executor_replicates");
    let cfg = replicate_cfg();
    const REPLICATES: u64 = 25;
    group.throughput(Throughput::Elements(REPLICATES));
    group.bench_function("scratch_arena", |bench| {
        bench.iter(|| {
            let mut scratch = ExecutorScratch::new();
            let mut acc = 0.0;
            for r in 0..REPLICATES {
                let mut rng = StdRng::seed_from_u64(100 + r);
                acc += execute_in(&TechniqueKind::Fac, &cfg, &mut scratch, &mut rng)
                    .unwrap()
                    .makespan;
            }
            black_box(acc)
        })
    });
    group.bench_function("fresh_alloc", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for r in 0..REPLICATES {
                let mut rng = StdRng::seed_from_u64(100 + r);
                acc += execute(&TechniqueKind::Fac, &cfg, &mut rng)
                    .unwrap()
                    .makespan;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage2/grid");
    group.sample_size(10);
    let batch = paper::batch_with_pulses(8);
    let cases = vec![paper::platform_case(1)];
    let techniques = [TechniqueKind::Fac, TechniqueKind::Af];
    let alloc = Allocation::new(vec![
        Assignment {
            proc_type: ProcTypeId(0),
            procs: 2,
        },
        Assignment {
            proc_type: ProcTypeId(0),
            procs: 2,
        },
        Assignment {
            proc_type: ProcTypeId(1),
            procs: 8,
        },
    ]);
    for &threads in &[1usize, 4] {
        let params = SimParams {
            replicates: 8,
            threads,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |bench, _| {
                bench.iter(|| {
                    black_box(
                        simulate_grid(
                            &batch,
                            &alloc,
                            &cases,
                            &techniques,
                            paper::DEADLINE,
                            &params,
                        )
                        .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_finish_time,
    bench_work_between,
    bench_mean_availability,
    bench_executor_scratch,
    bench_grid
);
criterion_main!(benches);
