//! Content-addressed cell store: cold engine builds vs store-resolved
//! warm builds on catalog-style workloads.
//!
//! The serve layer's cross-tenant win is that two specs sharing catalog
//! applications (and a platform) produce bit-identical `(app, type, 2^k)`
//! cells, which one shared [`CellStore`] interns exactly once. This suite
//! times the engine-build path that monetizes that sharing:
//!
//! * `cold_build` — the plain kernel path, no store attached;
//! * `overhead_empty_store` — a fresh, never-warm store attached: the
//!   pure cost of hashing inputs and interning every cell (the worst
//!   case a store-attached build can pay — the store construction itself
//!   is eight empty `RwLock<Vec>>`s, noise next to the kernel work);
//! * `warm_full_overlap` — every cell resident: the steady-state rebuild
//!   a serve shard pays when a tenant resubmits a known catalog;
//! * `pair_build_shared15` — a fresh store warmed by a batch sharing 15
//!   of 16 applications, then the overlapping build: the whole
//!   two-tenant onboarding sequence. Comparing it against 2× cold shows
//!   the store paying for itself within two builds. (The *isolated*
//!   partial-overlap warm build — second build only — is timed by
//!   `bench_snapshot`'s `cell_store` section, which can afford a fresh
//!   pre-warmed store per sample.)

use cdsf_ra::cell_store::DEFAULT_CELL_CAPACITY;
use cdsf_ra::{CellStore, Phi1Engine};
use cdsf_system::{Application, Batch, Platform};
use cdsf_workloads::generators::{BatchGenerator, PlatformGenerator, Range};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// The snapshot's pulse-rich platform (seed 11), the regime where the
/// fused cell kernel dominates the build and hashing is comparatively
/// free.
fn catalog_platform() -> Platform {
    PlatformGenerator {
        num_types: 3,
        procs_per_type: (8, 16),
        availability_pulses: 3,
        availability_range: Range::new(0.3, 1.0).unwrap(),
    }
    .generate(11)
    .unwrap()
}

/// One catalog application: generated alone from its own seed, exactly
/// like a serve `WorkloadSpec` with `app_seeds` does it.
fn catalog_app(platform: &Platform, seed: u64) -> Application {
    BatchGenerator {
        num_apps: 1,
        total_iters: (1_000, 8_000),
        serial_fraction: Range::new(0.02, 0.2).unwrap(),
        mean_exec_time: Range::new(1_000.0, 6_000.0).unwrap(),
        type_heterogeneity: Range::new(0.6, 1.8).unwrap(),
        pulses: 384,
    }
    .generate(platform, seed)
    .unwrap()
    .apps()[0]
        .clone()
}

/// Two 16-app batches drawn from a 17-app catalog: `prev` holds apps
/// 0..16, `next` holds 1..17, so they share 15 applications.
fn catalog_instance() -> (Platform, Batch, Batch) {
    let platform = catalog_platform();
    let apps: Vec<Application> = (0..17).map(|i| catalog_app(&platform, 100 + i)).collect();
    let prev = Batch::new(apps[..16].to_vec());
    let next = Batch::new(apps[1..].to_vec());
    (platform, prev, next)
}

fn bench_cold_build(c: &mut Criterion) {
    let (platform, _, next) = catalog_instance();
    let mut group = c.benchmark_group("cell_store/cold_build_catalog16");
    group.sample_size(20);
    group.bench_function("t1_p384", |b| {
        b.iter(|| black_box(Phi1Engine::build_parallel(&next, &platform, 1).unwrap()))
    });
    group.finish();
}

fn bench_overhead_empty_store(c: &mut Criterion) {
    let (platform, _, next) = catalog_instance();
    let mut group = c.benchmark_group("cell_store/overhead_empty_store");
    group.sample_size(20);
    group.bench_function("t1_p384", |b| {
        b.iter(|| {
            let store = CellStore::new(DEFAULT_CELL_CAPACITY);
            black_box(Phi1Engine::build_parallel_with_store(&next, &platform, 1, &store).unwrap())
        })
    });
    group.finish();
}

fn bench_warm_full_overlap(c: &mut Criterion) {
    let (platform, _, next) = catalog_instance();
    let store = CellStore::new(DEFAULT_CELL_CAPACITY);
    Phi1Engine::build_parallel_with_store(&next, &platform, 1, &store).unwrap();
    let mut group = c.benchmark_group("cell_store/warm_full_overlap");
    group.bench_function("t1_p384", |b| {
        b.iter(|| {
            black_box(Phi1Engine::build_parallel_with_store(&next, &platform, 1, &store).unwrap())
        })
    });
    group.finish();
}

fn bench_pair_build_shared15(c: &mut Criterion) {
    let (platform, prev, next) = catalog_instance();
    let mut group = c.benchmark_group("cell_store/pair_build_shared15");
    group.sample_size(20);
    group.bench_function("t1_p384", |b| {
        b.iter(|| {
            let store = CellStore::new(DEFAULT_CELL_CAPACITY);
            black_box(Phi1Engine::build_parallel_with_store(&prev, &platform, 1, &store).unwrap());
            black_box(Phi1Engine::build_parallel_with_store(&next, &platform, 1, &store).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cold_build,
    bench_overhead_empty_store,
    bench_warm_full_overlap,
    bench_pair_build_shared15
);
criterion_main!(benches);
