//! One bench target per table/figure of the paper — regenerating each
//! artifact is the benchmarked operation, so `cargo bench` exercises the
//! full reproduction pipeline. (The printable artifacts themselves come
//! from the `repro_*` binaries; see EXPERIMENTS.md.)

use cdsf_bench::paper_cdsf;
use cdsf_core::{ImPolicy, RasPolicy, SimParams};
use cdsf_workloads::paper;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_sim() -> SimParams {
    // Small replicate count: benches measure pipeline cost, not statistics.
    SimParams {
        replicates: 5,
        threads: 4,
        ..Default::default()
    }
}

/// Table I: availability cases and weighted availabilities (pure PMF math).
fn bench_table1(c: &mut Criterion) {
    c.bench_function("paper/table1_weighted_availabilities", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for case in 1..=paper::NUM_CASES {
                acc += black_box(paper::weighted_availability(case));
                acc += black_box(paper::availability_decrease(case));
            }
            black_box(acc)
        })
    });
}

/// Tables II–III: fixture construction (PMF discretization included).
fn bench_table2_3(c: &mut Criterion) {
    c.bench_function("paper/table2_3_batch_construction", |b| {
        b.iter(|| black_box(paper::batch()))
    });
}

/// Table IV + φ1: both Stage-I mappings.
fn bench_table4(c: &mut Criterion) {
    let cdsf = paper_cdsf(bench_sim());
    let mut group = c.benchmark_group("paper/table4_stage1");
    group.sample_size(20);
    group.bench_function("naive_im", |b| {
        b.iter(|| black_box(cdsf.stage_one(&ImPolicy::Naive).unwrap()))
    });
    group.bench_function("robust_im", |b| {
        b.iter(|| black_box(cdsf.stage_one(&ImPolicy::Robust).unwrap()))
    });
    group.finish();
}

/// Table V: expected completion times (part of the stage-one report).
fn bench_table5(c: &mut Criterion) {
    let cdsf = paper_cdsf(bench_sim());
    c.bench_function("paper/table5_expected_times", |b| {
        b.iter(|| {
            let (_, report) = cdsf.stage_one(&ImPolicy::Robust).unwrap();
            black_box(report.expected_times)
        })
    });
}

/// Figures 3–6: the four scenarios end-to-end (mapping + simulation grid).
fn bench_figures(c: &mut Criterion) {
    let cdsf = paper_cdsf(bench_sim());
    let mut group = c.benchmark_group("paper/figures");
    group.sample_size(10);
    group.bench_function("fig3_scenario1", |b| {
        b.iter(|| {
            black_box(
                cdsf.run_scenario(&ImPolicy::Naive, &RasPolicy::Naive)
                    .unwrap(),
            )
        })
    });
    group.bench_function("fig4_scenario2", |b| {
        b.iter(|| {
            black_box(
                cdsf.run_scenario(&ImPolicy::Robust, &RasPolicy::Naive)
                    .unwrap(),
            )
        })
    });
    group.bench_function("fig5_scenario3", |b| {
        b.iter(|| {
            black_box(
                cdsf.run_scenario(&ImPolicy::Naive, &RasPolicy::Robust)
                    .unwrap(),
            )
        })
    });
    group.bench_function("fig6_scenario4", |b| {
        b.iter(|| {
            black_box(
                cdsf.run_scenario(&ImPolicy::Robust, &RasPolicy::Robust)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

/// Table VI + (ρ1, ρ2): scenario-4 post-processing.
fn bench_table6_and_rho(c: &mut Criterion) {
    let cdsf = paper_cdsf(bench_sim());
    let s4 = cdsf
        .run_scenario(&ImPolicy::Robust, &RasPolicy::Robust)
        .unwrap();
    let mut group = c.benchmark_group("paper/table6_rho");
    group.bench_function("table6_best_techniques", |b| {
        b.iter(|| black_box(s4.table6(3, paper::NUM_CASES)))
    });
    group.bench_function("system_robustness", |b| {
        b.iter(|| black_box(cdsf.system_robustness(&s4)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table2_3,
    bench_table4,
    bench_table5,
    bench_figures,
    bench_table6_and_rho
);
criterion_main!(benches);
