//! Microbenchmarks of the PMF algebra — the inner loop of every Stage-I
//! robustness evaluation.

use cdsf_pmf::discretize::{Discretize, Normal};
use cdsf_pmf::sample::{AliasSampler, CdfSampler};
use cdsf_pmf::Pmf;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn pmf_with_pulses(n: usize) -> Pmf {
    Normal::new(1_000.0, 100.0).unwrap().equiprobable(n)
}

fn avail_pmf() -> Pmf {
    Pmf::from_pairs([(0.25, 0.25), (0.5, 0.25), (1.0, 0.5)]).unwrap()
}

fn bench_combine(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmf/combine");
    for &n in &[16usize, 64, 256] {
        let a = pmf_with_pulses(n);
        let b = avail_pmf();
        group.throughput(Throughput::Elements((n * b.len()) as u64));
        group.bench_with_input(BenchmarkId::new("quotient", n), &n, |bench, _| {
            bench.iter(|| black_box(a.quotient(&b).unwrap()))
        });
        let a2 = pmf_with_pulses(n);
        group.bench_with_input(BenchmarkId::new("max_self", n), &n, |bench, _| {
            bench.iter(|| black_box(a.max(&a2).unwrap()))
        });
    }
    group.finish();
}

fn bench_cdf_and_moments(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmf/query");
    for &n in &[64usize, 1024, 16_384] {
        let pmf = pmf_with_pulses(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("cdf", n), &n, |bench, _| {
            bench.iter(|| black_box(pmf.cdf(black_box(1_050.0))))
        });
        group.bench_with_input(BenchmarkId::new("expectation", n), &n, |bench, _| {
            bench.iter(|| black_box(pmf.expectation()))
        });
    }
    group.finish();
}

fn bench_coalesce(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmf/coalesce");
    let big = pmf_with_pulses(8_192);
    for &target in &[64usize, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(target), &target, |bench, &t| {
            bench.iter(|| black_box(big.coalesce(t)))
        });
    }
    group.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmf/sample");
    let pmf = pmf_with_pulses(256);
    let alias = AliasSampler::new(&pmf);
    let cdf = CdfSampler::new(&pmf);
    group.throughput(Throughput::Elements(1));
    group.bench_function("alias", |bench| {
        let mut rng = StdRng::seed_from_u64(1);
        bench.iter(|| black_box(alias.sample(&mut rng)))
    });
    group.bench_function("cdf_binary_search", |bench| {
        let mut rng = StdRng::seed_from_u64(1);
        bench.iter(|| black_box(cdf.sample(&mut rng)))
    });
    group.finish();
}

/// One φ₁ engine cell in PMF terms: the build half (Amdahl rescale of the
/// exec-time PMF, then the availability quotient) vs the query half (a
/// single CDF lookup on the pre-built loaded PMF). The gap is what the
/// Stage-I engine's memoisation saves on every repeated (app, type, share)
/// probe.
fn bench_phi1_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmf/phi1_cell");
    let avail = avail_pmf();
    for &n in &[16usize, 64, 256] {
        let exec = pmf_with_pulses(n);
        // Amdahl factor for a 10% serial fraction split over 8 processors.
        let amdahl = 0.1 + 0.9 / 8.0;
        let loaded = exec.scale(amdahl).unwrap().quotient(&avail).unwrap();
        group.bench_with_input(BenchmarkId::new("build", n), &n, |bench, _| {
            bench.iter(|| black_box(exec.scale(amdahl).unwrap().quotient(&avail).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("query", n), &n, |bench, _| {
            bench.iter(|| black_box(loaded.cdf(black_box(900.0))))
        });
    }
    group.finish();
}

fn bench_discretize(c: &mut Criterion) {
    let mut group = c.benchmark_group("pmf/discretize");
    for &n in &[64usize, 512] {
        group.bench_with_input(BenchmarkId::new("equiprobable", n), &n, |bench, &n| {
            let d = Normal::new(1_800.0, 180.0).unwrap();
            bench.iter(|| black_box(d.equiprobable(n)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_combine,
    bench_cdf_and_moments,
    bench_coalesce,
    bench_samplers,
    bench_phi1_cell,
    bench_discretize
);
criterion_main!(benches);
