//! Stage-I allocator scaling: the paper notes that exhaustive search "is
//! only feasible in the case of the small demonstrative example" — this
//! bench quantifies that wall, and the polynomial cost of the scalable
//! heuristics that the paper's future work calls for.

use cdsf_ra::allocators::{
    EqualShare, Exhaustive, GreedyMaxRobust, SimulatedAnnealing, Sufferage,
};
use cdsf_ra::Allocator;
use cdsf_system::{Batch, Platform};
use cdsf_workloads::generators::{BatchGenerator, PlatformGenerator, Range};
use cdsf_workloads::paper;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const DEADLINE: f64 = 2_500.0;

fn generated_instance(num_apps: usize) -> (Batch, Platform) {
    let platform = PlatformGenerator {
        num_types: 2,
        procs_per_type: (8, 8),
        availability_pulses: 3,
        availability_range: Range::new(0.3, 1.0).unwrap(),
    }
    .generate(42)
    .unwrap();
    let batch = BatchGenerator {
        num_apps,
        total_iters: (1_000, 5_000),
        serial_fraction: Range::new(0.05, 0.2).unwrap(),
        mean_exec_time: Range::new(1_000.0, 5_000.0).unwrap(),
        type_heterogeneity: Range::new(0.7, 1.5).unwrap(),
        pulses: 16,
    }
    .generate(&platform, 43)
    .unwrap();
    (batch, platform)
}

fn bench_paper_instance(c: &mut Criterion) {
    let batch = paper::batch_with_pulses(32);
    let platform = paper::platform();
    let mut group = c.benchmark_group("ra/paper_instance");
    group.sample_size(20);
    group.bench_function("equal_share", |b| {
        b.iter(|| black_box(EqualShare::new().allocate(&batch, &platform, paper::DEADLINE)))
    });
    group.bench_function("exhaustive", |b| {
        b.iter(|| black_box(Exhaustive::default().allocate(&batch, &platform, paper::DEADLINE)))
    });
    group.bench_function("sufferage", |b| {
        b.iter(|| black_box(Sufferage::new().allocate(&batch, &platform, paper::DEADLINE)))
    });
    group.finish();
}

fn bench_exhaustive_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ra/exhaustive_scaling");
    group.sample_size(10);
    // The option count per app is ~8, so the unpruned space is ~8^N.
    for &n in &[3usize, 4, 5, 6] {
        let (batch, platform) = generated_instance(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(Exhaustive::default().allocate(&batch, &platform, DEADLINE)))
        });
    }
    group.finish();
}

fn bench_heuristic_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ra/heuristic_scaling");
    group.sample_size(10);
    for &n in &[6usize, 12, 24] {
        let (batch, platform) = generated_instance(n);
        group.bench_with_input(BenchmarkId::new("greedy_max_robust", n), &n, |b, _| {
            b.iter(|| black_box(GreedyMaxRobust::new().allocate(&batch, &platform, DEADLINE)))
        });
        group.bench_with_input(BenchmarkId::new("sufferage", n), &n, |b, _| {
            b.iter(|| black_box(Sufferage::new().allocate(&batch, &platform, DEADLINE)))
        });
        group.bench_with_input(BenchmarkId::new("annealing_4k", n), &n, |b, _| {
            let sa = SimulatedAnnealing { iterations: 4_000, ..Default::default() };
            b.iter(|| black_box(sa.allocate(&batch, &platform, DEADLINE)))
        });
    }
    group.finish();
}

fn bench_monte_carlo_vs_exact(c: &mut Criterion) {
    use cdsf_ra::robustness::{evaluate, monte_carlo_phi1, MonteCarloConfig};
    use cdsf_ra::{Allocation, Assignment};
    use cdsf_system::ProcTypeId;

    let batch = paper::batch_with_pulses(64);
    let platform = paper::platform();
    let alloc = Allocation::new(vec![
        Assignment { proc_type: ProcTypeId(0), procs: 2 },
        Assignment { proc_type: ProcTypeId(0), procs: 2 },
        Assignment { proc_type: ProcTypeId(1), procs: 8 },
    ]);
    let mut group = c.benchmark_group("ra/phi1_evaluation");
    group.sample_size(20);
    group.bench_function("exact_pmf", |b| {
        b.iter(|| black_box(evaluate(&batch, &platform, &alloc, paper::DEADLINE)))
    });
    group.bench_function("monte_carlo_100k_x4threads", |b| {
        let cfg = MonteCarloConfig { replicates: 100_000, threads: 4, seed: 1 };
        b.iter(|| black_box(monte_carlo_phi1(&batch, &platform, &alloc, paper::DEADLINE, &cfg)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_paper_instance,
    bench_exhaustive_scaling,
    bench_heuristic_scaling,
    bench_monte_carlo_vs_exact
);
criterion_main!(benches);
