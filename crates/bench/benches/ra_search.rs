//! Stage-I allocator scaling: the paper notes that exhaustive search "is
//! only feasible in the case of the small demonstrative example" — this
//! bench quantifies that wall, and the polynomial cost of the scalable
//! heuristics that the paper's future work calls for.

use cdsf_ra::allocators::{EqualShare, Exhaustive, GreedyMaxRobust, SimulatedAnnealing, Sufferage};
use cdsf_ra::robustness::ProbabilityTable;
use cdsf_ra::{Allocator, Phi1Engine};
use cdsf_system::{Batch, Platform};
use cdsf_workloads::generators::{BatchGenerator, PlatformGenerator, Range};
use cdsf_workloads::paper;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const DEADLINE: f64 = 2_500.0;

fn generated_instance(num_apps: usize) -> (Batch, Platform) {
    let platform = PlatformGenerator {
        num_types: 2,
        procs_per_type: (8, 8),
        availability_pulses: 3,
        availability_range: Range::new(0.3, 1.0).unwrap(),
    }
    .generate(42)
    .unwrap();
    let batch = BatchGenerator {
        num_apps,
        total_iters: (1_000, 5_000),
        serial_fraction: Range::new(0.05, 0.2).unwrap(),
        mean_exec_time: Range::new(1_000.0, 5_000.0).unwrap(),
        type_heterogeneity: Range::new(0.7, 1.5).unwrap(),
        pulses: 16,
    }
    .generate(&platform, 43)
    .unwrap();
    (batch, platform)
}

fn bench_paper_instance(c: &mut Criterion) {
    let batch = paper::batch_with_pulses(32);
    let platform = paper::platform();
    let mut group = c.benchmark_group("ra/paper_instance");
    group.sample_size(20);
    group.bench_function("equal_share", |b| {
        b.iter(|| black_box(EqualShare::new().allocate(&batch, &platform, paper::DEADLINE)))
    });
    group.bench_function("exhaustive", |b| {
        b.iter(|| black_box(Exhaustive::default().allocate(&batch, &platform, paper::DEADLINE)))
    });
    group.bench_function("sufferage", |b| {
        b.iter(|| black_box(Sufferage::new().allocate(&batch, &platform, paper::DEADLINE)))
    });
    group.finish();
}

fn bench_exhaustive_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ra/exhaustive_scaling");
    group.sample_size(10);
    // The option count per app is ~8, so the unpruned space is ~8^N.
    for &n in &[3usize, 4, 5, 6] {
        let (batch, platform) = generated_instance(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(Exhaustive::default().allocate(&batch, &platform, DEADLINE)))
        });
    }
    group.finish();
}

fn bench_heuristic_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ra/heuristic_scaling");
    group.sample_size(10);
    for &n in &[6usize, 12, 24] {
        let (batch, platform) = generated_instance(n);
        group.bench_with_input(BenchmarkId::new("greedy_max_robust", n), &n, |b, _| {
            b.iter(|| black_box(GreedyMaxRobust::new().allocate(&batch, &platform, DEADLINE)))
        });
        group.bench_with_input(BenchmarkId::new("sufferage", n), &n, |b, _| {
            b.iter(|| black_box(Sufferage::new().allocate(&batch, &platform, DEADLINE)))
        });
        group.bench_with_input(BenchmarkId::new("annealing_4k", n), &n, |b, _| {
            let sa = SimulatedAnnealing {
                iterations: 4_000,
                ..Default::default()
            };
            b.iter(|| black_box(sa.allocate(&batch, &platform, DEADLINE)))
        });
    }
    group.finish();
}

/// A wide instance: `num_apps` applications over a 2×10 platform. The
/// spare capacity (20 processors for 16 apps) keeps the search tree deep
/// enough for the parallel frontier split to pay off — seconds of work
/// single-threaded — without the combinatorial blow-up of larger pools.
fn wide_instance(num_apps: usize) -> (Batch, Platform) {
    let platform = PlatformGenerator {
        num_types: 2,
        procs_per_type: (10, 10),
        availability_pulses: 3,
        availability_range: Range::new(0.3, 1.0).unwrap(),
    }
    .generate(7)
    .unwrap();
    let batch = BatchGenerator {
        num_apps,
        total_iters: (1_000, 5_000),
        serial_fraction: Range::new(0.05, 0.2).unwrap(),
        mean_exec_time: Range::new(1_000.0, 5_000.0).unwrap(),
        type_heterogeneity: Range::new(0.7, 1.5).unwrap(),
        pulses: 16,
    }
    .generate(&platform, 8)
    .unwrap();
    (batch, platform)
}

/// The engine's cache amortisation: rebuilding the probability table from
/// scratch per deadline (the pre-engine path) vs one engine build plus
/// cached CDF lookups per deadline.
fn bench_engine_vs_uncached(c: &mut Criterion) {
    let (batch, platform) = generated_instance(8);
    let deadlines = [1_500.0, 2_000.0, 2_500.0, 3_000.0];
    let mut group = c.benchmark_group("ra/engine");
    group.sample_size(20);
    group.bench_function("uncached_table_4_deadlines", |b| {
        b.iter(|| {
            for &d in &deadlines {
                black_box(ProbabilityTable::build(&batch, &platform, d).unwrap());
            }
        })
    });
    group.bench_function("engine_table_4_deadlines", |b| {
        b.iter(|| {
            let engine = Phi1Engine::build(&batch, &platform).unwrap();
            for &d in &deadlines {
                black_box(engine.table(d).unwrap());
            }
        })
    });
    group.bench_function("cached_table_4_deadlines", |b| {
        let engine = Phi1Engine::build(&batch, &platform).unwrap();
        b.iter(|| {
            for &d in &deadlines {
                black_box(engine.table(d).unwrap());
            }
        })
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("build_threads", threads),
            &threads,
            |b, &t| b.iter(|| black_box(Phi1Engine::build_parallel(&batch, &platform, t).unwrap())),
        );
    }
    group.finish();
}

/// The issue's headline claim: parallel exhaustive search on a 16-app
/// batch speeds up ≥2× at 4+ threads over the single-threaded search.
fn bench_parallel_exhaustive(c: &mut Criterion) {
    let (batch, platform) = wide_instance(16);
    let mut group = c.benchmark_group("ra/parallel_exhaustive_16apps");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let policy = Exhaustive::new(t).unwrap();
            b.iter(|| black_box(policy.allocate(&batch, &platform, DEADLINE).unwrap()))
        });
    }
    group.finish();
}

fn bench_monte_carlo_vs_exact(c: &mut Criterion) {
    use cdsf_ra::robustness::{evaluate, monte_carlo_phi1, MonteCarloConfig};
    use cdsf_ra::{Allocation, Assignment};
    use cdsf_system::ProcTypeId;

    let batch = paper::batch_with_pulses(64);
    let platform = paper::platform();
    let alloc = Allocation::new(vec![
        Assignment {
            proc_type: ProcTypeId(0),
            procs: 2,
        },
        Assignment {
            proc_type: ProcTypeId(0),
            procs: 2,
        },
        Assignment {
            proc_type: ProcTypeId(1),
            procs: 8,
        },
    ]);
    let mut group = c.benchmark_group("ra/phi1_evaluation");
    group.sample_size(20);
    group.bench_function("exact_pmf", |b| {
        b.iter(|| black_box(evaluate(&batch, &platform, &alloc, paper::DEADLINE)))
    });
    group.bench_function("monte_carlo_100k_x4threads", |b| {
        let cfg = MonteCarloConfig {
            replicates: 100_000,
            threads: 4,
            seed: 1,
        };
        b.iter(|| {
            black_box(monte_carlo_phi1(
                &batch,
                &platform,
                &alloc,
                paper::DEADLINE,
                &cfg,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_paper_instance,
    bench_exhaustive_scaling,
    bench_heuristic_scaling,
    bench_engine_vs_uncached,
    bench_parallel_exhaustive,
    bench_monte_carlo_vs_exact
);
criterion_main!(benches);
