//! Serve reply-codec microbenchmarks: the per-line cost of the
//! zero-allocation data plane against the allocate-per-line baseline it
//! replaced.
//!
//! Three angles on one representative `Submit` reply (8 apps — the
//! loadgen workload shape):
//!
//! - `encode_line/retained` — serializer straight into a caller-retained
//!   `Vec<u8>`, the connection-writer hot path (steady-state
//!   allocation-free);
//! - `encode_line/fresh` — the same serializer but a fresh buffer per
//!   line, isolating what buffer reuse saves;
//! - `to_string/baseline` — the old `serde_json::to_string` + copy path;
//! - `view/borrowed` — `ResponseView` (no owned `Response` built at all),
//!   the embedder/golden-test codec surface;
//! - `read_line/retained` — the request decode path with a retained line
//!   buffer.

use cdsf_serve::protocol::{
    encode_line, read_line_into, Request, ResponseView, RobustVerdict, SubmitReply,
    SubmitReplyView, WireAssignment,
};
use cdsf_serve::Response;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::borrow::Cow;
use std::hint::black_box;
use std::io::BufReader;

/// A reply shaped like the loadgen workload's: 8 apps, full verdict.
fn sample_reply() -> SubmitReply {
    SubmitReply {
        tenant: "tenant-0017".to_string(),
        engine_key: 0x9E37_79B9_7F4A_7C15,
        assignments: (0..8)
            .map(|i: usize| WireAssignment {
                proc_type: i % 3,
                procs: 1u32 << (i % 4),
            })
            .collect(),
        per_app_phi1: (0..8).map(|i| 0.91 + 0.01 * i as f64).collect(),
        expected_times: (0..8).map(|i| 1_800.0 + 37.5 * i as f64).collect(),
        verdict: RobustVerdict {
            phi1: 0.734_562_189_4,
            threshold: 0.8,
            robust: false,
            guaranteed_tier: None,
        },
    }
}

fn bench_encode(c: &mut Criterion) {
    let resp = Response::Submit(sample_reply());
    let line_len = serde_json::to_string(&resp).unwrap().len() as u64 + 1;

    let mut group = c.benchmark_group("serve_codec/encode");
    group.throughput(Throughput::Bytes(line_len));

    let mut retained = Vec::with_capacity(4096);
    group.bench_function("encode_line/retained", |b| {
        b.iter(|| {
            retained.clear();
            encode_line(&mut retained, black_box(&resp)).unwrap();
            black_box(retained.len())
        })
    });
    group.bench_function("encode_line/fresh", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            encode_line(&mut buf, black_box(&resp)).unwrap();
            black_box(buf.len())
        })
    });
    group.bench_function("to_string/baseline", |b| {
        b.iter(|| {
            let mut s = serde_json::to_string(black_box(&resp)).unwrap();
            s.push('\n');
            black_box(s.len())
        })
    });
    group.finish();
}

fn bench_borrowed_view(c: &mut Criterion) {
    let reply = sample_reply();
    let mut group = c.benchmark_group("serve_codec/view");
    let mut retained = Vec::with_capacity(4096);
    group.bench_function("view/borrowed", |b| {
        b.iter(|| {
            let view = ResponseView::Submit(SubmitReplyView {
                tenant: Cow::Borrowed(reply.tenant.as_str()),
                engine_key: reply.engine_key,
                assignments: &reply.assignments,
                per_app_phi1: &reply.per_app_phi1,
                expected_times: &reply.expected_times,
                verdict: &reply.verdict,
            });
            retained.clear();
            encode_line(&mut retained, black_box(&view)).unwrap();
            black_box(retained.len())
        })
    });
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    // A burst of submit requests, as the shard reader sees them.
    let mut wire = Vec::new();
    for i in 0..64 {
        let req = Request::Fingerprint {
            tenant: format!("tenant-{i:04}"),
        };
        encode_line(&mut wire, &req).unwrap();
    }
    let mut group = c.benchmark_group("serve_codec/decode");
    group.throughput(Throughput::Elements(64));
    let mut line = String::with_capacity(256);
    group.bench_function("read_line/retained", |b| {
        b.iter(|| {
            let mut reader = BufReader::new(wire.as_slice());
            let mut n = 0u32;
            while let Some(parsed) = read_line_into::<Request, _>(&mut reader, &mut line).unwrap() {
                parsed.expect("well-formed line");
                n += 1;
            }
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_borrowed_view, bench_decode);
criterion_main!(benches);
