//! Property-based tests for Stage-I allocation over generated instances.

use cdsf_pmf::discretize::{Discretize, Normal};
use cdsf_pmf::Pmf;
use cdsf_ra::allocators::{
    allocate_incremental, EqualShare, Exhaustive, GammaRobust, GreedyMaxRobust, Lattice, Sufferage,
};
use cdsf_ra::robustness::{evaluate, ProbabilityTable};
use cdsf_ra::{
    Allocation, Allocator, Assignment, CellStore, DeltaFitness, LatticeScratch, OptionProbs,
    Phi1Engine,
};
use cdsf_system::{Application, Batch, Platform, ProcessorType};
use proptest::prelude::*;

/// Strategy: a platform of 2–3 types with 2–8 processors each and random
/// two-pulse availability.
fn arb_platform() -> impl Strategy<Value = Platform> {
    prop::collection::vec((2u32..=8, 0.2f64..0.8, 0.8f64..=1.0, 0.1f64..0.9), 2..=3).prop_map(
        |types| {
            Platform::new(
                types
                    .into_iter()
                    .enumerate()
                    .map(|(i, (count, lo, hi, w))| {
                        let avail =
                            Pmf::from_weighted([(lo, w), (hi, 1.0 - w)]).expect("positive weights");
                        ProcessorType::new(format!("T{i}"), count, avail).expect("valid type")
                    })
                    .collect(),
            )
            .expect("non-empty")
        },
    )
}

/// Strategy: a batch of 2–4 applications with PMFs for `num_types` types.
fn arb_batch(num_types: usize) -> impl Strategy<Value = Batch> {
    prop::collection::vec(
        (
            10u64..=500,
            100u64..=5_000,
            prop::collection::vec(500.0f64..8_000.0, num_types..=num_types),
        ),
        2..=4,
    )
    .prop_map(|apps| {
        Batch::new(
            apps.into_iter()
                .enumerate()
                .map(|(i, (s, p, means))| {
                    let mut b = Application::builder(format!("app{i}"))
                        .serial_iters(s)
                        .parallel_iters(p);
                    for mu in means {
                        b = b.exec_time_pmf(
                            Normal::with_paper_sigma(mu).expect("valid").equiprobable(8),
                        );
                    }
                    b.build().expect("valid app")
                })
                .collect(),
        )
    })
}

/// Strategy: an instance (platform, batch, deadline).
fn arb_instance() -> impl Strategy<Value = (Platform, Batch, f64)> {
    arb_platform().prop_flat_map(|platform| {
        let n = platform.num_types();
        (Just(platform), arb_batch(n), 1_000.0f64..10_000.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every allocator either produces a feasible allocation or reports
    /// infeasibility — never an invalid allocation, never a panic.
    #[test]
    fn allocators_are_feasible_or_fail_cleanly((platform, batch, deadline) in arb_instance()) {
        let policies: Vec<Box<dyn Allocator>> = vec![
            Box::new(EqualShare::new()),
            Box::new(Exhaustive::new(2).unwrap()),
            Box::new(GreedyMaxRobust::new()),
            Box::new(Sufferage::new()),
        ];
        for policy in &policies {
            if let Ok(alloc) = policy.allocate(&batch, &platform, deadline) {
                prop_assert!(alloc.validate(&batch, &platform).is_ok(),
                    "{} returned an infeasible allocation", policy.name());
            }
        }
    }

    /// The exhaustive optimum dominates every other policy's φ1.
    #[test]
    fn exhaustive_dominates((platform, batch, deadline) in arb_instance()) {
        let Ok(opt) = Exhaustive::new(2).unwrap().allocate(&batch, &platform, deadline) else {
            return Ok(()); // infeasible instance
        };
        let p_opt = evaluate(&batch, &platform, &opt, deadline).unwrap().joint;
        for policy in [&EqualShare::new() as &dyn Allocator, &GreedyMaxRobust::new(), &Sufferage::new()] {
            if let Ok(alloc) = policy.allocate(&batch, &platform, deadline) {
                let p = evaluate(&batch, &platform, &alloc, deadline).unwrap().joint;
                prop_assert!(p <= p_opt + 1e-9,
                    "{} φ1 {p} beat the exhaustive optimum {p_opt}", policy.name());
            }
        }
    }

    /// The pruned lattice branch-and-bound is a drop-in for the unpruned
    /// full enumeration: on arbitrary instances both policies agree on
    /// feasibility, and when feasible return the *same* allocation with
    /// bit-identical φ1 — i.e. pruning never changes the optimum.
    #[test]
    fn lattice_equals_exhaustive_on_arbitrary_instances(
        (platform, batch, deadline) in arb_instance(),
    ) {
        let reference = Exhaustive::new(2).unwrap().allocate(&batch, &platform, deadline);
        let exact = Lattice::new(2).unwrap().allocate(&batch, &platform, deadline);
        match (reference, exact) {
            (Ok(reference), Ok(exact)) => {
                prop_assert_eq!(&reference, &exact, "lattice diverged from exhaustive");
                let p_ref = evaluate(&batch, &platform, &reference, deadline).unwrap().joint;
                let p_lat = evaluate(&batch, &platform, &exact, deadline).unwrap().joint;
                prop_assert_eq!(p_ref.to_bits(), p_lat.to_bits());
            }
            (Err(_), Err(_)) => {}
            (reference, exact) => prop_assert!(false,
                "feasibility verdicts diverged: exhaustive {reference:?}, lattice {exact:?}"),
        }
    }

    /// Γ-robustness costs probability, never creates it: when the robust
    /// solver finds an allocation, its *nominal* φ1 cannot exceed the
    /// nominal optimum, and hedging against zero adversary types is a
    /// bitwise no-op relative to the plain lattice.
    #[test]
    fn gamma_robust_never_beats_the_nominal_optimum(
        (platform, batch, deadline) in arb_instance(),
        budget in 0usize..=2,
    ) {
        let robust = GammaRobust { threads: 2, budget, degradation: 0.9 };
        let Ok(hedged) = robust.allocate(&batch, &platform, deadline) else {
            return Ok(()); // capacity-infeasible or proven deadline-infeasible
        };
        let Ok(opt) = Exhaustive::new(2).unwrap().allocate(&batch, &platform, deadline) else {
            return Ok(());
        };
        let p_hedged = evaluate(&batch, &platform, &hedged, deadline).unwrap().joint;
        let p_opt = evaluate(&batch, &platform, &opt, deadline).unwrap().joint;
        prop_assert!(p_hedged <= p_opt + 1e-9,
            "robust nominal φ1 {p_hedged} beat the exhaustive optimum {p_opt}");
        if budget == 0 {
            let plain = Lattice::new(2).unwrap().allocate(&batch, &platform, deadline).unwrap();
            prop_assert_eq!(&plain, &hedged, "Γ=0 diverged from the plain lattice");
        }
    }

    /// Incremental (wave) allocation stays feasible and below the optimum
    /// for any wave partition.
    #[test]
    fn incremental_feasible_for_any_partition(
        (platform, batch, deadline) in arb_instance(),
        split in 1usize..=3,
    ) {
        let n = batch.len();
        let first = split.min(n - 1).max(1);
        let waves = if n > first { vec![first, n - first] } else { vec![n] };
        if let Ok(alloc) = allocate_incremental(&batch, &platform, deadline, &waves) {
            prop_assert!(alloc.validate(&batch, &platform).is_ok());
            if let Ok(opt) = Exhaustive::new(2).unwrap().allocate(&batch, &platform, deadline) {
                let p_inc = evaluate(&batch, &platform, &alloc, deadline).unwrap().joint;
                let p_opt = evaluate(&batch, &platform, &opt, deadline).unwrap().joint;
                prop_assert!(p_inc <= p_opt + 1e-9);
            }
        }
    }

    /// φ₁ cells are monotone: shrinking the deadline can only lower each
    /// per-assignment probability, and doubling an application's share can
    /// only raise it (Amdahl's factor shrinks every execution time).
    #[test]
    fn phi1_monotone_in_deadline_and_procs(
        (platform, batch, _deadline) in arb_instance(),
        d_lo in 500.0f64..5_000.0,
        factor in 1.1f64..3.0,
    ) {
        let engine = Phi1Engine::build(&batch, &platform).unwrap();
        let d_hi = d_lo * factor;
        for i in 0..batch.len() {
            for asg in engine.options(i) {
                let p_lo = engine.prob(i, asg.proc_type, asg.procs, d_lo).unwrap();
                let p_hi = engine.prob(i, asg.proc_type, asg.procs, d_hi).unwrap();
                prop_assert!(p_lo <= p_hi + 1e-12,
                    "app {i}: φ1 rose from {p_hi} to {p_lo} as Δ shrank {d_hi}→{d_lo}");
                if let Some(p_double) = engine.prob(i, asg.proc_type, asg.procs * 2, d_lo) {
                    prop_assert!(p_double + 1e-9 >= p_lo,
                        "app {i}: φ1 fell from {p_lo} to {p_double} when doubling {} procs",
                        asg.procs);
                }
            }
        }
    }

    /// The parallel engine build is bit-identical to the serial build for
    /// arbitrary instances and thread counts.
    #[test]
    fn engine_parallel_equals_serial(
        (platform, batch, deadline) in arb_instance(),
        threads in 2usize..=8,
    ) {
        let serial = Phi1Engine::build(&batch, &platform).unwrap();
        let parallel = Phi1Engine::build_parallel(&batch, &platform, threads).unwrap();
        for i in 0..batch.len() {
            for asg in serial.options(i) {
                prop_assert_eq!(
                    serial.loaded_pmf(i, asg.proc_type, asg.procs),
                    parallel.loaded_pmf(i, asg.proc_type, asg.procs)
                );
                prop_assert_eq!(
                    serial.prob(i, asg.proc_type, asg.procs, deadline),
                    parallel.prob(i, asg.proc_type, asg.procs, deadline)
                );
            }
        }
    }

    /// Probability-table lookups agree with direct evaluation on every
    /// feasible allocation of small instances.
    #[test]
    fn table_agrees_with_direct_evaluation((platform, batch, deadline) in arb_instance()) {
        let table = ProbabilityTable::build(&batch, &platform, deadline).unwrap();
        let Ok(allocs) = Allocation::enumerate_feasible(&batch, &platform) else {
            return Ok(());
        };
        for alloc in allocs.iter().take(32) {
            let direct = evaluate(&batch, &platform, alloc, deadline).unwrap().joint;
            let via = table.joint(alloc).unwrap();
            prop_assert!((direct - via).abs() < 1e-9);
        }
    }

    /// The incremental delta-fitness evaluator equals a full recompute on
    /// random mutation sequences: the product fitness is bit-identical
    /// after every mutation, and the advisory running log-fitness is exact
    /// right after a re-sync and within 1e-12 (relative) between re-syncs.
    #[test]
    fn delta_fitness_equals_full_recompute(
        (platform, batch, deadline) in arb_instance(),
        moves in prop::collection::vec((0usize..64, 0usize..64), 1..200),
    ) {
        let engine = Phi1Engine::build(&batch, &platform).unwrap();
        let probs = OptionProbs::from_engine(&engine, deadline).unwrap();
        let options: Vec<Vec<Assignment>> =
            (0..engine.num_apps()).map(|a| engine.options(a)).collect();
        let mut genome: Vec<Assignment> = options.iter().map(|o| o[0]).collect();
        let mut delta = DeltaFitness::new(&probs, &genome);
        prop_assert_eq!(delta.fitness(), probs.fitness(&genome));

        for (step, &(app_sel, opt_sel)) in moves.iter().enumerate() {
            let app = app_sel % genome.len();
            let asg = options[app][opt_sel % options[app].len()];
            genome[app] = asg;
            delta.set_gene(app, asg);

            // Exact product, bit-identical to the full recompute.
            prop_assert_eq!(delta.fitness(), probs.fitness(&genome), "step {}", step);

            // Advisory log-sum vs. exact left-to-right recompute.
            let all_alive = genome
                .iter()
                .enumerate()
                .all(|(a, g)| probs.prob(a, g).is_some_and(|q| q > 0.0));
            if all_alive {
                let exact: f64 = genome
                    .iter()
                    .enumerate()
                    .map(|(a, g)| probs.log_prob(a, g).unwrap())
                    .sum();
                if delta.updates_since_resync() == 0 {
                    prop_assert_eq!(delta.log_fitness(), exact, "step {}", step);
                } else {
                    let err = (delta.log_fitness() - exact).abs();
                    prop_assert!(
                        err <= 1e-12 * exact.abs().max(1.0),
                        "step {}: drift {} vs exact {}",
                        step, err, exact
                    );
                }
            } else {
                prop_assert_eq!(delta.log_fitness(), f64::NEG_INFINITY);
            }
        }

        // Forcing a re-sync restores exactness no matter the history.
        delta.resync();
        prop_assert_eq!(delta.fitness(), probs.fitness(&genome));
    }
}

/// Bit-level PMF equality (stricter than `==`).
fn pmf_bits_eq(a: &Pmf, b: &Pmf) -> bool {
    a.len() == b.len()
        && a.pulses().iter().zip(b.pulses()).all(|(x, y)| {
            x.value.to_bits() == y.value.to_bits() && x.prob.to_bits() == y.prob.to_bits()
        })
}

/// A copy of `app` with every execution PMF scaled by `frac` — the shape
/// of a remnant app after partial progress (`frac = 1.0` means pending,
/// which is a bitwise no-op and therefore reusable).
fn rescaled_app(app: &Application, frac: f64, num_types: usize) -> Application {
    use cdsf_system::ProcTypeId;
    let mut b = Application::builder(app.name())
        .serial_iters(app.serial_iters())
        .parallel_iters(app.parallel_iters());
    for j in 0..num_types {
        b = b.exec_time_pmf(app.exec_time(ProcTypeId(j)).unwrap().scale(frac).unwrap());
    }
    b.build().unwrap()
}

proptest! {
    /// `rebuild_with` (via `EngineCache`) equals a fresh `build_parallel`
    /// on the same remnant batch, bit for bit, across random instances,
    /// random app subsets, and random progress fractions.
    #[test]
    fn rebuild_with_matches_fresh_build_on_remnant(
        (platform, batch) in arb_platform().prop_flat_map(|p| {
            let nt = p.num_types();
            (Just(p), arb_batch(nt))
        }),
        keep in prop::collection::vec(0u8..2, 4),
        fracs in prop::collection::vec(0.1f64..=1.0, 4),
        pending in prop::collection::vec(0u8..2, 4),
    ) {
        use cdsf_ra::engine::RebuildMap;
        use cdsf_ra::EngineCache;
        use cdsf_system::ProcTypeId;

        let nt = platform.num_types();
        let mut cache = EngineCache::build(&batch, &platform, 2).unwrap();

        let mut remnant_apps = Vec::new();
        let mut hints: Vec<Option<usize>> = Vec::new();
        for (i, app) in batch.apps().iter().enumerate() {
            // Always keep app 0 so the remnant is never empty.
            if i != 0 && keep[i % keep.len()] == 0 {
                continue;
            }
            let frac = if pending[i % pending.len()] == 1 {
                1.0 // untouched pending app: scale(1.0) is a bitwise no-op
            } else {
                fracs[i % fracs.len()]
            };
            remnant_apps.push(rescaled_app(app, frac, nt));
            hints.push(Some(i));
        }
        let remnant = Batch::new(remnant_apps);
        let types: Vec<Option<usize>> = (0..nt).map(Some).collect();

        let rebuilt = cache
            .rebuild_with(&remnant, &platform, RebuildMap { apps: &hints, types: &types }, 2)
            .unwrap()
            .clone();
        let fresh = Phi1Engine::build_parallel(&remnant, &platform, 2).unwrap();

        for i in 0..remnant.len() {
            for j in 0..nt {
                let ty = ProcTypeId(j);
                for n in platform.pow2_options(ty).unwrap() {
                    let (a, b) = (rebuilt.loaded_pmf(i, ty, n), fresh.loaded_pmf(i, ty, n));
                    prop_assert_eq!(a.is_some(), b.is_some());
                    if let (Some(a), Some(b)) = (a, b) {
                        prop_assert!(pmf_bits_eq(a, b));
                    }
                    let (a, b) = (rebuilt.dedicated_pmf(i, ty, n), fresh.dedicated_pmf(i, ty, n));
                    if let (Some(a), Some(b)) = (a, b) {
                        prop_assert!(pmf_bits_eq(a, b));
                    }
                    let (a, b) = (rebuilt.expected_time(i, ty, n), fresh.expected_time(i, ty, n));
                    prop_assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A store-resolved engine build is bit-identical to a storeless
    /// build for any pool worker count and any store capacity — including
    /// capacities small enough that the warming build itself evicts
    /// continuously, so the resolved build mixes hits, misses, and
    /// re-insertions. Verify-on-hit must never fire on honest inputs.
    #[test]
    fn store_resolved_build_matches_fresh(
        (platform, batch) in arb_platform().prop_flat_map(|p| {
            let nt = p.num_types();
            (Just(p), arb_batch(nt))
        }),
        threads in 1usize..=7,
        capacity_sel in 0usize..3,
    ) {
        use cdsf_system::ProcTypeId;
        let capacity = [2usize, 16, 4_096][capacity_sel];
        let fresh = Phi1Engine::build_parallel(&batch, &platform, threads).unwrap();
        let store = CellStore::new(capacity);
        Phi1Engine::build_parallel_with_store(&batch, &platform, threads, &store).unwrap();
        let resolved =
            Phi1Engine::build_parallel_with_store(&batch, &platform, threads, &store).unwrap();
        let stats = store.stats();
        prop_assert_eq!(stats.verify_rejects, 0, "structural hashes collided");
        prop_assert!(stats.resident <= stats.capacity,
            "store holds {} cells over its {} capacity", stats.resident, stats.capacity);
        for i in 0..batch.len() {
            for j in 0..platform.num_types() {
                let ty = ProcTypeId(j);
                for n in platform.pow2_options(ty).unwrap() {
                    let (a, b) = (resolved.loaded_pmf(i, ty, n), fresh.loaded_pmf(i, ty, n));
                    prop_assert_eq!(a.is_some(), b.is_some());
                    if let (Some(a), Some(b)) = (a, b) {
                        prop_assert!(pmf_bits_eq(a, b));
                    }
                    let (a, b) = (resolved.dedicated_pmf(i, ty, n), fresh.dedicated_pmf(i, ty, n));
                    if let (Some(a), Some(b)) = (a, b) {
                        prop_assert!(pmf_bits_eq(a, b));
                    }
                    let (a, b) = (resolved.expected_time(i, ty, n), fresh.expected_time(i, ty, n));
                    prop_assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
                }
            }
        }
        prop_assert_eq!(resolved.table_fingerprint(), fresh.table_fingerprint());
    }

    /// Γ-robust solves are indifferent to how their engine was built: a
    /// store-resolved engine (warm hits, small-capacity evictions and
    /// all) reaches the same solution with bit-identical worst-case φ1
    /// as a storeless engine, for every adversary budget.
    #[test]
    fn gamma_robust_unchanged_through_store(
        (platform, batch, deadline) in arb_instance(),
        budget in 0usize..=2,
    ) {
        let robust = GammaRobust { threads: 1, budget, degradation: 0.9 };
        let fresh = Phi1Engine::build(&batch, &platform).unwrap();
        let store = CellStore::new(8);
        Phi1Engine::build_parallel_with_store(&batch, &platform, 2, &store).unwrap();
        let resolved =
            Phi1Engine::build_parallel_with_store(&batch, &platform, 2, &store).unwrap();
        let mut s1 = LatticeScratch::new();
        let mut s2 = LatticeScratch::new();
        let a = robust.solve_with_engine(&platform, &fresh, deadline, &mut s1);
        let b = robust.solve_with_engine(&platform, &resolved, deadline, &mut s2);
        match (a, b) {
            (Ok((sol_a, rep_a)), Ok((sol_b, rep_b))) => {
                prop_assert_eq!(sol_a, sol_b, "solutions diverged through the store");
                prop_assert_eq!(rep_a.phi1.to_bits(), rep_b.phi1.to_bits());
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "verdicts diverged: fresh {:?}, store {:?}", a, b),
        }
    }
}
