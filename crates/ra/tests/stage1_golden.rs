//! Golden pin of Stage-I allocator outputs.
//!
//! `tests/golden/stage1_allocs.json` freezes the exact allocation every
//! Stage-I policy returns on the paper instance and on a generated 7-app
//! instance, across several seeds and thread counts. The snapshot was
//! captured *before* the flat-SoA φ₁ kernel rewrite; keeping it green
//! proves the prefix-CDF tables, the arena-backed engine, and the
//! incremental delta-fitness evaluator are bit-identical replacements,
//! not approximations.
//!
//! Regenerate (only for an *intentional* behaviour change):
//!
//! ```sh
//! CDSF_BLESS=1 cargo test -p cdsf-ra --test stage1_golden
//! ```

use cdsf_ra::allocators::{
    EqualShare, Exhaustive, GeneticAlgorithm, GreedyMaxRobust, GreedyMinTime, SimulatedAnnealing,
    Sufferage,
};
use cdsf_ra::{Allocation, Allocator};
use cdsf_system::{Batch, Platform};
use cdsf_workloads::generators::{BatchGenerator, PlatformGenerator, Range};
use cdsf_workloads::paper;
use serde_json::{json, Value};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/stage1_allocs.json")
}

fn generated_instance(seed: u64) -> (Batch, Platform) {
    let platform = PlatformGenerator {
        num_types: 3,
        procs_per_type: (8, 16),
        availability_pulses: 3,
        availability_range: Range::new(0.3, 1.0).unwrap(),
    }
    .generate(seed)
    .unwrap();
    let batch = BatchGenerator {
        num_apps: 7,
        total_iters: (1_000, 8_000),
        serial_fraction: Range::new(0.02, 0.2).unwrap(),
        mean_exec_time: Range::new(1_000.0, 6_000.0).unwrap(),
        type_heterogeneity: Range::new(0.6, 1.8).unwrap(),
        pulses: 12,
    }
    .generate(&platform, seed.wrapping_add(1))
    .unwrap();
    (batch, platform)
}

fn alloc_json(alloc: &Allocation) -> Value {
    Value::Array(
        alloc
            .assignments()
            .iter()
            .map(|a| json!([a.proc_type.0, a.procs]))
            .collect(),
    )
}

/// Every pinned `(label, allocation)` pair, in deterministic order.
fn compute_all() -> Vec<(String, Allocation)> {
    let mut out = Vec::new();
    let instances: Vec<(&str, Batch, Platform, f64)> = vec![
        (
            "paper",
            paper::batch_with_pulses(32),
            paper::platform(),
            paper::DEADLINE,
        ),
        {
            let (b, p) = generated_instance(47);
            ("gen47", b, p, 2_800.0)
        },
    ];
    for (tag, batch, platform, deadline) in &instances {
        let deterministic: Vec<(&str, Box<dyn Allocator>)> = vec![
            ("equal_share", Box::new(EqualShare::new())),
            ("greedy_min_time", Box::new(GreedyMinTime::new())),
            ("greedy_max_robust", Box::new(GreedyMaxRobust::new())),
            ("sufferage", Box::new(Sufferage::new())),
        ];
        for (name, policy) in &deterministic {
            let alloc = policy.allocate(batch, platform, *deadline).unwrap();
            out.push((format!("{tag}/{name}"), alloc));
        }
        for threads in [1usize, 4] {
            let alloc = Exhaustive::new(threads)
                .unwrap()
                .allocate(batch, platform, *deadline)
                .unwrap();
            out.push((format!("{tag}/exhaustive/t{threads}"), alloc));
        }
        for seed in [1u64, 2, 3] {
            for threads in [1usize, 8] {
                let sa = SimulatedAnnealing {
                    iterations: 3_000,
                    seed,
                    threads,
                    ..Default::default()
                };
                let alloc = sa.allocate(batch, platform, *deadline).unwrap();
                out.push((format!("{tag}/sa/s{seed}/t{threads}"), alloc));
            }
        }
        for seed in [1u64, 2] {
            for threads in [1usize, 8] {
                let ga = GeneticAlgorithm {
                    generations: 25,
                    seed,
                    threads,
                    ..Default::default()
                };
                let alloc = ga.allocate(batch, platform, *deadline).unwrap();
                out.push((format!("{tag}/ga/s{seed}/t{threads}"), alloc));
            }
        }
    }
    out
}

#[test]
fn allocations_match_pre_rewrite_golden() {
    let computed = compute_all();
    let as_json: Value = Value::Array(
        computed
            .iter()
            .map(|(label, alloc)| json!({ "label": label, "allocation": alloc_json(alloc) }))
            .collect(),
    );

    let path = golden_path();
    if std::env::var("CDSF_BLESS").is_ok() {
        std::fs::write(&path, serde_json::to_string_pretty(&as_json).unwrap()).unwrap();
        return;
    }

    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    let golden: Value = serde_json::from_str(&raw).unwrap();
    let golden = golden.as_array().unwrap();
    assert_eq!(golden.len(), computed.len(), "golden entry count drifted");
    for (entry, (label, alloc)) in golden.iter().zip(&computed) {
        assert_eq!(entry["label"].as_str().unwrap(), label, "pin order drifted");
        assert_eq!(
            entry["allocation"],
            alloc_json(alloc),
            "allocation for `{label}` diverged from the pre-rewrite pin"
        );
    }
}
