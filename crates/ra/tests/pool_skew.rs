//! Engine-level work-stealing stress: a batch where one application's
//! execution PMFs have 100× the pulses of everyone else's, so its
//! `(app, type)` pair families dominate the kernel work. The pool must
//! keep every worker busy (no starvation — asserted via the instrumented
//! build's scheduling stats) and the engine must stay bit-identical to the
//! serial build.

use cdsf_ra::Phi1Engine;
use cdsf_system::{Application, Batch, ProcTypeId};
use cdsf_workloads::paper;

/// The paper's three applications, but application 0 gets `heavy` pulses
/// per execution PMF while the rest get `light`.
fn skewed_batch(heavy: usize, light: usize) -> Batch {
    let apps = (0..3)
        .map(|i| {
            let (s, p) = paper::ITERATIONS[i];
            let pulses = if i == 0 { heavy } else { light };
            Application::builder(format!("application {}", i + 1))
                .serial_iters(s)
                .parallel_iters(p)
                .exec_time_normal(paper::MEANS[i][0], pulses)
                .expect("valid fixture mean")
                .exec_time_normal(paper::MEANS[i][1], pulses)
                .expect("valid fixture mean")
                .build()
                .expect("valid fixture application")
        })
        .collect();
    Batch::new(apps)
}

fn engine_bits(engine: &Phi1Engine) -> Vec<u64> {
    let mut bits = Vec::new();
    for app in 0..engine.num_apps() {
        for ty in 0..engine.num_types() {
            let ty = ProcTypeId(ty);
            let mut procs = 1u32;
            while let Some(loaded) = engine.loaded_pmf(app, ty, procs) {
                for p in loaded.pulses() {
                    bits.push(p.value.to_bits());
                    bits.push(p.prob.to_bits());
                }
                procs *= 2;
            }
        }
    }
    bits
}

#[test]
fn hundredfold_pulse_skew_starves_no_worker_and_stays_bit_identical() {
    // App 0: 400 pulses; apps 1-2: 4 pulses — a 100× pulse skew, which the
    // quadratic kernel turns into a ~10000× *work* skew per pair family.
    let batch = skewed_batch(400, 4);
    let platform = paper::platform();
    let serial = Phi1Engine::build(&batch, &platform).unwrap();
    let want = engine_bits(&serial);

    for threads in [2usize, 4] {
        // min_work = 0 forces the pool path regardless of instance size.
        let (engine, stats) =
            Phi1Engine::build_parallel_instrumented(&batch, &platform, threads, 0).unwrap();
        assert_eq!(
            engine_bits(&engine),
            want,
            "skewed build diverges at {threads} threads"
        );
        assert_eq!(stats.workers, threads);
        // 3 apps × 2 types = 6 pair families ≥ workers, so the pool's
        // reserved-first-chunk rule guarantees every worker ran ≥ 1.
        assert!(
            stats.no_worker_starved(),
            "worker starved at {threads} threads: {:?}",
            stats.tasks_run
        );
        assert_eq!(stats.tasks_run.iter().sum::<usize>(), 6);
    }
}

#[test]
fn skewed_build_respects_pair_error_order() {
    // Sanity on the error contract under skew: an empty batch and a zero
    // thread count still fail fast through the same entry points.
    let platform = paper::platform();
    assert!(Phi1Engine::build_parallel_instrumented(&skewed_batch(8, 4), &platform, 0, 0).is_err());
    assert!(Phi1Engine::build(&Batch::new(vec![]), &platform).is_err());
}
