//! Equivalence suite for the shared φ₁ evaluation engine.
//!
//! The engine's contract is *bit-identical* agreement with the direct
//! (uncached, serial) PMF arithmetic: same cells, same probability table,
//! same robustness reports, same Monte-Carlo estimates, and the same
//! `Allocation` out of every allocator — for every thread count. These
//! tests assert exact `f64` equality throughout; there are no tolerances.

use cdsf_ra::allocators::{
    allocate_incremental, allocate_incremental_with_engine, EqualShare, GammaRobust,
    GeneticAlgorithm, GreedyMaxRobust, GreedyMinTime, Lattice, SimulatedAnnealing, Sufferage,
};
use cdsf_ra::robustness::{
    evaluate, evaluate_with_engine, monte_carlo_phi1_ci, monte_carlo_phi1_ci_with_engine,
    MonteCarloConfig, ProbabilityTable,
};
use cdsf_ra::{Allocator, Phi1Engine};
use cdsf_system::parallel_time::{loaded_time_pmf, parallel_time_pmf};
use cdsf_system::{Batch, Platform, ProcTypeId};
use cdsf_workloads::generators::{BatchGenerator, PlatformGenerator, Range};
use cdsf_workloads::paper;

fn paper_instance() -> (Batch, Platform) {
    (paper::batch_with_pulses(32), paper::platform())
}

/// A generated instance, larger than the paper's 3×2 example so the
/// parallel chunking actually splits work.
fn generated_instance(seed: u64) -> (Batch, Platform) {
    let platform = PlatformGenerator {
        num_types: 3,
        procs_per_type: (8, 16),
        availability_pulses: 3,
        availability_range: Range::new(0.3, 1.0).unwrap(),
    }
    .generate(seed)
    .unwrap();
    let batch = BatchGenerator {
        num_apps: 7,
        total_iters: (1_000, 8_000),
        serial_fraction: Range::new(0.02, 0.2).unwrap(),
        mean_exec_time: Range::new(1_000.0, 6_000.0).unwrap(),
        type_heterogeneity: Range::new(0.6, 1.8).unwrap(),
        pulses: 12,
    }
    .generate(&platform, seed.wrapping_add(1))
    .unwrap();
    (batch, platform)
}

#[test]
fn parallel_engine_build_is_bit_identical_to_serial() {
    for (batch, platform) in [paper_instance(), generated_instance(5)] {
        let serial = Phi1Engine::build(&batch, &platform).unwrap();
        for threads in [2, 3, 4, 7, 16] {
            let parallel = Phi1Engine::build_parallel(&batch, &platform, threads).unwrap();
            for i in 0..batch.len() {
                for j in 0..platform.num_types() {
                    let ty = ProcTypeId(j);
                    for n in platform.pow2_options(ty).unwrap() {
                        assert_eq!(
                            serial.loaded_pmf(i, ty, n),
                            parallel.loaded_pmf(i, ty, n),
                            "loaded PMF diverged at app {i}, type {j}, n {n}, threads {threads}"
                        );
                        assert_eq!(
                            serial.dedicated_pmf(i, ty, n),
                            parallel.dedicated_pmf(i, ty, n),
                            "dedicated PMF diverged at app {i}, type {j}, n {n}"
                        );
                        assert_eq!(
                            serial.expected_time(i, ty, n),
                            parallel.expected_time(i, ty, n),
                            "expected time diverged at app {i}, type {j}, n {n}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn engine_cells_equal_direct_pmf_arithmetic() {
    let (batch, platform) = generated_instance(11);
    let engine = Phi1Engine::build_parallel(&batch, &platform, 4).unwrap();
    for (id, app) in batch.iter() {
        for j in 0..platform.num_types() {
            let ty = ProcTypeId(j);
            if app.exec_time(ty).is_err() {
                assert!(engine.loaded_pmf(id.0, ty, 1).is_none());
                continue;
            }
            for n in platform.pow2_options(ty).unwrap() {
                let dedicated = parallel_time_pmf(app, ty, n).unwrap();
                let loaded = loaded_time_pmf(app, &platform, ty, n).unwrap();
                assert_eq!(engine.dedicated_pmf(id.0, ty, n), Some(&dedicated));
                assert_eq!(engine.loaded_pmf(id.0, ty, n), Some(&loaded));
                assert_eq!(
                    engine.expected_time(id.0, ty, n),
                    Some(loaded.expectation())
                );
            }
        }
    }
}

#[test]
fn cached_table_equals_uncached_probability_table() {
    for (batch, platform) in [paper_instance(), generated_instance(23)] {
        let engine = Phi1Engine::build_parallel(&batch, &platform, 4).unwrap();
        for deadline in [900.0, 2_500.0, paper::DEADLINE, 50_000.0] {
            let uncached = ProbabilityTable::build(&batch, &platform, deadline).unwrap();
            let cached = engine.table(deadline).unwrap();
            for i in 0..batch.len() {
                for j in 0..platform.num_types() {
                    let ty = ProcTypeId(j);
                    for n in platform.pow2_options(ty).unwrap() {
                        assert_eq!(
                            uncached.prob(i, ty, n),
                            cached.prob(i, ty, n),
                            "table diverged at app {i}, type {j}, n {n}, Δ {deadline}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn evaluate_with_engine_is_bit_identical() {
    for (batch, platform) in [paper_instance(), generated_instance(23)] {
        let engine = Phi1Engine::build_parallel(&batch, &platform, 4).unwrap();
        let deadline = 2_800.0;
        let alloc = Sufferage::new()
            .allocate(&batch, &platform, deadline)
            .unwrap();
        let direct = evaluate(&batch, &platform, &alloc, deadline).unwrap();
        let cached = evaluate_with_engine(&engine, &batch, &platform, &alloc, deadline).unwrap();
        assert_eq!(direct.joint, cached.joint);
        assert_eq!(direct.per_app, cached.per_app);
        assert_eq!(direct.expected_times, cached.expected_times);
    }
}

#[test]
fn monte_carlo_with_engine_is_bit_identical() {
    let (batch, platform) = paper_instance();
    let engine = Phi1Engine::build(&batch, &platform).unwrap();
    let alloc = GreedyMaxRobust::new()
        .allocate(&batch, &platform, paper::DEADLINE)
        .unwrap();
    for threads in [1, 2, 4] {
        let cfg = MonteCarloConfig {
            replicates: 20_000,
            threads,
            seed: 0xFEED,
        };
        let direct = monte_carlo_phi1_ci(&batch, &platform, &alloc, paper::DEADLINE, &cfg).unwrap();
        let cached = monte_carlo_phi1_ci_with_engine(
            &engine,
            &batch,
            &platform,
            &alloc,
            paper::DEADLINE,
            &cfg,
        )
        .unwrap();
        assert_eq!(direct, cached, "MC estimate diverged at threads {threads}");
    }
}

#[test]
fn all_allocators_agree_between_direct_and_engine_paths() {
    for (batch, platform) in [paper_instance(), generated_instance(47)] {
        let deadline = 2_800.0;
        let engine = Phi1Engine::build_parallel(&batch, &platform, 4).unwrap();
        let policies: Vec<Box<dyn Allocator>> = vec![
            Box::new(EqualShare::new()),
            Box::new(GreedyMinTime::new()),
            Box::new(GreedyMaxRobust::new()),
            Box::new(Sufferage::new()),
            Box::new(SimulatedAnnealing {
                iterations: 3_000,
                ..Default::default()
            }),
            Box::new(GeneticAlgorithm {
                generations: 25,
                ..Default::default()
            }),
        ];
        for policy in &policies {
            let direct = policy.allocate(&batch, &platform, deadline).unwrap();
            let cached = policy
                .allocate_with_engine(&batch, &platform, &engine, deadline)
                .unwrap();
            assert_eq!(
                direct,
                cached,
                "{} diverged from its engine path",
                policy.name()
            );
        }
    }
}

#[test]
fn exhaustive_is_thread_invariant_on_generated_instance() {
    // 7 apps × 3 types is large enough for the frontier split to matter.
    let (batch, platform) = generated_instance(53);
    let deadline = 2_800.0;
    let baseline = cdsf_ra::allocators::Exhaustive::new(1)
        .unwrap()
        .allocate(&batch, &platform, deadline)
        .unwrap();
    for threads in [2, 4, 8, 16] {
        let alloc = cdsf_ra::allocators::Exhaustive::new(threads)
            .unwrap()
            .allocate(&batch, &platform, deadline)
            .unwrap();
        assert_eq!(baseline, alloc, "exhaustive diverged at {threads} threads");
    }
}

#[test]
fn lattice_equals_exhaustive_bit_exactly_across_deadlines() {
    for (batch, platform) in [
        paper_instance(),
        generated_instance(53),
        generated_instance(71),
    ] {
        for deadline in [900.0, 2_800.0, paper::DEADLINE, 50_000.0] {
            let reference = cdsf_ra::allocators::Exhaustive::new(2)
                .unwrap()
                .allocate(&batch, &platform, deadline)
                .unwrap();
            let exact = Lattice::new(2)
                .unwrap()
                .allocate(&batch, &platform, deadline)
                .unwrap();
            assert_eq!(reference, exact, "lattice diverged at Δ {deadline}");
            let p_ref = evaluate(&batch, &platform, &reference, deadline)
                .unwrap()
                .joint;
            let p_lat = evaluate(&batch, &platform, &exact, deadline).unwrap().joint;
            assert_eq!(
                p_ref.to_bits(),
                p_lat.to_bits(),
                "φ1 bits diverged at Δ {deadline}"
            );
        }
    }
}

#[test]
fn lattice_is_thread_invariant_on_generated_instance() {
    let (batch, platform) = generated_instance(53);
    let deadline = 2_800.0;
    let baseline = Lattice::new(1)
        .unwrap()
        .allocate(&batch, &platform, deadline)
        .unwrap();
    for threads in [2, 4, 7, 16] {
        let alloc = Lattice::new(threads)
            .unwrap()
            .allocate(&batch, &platform, deadline)
            .unwrap();
        assert_eq!(baseline, alloc, "lattice diverged at {threads} threads");
    }
}

#[test]
fn gamma_robust_is_thread_invariant_on_generated_instance() {
    use cdsf_ra::{LatticeScratch, LatticeSolution};
    let (batch, platform) = generated_instance(53);
    let engine = Phi1Engine::build(&batch, &platform).unwrap();
    // Both regimes: a loose deadline (Optimal) and a hopeless one
    // (Infeasible, carrying the tightest-deadline proof).
    for deadline in [50_000.0, 1e-6] {
        let solve = |threads| -> LatticeSolution {
            let mut scratch = LatticeScratch::new();
            GammaRobust {
                threads,
                ..Default::default()
            }
            .solve_with_engine(&platform, &engine, deadline, &mut scratch)
            .unwrap()
            .0
        };
        let baseline = solve(1);
        for threads in [2, 4, 7, 16] {
            assert_eq!(
                baseline,
                solve(threads),
                "γ-robust diverged at {threads} threads, Δ {deadline}"
            );
        }
    }
}

#[test]
fn incremental_allocation_agrees_with_engine_path() {
    let (batch, platform) = generated_instance(61);
    let deadline = 2_800.0;
    let engine = Phi1Engine::build_parallel(&batch, &platform, 4).unwrap();
    for waves in [vec![7], vec![3, 4], vec![2, 2, 3], vec![1; 7]] {
        let direct = allocate_incremental(&batch, &platform, deadline, &waves).unwrap();
        let cached =
            allocate_incremental_with_engine(&batch, &platform, &engine, deadline, &waves).unwrap();
        assert_eq!(direct, cached, "waves {waves:?} diverged");
    }
}
