//! Stress suite for [`EngineCache`] under capacity starvation.
//!
//! The serve data plane leans on two cache properties that only show up
//! when eviction is constantly racing keyed rebuilds:
//!
//! 1. **Counter arithmetic is exact.** Every operation is counted exactly
//!    once as a hit, a miss, or an incremental rebuild — including the
//!    fallback where `rebuild_keyed`'s `prev_key` was already evicted and
//!    the cache silently degrades to a fresh build (a miss).
//! 2. **Eviction never costs correctness.** Whatever got evicted, every
//!    outcome's engine is bit-identical (via `table_fingerprint`) to a
//!    fresh serial build for the same inputs, and the whole operation
//!    sequence is deterministic: replaying it on a second cache produces
//!    the same counters at every step.

use cdsf_events::remap::{degraded_platform, identity_maps};
use cdsf_ra::{inputs_key, EngineCache, Phi1Engine, RebuildMap};
use cdsf_system::{Batch, Platform};
use cdsf_workloads::generators::{BatchGenerator, PlatformGenerator, Range};

fn base_instance() -> (Batch, Platform) {
    let platform = PlatformGenerator {
        num_types: 2,
        procs_per_type: (4, 8),
        availability_pulses: 3,
        availability_range: Range::new(0.4, 1.0).unwrap(),
    }
    .generate(11)
    .unwrap();
    let batch = BatchGenerator {
        num_apps: 4,
        total_iters: (1_000, 4_000),
        serial_fraction: Range::new(0.02, 0.2).unwrap(),
        mean_exec_time: Range::new(1_000.0, 4_000.0).unwrap(),
        type_heterogeneity: Range::new(0.6, 1.8).unwrap(),
        pulses: 6,
    }
    .generate(&platform, 12)
    .unwrap();
    (batch, platform)
}

/// A working set of 5 distinct inputs: the base platform plus four
/// single-type degradations. Only type 0's availability changes, so an
/// incremental rebuild between variants can genuinely reuse type-1 cells
/// — reuse and eviction are both in play.
fn working_set() -> (Batch, Vec<Platform>) {
    let (batch, base) = base_instance();
    let mut platforms = vec![base.clone()];
    for factor in [0.95, 0.9, 0.85, 0.8] {
        platforms.push(degraded_platform(&base, 0, factor).unwrap());
    }
    (batch, platforms)
}

/// One step's observable result, for cross-run determinism comparison.
#[derive(Debug, PartialEq, Eq)]
struct StepTrace {
    variant: usize,
    hit: bool,
    reused_cells: usize,
    hits: u64,
    misses: u64,
    rebuilds: u64,
    len: usize,
}

/// Drives a fixed 60-operation script over a capacity-2 cache whose
/// working set is 5 engines, alternating exact lookups with keyed
/// rebuilds whose `prev_key` frequently points at an evicted entry.
fn run_script(batch: &Batch, platforms: &[Platform]) -> (Vec<StepTrace>, u64, u64, u64) {
    let keys: Vec<u64> = platforms.iter().map(|p| inputs_key(batch, p)).collect();
    let (apps_map, types_map) = identity_maps(batch.len(), platforms[0].num_types());
    let mut cache = EngineCache::with_capacity(2);
    let mut trace = Vec::new();
    let mut evicted_prev_seen = false;
    // xorshift64* with a fixed seed: deterministic, no external RNG.
    let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for step in 0..60 {
        let v = (next() % platforms.len() as u64) as usize;
        let resident_before = cache.contains(keys[v]);
        let do_rebuild = step % 2 == 1;
        let (hit, reused) = if do_rebuild {
            // prev_key cycles over the whole working set, so with only 2
            // resident slots it regularly names an evicted engine.
            let prev = (next() % platforms.len() as u64) as usize;
            if !cache.contains(keys[prev]) && !resident_before {
                evicted_prev_seen = true;
            }
            let outcome = cache
                .rebuild_keyed(
                    keys[prev],
                    batch,
                    &platforms[v],
                    RebuildMap {
                        apps: &apps_map,
                        types: &types_map,
                    },
                    2,
                )
                .unwrap();
            assert_eq!(outcome.key, keys[v], "outcome key tracks the target");
            (outcome.hit, outcome.reused_cells)
        } else {
            let outcome = cache.get_or_build(batch, &platforms[v], 2).unwrap();
            assert_eq!(outcome.key, keys[v]);
            (outcome.hit, outcome.reused_cells)
        };
        assert_eq!(
            hit, resident_before,
            "step {step}: a hit is exactly a resident target"
        );
        if hit {
            assert_eq!(reused, 0, "step {step}: exact hits reuse nothing");
        }
        assert!(
            cache.len() <= cache.capacity(),
            "step {step}: capacity bound violated"
        );
        trace.push(StepTrace {
            variant: v,
            hit,
            reused_cells: reused,
            hits: cache.hits(),
            misses: cache.misses(),
            rebuilds: cache.rebuilds(),
            len: cache.len(),
        });
    }
    assert!(
        evicted_prev_seen,
        "script never exercised the evicted-prev_key fallback; widen the working set"
    );
    (trace, cache.hits(), cache.misses(), cache.rebuilds())
}

#[test]
fn eviction_racing_keyed_rebuilds_keeps_counters_and_bits_exact() {
    let (batch, platforms) = working_set();
    let fresh: Vec<u64> = platforms
        .iter()
        .map(|p| Phi1Engine::build(&batch, p).unwrap().table_fingerprint())
        .collect();

    let (trace, hits, misses, rebuilds) = run_script(&batch, &platforms);

    // Every operation is exactly one of hit/miss/rebuild.
    assert_eq!(
        hits + misses + rebuilds,
        trace.len() as u64,
        "counter arithmetic drifted"
    );
    // The starved cache actually thrashed: all three paths fired.
    assert!(hits > 0, "no hits — script broken");
    assert!(misses > 0, "no misses — script broken");
    assert!(rebuilds > 0, "no incremental rebuilds — script broken");

    // Whatever the eviction history, the engine answering each step is
    // bit-identical to a fresh serial build for that step's inputs.
    let mut cache = EngineCache::with_capacity(2);
    let (apps_map, types_map) = identity_maps(batch.len(), platforms[0].num_types());
    for (step, t) in trace.iter().enumerate() {
        let outcome = if step % 2 == 1 {
            cache
                .rebuild_keyed(
                    inputs_key(&batch, &platforms[t.variant]),
                    &batch,
                    &platforms[t.variant],
                    RebuildMap {
                        apps: &apps_map,
                        types: &types_map,
                    },
                    2,
                )
                .unwrap()
        } else {
            cache
                .get_or_build(&batch, &platforms[t.variant], 2)
                .unwrap()
        };
        assert_eq!(
            outcome.engine.table_fingerprint(),
            fresh[t.variant],
            "step {step}: evicted-and-rebuilt engine diverged from a fresh build"
        );
    }
}

#[test]
fn starved_cache_operation_sequence_is_deterministic() {
    let (batch, platforms) = working_set();
    let (a, ..) = run_script(&batch, &platforms);
    let (b, ..) = run_script(&batch, &platforms);
    assert_eq!(
        a, b,
        "same script, same cache capacity — eviction must be deterministic"
    );
}
