//! Greedy list-scheduling heuristics scored on stochastic robustness.
//!
//! The paper's future work calls for "robust and scalable RA heuristics";
//! these are stochastic-metric versions of the classic Min-min / Max-min /
//! Sufferage mapping heuristics (Ibarra & Kim; Maheswaran et al.),
//! evaluating candidates on the memoized `Pr(T ≤ Δ)` table rather than on
//! deterministic completion times. All run in `O(N² · options)` or better —
//! polynomial where [`super::Exhaustive`] is exponential. All candidate
//! probabilities and expected times are served by the shared
//! [`Phi1Engine`], whose cache build is parallelized over `threads`.

use super::{engine_options, Allocator, Capacity};
use crate::allocation::{Allocation, Assignment};
use crate::engine::Phi1Engine;
use crate::{RaError, Result};
use cdsf_system::{Batch, Platform};

/// Whether taking `asg` still leaves every other unassigned application at
/// least one fitting option. A one-step lookahead, not an exact matching
/// test, but it prevents the classic greedy dead-end where an early large
/// grab starves a later application of *all* options. (An application can
/// always fall back to a 1-processor group, so per-app checks are nearly
/// always sufficient in practice.)
fn leaves_others_feasible(
    cap: &mut Capacity,
    asg: Assignment,
    unassigned: &[usize],
    skip: usize,
    options: &[Vec<Assignment>],
) -> bool {
    cap.take(asg);
    let ok = unassigned
        .iter()
        .filter(|&&i| i != skip)
        .all(|&i| options[i].iter().any(|o| cap.fits(*o)));
    cap.release(asg);
    ok
}

/// GreedyMinTime — assign applications (hardest first) to the feasible
/// option minimizing their *expected loaded completion time*.
///
/// "Hardest" = largest best-case expected completion time over all
/// currently-feasible options, recomputed as capacity shrinks. This is the
/// Max-min analogue on expectations; it ignores the deadline entirely,
/// which makes it a useful "efficiency-only" baseline for the robustness
/// heuristics.
#[derive(Debug, Clone, Copy)]
pub struct GreedyMinTime {
    /// Worker threads for the [`Phi1Engine`] cache build.
    pub threads: usize,
}

impl Default for GreedyMinTime {
    fn default() -> Self {
        Self::new()
    }
}

impl GreedyMinTime {
    /// Creates the policy with the default thread count.
    pub fn new() -> Self {
        Self {
            threads: cdsf_system::default_threads(),
        }
    }
}

impl Allocator for GreedyMinTime {
    fn name(&self) -> &'static str {
        "GreedyMinTime"
    }

    fn allocate(&self, batch: &Batch, platform: &Platform, deadline: f64) -> Result<Allocation> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        let engine = Phi1Engine::build_parallel(batch, platform, self.threads)?;
        self.allocate_with_engine(batch, platform, &engine, deadline)
    }

    fn allocate_with_engine(
        &self,
        batch: &Batch,
        platform: &Platform,
        engine: &Phi1Engine,
        _deadline: f64,
    ) -> Result<Allocation> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        // Expected loaded times for all (app, option) pairs — engine lookups.
        let plain = engine_options(engine)?;
        let expected: Vec<Vec<(Assignment, f64)>> = plain
            .iter()
            .enumerate()
            .map(|(i, opts)| {
                opts.iter()
                    .map(|&asg| {
                        let t = engine
                            .expected_time(i, asg.proc_type, asg.procs)
                            .expect("engine option has a cell");
                        (asg, t)
                    })
                    .collect()
            })
            .collect();

        let mut cap = Capacity::of(platform);
        let mut chosen: Vec<Option<Assignment>> = vec![None; batch.len()];
        let mut unassigned: Vec<usize> = (0..batch.len()).collect();
        while !unassigned.is_empty() {
            // For each unassigned app: its best option that fits *and*
            // leaves every other unassigned app at least one option.
            let mut best_per_app: Vec<(usize, Assignment, f64)> = Vec::new();
            for &i in &unassigned {
                let mut row: Vec<(Assignment, f64)> = expected[i]
                    .iter()
                    .copied()
                    .filter(|(asg, _)| cap.fits(*asg))
                    .collect();
                row.sort_by(|a, b| a.1.total_cmp(&b.1));
                let pick = row.into_iter().find(|&(asg, _)| {
                    leaves_others_feasible(&mut cap, asg, &unassigned, i, &plain)
                });
                match pick {
                    Some((asg, t)) => best_per_app.push((i, asg, t)),
                    None => return Err(RaError::NoFeasibleAllocation),
                }
            }
            // Hardest app first: the one whose best option is worst.
            let &(i, asg, _) = best_per_app
                .iter()
                .max_by(|a, b| a.2.total_cmp(&b.2))
                .expect("unassigned is non-empty");
            cap.take(asg);
            chosen[i] = Some(asg);
            unassigned.retain(|&x| x != i);
        }
        Ok(Allocation::new(
            chosen
                .into_iter()
                .map(|c| c.expect("all assigned"))
                .collect(),
        ))
    }
}

/// GreedyMaxRobust — most-constrained-first on deadline probability.
///
/// Repeatedly pick the unassigned application whose *best* feasible
/// `Pr(T ≤ Δ)` is lowest (it is the bottleneck for the joint product) and
/// give it that best option.
#[derive(Debug, Clone, Copy)]
pub struct GreedyMaxRobust {
    /// Worker threads for the [`Phi1Engine`] cache build.
    pub threads: usize,
}

impl Default for GreedyMaxRobust {
    fn default() -> Self {
        Self::new()
    }
}

impl GreedyMaxRobust {
    /// Creates the policy with the default thread count.
    pub fn new() -> Self {
        Self {
            threads: cdsf_system::default_threads(),
        }
    }
}

impl Allocator for GreedyMaxRobust {
    fn name(&self) -> &'static str {
        "GreedyMaxRobust"
    }

    fn allocate(&self, batch: &Batch, platform: &Platform, deadline: f64) -> Result<Allocation> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        let engine = Phi1Engine::build_parallel(batch, platform, self.threads)?;
        self.allocate_with_engine(batch, platform, &engine, deadline)
    }

    fn allocate_with_engine(
        &self,
        batch: &Batch,
        platform: &Platform,
        engine: &Phi1Engine,
        deadline: f64,
    ) -> Result<Allocation> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        let table = engine.table(deadline)?;
        let options = engine_options(engine)?;

        let mut cap = Capacity::of(platform);
        let mut chosen: Vec<Option<Assignment>> = vec![None; batch.len()];
        let mut unassigned: Vec<usize> = (0..batch.len()).collect();
        while !unassigned.is_empty() {
            let mut pick: Option<(usize, Assignment, f64)> = None;
            for &i in &unassigned {
                let mut row: Vec<(Assignment, f64)> = options[i]
                    .iter()
                    .filter(|asg| cap.fits(**asg))
                    .filter_map(|asg| table.prob(i, asg.proc_type, asg.procs).map(|p| (*asg, p)))
                    .collect();
                row.sort_by(|a, b| b.1.total_cmp(&a.1));
                let best = row.into_iter().find(|&(asg, _)| {
                    leaves_others_feasible(&mut cap, asg, &unassigned, i, &options)
                });
                let Some((asg, p)) = best else {
                    return Err(RaError::NoFeasibleAllocation);
                };
                // Keep the app with the *lowest* best probability.
                if pick.as_ref().map_or(true, |&(_, _, bp)| p < bp) {
                    pick = Some((i, asg, p));
                }
            }
            let (i, asg, _) = pick.expect("unassigned non-empty");
            cap.take(asg);
            chosen[i] = Some(asg);
            unassigned.retain(|&x| x != i);
        }
        Ok(Allocation::new(
            chosen
                .into_iter()
                .map(|c| c.expect("all assigned"))
                .collect(),
        ))
    }
}

/// Sufferage — assign the application that would *suffer* most if denied
/// its best option.
///
/// Sufferage value = best `Pr(T ≤ Δ)` − second-best `Pr(T ≤ Δ)` among
/// currently-feasible options; the largest sufferage gets its best option
/// first.
#[derive(Debug, Clone, Copy)]
pub struct Sufferage {
    /// Worker threads for the [`Phi1Engine`] cache build.
    pub threads: usize,
}

impl Default for Sufferage {
    fn default() -> Self {
        Self::new()
    }
}

impl Sufferage {
    /// Creates the policy with the default thread count.
    pub fn new() -> Self {
        Self {
            threads: cdsf_system::default_threads(),
        }
    }
}

impl Allocator for Sufferage {
    fn name(&self) -> &'static str {
        "Sufferage"
    }

    fn allocate(&self, batch: &Batch, platform: &Platform, deadline: f64) -> Result<Allocation> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        let engine = Phi1Engine::build_parallel(batch, platform, self.threads)?;
        self.allocate_with_engine(batch, platform, &engine, deadline)
    }

    fn allocate_with_engine(
        &self,
        batch: &Batch,
        platform: &Platform,
        engine: &Phi1Engine,
        deadline: f64,
    ) -> Result<Allocation> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        let table = engine.table(deadline)?;
        let options = engine_options(engine)?;

        let mut cap = Capacity::of(platform);
        let mut chosen: Vec<Option<Assignment>> = vec![None; batch.len()];
        let mut unassigned: Vec<usize> = (0..batch.len()).collect();
        while !unassigned.is_empty() {
            let mut pick: Option<(usize, Assignment, f64)> = None; // (app, asg, sufferage)
            for &i in &unassigned {
                let mut probs: Vec<(Assignment, f64)> = options[i]
                    .iter()
                    .filter(|asg| cap.fits(**asg))
                    .filter_map(|asg| table.prob(i, asg.proc_type, asg.procs).map(|p| (*asg, p)))
                    .collect();
                probs.sort_by(|a, b| b.1.total_cmp(&a.1));
                probs.retain(|&(asg, _)| {
                    leaves_others_feasible(&mut cap, asg, &unassigned, i, &options)
                });
                if probs.is_empty() {
                    return Err(RaError::NoFeasibleAllocation);
                }
                let best = probs[0];
                let second = probs.get(1).map_or(0.0, |s| s.1);
                let sufferage = best.1 - second;
                if pick.as_ref().map_or(true, |&(_, _, s)| sufferage > s) {
                    pick = Some((i, best.0, sufferage));
                }
            }
            let (i, asg, _) = pick.expect("unassigned non-empty");
            cap.take(asg);
            chosen[i] = Some(asg);
            unassigned.retain(|&x| x != i);
        }
        Ok(Allocation::new(
            chosen
                .into_iter()
                .map(|c| c.expect("all assigned"))
                .collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocators::testutil::*;
    use crate::robustness::evaluate;

    fn check_feasible(alloc: &Allocation) {
        alloc.validate(&paper_batch(16), &paper_platform()).unwrap();
    }

    #[test]
    fn all_greedy_policies_produce_feasible_allocations() {
        let (b, p) = (paper_batch(16), paper_platform());
        for policy in [
            &GreedyMinTime::new() as &dyn Allocator,
            &GreedyMaxRobust::new(),
            &Sufferage::new(),
        ] {
            let alloc = policy.allocate(&b, &p, DEADLINE).unwrap();
            check_feasible(&alloc);
        }
    }

    #[test]
    fn engine_path_matches_direct_path() {
        let (b, p) = (paper_batch(16), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        for policy in [
            &GreedyMinTime::new() as &dyn Allocator,
            &GreedyMaxRobust::new(),
            &Sufferage::new(),
        ] {
            let direct = policy.allocate(&b, &p, DEADLINE).unwrap();
            let cached = policy
                .allocate_with_engine(&b, &p, &engine, DEADLINE)
                .unwrap();
            assert_eq!(direct, cached, "{} diverged", policy.name());
        }
    }

    #[test]
    fn greedy_max_robust_beats_naive_on_paper_example() {
        let (b, p) = (paper_batch(64), paper_platform());
        let naive = super::super::EqualShare::new()
            .allocate(&b, &p, DEADLINE)
            .unwrap();
        let greedy = GreedyMaxRobust::new().allocate(&b, &p, DEADLINE).unwrap();
        let p_naive = evaluate(&b, &p, &naive, DEADLINE).unwrap().joint;
        let p_greedy = evaluate(&b, &p, &greedy, DEADLINE).unwrap().joint;
        assert!(
            p_greedy > p_naive,
            "greedy {p_greedy} should beat naïve {p_naive}"
        );
    }

    #[test]
    fn sufferage_close_to_optimal_on_paper_example() {
        let (b, p) = (paper_batch(64), paper_platform());
        let opt = super::super::Exhaustive::default()
            .allocate(&b, &p, DEADLINE)
            .unwrap();
        let suf = Sufferage::new().allocate(&b, &p, DEADLINE).unwrap();
        let p_opt = evaluate(&b, &p, &opt, DEADLINE).unwrap().joint;
        let p_suf = evaluate(&b, &p, &suf, DEADLINE).unwrap().joint;
        assert!(p_suf >= 0.5 * p_opt, "sufferage {p_suf} vs optimum {p_opt}");
    }

    #[test]
    fn greedy_min_time_prefers_fast_types() {
        // On the paper's example, app 3 is far faster on type 2 (8000 vs
        // 12000 serial) and parallelizes well, so GreedyMinTime must put it
        // on type 2 with the largest group.
        let (b, p) = (paper_batch(16), paper_platform());
        let alloc = GreedyMinTime::new().allocate(&b, &p, DEADLINE).unwrap();
        let a3 = alloc.assignments()[2];
        assert_eq!(a3.proc_type.0, 1);
        assert_eq!(a3.procs, 8);
    }

    #[test]
    fn greedy_policies_reject_empty_batch() {
        let p = paper_platform();
        let empty = cdsf_system::Batch::new(vec![]);
        assert!(GreedyMinTime::new().allocate(&empty, &p, DEADLINE).is_err());
        assert!(GreedyMaxRobust::new()
            .allocate(&empty, &p, DEADLINE)
            .is_err());
        assert!(Sufferage::new().allocate(&empty, &p, DEADLINE).is_err());
    }
}
