//! Incremental allocation for applications that arrive in waves.
//!
//! The paper maps one batch at a time; its future work points to *dynamic*
//! stochastic resource allocation (Smith et al., ICPP'09), where requests
//! arrive while earlier applications are still running. This module
//! implements that arrival model: the batch is partitioned into waves, and
//! each wave is mapped with only the capacity the earlier waves left
//! behind (their groups stay allocated until the batch completes — the
//! paper forbids runtime reallocation).
//!
//! Within a wave the assignment rule is the most-constrained-first greedy
//! of [`super::GreedyMaxRobust`], scored on the same memoized probability
//! table. The whole-batch φ₁ of an incremental mapping is therefore at
//! most that of the clairvoyant full-batch optimum — the gap quantifies
//! the price of not knowing future arrivals, which the integration tests
//! measure.

use super::{engine_options, Capacity};
use crate::allocation::{Allocation, Assignment};
use crate::engine::Phi1Engine;
use crate::{RaError, Result};
use cdsf_system::{Batch, Platform};

/// Allocates a batch whose applications arrive in `waves` (sizes must sum
/// to the batch length). Returns the combined allocation, indexed like the
/// batch. Builds a fresh [`Phi1Engine`]; use
/// [`allocate_incremental_with_engine`] to reuse a prebuilt cache.
pub fn allocate_incremental(
    batch: &Batch,
    platform: &Platform,
    deadline: f64,
    waves: &[usize],
) -> Result<Allocation> {
    if batch.is_empty() {
        return Err(RaError::EmptyBatch);
    }
    let engine = Phi1Engine::build(batch, platform)?;
    allocate_incremental_with_engine(batch, platform, &engine, deadline, waves)
}

/// As [`allocate_incremental`], reusing a prebuilt [`Phi1Engine`] for
/// `(batch, platform)`; bit-identical results.
pub fn allocate_incremental_with_engine(
    batch: &Batch,
    platform: &Platform,
    engine: &Phi1Engine,
    deadline: f64,
    waves: &[usize],
) -> Result<Allocation> {
    if batch.is_empty() {
        return Err(RaError::EmptyBatch);
    }
    let total: usize = waves.iter().sum();
    if total != batch.len() || waves.contains(&0) {
        return Err(RaError::BadParameter {
            name: "waves",
            value: total as f64,
        });
    }

    let table = engine.table(deadline)?;
    let options = engine_options(engine)?;

    let mut cap = Capacity::of(platform);
    let mut chosen: Vec<Option<Assignment>> = vec![None; batch.len()];
    let mut next_app = 0usize;

    for &wave in waves {
        let wave_apps: Vec<usize> = (next_app..next_app + wave).collect();
        next_app += wave;
        let mut unassigned = wave_apps;
        while !unassigned.is_empty() {
            // Most-constrained-first within the wave, with the one-step
            // lookahead restricted to the wave (future waves are unknown).
            let mut pick: Option<(usize, Assignment, f64)> = None;
            for &i in &unassigned {
                let mut row: Vec<(Assignment, f64)> = options[i]
                    .iter()
                    .filter(|asg| cap.fits(**asg))
                    .filter_map(|asg| table.prob(i, asg.proc_type, asg.procs).map(|p| (*asg, p)))
                    .collect();
                row.sort_by(|a, b| b.1.total_cmp(&a.1));
                let best = row.into_iter().find(|&(asg, _)| {
                    leaves_wave_feasible(&mut cap, asg, &unassigned, i, &options)
                });
                let Some((asg, p)) = best else {
                    return Err(RaError::NoFeasibleAllocation);
                };
                if pick.as_ref().map_or(true, |&(_, _, bp)| p < bp) {
                    pick = Some((i, asg, p));
                }
            }
            let (i, asg, _) = pick.expect("wave non-empty");
            cap.take(asg);
            chosen[i] = Some(asg);
            unassigned.retain(|&x| x != i);
        }
    }

    Ok(Allocation::new(
        chosen
            .into_iter()
            .map(|c| c.expect("all waves assigned"))
            .collect(),
    ))
}

/// One-step lookahead restricted to the current wave.
fn leaves_wave_feasible(
    cap: &mut Capacity,
    asg: Assignment,
    unassigned: &[usize],
    skip: usize,
    options: &[Vec<Assignment>],
) -> bool {
    cap.take(asg);
    let ok = unassigned
        .iter()
        .filter(|&&i| i != skip)
        .all(|&i| options[i].iter().any(|o| cap.fits(*o)));
    cap.release(asg);
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocators::testutil::{paper_batch, paper_platform, DEADLINE};
    use crate::allocators::{Allocator, Exhaustive};
    use crate::robustness::evaluate;

    #[test]
    fn single_wave_is_feasible_and_competitive() {
        let (b, p) = (paper_batch(64), paper_platform());
        let alloc = allocate_incremental(&b, &p, DEADLINE, &[3]).unwrap();
        alloc.validate(&b, &p).unwrap();
        let phi1 = evaluate(&b, &p, &alloc, DEADLINE).unwrap().joint;
        assert!(
            phi1 > 0.26,
            "single-wave greedy φ1 {phi1} should beat naive"
        );
    }

    #[test]
    fn per_app_waves_are_feasible() {
        let (b, p) = (paper_batch(32), paper_platform());
        let alloc = allocate_incremental(&b, &p, DEADLINE, &[1, 1, 1]).unwrap();
        alloc.validate(&b, &p).unwrap();
    }

    #[test]
    fn incremental_never_beats_clairvoyant_optimum() {
        let (b, p) = (paper_batch(64), paper_platform());
        let opt = Exhaustive::default().allocate(&b, &p, DEADLINE).unwrap();
        let p_opt = evaluate(&b, &p, &opt, DEADLINE).unwrap().joint;
        for waves in [vec![3], vec![2, 1], vec![1, 2], vec![1, 1, 1]] {
            let alloc = allocate_incremental(&b, &p, DEADLINE, &waves).unwrap();
            let phi1 = evaluate(&b, &p, &alloc, DEADLINE).unwrap().joint;
            assert!(
                phi1 <= p_opt + 1e-9,
                "waves {waves:?}: incremental {phi1} beat optimum {p_opt}"
            );
        }
    }

    #[test]
    fn engine_path_matches_direct_path() {
        let (b, p) = (paper_batch(32), paper_platform());
        let engine = crate::engine::Phi1Engine::build(&b, &p).unwrap();
        for waves in [vec![3], vec![2, 1], vec![1, 1, 1]] {
            let direct = allocate_incremental(&b, &p, DEADLINE, &waves).unwrap();
            let cached =
                allocate_incremental_with_engine(&b, &p, &engine, DEADLINE, &waves).unwrap();
            assert_eq!(direct, cached, "waves {waves:?} diverged");
        }
    }

    #[test]
    fn wave_validation() {
        let (b, p) = (paper_batch(8), paper_platform());
        assert!(allocate_incremental(&b, &p, DEADLINE, &[2]).is_err()); // sum ≠ 3
        assert!(allocate_incremental(&b, &p, DEADLINE, &[3, 0]).is_err()); // zero wave
        assert!(allocate_incremental(&cdsf_system::Batch::new(vec![]), &p, DEADLINE, &[]).is_err());
    }

    #[test]
    fn earlier_waves_constrain_later_ones() {
        // When the first wave grabs type-1 capacity, a later single-app
        // wave must still find something (possibly worse).
        let (b, p) = (paper_batch(32), paper_platform());
        let combined = allocate_incremental(&b, &p, DEADLINE, &[2, 1]).unwrap();
        combined.validate(&b, &p).unwrap();
        // The last application is assigned with whatever capacity is left.
        let used_before: u32 = combined.assignments()[..2].iter().map(|a| a.procs).sum();
        assert!(used_before >= 2);
    }
}
