//! Stage-I allocation policies.
//!
//! * [`EqualShare`] — the paper's naïve load balancing: every application
//!   receives an equal share of the machine; only the type placement is
//!   optimized.
//! * [`Exhaustive`] — the paper's "robust IM": enumerate every feasible
//!   allocation and keep the one maximizing `φ₁`. Parallelized with
//!   scoped worker threads; only viable for small instances, which is
//!   exactly the paper's point.
//! * [`GreedyMinTime`], [`GreedyMaxRobust`], [`Sufferage`] — list-scheduling
//!   heuristics in the Min-min/Max-min/Sufferage tradition, scored on the
//!   stochastic robustness table instead of deterministic completion times.
//! * [`SimulatedAnnealing`], [`GeneticAlgorithm`] — metaheuristics for the
//!   large instances the paper defers to future work.
//! * [`Lattice`] — exact branch-and-bound over the allocation lattice,
//!   pruned with prefix-CDF bound tables; bit-identical to [`Exhaustive`]
//!   at a fraction of the cost. [`GammaRobust`] is its Γ-budget
//!   worst-case variant with provable infeasibility.
//!
//! All policies implement [`Allocator`] and are deterministic: the
//! metaheuristics take explicit seeds.

mod equal_share;
mod exhaustive;
mod greedy;
mod incremental;
mod lattice;
mod metaheuristic;

pub use equal_share::EqualShare;
pub use exhaustive::Exhaustive;
pub use greedy::{GreedyMaxRobust, GreedyMinTime, Sufferage};
pub use incremental::{allocate_incremental, allocate_incremental_with_engine};
pub use lattice::{
    GammaRobust, Lattice, LatticeCounters, LatticeReport, LatticeScratch, LatticeSolution,
};
pub use metaheuristic::{GeneticAlgorithm, MultiStartReport, SimulatedAnnealing};

use crate::allocation::{Allocation, Assignment};
use crate::engine::Phi1Engine;
use crate::robustness::ProbabilityTable;
use crate::{RaError, Result};
#[cfg(test)]
use cdsf_system::ProcTypeId;
use cdsf_system::{Batch, Platform};

/// A Stage-I allocation policy.
pub trait Allocator {
    /// Policy name for reports (e.g. `"EqualShare"`).
    fn name(&self) -> &'static str;

    /// Produces a feasible allocation for `batch` on `platform` targeting
    /// the common deadline.
    fn allocate(&self, batch: &Batch, platform: &Platform, deadline: f64) -> Result<Allocation>;

    /// As [`Allocator::allocate`], reusing a prebuilt [`Phi1Engine`] for
    /// `(batch, platform)` instead of recomputing the PMF cache. Every
    /// policy in this crate overrides this to serve probability and
    /// expected-time queries from the engine; results are bit-identical to
    /// [`Allocator::allocate`], which simply builds the engine itself.
    fn allocate_with_engine(
        &self,
        batch: &Batch,
        platform: &Platform,
        _engine: &Phi1Engine,
        deadline: f64,
    ) -> Result<Allocation> {
        self.allocate(batch, platform, deadline)
    }
}

/// Shared helper: all feasible `(type, pow2 count)` options for one
/// application, in deterministic order. The engine pre-computes the same
/// lists; this direct form remains as the test oracle for them.
#[cfg(test)]
pub(crate) fn app_options(
    app: &cdsf_system::Application,
    platform: &Platform,
) -> Result<Vec<Assignment>> {
    let mut opts = Vec::new();
    for j in 0..platform.num_types() {
        let id = ProcTypeId(j);
        if app.exec_time(id).is_err() {
            continue;
        }
        for n in platform.pow2_options(id)? {
            opts.push(Assignment {
                proc_type: id,
                procs: n,
            });
        }
    }
    if opts.is_empty() {
        return Err(RaError::NoFeasibleAllocation);
    }
    Ok(opts)
}

/// Shared helper: per-application option lists served by the engine, in
/// the same deterministic order as [`app_options`]. Errors when any
/// application has no feasible option at all.
pub(crate) fn engine_options(engine: &Phi1Engine) -> Result<Vec<Vec<Assignment>>> {
    let mut all = Vec::with_capacity(engine.num_apps());
    for i in 0..engine.num_apps() {
        let opts = engine.options(i);
        if opts.is_empty() {
            return Err(RaError::NoFeasibleAllocation);
        }
        all.push(opts);
    }
    Ok(all)
}

/// Shared helper: per-type free capacity tracking.
#[derive(Debug, Clone)]
pub(crate) struct Capacity {
    free: Vec<u32>,
}

impl Capacity {
    pub(crate) fn of(platform: &Platform) -> Self {
        Self {
            free: platform.types().iter().map(|t| t.count()).collect(),
        }
    }

    pub(crate) fn fits(&self, asg: Assignment) -> bool {
        self.free[asg.proc_type.0] >= asg.procs
    }

    pub(crate) fn take(&mut self, asg: Assignment) {
        debug_assert!(self.fits(asg));
        self.free[asg.proc_type.0] -= asg.procs;
    }

    pub(crate) fn release(&mut self, asg: Assignment) {
        self.free[asg.proc_type.0] += asg.procs;
    }
}

/// Log-space robustness score of an allocation from the probability table:
/// `Σ ln Pr(T_i ≤ Δ)`. Ordering-equivalent to the joint product but immune
/// to underflow for large batches; `-inf` for probability-zero assignments,
/// `None` if a lookup fails (infeasible triple).
pub fn log_score(table: &ProbabilityTable, alloc: &Allocation) -> Option<f64> {
    let mut s = 0.0f64;
    for (i, asg) in alloc.assignments().iter().enumerate() {
        let p = table.prob(i, asg.proc_type, asg.procs)?;
        if p <= 0.0 {
            return Some(f64::NEG_INFINITY);
        }
        s += p.ln();
    }
    Some(s)
}

#[cfg(test)]
pub(crate) mod testutil {
    use cdsf_pmf::Pmf;
    use cdsf_system::{Application, Batch, Platform, ProcessorType};

    /// The paper's platform (Table I, case 1).
    pub fn paper_platform() -> Platform {
        Platform::new(vec![
            ProcessorType::new(
                "Type 1",
                4,
                Pmf::from_pairs([(0.75, 0.5), (1.0, 0.5)]).unwrap(),
            )
            .unwrap(),
            ProcessorType::new(
                "Type 2",
                8,
                Pmf::from_pairs([(0.25, 0.25), (0.5, 0.25), (1.0, 0.5)]).unwrap(),
            )
            .unwrap(),
        ])
        .unwrap()
    }

    /// The paper's batch (Tables II and III), with `pulses` PMF resolution.
    pub fn paper_batch(pulses: usize) -> Batch {
        let mk = |name: &str, s: u64, p: u64, t1: f64, t2: f64| {
            Application::builder(name)
                .serial_iters(s)
                .parallel_iters(p)
                .exec_time_normal(t1, pulses)
                .unwrap()
                .exec_time_normal(t2, pulses)
                .unwrap()
                .build()
                .unwrap()
        };
        Batch::new(vec![
            mk("app 1", 439, 1024, 1800.0, 4000.0),
            mk("app 2", 512, 2048, 2800.0, 6000.0),
            mk("app 3", 216, 4096, 12000.0, 8000.0),
        ])
    }

    /// The paper's deadline.
    pub const DEADLINE: f64 = 3250.0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::*;

    #[test]
    fn app_options_cover_both_types() {
        let b = paper_batch(8);
        let p = paper_platform();
        let opts = app_options(b.app(cdsf_system::AppId(0)).unwrap(), &p).unwrap();
        // Type 1: 1,2,4; Type 2: 1,2,4,8 → 7 options.
        assert_eq!(opts.len(), 7);
    }

    #[test]
    fn capacity_bookkeeping() {
        let p = paper_platform();
        let mut cap = Capacity::of(&p);
        let asg = Assignment {
            proc_type: ProcTypeId(0),
            procs: 4,
        };
        assert!(cap.fits(asg));
        cap.take(asg);
        assert!(!cap.fits(Assignment {
            proc_type: ProcTypeId(0),
            procs: 1
        }));
        cap.release(asg);
        assert!(cap.fits(asg));
    }

    #[test]
    fn log_score_orders_like_joint_probability() {
        let (b, p) = (paper_batch(32), paper_platform());
        let table = ProbabilityTable::build(&b, &p, DEADLINE).unwrap();
        let allocs = Allocation::enumerate_feasible(&b, &p).unwrap();
        let mut best_by_joint = None;
        let mut best_by_log = None;
        for a in &allocs {
            let j = table.joint(a).unwrap();
            let l = log_score(&table, a).unwrap();
            if best_by_joint.as_ref().map_or(true, |&(bj, _)| j > bj) {
                best_by_joint = Some((j, a.clone()));
            }
            if best_by_log.as_ref().map_or(true, |&(bl, _)| l > bl) {
                best_by_log = Some((l, a.clone()));
            }
        }
        assert_eq!(best_by_joint.unwrap().1, best_by_log.unwrap().1);
    }
}
