//! Metaheuristic allocators for large instances: simulated annealing and a
//! genetic algorithm.
//!
//! Both score candidates through the flat [`OptionProbs`] φ₁ kernel (one
//! evaluation is `N` contiguous array reads), the SA inner loop maintains
//! its genome state incrementally via [`DeltaFitness`] (`O(changed)`
//! lookups per mutation), and both maintain feasibility with a shared
//! capacity-repair routine. They are fully deterministic given their seed
//! — including under parallelism: SA runs independent restart chains with
//! per-chain seeds and merges by `(fitness, lowest chain)`; GA evaluates
//! fitness in order-stitched parallel chunks, which are pure array reads
//! and hence bit-identical to the serial sweep.

use super::{engine_options, Allocator};
use crate::allocation::{Allocation, Assignment};
use crate::engine::Phi1Engine;
use crate::phi1::{DeltaFitness, OptionProbs};
use crate::{RaError, Result};
use cdsf_system::{Batch, Platform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Per-app option lists plus the flat per-option φ₁ probabilities: the
/// search landscape.
struct Landscape {
    options: Vec<Vec<Assignment>>,
    probs: OptionProbs,
    capacities: Vec<u32>,
}

impl Landscape {
    #[cfg(test)]
    fn build(batch: &Batch, platform: &Platform, deadline: f64) -> Result<Self> {
        let engine = Phi1Engine::build(batch, platform)?;
        Self::from_engine(&engine, platform, deadline)
    }

    fn from_engine(engine: &Phi1Engine, platform: &Platform, deadline: f64) -> Result<Self> {
        let probs = OptionProbs::from_engine(engine, deadline)?;
        let options = engine_options(engine)?;
        Ok(Self {
            options,
            probs,
            capacities: platform.types().iter().map(|t| t.count()).collect(),
        })
    }

    fn num_apps(&self) -> usize {
        self.options.len()
    }

    /// Joint probability of a genome; exactly 0.0 for any missing lookup
    /// (bit-identical to the legacy probability-table product).
    fn fitness(&self, genome: &[Assignment]) -> f64 {
        self.probs.fitness(genome)
    }

    fn is_feasible(&self, genome: &[Assignment]) -> bool {
        let mut used = vec![0u32; self.capacities.len()];
        for asg in genome {
            used[asg.proc_type.0] += asg.procs;
        }
        used.iter().zip(&self.capacities).all(|(u, c)| u <= c)
    }

    /// Repairs an infeasible genome in place: while some type is
    /// over-subscribed, halve the largest group on that type; once a group
    /// hits one processor, move it to the type with the most free capacity.
    /// Terminates because total demand strictly decreases (or demand moves
    /// to a type with room).
    fn repair(&self, genome: &mut [Assignment], rng: &mut StdRng) {
        loop {
            let mut used = vec![0u32; self.capacities.len()];
            for asg in genome.iter() {
                used[asg.proc_type.0] += asg.procs;
            }
            let Some(over) = (0..used.len()).find(|&j| used[j] > self.capacities[j]) else {
                return;
            };
            // Largest group on the over-subscribed type.
            let (victim, _) = genome
                .iter()
                .enumerate()
                .filter(|(_, a)| a.proc_type.0 == over)
                .max_by_key(|(_, a)| a.procs)
                .expect("over-subscribed type must host a group");
            if genome[victim].procs > 1 {
                genome[victim].procs /= 2;
            } else {
                // Move it to a random alternative option of that app on a
                // different type (smallest group to be safe).
                let alts: Vec<Assignment> = self.options[victim]
                    .iter()
                    .copied()
                    .filter(|a| a.proc_type.0 != over && a.procs == 1)
                    .collect();
                if alts.is_empty() {
                    // No escape — shrink someone else or give up by leaving
                    // the genome infeasible (fitness path will reject).
                    return;
                }
                genome[victim] = alts[rng.gen_range(0..alts.len())];
            }
        }
    }

    /// A random feasible genome (repair applied as needed).
    fn random_genome(&self, rng: &mut StdRng) -> Vec<Assignment> {
        let mut g: Vec<Assignment> = self
            .options
            .iter()
            .map(|opts| opts[rng.gen_range(0..opts.len())])
            .collect();
        self.repair(&mut g, rng);
        g
    }
}

/// Simulated annealing over the allocation space.
///
/// Neighbourhood: reassign one application to a random alternative option
/// (with capacity repair). Acceptance: Metropolis on the joint probability.
/// Geometric cooling. `restarts` independent chains run across `threads`
/// workers; chain `c` is seeded `seed + c`, so chain 0 reproduces the
/// single-chain search exactly and the merge (best fitness, ties to the
/// lowest chain index) is deterministic for every thread count.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedAnnealing {
    /// Number of proposal steps per chain.
    pub iterations: usize,
    /// Initial temperature (in probability units; φ₁ ∈ [0, 1], so 0.1 is a
    /// permissive start).
    pub initial_temp: f64,
    /// Geometric cooling factor per step, in `(0, 1)`.
    pub cooling: f64,
    /// RNG seed; chain `c` uses `seed.wrapping_add(c)`.
    pub seed: u64,
    /// Number of independent restart chains.
    pub restarts: usize,
    /// Worker threads for the engine build and the restart chains.
    pub threads: usize,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        Self {
            iterations: 20_000,
            initial_temp: 0.1,
            cooling: 0.9995,
            seed: 0x5EED,
            restarts: 4,
            threads: cdsf_system::default_threads(),
        }
    }
}

/// Telemetry from one pooled multi-start annealing run
/// ([`SimulatedAnnealing::allocate_multi_start`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiStartReport {
    /// Restart chains launched.
    pub restarts: usize,
    /// Index of the chain whose best genome won the in-order argmax
    /// reduction (ties go to the lowest index, so this is invariant
    /// across worker counts).
    pub winner: usize,
    /// Workers the pool actually engaged (1 on the inline serial path).
    pub workers: usize,
    /// Restart chunks stolen across workers (0 on serial runs).
    pub chunks_stolen: u64,
}

/// Per-worker scratch for the pooled restart chains: one incremental
/// evaluator plus the proposal buffers, allocated by the first chain a
/// worker runs and re-primed in place for every later chain.
struct ChainScratch<'a> {
    delta: Option<DeltaFitness<'a>>,
    candidate: Vec<Assignment>,
    changed: Vec<usize>,
}

impl ChainScratch<'_> {
    fn new() -> Self {
        Self {
            delta: None,
            candidate: Vec::new(),
            changed: Vec::new(),
        }
    }
}

impl SimulatedAnnealing {
    /// Creates the policy, validating parameters (default restart/thread
    /// counts).
    pub fn new(iterations: usize, initial_temp: f64, cooling: f64, seed: u64) -> Result<Self> {
        if iterations == 0 {
            return Err(RaError::BadParameter {
                name: "iterations",
                value: 0.0,
            });
        }
        if !(initial_temp > 0.0) {
            return Err(RaError::BadParameter {
                name: "initial_temp",
                value: initial_temp,
            });
        }
        if !(cooling > 0.0 && cooling < 1.0) {
            return Err(RaError::BadParameter {
                name: "cooling",
                value: cooling,
            });
        }
        Ok(Self {
            iterations,
            initial_temp,
            cooling,
            seed,
            ..Default::default()
        })
    }

    /// One annealing chain from `seed`; `None` when no feasible start was
    /// found. The chain's state machine — RNG stream, proposal sequence,
    /// Metropolis branches — is untouched by the scratch reuse: the
    /// proposal buffer carries the same bytes a fresh clone would, and
    /// [`DeltaFitness::reset`] leaves the evaluator bit-identical to a
    /// fresh `new`.
    fn run_chain<'a>(
        &self,
        land: &'a Landscape,
        seed: u64,
        scratch: &mut ChainScratch<'a>,
    ) -> Option<(Vec<Assignment>, f64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut current = land.random_genome(&mut rng);
        // Ensure a feasible start even if repair gave up on a pathological
        // draw: retry a few times.
        for _ in 0..32 {
            if land.is_feasible(&current) {
                break;
            }
            current = land.random_genome(&mut rng);
        }
        if !land.is_feasible(&current) {
            return None;
        }
        // Incremental evaluator over the current genome: a proposal only
        // pays `O(changed)` probability lookups (the mutated gene plus any
        // genes touched by repair), and the exact product it reports is
        // bit-identical to a full recompute — so the Metropolis branch and
        // the RNG stream are unchanged from the legacy O(N)-lookup loop.
        if let Some(delta) = scratch.delta.as_mut() {
            delta.reset(&current);
        } else {
            scratch.delta = Some(DeltaFitness::new(&land.probs, &current));
        }
        let delta = scratch.delta.as_mut().expect("evaluator primed above");
        let mut current_fit = delta.fitness();
        let mut best = current.clone();
        let mut best_fit = current_fit;
        let mut temp = self.initial_temp;

        for _ in 0..self.iterations {
            let app = rng.gen_range(0..land.num_apps());
            let opt = land.options[app][rng.gen_range(0..land.options[app].len())];
            // The proposal reuses the scratch buffer (copy-in + swap on
            // accept) instead of cloning a fresh Vec per iteration.
            scratch.candidate.clear();
            scratch.candidate.extend_from_slice(&current);
            scratch.candidate[app] = opt;
            land.repair(&mut scratch.candidate, &mut rng);
            if !land.is_feasible(&scratch.candidate) {
                temp *= self.cooling;
                continue;
            }
            scratch.changed.clear();
            for (i, (new, old)) in scratch.candidate.iter().zip(&current).enumerate() {
                if new != old {
                    delta.set_gene(i, *new);
                    scratch.changed.push(i);
                }
            }
            let fit = delta.fitness();
            let accept = fit >= current_fit
                || rng.gen::<f64>() < ((fit - current_fit) / temp.max(1e-12)).exp();
            if accept {
                std::mem::swap(&mut current, &mut scratch.candidate);
                current_fit = fit;
                if fit > best_fit {
                    best.clear();
                    best.extend_from_slice(&current);
                    best_fit = fit;
                }
            } else {
                // Roll the evaluator back to `current` (pure lookups, so
                // the cached state is exactly as before the proposal).
                for &i in &scratch.changed {
                    delta.set_gene(i, current[i]);
                }
            }
            temp *= self.cooling;
        }
        Some((best, best_fit))
    }

    /// Pooled multi-start annealing: the `restarts` seeded chains run as
    /// independent tasks on the shared work-stealing pool
    /// ([`cdsf_system::pool::run`]), each worker reusing one
    /// [`DeltaFitness`] + proposal-buffer scratch across every chain it
    /// executes. Chain `c` writes its result into slot `c`; the reduction
    /// is an in-order argmax with strict `>` (ties keep the lowest chain
    /// index), so the winning allocation — and the reported winner index —
    /// is a function of the seeds alone, never of worker count or steal
    /// interleaving.
    pub fn allocate_multi_start(
        &self,
        platform: &Platform,
        engine: &Phi1Engine,
        deadline: f64,
    ) -> Result<(Allocation, MultiStartReport)> {
        if self.restarts == 0 {
            return Err(RaError::BadParameter {
                name: "restarts",
                value: 0.0,
            });
        }
        if self.threads == 0 {
            return Err(RaError::BadParameter {
                name: "threads",
                value: 0.0,
            });
        }
        // One pre-assigned result slot per chain: (best genome, fitness).
        type ChainSlot = Mutex<Option<(Vec<Assignment>, f64)>>;
        let land = Landscape::from_engine(engine, platform, deadline)?;
        let slots: Vec<ChainSlot> = (0..self.restarts).map(|_| Mutex::new(None)).collect();
        let land_ref = &land;
        let stats = cdsf_system::pool::run(
            self.threads,
            self.restarts,
            None,
            ChainScratch::new,
            |c, scratch| {
                let out = self.run_chain(land_ref, self.seed.wrapping_add(c as u64), scratch);
                *slots[c].lock().expect("chain slot") = out;
                Ok::<(), RaError>(())
            },
        )?;

        // Deterministic merge: best fitness, ties to the lowest chain index
        // (strict `>` keeps the earlier chain on equal fitness).
        let mut best: Option<(usize, Vec<Assignment>, f64)> = None;
        for (c, slot) in slots.into_iter().enumerate() {
            let Some((genome, fit)) = slot.into_inner().expect("chain slot") else {
                continue;
            };
            if best.as_ref().map_or(true, |(_, _, bf)| fit > *bf) {
                best = Some((c, genome, fit));
            }
        }
        match best {
            Some((winner, genome, _)) => Ok((
                Allocation::new(genome),
                MultiStartReport {
                    restarts: self.restarts,
                    winner,
                    workers: stats.workers,
                    chunks_stolen: stats.chunks_stolen.iter().map(|&c| c as u64).sum(),
                },
            )),
            None => Err(RaError::NoFeasibleAllocation),
        }
    }
}

impl Allocator for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "SimulatedAnnealing"
    }

    fn allocate(&self, batch: &Batch, platform: &Platform, deadline: f64) -> Result<Allocation> {
        let engine = Phi1Engine::build_parallel(batch, platform, self.threads.max(1))?;
        self.allocate_with_engine(batch, platform, &engine, deadline)
    }

    fn allocate_with_engine(
        &self,
        _batch: &Batch,
        platform: &Platform,
        engine: &Phi1Engine,
        deadline: f64,
    ) -> Result<Allocation> {
        self.allocate_multi_start(platform, engine, deadline)
            .map(|(alloc, _)| alloc)
    }
}

/// Genetic algorithm over the allocation space.
///
/// Tournament selection, one-point crossover, per-gene mutation, capacity
/// repair, elitism of one. Fitness sweeps over the population are pure
/// probability-table lookups, evaluated in parallel chunks stitched back
/// in population order — bit-identical for every thread count.
#[derive(Debug, Clone, Copy)]
pub struct GeneticAlgorithm {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Tournament size for selection.
    pub tournament: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the engine build and the fitness sweeps.
    pub threads: usize,
}

impl Default for GeneticAlgorithm {
    fn default() -> Self {
        Self {
            population: 64,
            generations: 200,
            mutation_rate: 0.05,
            tournament: 3,
            seed: 0xBEEF,
            threads: cdsf_system::default_threads(),
        }
    }
}

impl GeneticAlgorithm {
    /// Creates the policy, validating parameters (default thread count).
    pub fn new(
        population: usize,
        generations: usize,
        mutation_rate: f64,
        tournament: usize,
        seed: u64,
    ) -> Result<Self> {
        if population < 2 {
            return Err(RaError::BadParameter {
                name: "population",
                value: population as f64,
            });
        }
        if generations == 0 {
            return Err(RaError::BadParameter {
                name: "generations",
                value: 0.0,
            });
        }
        if !(0.0..=1.0).contains(&mutation_rate) {
            return Err(RaError::BadParameter {
                name: "mutation_rate",
                value: mutation_rate,
            });
        }
        if tournament == 0 || tournament > population {
            return Err(RaError::BadParameter {
                name: "tournament",
                value: tournament as f64,
            });
        }
        Ok(Self {
            population,
            generations,
            mutation_rate,
            tournament,
            seed,
            threads: cdsf_system::default_threads(),
        })
    }

    /// Population fitness sweep: parallel chunks, stitched in order.
    fn eval_fitness(&self, land: &Landscape, pop: &[Vec<Assignment>]) -> Vec<f64> {
        if self.threads <= 1 || pop.len() < 2 * self.threads {
            return pop.iter().map(|g| land.fitness(g)).collect();
        }
        let chunk = pop.len().div_ceil(self.threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.threads);
            for piece in pop.chunks(chunk) {
                let land = &*land;
                handles
                    .push(scope.spawn(move || {
                        piece.iter().map(|g| land.fitness(g)).collect::<Vec<f64>>()
                    }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("fitness worker panicked"))
                .collect()
        })
    }
}

impl Allocator for GeneticAlgorithm {
    fn name(&self) -> &'static str {
        "GeneticAlgorithm"
    }

    fn allocate(&self, batch: &Batch, platform: &Platform, deadline: f64) -> Result<Allocation> {
        let engine = Phi1Engine::build_parallel(batch, platform, self.threads.max(1))?;
        self.allocate_with_engine(batch, platform, &engine, deadline)
    }

    fn allocate_with_engine(
        &self,
        _batch: &Batch,
        platform: &Platform,
        engine: &Phi1Engine,
        deadline: f64,
    ) -> Result<Allocation> {
        if self.threads == 0 {
            return Err(RaError::BadParameter {
                name: "threads",
                value: 0.0,
            });
        }
        let land = Landscape::from_engine(engine, platform, deadline)?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = land.num_apps();

        let mut pop: Vec<Vec<Assignment>> = (0..self.population)
            .map(|_| land.random_genome(&mut rng))
            .collect();
        let mut fits: Vec<f64> = self.eval_fitness(&land, &pop);

        for _ in 0..self.generations {
            // Elitism: carry the best genome over unchanged.
            let elite_idx = fits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("population non-empty");
            let mut next = Vec::with_capacity(self.population);
            next.push(pop[elite_idx].clone());

            let tournament_pick = |rng: &mut StdRng, pop: &[Vec<Assignment>], fits: &[f64]| {
                let mut best: Option<usize> = None;
                for _ in 0..self.tournament {
                    let c = rng.gen_range(0..pop.len());
                    if best.map_or(true, |b| fits[c] > fits[b]) {
                        best = Some(c);
                    }
                }
                best.expect("tournament ≥ 1")
            };

            while next.len() < self.population {
                let a = tournament_pick(&mut rng, &pop, &fits);
                let b = tournament_pick(&mut rng, &pop, &fits);
                // One-point crossover.
                let cut = if n > 1 { rng.gen_range(1..n) } else { 0 };
                let mut child: Vec<Assignment> = pop[a][..cut]
                    .iter()
                    .chain(&pop[b][cut..])
                    .copied()
                    .collect();
                // Mutation.
                for (i, gene) in child.iter_mut().enumerate() {
                    if rng.gen::<f64>() < self.mutation_rate {
                        *gene = land.options[i][rng.gen_range(0..land.options[i].len())];
                    }
                }
                land.repair(&mut child, &mut rng);
                if land.is_feasible(&child) {
                    next.push(child);
                }
            }
            pop = next;
            fits = self.eval_fitness(&land, &pop);
        }

        let best_idx = fits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("population non-empty");
        if fits[best_idx] <= 0.0 && !land.is_feasible(&pop[best_idx]) {
            return Err(RaError::NoFeasibleAllocation);
        }
        Ok(Allocation::new(pop[best_idx].clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocators::testutil::*;
    use crate::robustness::evaluate;

    #[test]
    fn annealing_finds_near_optimal_on_paper_example() {
        let (b, p) = (paper_batch(64), paper_platform());
        let opt = super::super::Exhaustive::default()
            .allocate(&b, &p, DEADLINE)
            .unwrap();
        let p_opt = evaluate(&b, &p, &opt, DEADLINE).unwrap().joint;
        let sa = SimulatedAnnealing::default()
            .allocate(&b, &p, DEADLINE)
            .unwrap();
        sa.validate(&b, &p).unwrap();
        let p_sa = evaluate(&b, &p, &sa, DEADLINE).unwrap().joint;
        assert!(p_sa >= 0.95 * p_opt, "SA {p_sa} vs optimum {p_opt}");
    }

    #[test]
    fn genetic_finds_near_optimal_on_paper_example() {
        let (b, p) = (paper_batch(64), paper_platform());
        let opt = super::super::Exhaustive::default()
            .allocate(&b, &p, DEADLINE)
            .unwrap();
        let p_opt = evaluate(&b, &p, &opt, DEADLINE).unwrap().joint;
        let ga = GeneticAlgorithm::default()
            .allocate(&b, &p, DEADLINE)
            .unwrap();
        ga.validate(&b, &p).unwrap();
        let p_ga = evaluate(&b, &p, &ga, DEADLINE).unwrap().joint;
        assert!(p_ga >= 0.95 * p_opt, "GA {p_ga} vs optimum {p_opt}");
    }

    #[test]
    fn metaheuristics_are_seed_deterministic() {
        let (b, p) = (paper_batch(16), paper_platform());
        let sa = SimulatedAnnealing {
            seed: 1,
            ..Default::default()
        };
        assert_eq!(
            sa.allocate(&b, &p, DEADLINE).unwrap(),
            sa.allocate(&b, &p, DEADLINE).unwrap()
        );
        let ga = GeneticAlgorithm {
            seed: 2,
            generations: 30,
            ..Default::default()
        };
        assert_eq!(
            ga.allocate(&b, &p, DEADLINE).unwrap(),
            ga.allocate(&b, &p, DEADLINE).unwrap()
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (b, p) = (paper_batch(16), paper_platform());
        let serial = SimulatedAnnealing {
            threads: 1,
            iterations: 4_000,
            ..Default::default()
        };
        let parallel = SimulatedAnnealing {
            threads: 8,
            iterations: 4_000,
            ..Default::default()
        };
        assert_eq!(
            serial.allocate(&b, &p, DEADLINE).unwrap(),
            parallel.allocate(&b, &p, DEADLINE).unwrap()
        );
        let ga1 = GeneticAlgorithm {
            threads: 1,
            generations: 30,
            ..Default::default()
        };
        let ga8 = GeneticAlgorithm {
            threads: 8,
            generations: 30,
            ..Default::default()
        };
        assert_eq!(
            ga1.allocate(&b, &p, DEADLINE).unwrap(),
            ga8.allocate(&b, &p, DEADLINE).unwrap()
        );
    }

    #[test]
    fn single_restart_reproduces_chain_zero() {
        // Chain 0 is seeded with `seed` itself, so the multi-restart merge
        // can only ever improve on the single-chain result.
        let (b, p) = (paper_batch(16), paper_platform());
        let single = SimulatedAnnealing {
            restarts: 1,
            iterations: 4_000,
            ..Default::default()
        };
        let multi = SimulatedAnnealing {
            restarts: 4,
            iterations: 4_000,
            ..Default::default()
        };
        let p_single = evaluate(
            &b,
            &p,
            &single.allocate(&b, &p, DEADLINE).unwrap(),
            DEADLINE,
        )
        .unwrap()
        .joint;
        let p_multi = evaluate(&b, &p, &multi.allocate(&b, &p, DEADLINE).unwrap(), DEADLINE)
            .unwrap()
            .joint;
        assert!(
            p_multi >= p_single,
            "multi-restart {p_multi} < single {p_single}"
        );
    }

    #[test]
    fn parameter_validation() {
        assert!(SimulatedAnnealing::new(0, 0.1, 0.99, 0).is_err());
        assert!(SimulatedAnnealing::new(10, 0.0, 0.99, 0).is_err());
        assert!(SimulatedAnnealing::new(10, 0.1, 1.0, 0).is_err());
        assert!(GeneticAlgorithm::new(1, 10, 0.1, 1, 0).is_err());
        assert!(GeneticAlgorithm::new(8, 0, 0.1, 1, 0).is_err());
        assert!(GeneticAlgorithm::new(8, 10, 1.5, 1, 0).is_err());
        assert!(GeneticAlgorithm::new(8, 10, 0.1, 0, 0).is_err());
        assert!(GeneticAlgorithm::new(8, 10, 0.1, 9, 0).is_err());
        let (b, p) = (paper_batch(8), paper_platform());
        let sa = SimulatedAnnealing {
            restarts: 0,
            ..Default::default()
        };
        assert!(sa.allocate(&b, &p, DEADLINE).is_err());
        let ga = GeneticAlgorithm {
            threads: 0,
            ..Default::default()
        };
        assert!(ga.allocate(&b, &p, DEADLINE).is_err());
    }

    #[test]
    fn repair_makes_oversubscription_feasible() {
        let (b, p) = (paper_batch(8), paper_platform());
        let land = Landscape::build(&b, &p, DEADLINE).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // Everything on type 1 with 4 procs: demand 12 > capacity 4.
        let mut genome = vec![
            Assignment {
                proc_type: cdsf_system::ProcTypeId(0),
                procs: 4
            };
            3
        ];
        land.repair(&mut genome, &mut rng);
        assert!(land.is_feasible(&genome), "{genome:?}");
    }
}
