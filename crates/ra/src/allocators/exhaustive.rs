//! The paper's optimal (robust) initial mapping: exhaustive search.

use super::{app_options, Allocator, Capacity};
use crate::allocation::{Allocation, Assignment};
use crate::robustness::ProbabilityTable;
use crate::{RaError, Result};
use cdsf_system::{Batch, Platform};

/// Exhaustive — enumerate every feasible allocation and keep the one with
/// the highest `φ₁ = Pr(Ψ ≤ Δ)`.
///
/// This is the paper's "robust IM": *"all possible resource allocations
/// are compared and the one with the highest probability of all
/// applications completing before the system deadline is chosen"*. The
/// paper also notes such a search "is only feasible in the case of the
/// small demonstrative example" — which the `ra_search` bench quantifies.
///
/// The search is a depth-first enumeration with capacity pruning and an
/// upper-bound cutoff (each application's best-possible probability),
/// parallelized over the first application's options with crossbeam scoped
/// threads. Results are deterministic. Ties on `φ₁` are broken by the
/// *smaller sum of expected completion times* (several allocations can
/// saturate the deadline probability once PMF tails are truncated by
/// discretization; preferring the faster one among them recovers the
/// paper's Table IV exactly), then lexicographically.
#[derive(Debug, Clone, Copy)]
pub struct Exhaustive {
    /// Number of worker threads for the top-level split.
    pub threads: usize,
}

impl Default for Exhaustive {
    fn default() -> Self {
        Self { threads: 4 }
    }
}

impl Exhaustive {
    /// Creates the policy with the given thread count (≥ 1).
    pub fn new(threads: usize) -> Result<Self> {
        if threads == 0 {
            return Err(RaError::BadParameter { name: "threads", value: 0.0 });
        }
        Ok(Self { threads })
    }
}

/// One candidate option: assignment, probability, expected loaded time.
#[derive(Debug, Clone, Copy)]
struct Option3 {
    asg: Assignment,
    prob: f64,
    exp_time: f64,
}

struct SearchSpace {
    /// Per-application options, sorted by descending probability then
    /// ascending expected time so the DFS finds strong incumbents early.
    options: Vec<Vec<Option3>>,
    /// `suffix_best[d]` = product of per-app max probabilities for apps
    /// `d..`, the admissible upper bound used for pruning.
    suffix_best: Vec<f64>,
}

impl SearchSpace {
    fn build(batch: &Batch, platform: &Platform, table: &ProbabilityTable) -> Result<Self> {
        let mut options = Vec::with_capacity(batch.len());
        for (id, app) in batch.iter() {
            let mut opts: Vec<Option3> = Vec::new();
            for asg in app_options(app, platform)? {
                let Some(prob) = table.prob(id.0, asg.proc_type, asg.procs) else {
                    continue;
                };
                let exp_time =
                    cdsf_system::parallel_time::loaded_time_pmf(app, platform, asg.proc_type, asg.procs)?
                        .expectation();
                opts.push(Option3 { asg, prob, exp_time });
            }
            if opts.is_empty() {
                return Err(RaError::NoFeasibleAllocation);
            }
            opts.sort_by(|a, b| {
                b.prob
                    .total_cmp(&a.prob)
                    .then_with(|| a.exp_time.total_cmp(&b.exp_time))
            });
            options.push(opts);
        }
        let n = options.len();
        let mut suffix_best = vec![1.0f64; n + 1];
        for d in (0..n).rev() {
            let max_p = options[d].iter().map(|o| o.prob).fold(0.0f64, f64::max);
            suffix_best[d] = suffix_best[d + 1] * max_p;
        }
        Ok(Self { options, suffix_best })
    }
}

/// Best allocation found in a DFS subtree, with deterministic ordering:
/// max probability, then min total expected time, then smallest path.
#[derive(Clone)]
struct Best {
    prob: f64,
    sum_exp: f64,
    alloc: Vec<Assignment>,
    /// Option-index path, used as the final deterministic tiebreak.
    path: Vec<usize>,
}

impl Best {
    /// Whether `(prob, sum_exp, path)` beats this incumbent.
    fn beaten_by(&self, prob: f64, sum_exp: f64, path: &[usize]) -> bool {
        prob > self.prob
            || (prob == self.prob
                && (sum_exp < self.sum_exp
                    || (sum_exp == self.sum_exp && path < self.path.as_slice())))
    }
}

fn dfs(
    space: &SearchSpace,
    cap: &mut Capacity,
    current: &mut Vec<Assignment>,
    path: &mut Vec<usize>,
    prob: f64,
    sum_exp: f64,
    best: &mut Option<Best>,
) {
    let depth = current.len();
    if depth == space.options.len() {
        let better = match best {
            None => true,
            Some(b) => b.beaten_by(prob, sum_exp, path),
        };
        if better {
            *best = Some(Best { prob, sum_exp, alloc: current.clone(), path: path.clone() });
        }
        return;
    }
    // Bound: even taking the best remaining options cannot beat the
    // incumbent strictly; equal-probability subtrees are kept alive for
    // the expected-time tiebreak.
    if let Some(b) = best {
        if prob * space.suffix_best[depth] < b.prob {
            return;
        }
    }
    for (idx, opt) in space.options[depth].iter().enumerate() {
        if !cap.fits(opt.asg) {
            continue;
        }
        cap.take(opt.asg);
        current.push(opt.asg);
        path.push(idx);
        dfs(space, cap, current, path, prob * opt.prob, sum_exp + opt.exp_time, best);
        path.pop();
        current.pop();
        cap.release(opt.asg);
    }
}

impl Allocator for Exhaustive {
    fn name(&self) -> &'static str {
        "Exhaustive"
    }

    fn allocate(&self, batch: &Batch, platform: &Platform, deadline: f64) -> Result<Allocation> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        let table = ProbabilityTable::build(batch, platform, deadline)?;
        let space = SearchSpace::build(batch, platform, &table)?;

        // Parallel split over the first application's options.
        let first_opts = space.options[0].len();
        let threads = self.threads.min(first_opts).max(1);
        let chunk = first_opts.div_ceil(threads);

        let results: Vec<Option<Best>> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let space = &space;
                let platform = &*platform;
                handles.push(scope.spawn(move |_| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(first_opts);
                    let mut best: Option<Best> = None;
                    for idx in lo..hi {
                        let opt = space.options[0][idx];
                        let mut cap = Capacity::of(platform);
                        if !cap.fits(opt.asg) {
                            continue;
                        }
                        cap.take(opt.asg);
                        let mut current = vec![opt.asg];
                        let mut path = vec![idx];
                        dfs(
                            space,
                            &mut cap,
                            &mut current,
                            &mut path,
                            opt.prob,
                            opt.exp_time,
                            &mut best,
                        );
                    }
                    best
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("search worker panicked"))
                .collect()
        })
        .expect("search scope panicked");

        let best = results
            .into_iter()
            .flatten()
            .max_by(|a, b| {
                a.prob
                    .total_cmp(&b.prob)
                    .then_with(|| b.sum_exp.total_cmp(&a.sum_exp)) // smaller time wins
                    .then_with(|| b.path.cmp(&a.path)) // smaller path wins
            })
            .ok_or(RaError::NoFeasibleAllocation)?;
        Ok(Allocation::new(best.alloc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocators::testutil::*;
    use crate::robustness::evaluate;
    use cdsf_system::ProcTypeId;

    #[test]
    fn reproduces_paper_table4_robust_row() {
        let alloc = Exhaustive::default()
            .allocate(&paper_batch(64), &paper_platform(), DEADLINE)
            .unwrap();
        let a = alloc.assignments();
        // Paper Table IV robust: app1 → 2×type1, app2 → 2×type1, app3 → 8×type2.
        assert_eq!(a[0], Assignment { proc_type: ProcTypeId(0), procs: 2 });
        assert_eq!(a[1], Assignment { proc_type: ProcTypeId(0), procs: 2 });
        assert_eq!(a[2], Assignment { proc_type: ProcTypeId(1), procs: 8 });
    }

    #[test]
    fn optimum_matches_brute_force_over_enumeration() {
        let (b, p) = (paper_batch(32), paper_platform());
        let best = Exhaustive::default().allocate(&b, &p, DEADLINE).unwrap();
        let best_prob = evaluate(&b, &p, &best, DEADLINE).unwrap().joint;
        for alloc in Allocation::enumerate_feasible(&b, &p).unwrap() {
            let prob = evaluate(&b, &p, &alloc, DEADLINE).unwrap().joint;
            assert!(prob <= best_prob + 1e-12, "{alloc} beats optimum: {prob} > {best_prob}");
        }
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let (b, p) = (paper_batch(32), paper_platform());
        let a1 = Exhaustive::new(1).unwrap().allocate(&b, &p, DEADLINE).unwrap();
        let a8 = Exhaustive::new(8).unwrap().allocate(&b, &p, DEADLINE).unwrap();
        assert_eq!(a1, a8);
        assert!(Exhaustive::new(0).is_err());
    }

    #[test]
    fn rejects_empty_batch() {
        let p = paper_platform();
        assert!(Exhaustive::default()
            .allocate(&cdsf_system::Batch::new(vec![]), &p, DEADLINE)
            .is_err());
    }
}
