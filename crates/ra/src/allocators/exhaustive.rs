//! The paper's optimal (robust) initial mapping: exhaustive search.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use super::{Allocator, Capacity};
use crate::allocation::{Allocation, Assignment};
use crate::engine::Phi1Engine;
use crate::{RaError, Result};
use cdsf_system::{Batch, Platform};

/// Exhaustive — enumerate every feasible allocation and keep the one with
/// the highest `φ₁ = Pr(Ψ ≤ Δ)`.
///
/// This is the paper's "robust IM": *"all possible resource allocations
/// are compared and the one with the highest probability of all
/// applications completing before the system deadline is chosen"*. The
/// paper also notes such a search "is only feasible in the case of the
/// small demonstrative example" — which the `ra_search` bench quantifies.
///
/// The search is a depth-first enumeration with capacity pruning and an
/// upper-bound cutoff, fed by the shared [`Phi1Engine`] so every candidate
/// evaluation is a table lookup. Parallelism: the prefix tree is expanded
/// breadth-first into a work frontier, worker threads drain it through an
/// atomic cursor, and all workers share a monotonic φ₁ lower bound (an
/// atomic `f64`-bits max). The bound only ever prunes subtrees that cannot
/// *strictly* beat a complete allocation some worker has already seen, so
/// the final argmax is bit-identical for every thread count and schedule.
/// Ties on `φ₁` are broken by the *smaller sum of expected completion
/// times* (several allocations can saturate the deadline probability once
/// PMF tails are truncated by discretization; preferring the faster one
/// among them recovers the paper's Table IV exactly), then
/// lexicographically by option path.
#[derive(Debug, Clone, Copy)]
pub struct Exhaustive {
    /// Number of worker threads for the engine build and the search.
    pub threads: usize,
}

impl Default for Exhaustive {
    fn default() -> Self {
        Self {
            threads: cdsf_system::default_threads(),
        }
    }
}

impl Exhaustive {
    /// Creates the policy with the given thread count (≥ 1).
    pub fn new(threads: usize) -> Result<Self> {
        if threads == 0 {
            return Err(RaError::BadParameter {
                name: "threads",
                value: 0.0,
            });
        }
        Ok(Self { threads })
    }
}

/// One candidate option: assignment, probability, expected loaded time.
#[derive(Debug, Clone, Copy)]
struct Option3 {
    asg: Assignment,
    prob: f64,
    exp_time: f64,
}

struct SearchSpace {
    /// Per-application options, sorted by descending probability then
    /// ascending expected time so the DFS finds strong incumbents early.
    options: Vec<Vec<Option3>>,
    /// `suffix_best[d]` = product of per-app max probabilities for apps
    /// `d..`, the admissible upper bound used for pruning.
    suffix_best: Vec<f64>,
}

impl SearchSpace {
    fn build(engine: &Phi1Engine, deadline: f64) -> Result<Self> {
        let mut options = Vec::with_capacity(engine.num_apps());
        for i in 0..engine.num_apps() {
            let mut opts: Vec<Option3> = Vec::new();
            for asg in engine.options(i) {
                let prob = engine
                    .prob(i, asg.proc_type, asg.procs, deadline)
                    .expect("engine option has a cell");
                let exp_time = engine
                    .expected_time(i, asg.proc_type, asg.procs)
                    .expect("engine option has a cell");
                opts.push(Option3 {
                    asg,
                    prob,
                    exp_time,
                });
            }
            if opts.is_empty() {
                return Err(RaError::NoFeasibleAllocation);
            }
            opts.sort_by(|a, b| {
                b.prob
                    .total_cmp(&a.prob)
                    .then_with(|| a.exp_time.total_cmp(&b.exp_time))
            });
            options.push(opts);
        }
        let n = options.len();
        let mut suffix_best = vec![1.0f64; n + 1];
        for d in (0..n).rev() {
            let max_p = options[d].iter().map(|o| o.prob).fold(0.0f64, f64::max);
            suffix_best[d] = suffix_best[d + 1] * max_p;
        }
        Ok(Self {
            options,
            suffix_best,
        })
    }
}

/// Best allocation found in a DFS subtree, with deterministic ordering:
/// max probability, then min total expected time, then smallest path.
#[derive(Clone)]
struct Best {
    prob: f64,
    sum_exp: f64,
    alloc: Vec<Assignment>,
    /// Option-index path, used as the final deterministic tiebreak.
    path: Vec<usize>,
}

impl Best {
    /// Whether `(prob, sum_exp, path)` beats this incumbent.
    fn beaten_by(&self, prob: f64, sum_exp: f64, path: &[usize]) -> bool {
        prob > self.prob
            || (prob == self.prob
                && (sum_exp < self.sum_exp
                    || (sum_exp == self.sum_exp && path < self.path.as_slice())))
    }
}

/// A partial assignment for the first `path.len()` applications — one unit
/// of parallel work.
#[derive(Clone)]
struct Prefix {
    path: Vec<usize>,
    asgs: Vec<Assignment>,
    prob: f64,
    sum_exp: f64,
    cap: Capacity,
}

/// Expands feasible prefixes breadth-first until at least `target` work
/// items exist (or the tree is fully expanded). Every feasible complete
/// allocation extends exactly one frontier prefix, so draining the
/// frontier covers the whole space; an empty frontier means the instance
/// is infeasible.
fn expand_frontier(space: &SearchSpace, platform: &Platform, target: usize) -> Vec<Prefix> {
    let mut frontier = vec![Prefix {
        path: Vec::new(),
        asgs: Vec::new(),
        prob: 1.0,
        sum_exp: 0.0,
        cap: Capacity::of(platform),
    }];
    let n = space.options.len();
    let mut depth = 0usize;
    while depth < n && frontier.len() < target {
        let mut next = Vec::with_capacity(frontier.len() * space.options[depth].len());
        for pre in &frontier {
            for (idx, opt) in space.options[depth].iter().enumerate() {
                if !pre.cap.fits(opt.asg) {
                    continue;
                }
                let mut cap = pre.cap.clone();
                cap.take(opt.asg);
                let mut path = pre.path.clone();
                path.push(idx);
                let mut asgs = pre.asgs.clone();
                asgs.push(opt.asg);
                next.push(Prefix {
                    path,
                    asgs,
                    prob: pre.prob * opt.prob,
                    sum_exp: pre.sum_exp + opt.exp_time,
                    cap,
                });
            }
        }
        if next.is_empty() {
            return next; // no feasible prefix at this depth → infeasible
        }
        frontier = next;
        depth += 1;
    }
    frontier
}

/// Loads the shared lower bound. φ₁ values are non-negative, so their
/// IEEE-754 bit patterns order like the values themselves and an atomic
/// `u64` max doubles as an atomic `f64` max.
fn load_bound(bound: &AtomicU64) -> f64 {
    f64::from_bits(bound.load(Ordering::Relaxed))
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    space: &SearchSpace,
    cap: &mut Capacity,
    current: &mut Vec<Assignment>,
    path: &mut Vec<usize>,
    prob: f64,
    sum_exp: f64,
    best: &mut Option<Best>,
    bound: &AtomicU64,
) {
    let depth = current.len();
    if depth == space.options.len() {
        let better = match best {
            None => true,
            Some(b) => b.beaten_by(prob, sum_exp, path),
        };
        if better {
            *best = Some(Best {
                prob,
                sum_exp,
                alloc: current.clone(),
                path: path.clone(),
            });
            bound.fetch_max(prob.to_bits(), Ordering::Relaxed);
        }
        return;
    }
    // Bound: even taking the best remaining options cannot *strictly* beat
    // a complete allocation some worker has already found; subtrees that
    // can only tie are kept alive for the expected-time tiebreak, which is
    // why sharing the bound across threads cannot change the final argmax.
    if prob * space.suffix_best[depth] < load_bound(bound) {
        return;
    }
    for (idx, opt) in space.options[depth].iter().enumerate() {
        if !cap.fits(opt.asg) {
            continue;
        }
        cap.take(opt.asg);
        current.push(opt.asg);
        path.push(idx);
        dfs(
            space,
            cap,
            current,
            path,
            prob * opt.prob,
            sum_exp + opt.exp_time,
            best,
            bound,
        );
        path.pop();
        current.pop();
        cap.release(opt.asg);
    }
}

impl Allocator for Exhaustive {
    fn name(&self) -> &'static str {
        "Exhaustive"
    }

    fn allocate(&self, batch: &Batch, platform: &Platform, deadline: f64) -> Result<Allocation> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        let engine = Phi1Engine::build_parallel(batch, platform, self.threads)?;
        self.allocate_with_engine(batch, platform, &engine, deadline)
    }

    fn allocate_with_engine(
        &self,
        batch: &Batch,
        platform: &Platform,
        engine: &Phi1Engine,
        deadline: f64,
    ) -> Result<Allocation> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        if !(deadline > 0.0) || !deadline.is_finite() {
            return Err(RaError::BadParameter {
                name: "deadline",
                value: deadline,
            });
        }
        if self.threads == 0 {
            return Err(RaError::BadParameter {
                name: "threads",
                value: 0.0,
            });
        }
        let space = SearchSpace::build(engine, deadline)?;

        // Oversubscribe the frontier so pruning-induced load imbalance
        // evens out across the shared cursor.
        let frontier = expand_frontier(&space, platform, self.threads * 16);
        let bound = AtomicU64::new(0);
        let cursor = AtomicUsize::new(0);

        let results: Vec<Option<Best>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.threads);
            for _ in 0..self.threads {
                let space = &space;
                let frontier = &frontier;
                let bound = &bound;
                let cursor = &cursor;
                handles.push(scope.spawn(move || {
                    let mut best: Option<Best> = None;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(pre) = frontier.get(i) else {
                            break;
                        };
                        let mut cap = pre.cap.clone();
                        let mut current = pre.asgs.clone();
                        let mut path = pre.path.clone();
                        dfs(
                            space,
                            &mut cap,
                            &mut current,
                            &mut path,
                            pre.prob,
                            pre.sum_exp,
                            &mut best,
                            bound,
                        );
                    }
                    best
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("search worker panicked"))
                .collect()
        });

        let best = results
            .into_iter()
            .flatten()
            .max_by(|a, b| {
                a.prob
                    .total_cmp(&b.prob)
                    .then_with(|| b.sum_exp.total_cmp(&a.sum_exp)) // smaller time wins
                    .then_with(|| b.path.cmp(&a.path)) // smaller path wins
            })
            .ok_or(RaError::NoFeasibleAllocation)?;
        Ok(Allocation::new(best.alloc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocators::testutil::*;
    use crate::robustness::evaluate;
    use cdsf_system::ProcTypeId;

    #[test]
    fn reproduces_paper_table4_robust_row() {
        let alloc = Exhaustive::default()
            .allocate(&paper_batch(64), &paper_platform(), DEADLINE)
            .unwrap();
        let a = alloc.assignments();
        // Paper Table IV robust: app1 → 2×type1, app2 → 2×type1, app3 → 8×type2.
        assert_eq!(
            a[0],
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2
            }
        );
        assert_eq!(
            a[1],
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2
            }
        );
        assert_eq!(
            a[2],
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 8
            }
        );
    }

    #[test]
    fn optimum_matches_brute_force_over_enumeration() {
        let (b, p) = (paper_batch(32), paper_platform());
        let best = Exhaustive::default().allocate(&b, &p, DEADLINE).unwrap();
        let best_prob = evaluate(&b, &p, &best, DEADLINE).unwrap().joint;
        for alloc in Allocation::enumerate_feasible(&b, &p).unwrap() {
            let prob = evaluate(&b, &p, &alloc, DEADLINE).unwrap().joint;
            assert!(
                prob <= best_prob + 1e-12,
                "{alloc} beats optimum: {prob} > {best_prob}"
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let (b, p) = (paper_batch(32), paper_platform());
        let a1 = Exhaustive::new(1)
            .unwrap()
            .allocate(&b, &p, DEADLINE)
            .unwrap();
        let a8 = Exhaustive::new(8)
            .unwrap()
            .allocate(&b, &p, DEADLINE)
            .unwrap();
        assert_eq!(a1, a8);
        assert!(Exhaustive::new(0).is_err());
    }

    #[test]
    fn prebuilt_engine_matches_self_built_path() {
        let (b, p) = (paper_batch(32), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        let direct = Exhaustive::default().allocate(&b, &p, DEADLINE).unwrap();
        let via_engine = Exhaustive::default()
            .allocate_with_engine(&b, &p, &engine, DEADLINE)
            .unwrap();
        assert_eq!(direct, via_engine);
    }

    #[test]
    fn rejects_empty_batch_and_bad_deadline() {
        let p = paper_platform();
        assert!(Exhaustive::default()
            .allocate(&cdsf_system::Batch::new(vec![]), &p, DEADLINE)
            .is_err());
        let b = paper_batch(8);
        let engine = Phi1Engine::build(&b, &p).unwrap();
        assert!(Exhaustive::default()
            .allocate_with_engine(&b, &p, &engine, f64::NAN)
            .is_err());
    }
}
