//! Prefix-CDF-pruned branch-and-bound over the power-of-2 allocation
//! lattice: the *exact* Stage-I optimum at a fraction of the
//! metaheuristics' cost, plus a Γ-robust worst-case variant.
//!
//! # Search skeleton
//!
//! Every application chooses one `(processor type, power-of-two count)`
//! option, so Stage-I is a search over the small per-app option lattice
//! under per-type capacity. [`Lattice`] explores it depth-first in a
//! *permuted* application order — widest bound gap (`max φ − min φ`
//! contribution) first, so the most discriminating decisions sit at the
//! top of the tree — while the incumbent comparison stays in *canonical*
//! (batch) order with exactly [`Exhaustive`](super::Exhaustive)'s total
//! order: maximum `φ₁`, then minimum summed expected completion time,
//! then lexicographically smallest option path. The result is
//! bit-identical to `Exhaustive` — allocation bytes, `φ₁` bits and
//! tie-breaks — which the equivalence suite pins.
//!
//! # Pruning
//!
//! Per-application `φ₁`-contribution bounds come straight from the
//! [`Phi1Engine`]'s prefix-CDF tables — one linear pass per application
//! over the SoA arena ([`Phi1Engine::option_stats_into`]). Because
//! applications can outnumber processors, per-app maxima alone are far
//! too loose; `prepare` folds them into a *budget DP*: for every
//! permutation suffix and every total-processor budget, the best
//! reachable log-probability sum (and minimum expected-time sum) with
//! per-type capacities relaxed to their total. A subtree's optimistic
//! bound (chosen probabilities × budget-feasible suffix bound) is then
//! one table lookup, screened in log space; only bounds within `±EPS`
//! of the incumbent trigger the *exact-product confirmation*: the bound
//! product and the optimistic minimum expected-time sum are recomputed
//! in canonical order with the same float association every leaf uses,
//! so ties are decided by exact float comparisons with no margins at
//! all (`fl(×)`/`fl(+)` are monotone per argument, hence every leaf
//! below the node is bounded *bit-exactly*). Zero-probability bound
//! factors are tracked by count rather than `ln(0)`, so deadline-starved
//! instances degrade into an exact min-sum search instead of a tie
//! explosion.
//!
//! # Parallelism
//!
//! Root-level branches (the first permuted application's options) fan
//! out over the [`cdsf_system::pool`] work-stealing pool. Workers share
//! a monotonic worst-case-`φ₁` lower bound (atomic `f64`-bits max) that
//! only ever prunes subtrees *strictly* beaten on the primary key, and
//! each branch's winner lands in its own slot; the final argmax is a
//! strict in-order reduction, so results are bit-identical for every
//! worker count and steal interleaving.
//!
//! # Γ-robust tier
//!
//! [`GammaRobust`] runs the same skeleton but scores each leaf by its
//! *worst-case* `φ₁`: an adversary may degrade the availability of up
//! to `Γ` processor types by a factor `γ`, and degrading availability
//! by `γ` scales every loaded completion time by `1/γ`, so the degraded
//! deadline probability is exactly `Pr(T ≤ γΔ)` — another prefix-CDF
//! lookup, no new PMF arithmetic. The inner adversary is resolved
//! exactly by enumerating the (few) type subsets of size `min(Γ, T)`.
//! The search then prunes against *worst-case* bounds, not nominal
//! ones: `prepare` recomputes the budget DP once per adversary subset
//! (degraded probabilities where the subset hits an option's type) and
//! the screen key is the minimum over subsets of the per-mask log
//! chains, with the nominal key retained as a tiebreak and as the guard
//! of the zero-regime expected-time screen — a zero worst-case bound
//! with positive nominal probability can still win on the nominal key,
//! so only the exact confirmation may prune it. The confirmation stays
//! the nominal-only exact cascade: every leaf's worst case is dominated
//! by its nominal probability, which the nominal bound dominates
//! bit-exactly, so a nominal cut can never discard a worst-case winner.
//! When even the optimum has zero (worst-case) `φ₁`, the solver returns
//! [`LatticeSolution::Infeasible`] carrying `tightest_deadline` — the
//! smallest deadline any feasible allocation could meet with positive
//! probability, computed by an exact bottleneck search over the
//! per-option minimum loaded completion times. That is a *proof* of
//! infeasibility, not a heuristic fallback.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use super::Allocator;
use crate::allocation::{Allocation, Assignment};
use crate::engine::{OptionStats, Phi1Engine};
use crate::{RaError, Result};
use cdsf_system::{pool, Batch, Platform};

/// Slack band of the log-space screen: bounds farther than this below
/// the incumbent's log are pruned outright, bounds within the band go
/// through the exact-product confirmation. The accumulated log-sum
/// rounding over a 64-deep path is below `1e-11`, so the band is ~100×
/// wider than the worst numerical error — the screen can only ever
/// misroute a node *into* the (exact) confirmation, never prune one it
/// should not.
const EPS: f64 = 1e-9;

/// Relative band of the zero-regime expected-time screen: subtrees whose
/// optimistic sum exceeds the incumbent's by more than this factor are
/// certain losers even after float re-association; anything closer goes
/// through the exact confirmation.
const SUM_BAND: f64 = 1.0 + 1e-9;

/// Sentinel for "application not yet assigned" in the canonical path.
const UNSET: u32 = u32::MAX;

/// One candidate option with its precomputed bound data.
#[derive(Debug, Clone, Copy)]
struct Opt {
    asg: Assignment,
    /// `Pr(T ≤ Δ)` under nominal availability.
    prob: f64,
    /// `Pr(T ≤ γΔ)`: the probability if the option's own type is
    /// degraded. Equals `prob` for the plain solver.
    degraded: f64,
    /// Expected loaded completion time.
    exp_time: f64,
    /// Smallest loaded completion-time pulse (infeasibility proofs).
    min_loaded: f64,
    /// `ln prob` when `prob > 0`, else unused (`d_zero` set instead).
    d_log: f64,
    /// 1 when this option's probability is exactly zero.
    d_zero: u8,
    /// `ln degraded` when `degraded > 0` (`dg_zero` set otherwise).
    /// Mirrors `d_log` for the Γ-robust per-mask bound tables.
    dg_log: f64,
    /// 1 when the degraded probability is exactly zero.
    dg_zero: u8,
}

/// The log of one option's probability under adversary subset `mask`:
/// the degraded log when the option's own type is degraded, the nominal
/// log otherwise, `-inf` when that probability is exactly zero (so the
/// value composes by plain addition — `-inf` absorbs).
#[inline]
fn mask_opt_log(o: &Opt, mask: u32) -> f64 {
    if mask & (1 << o.asg.proc_type.0) != 0 {
        if o.dg_zero != 0 {
            f64::NEG_INFINITY
        } else {
            o.dg_log
        }
    } else if o.d_zero != 0 {
        f64::NEG_INFINITY
    } else {
        o.d_log
    }
}

/// Per-application aggregates of the bound tables.
#[derive(Debug, Clone, Copy)]
struct AppBounds {
    /// Option range `start..start + len` in the flat option arena.
    start: u32,
    len: u32,
    /// Maximum deadline probability over the options (the upper
    /// φ₁-contribution bound).
    max_prob: f64,
    /// Minimum expected completion time over the options (the
    /// optimistic sum bound used for exact tie pruning).
    min_exp: f64,
    /// `max_prob − min_prob`: the bound gap the search order keys on.
    gap: f64,
}

/// Node/prune counters of one solve. Deterministic for single-threaded
/// solves; at higher worker counts the shared bound makes visit counts
/// interleaving-dependent (the *result* never is).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatticeCounters {
    /// Search-tree nodes visited (including leaves).
    pub nodes: u64,
    /// Subtrees pruned by the log-space screen alone.
    pub screen_pruned: u64,
    /// Subtrees pruned by the exact-product confirmation.
    pub confirm_pruned: u64,
    /// Subtrees pruned because remaining capacity cannot host the
    /// remaining applications.
    pub capacity_pruned: u64,
    /// Complete allocations evaluated.
    pub leaves: u64,
}

impl LatticeCounters {
    fn add(&mut self, o: &LatticeCounters) {
        self.nodes += o.nodes;
        self.screen_pruned += o.screen_pruned;
        self.confirm_pruned += o.confirm_pruned;
        self.capacity_pruned += o.capacity_pruned;
        self.leaves += o.leaves;
    }
}

/// Diagnostics of one solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatticeReport {
    /// The optimum's objective: `φ₁` for [`Lattice`], worst-case `φ₁`
    /// for [`GammaRobust`].
    pub phi1: f64,
    /// The optimum's nominal (undegraded) `φ₁`; equals `phi1` for the
    /// plain solver.
    pub nominal_phi1: f64,
    /// The optimum's summed expected completion time.
    pub sum_exp: f64,
    /// Search counters.
    pub counters: LatticeCounters,
}

/// Outcome of an exact lattice solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LatticeSolution {
    /// The exact optimum, with positive (worst-case) `φ₁`.
    Optimal {
        /// The φ₁-optimal allocation.
        alloc: Allocation,
        /// Its objective value (worst-case `φ₁` for [`GammaRobust`]).
        phi1: f64,
    },
    /// *Proof* that no feasible allocation meets the deadline with
    /// positive (worst-case) probability.
    Infeasible {
        /// The best-effort optimum under the same total order (zero
        /// probability, minimum summed expected time) — what a caller
        /// that must allocate anyway should use.
        alloc: Allocation,
        /// The smallest deadline for which a feasible allocation with
        /// positive (worst-case) `φ₁` exists: the min-bottleneck of the
        /// per-option minimum loaded completion times. Solving again at
        /// any deadline `≥` this value yields `Optimal`; any deadline
        /// `<` it is provably hopeless.
        tightest_deadline: f64,
    },
}

impl LatticeSolution {
    /// The allocation regardless of feasibility.
    pub fn allocation(&self) -> &Allocation {
        match self {
            LatticeSolution::Optimal { alloc, .. } => alloc,
            LatticeSolution::Infeasible { alloc, .. } => alloc,
        }
    }
}

/// Reusable solver state: bound tables, permutation, DFS buffers. All
/// vectors retain capacity across solves, so a warm scratch makes
/// repeated serve-path calls allocation-free.
#[derive(Debug, Default)]
pub struct LatticeScratch {
    opts: Vec<Opt>,
    apps: Vec<AppBounds>,
    /// Search (permuted) application order: widest bound gap first.
    perm: Vec<usize>,
    /// Γ-adversary type subsets (bitmasks); empty for the plain solver.
    subsets: Vec<u32>,
    /// Engine linear-pass buffers.
    stats: Vec<OptionStats>,
    stats_degraded: Vec<OptionStats>,
    /// Per-option `(cost, option index)` for the bottleneck proof.
    costs: Vec<(f64, u32)>,
    /// Serial-path DFS state.
    state: SearchState,
    /// Root free capacity per type.
    root_free: Vec<u32>,
    /// Budget-constrained suffix bound: `dlog[d * stride + b]` is the
    /// maximum `Σ ln prob` the permuted applications `d..` can reach
    /// using at most `b` processors *in total* (per-type splits relaxed
    /// away); `-inf` when every such completion carries a zero factor
    /// or does not fit the budget at all.
    dlog: Vec<f64>,
    /// Matching minimum `Σ expected time` under the same budget
    /// relaxation (`+inf` when the budget cannot host the suffix);
    /// screens the zero-probability regime where the total order falls
    /// to the expected-time sum.
    emin: Vec<f64>,
    /// Row stride of `dlog`/`emin`: total processors + 1.
    stride: usize,
    /// Γ-robust per-mask suffix bounds: `wdlog[m * (n+1) * stride + d *
    /// stride + b]` is `dlog` recomputed with adversary subset `m`'s
    /// per-option probabilities (degraded where the type is hit). Empty
    /// for the plain solver. The worst-case screen key is the minimum
    /// over masks — far sharper than the nominal bound when degradation
    /// moves the optimum.
    wdlog: Vec<f64>,
    /// Per-option per-mask log probability, `wopt_log[opt * masks + m]`
    /// (`-inf` on zero): [`mask_opt_log`] flattened so the hot loops
    /// index instead of re-branching on the mask bit.
    wopt_log: Vec<f64>,
}

impl LatticeScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The best complete allocation seen by one search, in a reusable slot.
#[derive(Debug, Default, Clone)]
struct BestSlot {
    valid: bool,
    /// Worst-case φ₁ (equals `prob` for the plain solver).
    worst: f64,
    /// Nominal φ₁, accumulated in canonical order.
    prob: f64,
    sum_exp: f64,
    /// Canonical per-application option index.
    path: Vec<u32>,
}

impl BestSlot {
    /// Strict total order: worst-case φ₁ desc, nominal φ₁ desc, summed
    /// expected time asc, path asc — [`super::Exhaustive`]'s order with
    /// the worst-case key prepended (degenerate for the plain solver,
    /// where `worst == prob`).
    fn beaten_by(&self, worst: f64, prob: f64, sum_exp: f64, path: &[u32]) -> bool {
        if !self.valid {
            return true;
        }
        worst > self.worst
            || (worst == self.worst
                && (prob > self.prob
                    || (prob == self.prob
                        && (sum_exp < self.sum_exp
                            || (sum_exp == self.sum_exp && path < self.path.as_slice())))))
    }
}

/// Mutable per-worker DFS state.
#[derive(Debug, Default)]
struct SearchState {
    /// Canonical path under construction (`UNSET` = unassigned).
    chosen: Vec<u32>,
    /// Free processors per type.
    free: Vec<u32>,
    free_total: u32,
    /// Cached prune threshold: `max(local best, shared bound)`.
    prune_bits: u64,
    ln_prune: f64,
    /// Per-depth child-ordering buffers
    /// (`(worst key, nominal key, sum key, idx)`), reused across visits
    /// and solves.
    orders: Vec<Vec<(f64, f64, f64, u32)>>,
    /// Per-depth per-mask running `Σ ln prob_m` of the assigned prefix
    /// (`wstack[depth * masks + m]`; `-inf` once a mask-zero factor is
    /// committed). Empty for the plain solver.
    wstack: Vec<f64>,
    best: BestSlot,
    counters: LatticeCounters,
}

impl SearchState {
    /// Resets for a fresh (sub)tree rooted at full capacity.
    fn reset(&mut self, num_apps: usize, root_free: &[u32], nmasks: usize) {
        self.chosen.clear();
        self.chosen.resize(num_apps, UNSET);
        self.free.clear();
        self.free.extend_from_slice(root_free);
        self.free_total = root_free.iter().sum();
        self.prune_bits = 0;
        self.ln_prune = f64::NEG_INFINITY;
        if self.orders.len() < num_apps {
            self.orders.resize_with(num_apps, Vec::new);
        }
        self.wstack.clear();
        self.wstack.resize((num_apps + 1) * nmasks, 0.0);
        self.best.valid = false;
        self.best.path.clear();
        self.best.path.resize(num_apps, UNSET);
        self.counters = LatticeCounters::default();
    }
}

/// Read-only search context shared by every worker of one solve.
struct Ctx<'a> {
    opts: &'a [Opt],
    apps: &'a [AppBounds],
    perm: &'a [usize],
    subsets: &'a [u32],
    /// Budget-constrained suffix bounds (see [`LatticeScratch::dlog`]).
    dlog: &'a [f64],
    emin: &'a [f64],
    stride: usize,
    /// Per-mask suffix bounds and per-option per-mask log factors (see
    /// [`LatticeScratch::wdlog`]); both empty for the plain solver.
    wdlog: &'a [f64],
    wopt_log: &'a [f64],
    /// Row count of one mask's `wdlog` block: `(apps + 1) * stride`.
    mask_rows: usize,
    /// Shared worst-case-φ₁ lower bound (`f64` bits; non-negative, so
    /// bit order equals value order and `fetch_max` is a float max).
    shared: &'a AtomicU64,
}

/// What the screen/confirmation decided about one child subtree.
enum Verdict {
    Prune,
    Descend,
}

impl Ctx<'_> {
    #[inline]
    fn opt(&self, app: usize, idx: u32) -> &Opt {
        &self.opts[(self.apps[app].start + idx) as usize]
    }

    /// Refreshes the cached prune threshold from the shared bound and
    /// the local incumbent.
    #[inline]
    fn refresh_prune(&self, st: &mut SearchState) {
        let shared = self.shared.load(Ordering::Relaxed);
        let local = if st.best.valid {
            st.best.worst.to_bits()
        } else {
            0
        };
        let bits = shared.max(local);
        if bits != st.prune_bits {
            st.prune_bits = bits;
            st.ln_prune = f64::from_bits(bits).ln();
        }
    }

    /// The exact-product confirmation for the subtree where `st.chosen`
    /// holds the partial assignment: recomputes the optimistic bound
    /// product and minimum expected-time sum in canonical application
    /// order — the same association order every leaf uses, so by the
    /// per-argument monotonicity of `fl(×)`/`fl(+)` every leaf below
    /// satisfies `leaf.prob ≤ bound` and `leaf.sum ≥ min_sum`
    /// *bit-exactly*, and the prune decisions below need no margins.
    fn confirm(&self, st: &SearchState) -> Verdict {
        let mut bound = 1.0f64;
        let mut min_sum = 0.0f64;
        for (app, ab) in self.apps.iter().enumerate() {
            let c = st.chosen[app];
            if c == UNSET {
                bound *= ab.max_prob;
                min_sum += ab.min_exp;
            } else {
                let o = self.opt(app, c);
                bound *= o.prob;
                min_sum += o.exp_time;
            }
        }
        // Strictly beaten on the primary key by a leaf some worker has
        // already committed: nothing below can be the global argmax
        // (every leaf's worst case is dominated by its nominal
        // probability, which `bound` dominates bit-exactly).
        if bound < f64::from_bits(st.prune_bits) {
            return Verdict::Prune;
        }
        let b = &st.best;
        if !b.valid || bound > b.worst {
            return Verdict::Descend;
        }
        if bound < b.worst {
            return Verdict::Prune;
        }
        // Tie on the worst-case key. A tying leaf must also saturate the
        // nominal bound, so the nominal incumbent key decides next.
        if bound < b.prob {
            return Verdict::Prune;
        }
        if bound > b.prob {
            return Verdict::Descend;
        }
        // Tie on both probability keys: the optimistic sum decides; an
        // exact tie there may still be won on the path, so descend.
        if min_sum > b.sum_exp {
            return Verdict::Prune;
        }
        Verdict::Descend
    }

    /// Evaluates the complete allocation in `st.chosen`: canonical-order
    /// probability product and expected-time sum, worst-case φ₁ over the
    /// adversary subsets, incumbent update, shared-bound publication.
    fn leaf(&self, st: &mut SearchState) {
        st.counters.leaves += 1;
        let mut prob = 1.0f64;
        let mut sum_exp = 0.0f64;
        for app in 0..self.apps.len() {
            let o = self.opt(app, st.chosen[app]);
            prob *= o.prob;
            sum_exp += o.exp_time;
        }
        let worst = if self.subsets.is_empty() {
            prob
        } else {
            let mut w = f64::INFINITY;
            for &mask in self.subsets {
                let mut p = 1.0f64;
                for app in 0..self.apps.len() {
                    let o = self.opt(app, st.chosen[app]);
                    p *= if mask & (1 << o.asg.proc_type.0) != 0 {
                        o.degraded
                    } else {
                        o.prob
                    };
                }
                if p < w {
                    w = p;
                }
            }
            w
        };
        if st.best.beaten_by(worst, prob, sum_exp, &st.chosen) {
            st.best.valid = true;
            st.best.worst = worst;
            st.best.prob = prob;
            st.best.sum_exp = sum_exp;
            st.best.path.copy_from_slice(&st.chosen);
            self.shared.fetch_max(worst.to_bits(), Ordering::Relaxed);
        }
    }

    /// Depth-first search from permuted depth `depth`. `chosen_log` sums
    /// the logs of the assigned positive probabilities, `zero_terms`
    /// counts assigned exactly-zero probabilities, `chosen_sum` sums the
    /// assigned expected times (in permutation order — used only by the
    /// banded zero-regime screen, never for exact decisions).
    fn dfs(
        &self,
        st: &mut SearchState,
        depth: usize,
        chosen_log: f64,
        zero_terms: u32,
        chosen_sum: f64,
    ) {
        st.counters.nodes += 1;
        let n = self.apps.len();
        if depth == n {
            self.leaf(st);
            return;
        }
        // Every remaining application needs at least one processor.
        if st.free_total < (n - depth) as u32 {
            st.counters.capacity_pruned += 1;
            return;
        }
        let app = self.perm[depth];
        let ab = self.apps[app];
        let nm = self.subsets.len();
        // Score every capacity-feasible child by its optimistic
        // worst-case bound (the minimum over adversary masks of the
        // per-mask log chain; for the plain solver there is exactly the
        // nominal chain) alongside the nominal bound: `-inf` when the
        // corresponding bound is exactly zero. When even the nominal
        // bound is zero, the optimistic expected-time sum takes over as
        // the tertiary key.
        let mut order = std::mem::take(&mut st.orders[depth]);
        order.clear();
        for idx in 0..ab.len {
            let o = self.opt(app, idx);
            if st.free[o.asg.proc_type.0] < o.asg.procs {
                continue;
            }
            let b_after = (st.free_total - o.asg.procs) as usize;
            let nxt = (depth + 1) * self.stride + b_after;
            // An infinite optimistic suffix sum means the remaining
            // budget cannot host the remaining applications even with
            // per-type capacities relaxed: the child subtree has no
            // leaves at all, so it is pruned before it can cost a node
            // visit or a confirmation.
            if self.emin[nxt] == f64::INFINITY {
                st.counters.capacity_pruned += 1;
                continue;
            }
            let suffix = self.dlog[nxt];
            let nkey = if o.d_zero != 0 || suffix == f64::NEG_INFINITY {
                f64::NEG_INFINITY
            } else {
                chosen_log + o.d_log + suffix
            };
            let wkey = if nm == 0 {
                nkey
            } else {
                let oi = (ab.start + idx) as usize;
                let mut w = f64::INFINITY;
                for mi in 0..nm {
                    let k = st.wstack[depth * nm + mi]
                        + self.wopt_log[oi * nm + mi]
                        + self.wdlog[mi * self.mask_rows + nxt];
                    if k < w {
                        w = k;
                    }
                }
                w
            };
            // A positive per-mask chain forces a positive nominal chain,
            // so `nkey == -inf` implies `wkey == -inf` and the sum key
            // is only ever needed in the all-zero tail.
            let smin = if nkey == f64::NEG_INFINITY {
                chosen_sum + o.exp_time + self.emin[nxt]
            } else {
                0.0
            };
            order.push((wkey, nkey, smin, idx));
        }
        // Most promising child first, so the very first dive lands on a
        // (near-)optimal incumbent and everything after prunes against
        // it. The keys are deterministic functions of the tables and the
        // partial assignment, so the exploration order — and with it the
        // serial counters — is reproducible; the *result* is
        // order-independent because the incumbent order is total.
        order.sort_unstable_by(|a, b| {
            b.0.total_cmp(&a.0)
                .then_with(|| b.1.total_cmp(&a.1))
                .then_with(|| a.2.total_cmp(&b.2))
                .then_with(|| a.3.cmp(&b.3))
        });
        let mut cut = order.len();
        for (pos, &(wkey, nkey, smin, idx)) in order.iter().enumerate() {
            self.refresh_prune(st);
            let zero_bound = wkey == f64::NEG_INFINITY;
            // Sorted screen: once one child is a certain loser, every
            // remaining child is too (bounds only decrease along the
            // order, and within the all-zero tail the optimistic sums
            // only increase).
            if zero_bound {
                if f64::from_bits(st.prune_bits) > 0.0 {
                    cut = pos;
                    break;
                }
                // All-zero regime: when the nominal bound is zero too
                // and the incumbent is all zero, the order falls to the
                // expected-time sum; prune clear losers, route near-ties
                // to confirmation. A zero *worst* bound with a positive
                // nominal bound can still win on the nominal key against
                // a zero-worst incumbent, so it must reach confirmation
                // (which decides exactly) — never this screen.
                let b = &st.best;
                if nkey == f64::NEG_INFINITY
                    && b.valid
                    && b.worst == 0.0
                    && b.prob == 0.0
                    && smin > b.sum_exp * SUM_BAND
                {
                    cut = pos;
                    break;
                }
            } else if wkey < st.ln_prune - EPS {
                cut = pos;
                break;
            }
            let confirm = zero_bound || wkey <= st.ln_prune + EPS;
            let o = *self.opt(app, idx);
            st.chosen[app] = idx;
            if confirm {
                if let Verdict::Prune = self.confirm(st) {
                    st.counters.confirm_pruned += 1;
                    st.chosen[app] = UNSET;
                    continue;
                }
            }
            let child_zero = zero_terms + u32::from(o.d_zero);
            let child_log = if o.d_zero == 0 {
                chosen_log + o.d_log
            } else {
                chosen_log
            };
            let oi = (ab.start + idx) as usize;
            for mi in 0..nm {
                let parent = st.wstack[depth * nm + mi];
                st.wstack[(depth + 1) * nm + mi] = parent + self.wopt_log[oi * nm + mi];
            }
            st.free[o.asg.proc_type.0] -= o.asg.procs;
            st.free_total -= o.asg.procs;
            self.dfs(
                st,
                depth + 1,
                child_log,
                child_zero,
                chosen_sum + o.exp_time,
            );
            st.free[o.asg.proc_type.0] += o.asg.procs;
            st.free_total += o.asg.procs;
            st.chosen[app] = UNSET;
        }
        st.counters.screen_pruned += (order.len() - cut) as u64;
        st.orders[depth] = order;
    }
}

/// Builds the scratch's bound tables, option arena, and search order for
/// one `(engine, deadline, adversary)` instance — one linear pass per
/// application over the engine's prefix-CDF arena, plus the per-app
/// option sort. `gamma` is `Some((budget, degradation))` for the
/// Γ-robust variant.
fn prepare(
    scratch: &mut LatticeScratch,
    engine: &Phi1Engine,
    platform: &Platform,
    deadline: f64,
    gamma: Option<(usize, f64)>,
) -> Result<()> {
    scratch.opts.clear();
    scratch.apps.clear();
    scratch.perm.clear();
    scratch.subsets.clear();
    scratch.root_free.clear();
    scratch
        .root_free
        .extend(platform.types().iter().map(|t| t.count()));

    let n = engine.num_apps();
    for app in 0..n {
        scratch.stats.clear();
        engine.option_stats_into(app, deadline, &mut scratch.stats);
        if scratch.stats.is_empty() {
            return Err(RaError::NoFeasibleAllocation);
        }
        scratch.stats_degraded.clear();
        if let Some((_, g)) = gamma {
            engine.option_stats_into(app, g * deadline, &mut scratch.stats_degraded);
        }
        let start = scratch.opts.len();
        for (k, s) in scratch.stats.iter().enumerate() {
            let degraded = if gamma.is_some() {
                scratch.stats_degraded[k].prob
            } else {
                s.prob
            };
            scratch.opts.push(Opt {
                asg: s.asg,
                prob: s.prob,
                degraded,
                exp_time: s.exp_time,
                min_loaded: s.min_loaded,
                d_log: 0.0,
                d_zero: 0,
                dg_log: 0.0,
                dg_zero: 0,
            });
        }
        // Exhaustive's per-app option order: probability descending,
        // expected time ascending, engine order on full ties (the sort
        // is stable), so canonical paths mean the same thing in both
        // solvers and the path tiebreak is shared.
        scratch.opts[start..].sort_by(|a, b| {
            b.prob
                .total_cmp(&a.prob)
                .then_with(|| a.exp_time.total_cmp(&b.exp_time))
        });
        let slice = &mut scratch.opts[start..];
        let max_prob = slice.iter().map(|o| o.prob).fold(0.0f64, f64::max);
        let min_prob = slice.iter().map(|o| o.prob).fold(f64::INFINITY, f64::min);
        let min_exp = slice
            .iter()
            .map(|o| o.exp_time)
            .fold(f64::INFINITY, f64::min);
        for o in slice.iter_mut() {
            if o.prob > 0.0 {
                (o.d_log, o.d_zero) = (o.prob.ln(), 0);
            } else {
                (o.d_log, o.d_zero) = (0.0, 1);
            }
            if o.degraded > 0.0 {
                (o.dg_log, o.dg_zero) = (o.degraded.ln(), 0);
            } else {
                (o.dg_log, o.dg_zero) = (0.0, 1);
            }
        }
        let len = (scratch.opts.len() - start) as u32;
        scratch.apps.push(AppBounds {
            start: start as u32,
            len,
            max_prob,
            min_exp,
            gap: max_prob - min_prob,
        });
    }

    // Search order: widest bound gap first (most discriminating choices
    // at the top of the tree), fewer options and batch order as ties.
    scratch.perm.extend(0..n);
    let apps = &scratch.apps;
    scratch.perm.sort_by(|&a, &b| {
        apps[b]
            .gap
            .total_cmp(&apps[a].gap)
            .then_with(|| apps[a].len.cmp(&apps[b].len))
            .then_with(|| a.cmp(&b))
    });

    // Budget DP over the permutation suffixes, innermost loop over the
    // options of one application. The per-type capacities are relaxed to
    // their total, so the tables upper-bound (probability) / lower-bound
    // (expected-time sum) every completion of the corresponding subtree —
    // and unlike per-app maxima they stay sharp when applications
    // outnumber processors and nobody can take their best option.
    let total: usize = scratch.root_free.iter().map(|&f| f as usize).sum();
    let stride = total + 1;
    scratch.stride = stride;
    scratch.dlog.clear();
    scratch.dlog.resize((n + 1) * stride, 0.0);
    scratch.emin.clear();
    scratch.emin.resize((n + 1) * stride, 0.0);
    for d in (0..n).rev() {
        let ab = scratch.apps[scratch.perm[d]];
        for b in 0..stride {
            let mut best_log = f64::NEG_INFINITY;
            let mut best_sum = f64::INFINITY;
            for k in 0..ab.len {
                let o = &scratch.opts[(ab.start + k) as usize];
                let procs = o.asg.procs as usize;
                if procs > b {
                    continue;
                }
                let nxt = (d + 1) * stride + (b - procs);
                if o.d_zero == 0 {
                    let cand = o.d_log + scratch.dlog[nxt];
                    if cand > best_log {
                        best_log = cand;
                    }
                }
                let s = o.exp_time + scratch.emin[nxt];
                if s < best_sum {
                    best_sum = s;
                }
            }
            scratch.dlog[d * stride + b] = best_log;
            scratch.emin[d * stride + b] = best_sum;
        }
    }

    scratch.wdlog.clear();
    scratch.wopt_log.clear();
    if let Some((budget, _)) = gamma {
        let t = engine.num_types();
        let k = budget.min(t);
        push_subsets(t, k, 0, 0, &mut scratch.subsets);
        let nm = scratch.subsets.len();

        // Flatten the per-option per-mask factors so every hot loop
        // below (DP, child scoring, confirmation) indexes instead of
        // re-testing the mask bit.
        scratch.wopt_log.reserve(scratch.opts.len() * nm);
        for o in &scratch.opts {
            for &mask in &scratch.subsets {
                scratch.wopt_log.push(mask_opt_log(o, mask));
            }
        }

        // Per-mask budget DP: `dlog` recomputed with each adversary
        // subset's probabilities. A positive per-mask chain forces a
        // positive nominal chain (degraded ≤ nominal), so these tables
        // are `-inf` wherever `dlog` is. The search screens on the
        // minimum over masks — the worst-case analogue of the nominal
        // bound, and the reason Γ-robust pruning bites: the nominal
        // bound alone wildly overestimates a degraded optimum.
        let rows = (n + 1) * stride;
        scratch.wdlog.resize(nm * rows, 0.0);
        for mi in 0..nm {
            let base = mi * rows;
            for d in (0..n).rev() {
                let ab = scratch.apps[scratch.perm[d]];
                for b in 0..stride {
                    let mut best = f64::NEG_INFINITY;
                    for k in 0..ab.len {
                        let oi = (ab.start + k) as usize;
                        let procs = scratch.opts[oi].asg.procs as usize;
                        if procs > b {
                            continue;
                        }
                        let dl = scratch.wopt_log[oi * nm + mi];
                        if dl == f64::NEG_INFINITY {
                            continue;
                        }
                        let cand = dl + scratch.wdlog[base + (d + 1) * stride + (b - procs)];
                        if cand > best {
                            best = cand;
                        }
                    }
                    scratch.wdlog[base + d * stride + b] = best;
                }
            }
        }
    }
    Ok(())
}

/// Appends every `k`-subset of `0..t` as a bitmask, lexicographically.
fn push_subsets(t: usize, k: usize, from: usize, mask: u32, out: &mut Vec<u32>) {
    if k == 0 {
        out.push(mask);
        return;
    }
    for j in from..=t.saturating_sub(k) {
        push_subsets(t, k - 1, j + 1, mask | (1 << j), out);
    }
}

/// Exact min-bottleneck search over the minimum loaded completion times:
/// the smallest deadline any capacity-feasible allocation can meet with
/// positive (worst-case) probability. `cost_scale` is `1/γ` when an
/// adversary with budget ≥ 1 can stretch any single application's
/// completion, else `1`.
fn tightest_deadline(scratch: &mut LatticeScratch, cost_scale: f64) -> f64 {
    scratch.costs.clear();
    for ab in &scratch.apps {
        let start = scratch.costs.len();
        for idx in 0..ab.len {
            let o = &scratch.opts[(ab.start + idx) as usize];
            scratch.costs.push((o.min_loaded * cost_scale, idx));
        }
        scratch.costs[start..].sort_by(|a, b| a.0.total_cmp(&b.0));
    }
    let mut free = scratch.root_free.clone();
    let free_total: u32 = free.iter().sum();
    let mut best = f64::INFINITY;
    bottleneck_dfs(
        &scratch.apps,
        &scratch.opts,
        &scratch.costs,
        0,
        0.0,
        &mut free,
        free_total,
        &mut best,
    );
    best
}

#[allow(clippy::too_many_arguments)]
fn bottleneck_dfs(
    apps: &[AppBounds],
    opts: &[Opt],
    costs: &[(f64, u32)],
    depth: usize,
    cur_max: f64,
    free: &mut [u32],
    free_total: u32,
    best: &mut f64,
) {
    if depth == apps.len() {
        // Pruning below keeps `cur_max < *best` invariant at leaves.
        *best = cur_max;
        return;
    }
    if free_total < (apps.len() - depth) as u32 {
        return;
    }
    let ab = apps[depth];
    for &(cost, idx) in &costs[ab.start as usize..(ab.start + ab.len) as usize] {
        if cost >= *best {
            break; // costs ascend: nothing later can improve
        }
        let o = &opts[(ab.start + idx) as usize];
        if free[o.asg.proc_type.0] < o.asg.procs {
            continue;
        }
        free[o.asg.proc_type.0] -= o.asg.procs;
        bottleneck_dfs(
            apps,
            opts,
            costs,
            depth + 1,
            cur_max.max(cost),
            free,
            free_total - o.asg.procs,
            best,
        );
        free[o.asg.proc_type.0] += o.asg.procs;
    }
}

/// Runs the full branch-and-bound for a prepared scratch and returns the
/// winning slot plus aggregated counters; `None` when no
/// capacity-feasible allocation exists.
fn search(scratch: &mut LatticeScratch, threads: usize) -> Result<Option<BestSlot>> {
    let n = scratch.apps.len();
    let nmasks = scratch.subsets.len();
    let mask_rows = (n + 1) * scratch.stride;
    let shared = AtomicU64::new(0);

    if threads == 1 {
        let ctx = Ctx {
            opts: &scratch.opts,
            apps: &scratch.apps,
            perm: &scratch.perm,
            subsets: &scratch.subsets,
            dlog: &scratch.dlog,
            emin: &scratch.emin,
            stride: scratch.stride,
            wdlog: &scratch.wdlog,
            wopt_log: &scratch.wopt_log,
            mask_rows,
            shared: &shared,
        };
        scratch.state.reset(n, &scratch.root_free, nmasks);
        ctx.dfs(&mut scratch.state, 0, 0.0, 0, 0.0);
        return Ok(scratch.state.best.valid.then(|| scratch.state.best.clone()));
    }

    // Root split: one task per option of the first permuted application,
    // fanned out over the work-stealing pool. Each task's winner lands
    // in its own slot; the merge below is a strict in-order reduction,
    // so the argmax is bit-identical for every worker count.
    let first = scratch.perm[0];
    let ab = scratch.apps[first];
    let ctx_opts = &scratch.opts;
    let ctx_apps = &scratch.apps;
    let ctx_perm = &scratch.perm;
    let ctx_subsets = &scratch.subsets;
    let ctx_dlog = &scratch.dlog;
    let ctx_emin = &scratch.emin;
    let ctx_wdlog = &scratch.wdlog;
    let ctx_wopt_log = &scratch.wopt_log;
    let stride = scratch.stride;
    let root_free = &scratch.root_free;
    let slots: Vec<OnceLock<(Option<BestSlot>, LatticeCounters)>> =
        (0..ab.len as usize).map(|_| OnceLock::new()).collect();
    pool::run(
        threads,
        ab.len as usize,
        None,
        SearchState::default,
        |idx, st: &mut SearchState| -> Result<()> {
            let ctx = Ctx {
                opts: ctx_opts,
                apps: ctx_apps,
                perm: ctx_perm,
                subsets: ctx_subsets,
                dlog: ctx_dlog,
                emin: ctx_emin,
                stride,
                wdlog: ctx_wdlog,
                wopt_log: ctx_wopt_log,
                mask_rows,
                shared: &shared,
            };
            st.reset(n, root_free, nmasks);
            let o = *ctx.opt(first, idx as u32);
            if st.free[o.asg.proc_type.0] >= o.asg.procs {
                st.chosen[first] = idx as u32;
                st.free[o.asg.proc_type.0] -= o.asg.procs;
                st.free_total -= o.asg.procs;
                let first_log = if o.d_zero == 0 { o.d_log } else { 0.0 };
                let oi = (ctx_apps[first].start + idx as u32) as usize;
                for mi in 0..nmasks {
                    st.wstack[nmasks + mi] = ctx_wopt_log[oi * nmasks + mi];
                }
                ctx.dfs(st, 1, first_log, u32::from(o.d_zero), o.exp_time);
            }
            let best = st.best.valid.then(|| st.best.clone());
            slots[idx]
                .set((best, st.counters))
                .expect("each root branch runs once");
            Ok(())
        },
    )?;

    let mut merged: Option<BestSlot> = None;
    let mut counters = LatticeCounters::default();
    for slot in slots {
        let (best, c) = slot.into_inner().expect("error-free run fills every slot");
        counters.add(&c);
        if let Some(b) = best {
            let take = match &merged {
                None => true,
                Some(m) => m.beaten_by(b.worst, b.prob, b.sum_exp, &b.path),
            };
            if take {
                merged = Some(b);
            }
        }
    }
    // Stash the merged counters where `solve` builds the report from.
    scratch.state.counters = counters;
    Ok(merged)
}

/// Shared driver behind both allocators: validates, prepares the scratch,
/// searches, and classifies the outcome.
#[allow(clippy::too_many_arguments)]
fn solve(
    engine: &Phi1Engine,
    platform: &Platform,
    deadline: f64,
    threads: usize,
    gamma: Option<(usize, f64)>,
    scratch: &mut LatticeScratch,
) -> Result<(LatticeSolution, LatticeReport)> {
    if !(deadline > 0.0) || !deadline.is_finite() {
        return Err(RaError::BadParameter {
            name: "deadline",
            value: deadline,
        });
    }
    if threads == 0 {
        return Err(RaError::BadParameter {
            name: "threads",
            value: 0.0,
        });
    }
    if let Some((_, g)) = gamma {
        if !(g > 0.0 && g <= 1.0) {
            return Err(RaError::BadParameter {
                name: "degradation",
                value: g,
            });
        }
    }
    prepare(scratch, engine, platform, deadline, gamma)?;
    let best = search(scratch, threads)?.ok_or(RaError::NoFeasibleAllocation)?;

    let alloc = Allocation::new(
        best.path
            .iter()
            .enumerate()
            .map(|(app, &idx)| scratch.opts[(scratch.apps[app].start + idx) as usize].asg)
            .collect(),
    );
    let report = LatticeReport {
        phi1: best.worst,
        nominal_phi1: best.prob,
        sum_exp: best.sum_exp,
        counters: scratch.state.counters,
    };
    let solution = if best.worst > 0.0 {
        LatticeSolution::Optimal {
            alloc,
            phi1: best.worst,
        }
    } else {
        let scale = match gamma {
            Some((budget, g)) if budget >= 1 => 1.0 / g,
            _ => 1.0,
        };
        LatticeSolution::Infeasible {
            alloc,
            tightest_deadline: tightest_deadline(scratch, scale),
        }
    };
    Ok((solution, report))
}

thread_local! {
    /// Per-thread scratch behind the [`Allocator`] entry points, so the
    /// serve path's repeated single-threaded calls reuse warm buffers.
    static SCRATCH: RefCell<LatticeScratch> = RefCell::new(LatticeScratch::new());
}

/// Exact φ₁-optimal Stage-I allocation by prefix-CDF-pruned
/// branch-and-bound (see the module docs). Bit-identical to
/// [`super::Exhaustive`] — at a fraction of the node count.
#[derive(Debug, Clone, Copy)]
pub struct Lattice {
    /// Worker threads for the engine build and the root-level split.
    pub threads: usize,
}

impl Default for Lattice {
    fn default() -> Self {
        Self {
            threads: cdsf_system::default_threads(),
        }
    }
}

impl Lattice {
    /// Creates the policy with the given thread count (≥ 1).
    pub fn new(threads: usize) -> Result<Self> {
        if threads == 0 {
            return Err(RaError::BadParameter {
                name: "threads",
                value: 0.0,
            });
        }
        Ok(Self { threads })
    }

    /// Full-fidelity entry point: the exact solution (including the
    /// infeasibility proof) and the search report, reusing `scratch`.
    pub fn solve_with_engine(
        &self,
        platform: &Platform,
        engine: &Phi1Engine,
        deadline: f64,
        scratch: &mut LatticeScratch,
    ) -> Result<(LatticeSolution, LatticeReport)> {
        solve(engine, platform, deadline, self.threads, None, scratch)
    }
}

impl Allocator for Lattice {
    fn name(&self) -> &'static str {
        "Lattice"
    }

    fn allocate(&self, batch: &Batch, platform: &Platform, deadline: f64) -> Result<Allocation> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        let engine = Phi1Engine::build_parallel(batch, platform, self.threads)?;
        self.allocate_with_engine(batch, platform, &engine, deadline)
    }

    fn allocate_with_engine(
        &self,
        batch: &Batch,
        platform: &Platform,
        engine: &Phi1Engine,
        deadline: f64,
    ) -> Result<Allocation> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        // Like `Exhaustive`, a deadline-infeasible instance still yields
        // the best-effort (zero-probability, minimum expected time)
        // allocation; only capacity infeasibility errors.
        SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            let (solution, _) = self.solve_with_engine(platform, engine, deadline, &mut scratch)?;
            Ok(solution.allocation().clone())
        })
    }
}

/// Γ-robust exact Stage-I allocation: maximizes the *worst-case* `φ₁`
/// when an adversary may degrade the availability of up to
/// [`budget`](Self::budget) processor types by
/// [`degradation`](Self::degradation) (see the module docs). When even
/// the optimum is hopeless, [`Allocator::allocate`] returns
/// [`RaError::ProvenInfeasible`] carrying the exact tightest feasible
/// deadline — a proof, not a fallback.
#[derive(Debug, Clone, Copy)]
pub struct GammaRobust {
    /// Worker threads for the engine build and the root-level split.
    pub threads: usize,
    /// Γ: how many processor types the adversary may degrade at once.
    pub budget: usize,
    /// γ ∈ (0, 1]: availability multiplier of a degraded type (loaded
    /// completion times stretch by `1/γ`).
    pub degradation: f64,
}

impl Default for GammaRobust {
    fn default() -> Self {
        Self {
            threads: cdsf_system::default_threads(),
            budget: 1,
            degradation: 0.9,
        }
    }
}

impl GammaRobust {
    /// Full-fidelity entry point: the exact worst-case solution and the
    /// search report, reusing `scratch`.
    pub fn solve_with_engine(
        &self,
        platform: &Platform,
        engine: &Phi1Engine,
        deadline: f64,
        scratch: &mut LatticeScratch,
    ) -> Result<(LatticeSolution, LatticeReport)> {
        solve(
            engine,
            platform,
            deadline,
            self.threads,
            Some((self.budget, self.degradation)),
            scratch,
        )
    }
}

impl Allocator for GammaRobust {
    fn name(&self) -> &'static str {
        "GammaRobust"
    }

    fn allocate(&self, batch: &Batch, platform: &Platform, deadline: f64) -> Result<Allocation> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        let engine = Phi1Engine::build_parallel(batch, platform, self.threads)?;
        self.allocate_with_engine(batch, platform, &engine, deadline)
    }

    fn allocate_with_engine(
        &self,
        batch: &Batch,
        platform: &Platform,
        engine: &Phi1Engine,
        deadline: f64,
    ) -> Result<Allocation> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            let (solution, _) = self.solve_with_engine(platform, engine, deadline, &mut scratch)?;
            match solution {
                LatticeSolution::Optimal { alloc, .. } => Ok(alloc),
                LatticeSolution::Infeasible {
                    tightest_deadline, ..
                } => Err(RaError::ProvenInfeasible { tightest_deadline }),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocators::testutil::*;
    use crate::allocators::Exhaustive;
    use cdsf_system::ProcTypeId;

    /// Unpruned reference search over a prepared scratch: plain recursion
    /// in canonical application order, leaf evaluation copied verbatim
    /// from [`Ctx::leaf`], no bounds. The total order is strict (distinct
    /// allocations have distinct paths), so any search order yields the
    /// same winner — which is exactly what the pruned solver must match.
    fn unpruned_best(scratch: &LatticeScratch) -> Option<BestSlot> {
        fn rec(
            s: &LatticeScratch,
            depth: usize,
            free: &mut [u32],
            chosen: &mut [u32],
            best: &mut BestSlot,
        ) {
            let n = s.apps.len();
            if depth == n {
                let mut prob = 1.0f64;
                let mut sum_exp = 0.0f64;
                for (app, &choice) in chosen.iter().enumerate() {
                    let o = &s.opts[(s.apps[app].start + choice) as usize];
                    prob *= o.prob;
                    sum_exp += o.exp_time;
                }
                let worst = if s.subsets.is_empty() {
                    prob
                } else {
                    let mut w = f64::INFINITY;
                    for &mask in &s.subsets {
                        let mut p = 1.0f64;
                        for (app, &choice) in chosen.iter().enumerate() {
                            let o = &s.opts[(s.apps[app].start + choice) as usize];
                            p *= if mask & (1 << o.asg.proc_type.0) != 0 {
                                o.degraded
                            } else {
                                o.prob
                            };
                        }
                        if p < w {
                            w = p;
                        }
                    }
                    w
                };
                if best.beaten_by(worst, prob, sum_exp, chosen) {
                    best.valid = true;
                    best.worst = worst;
                    best.prob = prob;
                    best.sum_exp = sum_exp;
                    best.path.copy_from_slice(chosen);
                }
                return;
            }
            let ab = s.apps[depth];
            for idx in 0..ab.len {
                let o = s.opts[(ab.start + idx) as usize];
                if free[o.asg.proc_type.0] < o.asg.procs {
                    continue;
                }
                free[o.asg.proc_type.0] -= o.asg.procs;
                chosen[depth] = idx;
                rec(s, depth + 1, free, chosen, best);
                chosen[depth] = UNSET;
                free[o.asg.proc_type.0] += o.asg.procs;
            }
        }
        let n = scratch.apps.len();
        let mut free = scratch.root_free.clone();
        let mut chosen = vec![UNSET; n];
        let mut best = BestSlot {
            path: vec![UNSET; n],
            ..BestSlot::default()
        };
        rec(scratch, 0, &mut free, &mut chosen, &mut best);
        best.valid.then_some(best)
    }

    fn assert_slots_bit_equal(a: &BestSlot, b: &BestSlot, what: &str) {
        assert_eq!(a.path, b.path, "{what}: paths differ");
        assert_eq!(
            a.worst.to_bits(),
            b.worst.to_bits(),
            "{what}: worst-case φ₁ bits differ"
        );
        assert_eq!(a.prob.to_bits(), b.prob.to_bits(), "{what}: φ₁ bits differ");
        assert_eq!(
            a.sum_exp.to_bits(),
            b.sum_exp.to_bits(),
            "{what}: Σ expected-time bits differ"
        );
    }

    #[test]
    fn reproduces_paper_table4_robust_row() {
        let alloc = Lattice::new(1)
            .unwrap()
            .allocate(&paper_batch(64), &paper_platform(), DEADLINE)
            .unwrap();
        let a = alloc.assignments();
        assert_eq!(
            a[0],
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2
            }
        );
        assert_eq!(
            a[1],
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2
            }
        );
        assert_eq!(
            a[2],
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 8
            }
        );
    }

    #[test]
    fn matches_exhaustive_bit_exactly_across_deadlines() {
        let (b, p) = (paper_batch(32), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        // Spans infeasible (800), tight, the paper's, and slack deadlines;
        // tight ones exercise zero-probability ties and the min-sum order.
        for deadline in [800.0, 1500.0, 2500.0, DEADLINE, 5000.0, 20_000.0] {
            let ex = Exhaustive::new(1)
                .unwrap()
                .allocate_with_engine(&b, &p, &engine, deadline)
                .unwrap();
            let la = Lattice::new(1)
                .unwrap()
                .allocate_with_engine(&b, &p, &engine, deadline)
                .unwrap();
            assert_eq!(ex, la, "deadline {deadline}: allocations differ");
        }
    }

    #[test]
    fn pruned_search_matches_unpruned_reference() {
        let (b, p) = (paper_batch(32), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        let mut scratch = LatticeScratch::new();
        for deadline in [800.0, 2500.0, DEADLINE, 8000.0] {
            for gamma in [None, Some((1, 0.9)), Some((2, 0.7))] {
                prepare(&mut scratch, &engine, &p, deadline, gamma).unwrap();
                let reference = unpruned_best(&scratch).unwrap();
                let pruned = search(&mut scratch, 1).unwrap().unwrap();
                assert_slots_bit_equal(
                    &pruned,
                    &reference,
                    &format!("deadline {deadline}, gamma {gamma:?}"),
                );
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let (b, p) = (paper_batch(32), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        let mut scratch = LatticeScratch::new();
        for deadline in [2500.0, DEADLINE] {
            let baseline = Lattice::new(1)
                .unwrap()
                .solve_with_engine(&p, &engine, deadline, &mut scratch)
                .unwrap();
            let gamma_baseline = GammaRobust {
                threads: 1,
                ..GammaRobust::default()
            }
            .solve_with_engine(&p, &engine, deadline, &mut scratch)
            .unwrap();
            for threads in [2, 4, 7] {
                let plain = Lattice::new(threads)
                    .unwrap()
                    .solve_with_engine(&p, &engine, deadline, &mut scratch)
                    .unwrap();
                assert_eq!(plain.0, baseline.0, "lattice, {threads} workers");
                assert_eq!(
                    plain.1.phi1.to_bits(),
                    baseline.1.phi1.to_bits(),
                    "lattice φ₁ bits, {threads} workers"
                );
                let robust = GammaRobust {
                    threads,
                    ..GammaRobust::default()
                }
                .solve_with_engine(&p, &engine, deadline, &mut scratch)
                .unwrap();
                assert_eq!(
                    robust.0, gamma_baseline.0,
                    "gamma-robust, {threads} workers"
                );
                assert_eq!(
                    robust.1.phi1.to_bits(),
                    gamma_baseline.1.phi1.to_bits(),
                    "gamma-robust φ₁ bits, {threads} workers"
                );
            }
        }
    }

    #[test]
    fn gamma_budget_zero_reduces_to_plain_lattice() {
        let (b, p) = (paper_batch(32), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        let mut scratch = LatticeScratch::new();
        let plain = Lattice::new(1)
            .unwrap()
            .solve_with_engine(&p, &engine, DEADLINE, &mut scratch)
            .unwrap();
        let zero_budget = GammaRobust {
            threads: 1,
            budget: 0,
            degradation: 0.9,
        }
        .solve_with_engine(&p, &engine, DEADLINE, &mut scratch)
        .unwrap();
        assert_eq!(plain.0, zero_budget.0);
        assert_eq!(plain.1.phi1.to_bits(), zero_budget.1.phi1.to_bits());
        assert_eq!(
            zero_budget.1.phi1.to_bits(),
            zero_budget.1.nominal_phi1.to_bits(),
            "no adversary: worst case equals nominal"
        );
    }

    #[test]
    fn gamma_robust_matches_brute_force_adversary() {
        let (b, p) = (paper_batch(16), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        let (budget, g) = (1usize, 0.9f64);
        let solver = GammaRobust {
            threads: 1,
            budget,
            degradation: g,
        };
        let mut scratch = LatticeScratch::new();
        let (solution, report) = solver
            .solve_with_engine(&p, &engine, DEADLINE, &mut scratch)
            .unwrap();
        // Worst case over every feasible allocation × every adversary
        // subset, with probabilities from the same engine lookups.
        let mut best_worst = f64::NEG_INFINITY;
        for alloc in Allocation::enumerate_feasible(&b, &p).unwrap() {
            let mut worst = f64::INFINITY;
            for degraded_type in 0..p.num_types() {
                let mut prob = 1.0f64;
                for (i, asg) in alloc.assignments().iter().enumerate() {
                    let d = if asg.proc_type.0 == degraded_type {
                        g * DEADLINE
                    } else {
                        DEADLINE
                    };
                    prob *= engine.prob(i, asg.proc_type, asg.procs, d).unwrap();
                }
                worst = worst.min(prob);
            }
            best_worst = best_worst.max(worst);
        }
        assert_eq!(report.phi1.to_bits(), best_worst.to_bits());
        match solution {
            LatticeSolution::Optimal { phi1, .. } => {
                assert!(phi1 > 0.0);
                assert_eq!(phi1.to_bits(), best_worst.to_bits());
            }
            LatticeSolution::Infeasible { .. } => panic!("paper instance is feasible"),
        }
    }

    #[test]
    fn infeasibility_proof_is_tight() {
        let (b, p) = (paper_batch(32), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        let solver = Lattice::new(1).unwrap();
        let mut scratch = LatticeScratch::new();
        let (solution, _) = solver
            .solve_with_engine(&p, &engine, 100.0, &mut scratch)
            .unwrap();
        let LatticeSolution::Infeasible {
            alloc,
            tightest_deadline,
        } = solution
        else {
            panic!("deadline 100 must be infeasible");
        };
        assert_eq!(alloc.assignments().len(), 3, "best-effort alloc returned");
        assert!(tightest_deadline > 100.0);
        // At the proven tightest deadline the instance becomes feasible…
        let (at, _) = solver
            .solve_with_engine(&p, &engine, tightest_deadline, &mut scratch)
            .unwrap();
        assert!(
            matches!(at, LatticeSolution::Optimal { phi1, .. } if phi1 > 0.0),
            "solving at the tightest deadline must be feasible"
        );
        // …and one ULP-ish below it provably is not.
        let (below, _) = solver
            .solve_with_engine(&p, &engine, tightest_deadline * (1.0 - 1e-12), &mut scratch)
            .unwrap();
        assert!(
            matches!(below, LatticeSolution::Infeasible { .. }),
            "below the tightest deadline must stay infeasible"
        );
    }

    #[test]
    fn gamma_allocate_reports_proven_infeasibility() {
        let (b, p) = (paper_batch(32), paper_platform());
        let solver = GammaRobust {
            threads: 1,
            ..GammaRobust::default()
        };
        let err = solver.allocate(&b, &p, 100.0).unwrap_err();
        let RaError::ProvenInfeasible { tightest_deadline } = err else {
            panic!("expected a proven-infeasible error, got {err}");
        };
        // The γ-adversary stretches the bottleneck by 1/γ relative to the
        // plain proof.
        let engine = Phi1Engine::build(&b, &p).unwrap();
        let mut scratch = LatticeScratch::new();
        let (plain, _) = Lattice::new(1)
            .unwrap()
            .solve_with_engine(&p, &engine, 100.0, &mut scratch)
            .unwrap();
        let LatticeSolution::Infeasible {
            tightest_deadline: plain_tight,
            ..
        } = plain
        else {
            panic!("plain solver must also prove infeasibility");
        };
        assert_eq!(
            tightest_deadline.to_bits(),
            (plain_tight / solver.degradation).to_bits()
        );
    }

    #[test]
    fn scratch_reuse_is_bit_deterministic() {
        let (b, p) = (paper_batch(32), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        let solver = Lattice::new(1).unwrap();
        let robust = GammaRobust {
            threads: 1,
            ..GammaRobust::default()
        };
        // Interleave plain/γ/infeasible solves through ONE scratch and
        // check each against a cold scratch.
        let mut warm = LatticeScratch::new();
        for deadline in [DEADLINE, 100.0, 2500.0, 8000.0, DEADLINE] {
            let w1 = solver
                .solve_with_engine(&p, &engine, deadline, &mut warm)
                .unwrap();
            let c1 = solver
                .solve_with_engine(&p, &engine, deadline, &mut LatticeScratch::new())
                .unwrap();
            assert_eq!(w1.0, c1.0, "plain, deadline {deadline}");
            assert_eq!(w1.1.phi1.to_bits(), c1.1.phi1.to_bits());
            let w2 = robust
                .solve_with_engine(&p, &engine, deadline, &mut warm)
                .unwrap();
            let c2 = robust
                .solve_with_engine(&p, &engine, deadline, &mut LatticeScratch::new())
                .unwrap();
            assert_eq!(w2.0, c2.0, "gamma, deadline {deadline}");
            assert_eq!(w2.1.phi1.to_bits(), c2.1.phi1.to_bits());
        }
    }

    #[test]
    fn counters_show_pruning_work() {
        let (b, p) = (paper_batch(32), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        let mut scratch = LatticeScratch::new();
        let (_, report) = Lattice::new(1)
            .unwrap()
            .solve_with_engine(&p, &engine, DEADLINE, &mut scratch)
            .unwrap();
        let c = report.counters;
        assert!(c.leaves >= 1, "at least the optimum is a leaf");
        assert!(c.nodes >= c.leaves);
        assert!(
            c.screen_pruned + c.confirm_pruned > 0,
            "the paper instance must exercise the bound: {c:?}"
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        let (b, p) = (paper_batch(8), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        assert!(Lattice::new(0).is_err());
        assert!(Lattice::new(1)
            .unwrap()
            .allocate_with_engine(&b, &p, &engine, f64::NAN)
            .is_err());
        assert!(Lattice::new(1)
            .unwrap()
            .allocate_with_engine(&cdsf_system::Batch::new(vec![]), &p, &engine, DEADLINE)
            .is_err());
        for bad_gamma in [0.0, -0.5, 1.5, f64::NAN] {
            let solver = GammaRobust {
                threads: 1,
                budget: 1,
                degradation: bad_gamma,
            };
            assert!(
                solver
                    .allocate_with_engine(&b, &p, &engine, DEADLINE)
                    .is_err(),
                "degradation {bad_gamma} must be rejected"
            );
        }
    }

    #[test]
    fn prebuilt_engine_matches_self_built_path() {
        let (b, p) = (paper_batch(32), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        let direct = Lattice::new(1).unwrap().allocate(&b, &p, DEADLINE).unwrap();
        let via_engine = Lattice::new(1)
            .unwrap()
            .allocate_with_engine(&b, &p, &engine, DEADLINE)
            .unwrap();
        assert_eq!(direct, via_engine);
    }
}
