//! The paper's naïve initial mapping: simple load balancing.

use super::{Allocator, Capacity};
use crate::allocation::{Allocation, Assignment};
use crate::engine::Phi1Engine;
use crate::robustness::ProbabilityTable;
use crate::{RaError, Result};
use cdsf_system::platform::prev_power_of_two;
use cdsf_system::{Batch, Platform, ProcTypeId};

/// EqualShare — "a simple load balancing technique … in which each
/// application is allocated an equal number of resources".
///
/// Every application receives the same group size: the largest power of two
/// not exceeding `total_processors / N`. Only the *type placement* is then
/// chosen, and per the paper, "the load balancing allocation with the
/// highest probability that all applications will complete before the
/// deadline was chosen" — so the type placement is the best of the (few)
/// feasible equal-share placements.
///
/// On the paper's example this reproduces Table IV's naïve row:
/// 4 processors for every application, app 2 on type 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct EqualShare;

impl EqualShare {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl Allocator for EqualShare {
    fn name(&self) -> &'static str {
        "EqualShare"
    }

    fn allocate(&self, batch: &Batch, platform: &Platform, deadline: f64) -> Result<Allocation> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        let table = ProbabilityTable::build(batch, platform, deadline)?;
        self.place(batch, platform, &table)
    }

    fn allocate_with_engine(
        &self,
        batch: &Batch,
        platform: &Platform,
        engine: &Phi1Engine,
        deadline: f64,
    ) -> Result<Allocation> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        let table = engine.table(deadline)?;
        self.place(batch, platform, &table)
    }
}

impl EqualShare {
    fn place(
        &self,
        batch: &Batch,
        platform: &Platform,
        table: &ProbabilityTable,
    ) -> Result<Allocation> {
        let n = batch.len() as u32;
        let share = prev_power_of_two(platform.total_processors() / n).max(1);

        // DFS over per-app type placements with capacity pruning, keeping
        // the placement with the best joint probability. The branching
        // factor is num_types per app, so this is tractable whenever the
        // type count is modest; capacity pruning cuts it down further.
        let mut best: Option<(f64, Vec<Assignment>)> = None;
        let mut current: Vec<Assignment> = Vec::with_capacity(batch.len());
        let mut cap = Capacity::of(platform);
        dfs(
            batch,
            platform,
            table,
            share,
            &mut current,
            &mut cap,
            1.0,
            &mut best,
        );
        match best {
            Some((_, assignments)) => Ok(Allocation::new(assignments)),
            None => Err(RaError::NoFeasibleAllocation),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    batch: &Batch,
    platform: &Platform,
    table: &ProbabilityTable,
    share: u32,
    current: &mut Vec<Assignment>,
    cap: &mut Capacity,
    prob_so_far: f64,
    best: &mut Option<(f64, Vec<Assignment>)>,
) {
    let depth = current.len();
    if depth == batch.len() {
        if best.as_ref().map_or(true, |(b, _)| prob_so_far > *b) {
            *best = Some((prob_so_far, current.clone()));
        }
        return;
    }
    for j in 0..platform.num_types() {
        let asg = Assignment {
            proc_type: ProcTypeId(j),
            procs: share,
        };
        if !cap.fits(asg) {
            continue;
        }
        let Some(p) = table.prob(depth, asg.proc_type, asg.procs) else {
            continue;
        };
        cap.take(asg);
        current.push(asg);
        dfs(
            batch,
            platform,
            table,
            share,
            current,
            cap,
            prob_so_far * p,
            best,
        );
        current.pop();
        cap.release(asg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocators::testutil::*;

    #[test]
    fn reproduces_paper_table4_naive_row() {
        let alloc = EqualShare::new()
            .allocate(&paper_batch(64), &paper_platform(), DEADLINE)
            .unwrap();
        // Paper Table IV: app1 → 4×type2, app2 → 4×type1, app3 → 4×type2.
        let a = alloc.assignments();
        assert_eq!(
            a[0],
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 4
            }
        );
        assert_eq!(
            a[1],
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 4
            }
        );
        assert_eq!(
            a[2],
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 4
            }
        );
    }

    #[test]
    fn equal_share_is_feasible() {
        let (b, p) = (paper_batch(16), paper_platform());
        let alloc = EqualShare::new().allocate(&b, &p, DEADLINE).unwrap();
        alloc.validate(&b, &p).unwrap();
        assert!(alloc.assignments().iter().all(|a| a.procs == 4));
    }

    #[test]
    fn engine_path_matches_direct_path() {
        let (b, p) = (paper_batch(32), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        let direct = EqualShare::new().allocate(&b, &p, DEADLINE).unwrap();
        let cached = EqualShare::new()
            .allocate_with_engine(&b, &p, &engine, DEADLINE)
            .unwrap();
        assert_eq!(direct, cached);
    }

    #[test]
    fn rejects_empty_batch() {
        let p = paper_platform();
        assert!(matches!(
            EqualShare::new().allocate(&cdsf_system::Batch::new(vec![]), &p, DEADLINE),
            Err(RaError::EmptyBatch)
        ));
    }
}
