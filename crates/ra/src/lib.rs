//! # `cdsf-ra` — Stage-I robust resource allocation
//!
//! Stage I of the CDSF maps a batch of applications onto groups of
//! processors *before* execution, maximizing the **stochastic robustness**
//! of the mapping: the probability `φ₁ = Pr(Ψ ≤ Δ)` that every application
//! finishes before the common deadline Δ, given the execution-time PMFs
//! `ε̂` and the historical availability PMFs `Â`.
//!
//! Provided here:
//!
//! * [`Allocation`] — one `(processor type, power-of-two count)` assignment
//!   per application, with feasibility checking against a [`Platform`];
//! * [`engine`] — the shared φ₁ evaluation engine: a memoized PMF cache
//!   keyed by `(app, type, power-of-two share)` with a deterministic
//!   parallel build, backing every allocator and both estimators;
//! * [`phi1`] — flat per-option probability kernels ([`OptionProbs`]) and
//!   the incremental genome evaluator ([`DeltaFitness`]) that the
//!   metaheuristic inner loops score candidates with;
//! * [`robustness`] — the exact PMF-arithmetic evaluation of φ₁ (with a
//!   memoized per-assignment probability table) and a thread-parallel
//!   Monte-Carlo estimator used to cross-check it;
//! * [`allocators`] — the Stage-I policies:
//!   [`allocators::EqualShare`] (the paper's naïve load balancing),
//!   [`allocators::Exhaustive`] (the paper's optimal search, parallelized),
//!   and the scalable heuristics the paper names as future work:
//!   greedy ([`allocators::GreedyMinTime`], [`allocators::GreedyMaxRobust`],
//!   [`allocators::Sufferage`]) and metaheuristic
//!   ([`allocators::SimulatedAnnealing`], [`allocators::GeneticAlgorithm`]).
//!
//! [`Platform`]: cdsf_system::Platform

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allocation;
pub mod allocators;
pub mod cell_store;
pub mod correlation;
pub mod engine;
pub mod engine_cache;
mod error;
pub mod phi1;
pub mod radius;
pub mod robustness;
pub mod surface;

pub use allocation::{Allocation, Assignment};
pub use allocators::{
    Allocator, GammaRobust, Lattice, LatticeReport, LatticeScratch, LatticeSolution,
    MultiStartReport, SimulatedAnnealing,
};
pub use cell_store::{CellStore, CellStoreStats};
pub use engine::{OptionStats, Phi1Engine, RebuildMap};
pub use engine_cache::{inputs_key, CacheOutcome, EngineCache};
pub use error::RaError;
pub use phi1::{DeltaFitness, OptionProbs};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RaError>;
