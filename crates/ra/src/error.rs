use std::fmt;

/// Errors produced by allocation construction or Stage-I search.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RaError {
    /// The batch has no applications to allocate.
    EmptyBatch,
    /// An allocation has the wrong number of assignments for the batch.
    WrongArity {
        /// Assignments provided.
        provided: usize,
        /// Applications in the batch.
        expected: usize,
    },
    /// A processor count is not a power of two (the paper's constraint).
    NotPowerOfTwo {
        /// The offending count.
        count: u32,
    },
    /// The allocation over-subscribes a processor type.
    OverSubscribed {
        /// The processor type index.
        proc_type: usize,
        /// Processors requested across all applications.
        requested: u32,
        /// Processors available.
        available: u32,
    },
    /// No feasible allocation exists for the given batch and platform.
    NoFeasibleAllocation,
    /// The lattice solver *proved* that no feasible allocation meets the
    /// deadline with positive (worst-case) probability, and computed the
    /// smallest deadline that would be feasible.
    ProvenInfeasible {
        /// The exact min-bottleneck deadline: solving again at any
        /// deadline at or above this value succeeds.
        tightest_deadline: f64,
    },
    /// A search/heuristic parameter was out of its domain.
    BadParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An underlying system-model operation failed.
    System(cdsf_system::SystemError),
}

impl fmt::Display for RaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaError::EmptyBatch => write!(f, "cannot allocate an empty batch"),
            RaError::WrongArity { provided, expected } => write!(
                f,
                "allocation has {provided} assignments for a batch of {expected} applications"
            ),
            RaError::NotPowerOfTwo { count } => {
                write!(f, "processor count {count} is not a power of two")
            }
            RaError::OverSubscribed { proc_type, requested, available } => write!(
                f,
                "processor type {proc_type} over-subscribed: {requested} requested, {available} available"
            ),
            RaError::NoFeasibleAllocation => {
                write!(f, "no feasible allocation exists for this batch and platform")
            }
            RaError::ProvenInfeasible { tightest_deadline } => write!(
                f,
                "deadline proven infeasible: tightest feasible deadline is {tightest_deadline}"
            ),
            RaError::BadParameter { name, value } => {
                write!(f, "parameter `{name}` = {value} is out of domain")
            }
            RaError::System(e) => write!(f, "system model error: {e}"),
        }
    }
}

impl std::error::Error for RaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RaError::System(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cdsf_system::SystemError> for RaError {
    fn from(e: cdsf_system::SystemError) -> Self {
        RaError::System(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_displays_its_payload() {
        let cases: Vec<(RaError, &str)> = vec![
            (RaError::EmptyBatch, "empty batch"),
            (
                RaError::WrongArity {
                    provided: 2,
                    expected: 3,
                },
                "2",
            ),
            (RaError::NotPowerOfTwo { count: 3 }, "3"),
            (
                RaError::OverSubscribed {
                    proc_type: 1,
                    requested: 9,
                    available: 4,
                },
                "9",
            ),
            (RaError::NoFeasibleAllocation, "feasible"),
            (
                RaError::ProvenInfeasible {
                    tightest_deadline: 3100.5,
                },
                "3100.5",
            ),
            (
                RaError::BadParameter {
                    name: "seed",
                    value: -1.0,
                },
                "seed",
            ),
            (
                RaError::System(cdsf_system::SystemError::NoProcessorTypes),
                "system",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        }
    }

    #[test]
    fn sources_chain_to_inner_errors() {
        use std::error::Error as _;
        assert!(RaError::System(cdsf_system::SystemError::NoProcessorTypes)
            .source()
            .is_some());
        assert!(RaError::EmptyBatch.source().is_none());
    }
}
