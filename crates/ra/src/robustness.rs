//! The stochastic robustness metric `φ₁ = Pr(Ψ ≤ Δ)` and its estimators.
//!
//! Two evaluation routes are provided and cross-checked in tests:
//!
//! * **Exact** — PMF arithmetic per assignment (Amdahl rescale → quotient
//!   by availability → CDF at Δ), multiplied across applications
//!   (independence). A [`ProbabilityTable`] memoizes per-`(app, type,
//!   count)` probabilities so search algorithms evaluate candidate
//!   allocations with pure lookups.
//! * **Monte Carlo** — sample execution times and per-type availabilities,
//!   form the realized makespan, count deadline hits. Replicates are
//!   fanned out over scoped worker threads with per-thread RNG streams
//!   derived from a single seed, so the estimate is reproducible and
//!   parallel-deterministic.

use crate::allocation::Allocation;
use crate::engine::Phi1Engine;
use crate::{RaError, Result};
use cdsf_pmf::sample::AliasSampler;
use cdsf_system::parallel_time::{completion_probability, loaded_time_pmf};
use cdsf_system::{Batch, Platform, ProcTypeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-application and joint deadline-satisfaction probabilities of one
/// allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessReport {
    /// `Pr(T_i ≤ Δ)` per application.
    pub per_app: Vec<f64>,
    /// `φ₁ = Π_i Pr(T_i ≤ Δ)`.
    pub joint: f64,
    /// Expected completion time per application (Table V's quantity).
    pub expected_times: Vec<f64>,
    /// Tail risk per application: the mean completion time *given* the
    /// deadline is missed, `E[T_i | T_i > Δ]` (`None` when the application
    /// cannot miss under the model).
    pub conditional_overtime: Vec<Option<f64>>,
}

/// Evaluates an allocation exactly via PMF arithmetic.
pub fn evaluate(
    batch: &Batch,
    platform: &Platform,
    alloc: &Allocation,
    deadline: f64,
) -> Result<RobustnessReport> {
    alloc.validate(batch, platform)?;
    let mut per_app = Vec::with_capacity(batch.len());
    let mut expected_times = Vec::with_capacity(batch.len());
    let mut conditional_overtime = Vec::with_capacity(batch.len());
    let mut joint = 1.0;
    for ((_, app), asg) in batch.iter().zip(alloc.assignments()) {
        let pmf = loaded_time_pmf(app, platform, asg.proc_type, asg.procs)?;
        let p = pmf.cdf(deadline);
        per_app.push(p);
        expected_times.push(pmf.expectation());
        conditional_overtime.push(pmf.conditional_tail_expectation(deadline));
        joint *= p;
    }
    Ok(RobustnessReport {
        per_app,
        joint,
        expected_times,
        conditional_overtime,
    })
}

/// As [`evaluate`], but served from a prebuilt [`Phi1Engine`] — no PMF
/// arithmetic, only CDF/expectation lookups on the cached loaded PMFs.
/// Bit-identical to [`evaluate`] on the same inputs.
pub fn evaluate_with_engine(
    engine: &Phi1Engine,
    batch: &Batch,
    platform: &Platform,
    alloc: &Allocation,
    deadline: f64,
) -> Result<RobustnessReport> {
    alloc.validate(batch, platform)?;
    let mut per_app = Vec::with_capacity(batch.len());
    let mut expected_times = Vec::with_capacity(batch.len());
    let mut conditional_overtime = Vec::with_capacity(batch.len());
    let mut joint = 1.0;
    for (i, asg) in alloc.assignments().iter().enumerate() {
        let pmf = engine
            .loaded_pmf(i, asg.proc_type, asg.procs)
            .ok_or(RaError::NoFeasibleAllocation)?;
        let p = pmf.cdf(deadline);
        per_app.push(p);
        expected_times.push(pmf.expectation());
        conditional_overtime.push(pmf.conditional_tail_expectation(deadline));
        joint *= p;
    }
    Ok(RobustnessReport {
        per_app,
        joint,
        expected_times,
        conditional_overtime,
    })
}

/// Memoized `Pr(T ≤ Δ)` for every feasible `(app, type, pow2-count)`
/// triple, so allocation searches are table lookups.
#[derive(Debug, Clone)]
pub struct ProbabilityTable {
    /// `probs[app][type]` maps `log2(count)` → probability (`None` where
    /// the app has no PMF for the type).
    probs: Vec<Vec<Option<Vec<f64>>>>,
    deadline: f64,
}

impl ProbabilityTable {
    /// Precomputes the table for a batch/platform/deadline.
    pub fn build(batch: &Batch, platform: &Platform, deadline: f64) -> Result<Self> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        if !(deadline > 0.0) || !deadline.is_finite() {
            return Err(RaError::BadParameter {
                name: "deadline",
                value: deadline,
            });
        }
        let mut probs = Vec::with_capacity(batch.len());
        for (_, app) in batch.iter() {
            let mut per_type = Vec::with_capacity(platform.num_types());
            for j in 0..platform.num_types() {
                let id = ProcTypeId(j);
                if app.exec_time(id).is_err() {
                    per_type.push(None);
                    continue;
                }
                let mut per_count = Vec::new();
                for n in platform.pow2_options(id)? {
                    per_count.push(completion_probability(app, platform, id, n, deadline)?);
                }
                per_type.push(Some(per_count));
            }
            probs.push(per_type);
        }
        Ok(Self { probs, deadline })
    }

    /// Assembles a table from precomputed probabilities (the
    /// [`Phi1Engine`] derivation path). Callers guarantee the layout:
    /// `probs[app][type]` maps `log2(count)` → probability.
    pub(crate) fn from_raw(probs: Vec<Vec<Option<Vec<f64>>>>, deadline: f64) -> Self {
        Self { probs, deadline }
    }

    /// The deadline this table was built for.
    pub fn deadline(&self) -> f64 {
        self.deadline
    }

    /// `Pr(T ≤ Δ)` for application `i` on `procs` (a power of two)
    /// processors of `proc_type`. `None` if the triple is out of range.
    pub fn prob(&self, app: usize, proc_type: ProcTypeId, procs: u32) -> Option<f64> {
        if !procs.is_power_of_two() {
            return None;
        }
        let k = procs.trailing_zeros() as usize;
        self.probs
            .get(app)?
            .get(proc_type.0)?
            .as_ref()?
            .get(k)
            .copied()
    }

    /// `φ₁` of a full allocation by lookup; `None` if any triple is
    /// unknown. (Feasibility/capacity is *not* checked here.)
    pub fn joint(&self, alloc: &Allocation) -> Option<f64> {
        let mut p = 1.0;
        for (i, asg) in alloc.assignments().iter().enumerate() {
            p *= self.prob(i, asg.proc_type, asg.procs)?;
        }
        Some(p)
    }
}

/// Configuration of the Monte-Carlo estimator.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloConfig {
    /// Total replicates across all threads.
    pub replicates: usize,
    /// Worker threads (each gets `replicates / threads` draws).
    pub threads: usize,
    /// Base seed; thread `k` uses `seed + k`.
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        Self {
            replicates: 100_000,
            threads: 4,
            seed: 0xC0FFEE,
        }
    }
}

/// Monte-Carlo estimate of `φ₁ = Pr(Ψ ≤ Δ)` for an allocation.
///
/// Each replicate draws one execution time per application (from its
/// single-processor PMF, Amdahl-rescaled) and one availability draw *per
/// application* from its assigned type's availability PMF, then checks
/// `max_i T_i/α_i ≤ Δ`. Per-application draws (rather than one shared draw
/// per type) match the paper's independence assumption — "each
/// application's finishing times are independent", even for applications
/// whose disjoint groups come from the same processor type.
pub fn monte_carlo_phi1(
    batch: &Batch,
    platform: &Platform,
    alloc: &Allocation,
    deadline: f64,
    cfg: &MonteCarloConfig,
) -> Result<f64> {
    monte_carlo_phi1_ci(batch, platform, alloc, deadline, cfg).map(|e| e.estimate)
}

/// A Monte-Carlo estimate with its Wilson 95 % confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McEstimate {
    /// Point estimate of `φ₁`.
    pub estimate: f64,
    /// Lower bound of the 95 % Wilson interval.
    pub lo: f64,
    /// Upper bound of the 95 % Wilson interval.
    pub hi: f64,
    /// Replicates actually drawn.
    pub replicates: u64,
}

/// As [`monte_carlo_phi1`], with an honest uncertainty interval attached.
pub fn monte_carlo_phi1_ci(
    batch: &Batch,
    platform: &Platform,
    alloc: &Allocation,
    deadline: f64,
    cfg: &MonteCarloConfig,
) -> Result<McEstimate> {
    alloc.validate(batch, platform)?;
    // Pre-build samplers: per app the Amdahl-rescaled execution PMF, per
    // type the availability PMF.
    let mut exec_samplers = Vec::with_capacity(batch.len());
    for ((_, app), asg) in batch.iter().zip(alloc.assignments()) {
        let pmf = cdsf_system::parallel_time::parallel_time_pmf(app, asg.proc_type, asg.procs)?;
        exec_samplers.push(AliasSampler::new(&pmf));
    }
    let avail_samplers: Vec<AliasSampler> = platform
        .types()
        .iter()
        .map(|t| AliasSampler::new(t.availability()))
        .collect();
    let type_of: Vec<usize> = alloc.assignments().iter().map(|a| a.proc_type.0).collect();
    mc_core(&exec_samplers, &avail_samplers, &type_of, deadline, cfg)
}

/// As [`monte_carlo_phi1`], but the samplers are built from a prebuilt
/// [`Phi1Engine`]'s cached dedicated PMFs — no Amdahl rescale per call.
/// The sampled distributions are bit-identical to the direct path, so the
/// estimate matches [`monte_carlo_phi1`] exactly for the same seed.
pub fn monte_carlo_phi1_with_engine(
    engine: &Phi1Engine,
    batch: &Batch,
    platform: &Platform,
    alloc: &Allocation,
    deadline: f64,
    cfg: &MonteCarloConfig,
) -> Result<f64> {
    monte_carlo_phi1_ci_with_engine(engine, batch, platform, alloc, deadline, cfg)
        .map(|e| e.estimate)
}

/// As [`monte_carlo_phi1_ci`], served from a prebuilt [`Phi1Engine`].
pub fn monte_carlo_phi1_ci_with_engine(
    engine: &Phi1Engine,
    batch: &Batch,
    platform: &Platform,
    alloc: &Allocation,
    deadline: f64,
    cfg: &MonteCarloConfig,
) -> Result<McEstimate> {
    alloc.validate(batch, platform)?;
    let mut exec_samplers = Vec::with_capacity(batch.len());
    for (i, asg) in alloc.assignments().iter().enumerate() {
        let pmf = engine
            .dedicated_pmf(i, asg.proc_type, asg.procs)
            .ok_or(RaError::NoFeasibleAllocation)?;
        exec_samplers.push(AliasSampler::new(pmf));
    }
    let avail_samplers: Vec<AliasSampler> = (0..engine.num_types())
        .map(|j| {
            AliasSampler::new(
                engine
                    .availability_pmf(ProcTypeId(j))
                    .expect("type index in range"),
            )
        })
        .collect();
    let type_of: Vec<usize> = alloc.assignments().iter().map(|a| a.proc_type.0).collect();
    mc_core(&exec_samplers, &avail_samplers, &type_of, deadline, cfg)
}

/// The shared Monte-Carlo fan-out: replicates are split over scoped worker
/// threads, thread `k` draws from `StdRng::seed_from_u64(seed + k)`, and
/// hit counts are summed — so the estimate depends only on `(samplers,
/// deadline, cfg)`, never on scheduling.
fn mc_core(
    exec_samplers: &[AliasSampler],
    avail_samplers: &[AliasSampler],
    type_of: &[usize],
    deadline: f64,
    cfg: &MonteCarloConfig,
) -> Result<McEstimate> {
    if cfg.replicates == 0 || cfg.threads == 0 {
        return Err(RaError::BadParameter {
            name: "replicates/threads",
            value: cfg.replicates.min(cfg.threads) as f64,
        });
    }
    let per_thread = cfg.replicates.div_ceil(cfg.threads);
    let hits: u64 = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(cfg.threads);
        for k in 0..cfg.threads {
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(k as u64));
                let mut hits = 0u64;
                for _ in 0..per_thread {
                    let mut ok = true;
                    for (s, &ty) in exec_samplers.iter().zip(type_of) {
                        let alpha = avail_samplers[ty].sample(&mut rng);
                        let t = s.sample(&mut rng) / alpha;
                        if t > deadline {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        hits += 1;
                    }
                }
                hits
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .sum()
    });

    let total = (per_thread * cfg.threads) as u64;
    let (lo, hi) = cdsf_pmf::stats::wilson_interval(hits, total, 1.96);
    Ok(McEstimate {
        estimate: hits as f64 / total as f64,
        lo,
        hi,
        replicates: total,
    })
}

/// Convenience: the makespan sample distribution under an allocation —
/// `n` Monte-Carlo draws of `Ψ` (single-threaded; used by tests and the
/// ablation benches).
pub fn sample_makespans(
    batch: &Batch,
    platform: &Platform,
    alloc: &Allocation,
    n: usize,
    seed: u64,
) -> Result<Vec<f64>> {
    alloc.validate(batch, platform)?;
    let mut exec_samplers = Vec::with_capacity(batch.len());
    for ((_, app), asg) in batch.iter().zip(alloc.assignments()) {
        let pmf = cdsf_system::parallel_time::parallel_time_pmf(app, asg.proc_type, asg.procs)?;
        exec_samplers.push(AliasSampler::new(&pmf));
    }
    let avail_samplers: Vec<AliasSampler> = platform
        .types()
        .iter()
        .map(|t| AliasSampler::new(t.availability()))
        .collect();
    let type_of: Vec<usize> = alloc.assignments().iter().map(|a| a.proc_type.0).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut psi = 0.0f64;
        for (s, &ty) in exec_samplers.iter().zip(&type_of) {
            let alpha = avail_samplers[ty].sample(&mut rng);
            psi = psi.max(s.sample(&mut rng) / alpha);
        }
        out.push(psi);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Assignment;
    use cdsf_pmf::Pmf;
    use cdsf_system::{Application, Batch, Platform, ProcessorType};

    fn paper_platform() -> Platform {
        Platform::new(vec![
            ProcessorType::new(
                "Type 1",
                4,
                Pmf::from_pairs([(0.75, 0.5), (1.0, 0.5)]).unwrap(),
            )
            .unwrap(),
            ProcessorType::new(
                "Type 2",
                8,
                Pmf::from_pairs([(0.25, 0.25), (0.5, 0.25), (1.0, 0.5)]).unwrap(),
            )
            .unwrap(),
        ])
        .unwrap()
    }

    fn paper_batch(pulses: usize) -> Batch {
        let mk = |name: &str, s: u64, p: u64, t1: f64, t2: f64| {
            Application::builder(name)
                .serial_iters(s)
                .parallel_iters(p)
                .exec_time_normal(t1, pulses)
                .unwrap()
                .exec_time_normal(t2, pulses)
                .unwrap()
                .build()
                .unwrap()
        };
        Batch::new(vec![
            mk("app 1", 439, 1024, 1800.0, 4000.0),
            mk("app 2", 512, 2048, 2800.0, 6000.0),
            mk("app 3", 216, 4096, 12000.0, 8000.0),
        ])
    }

    fn naive_alloc() -> Allocation {
        Allocation::new(vec![
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 4,
            },
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 4,
            },
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 4,
            },
        ])
    }

    fn robust_alloc() -> Allocation {
        Allocation::new(vec![
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2,
            },
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2,
            },
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 8,
            },
        ])
    }

    #[test]
    fn naive_allocation_phi1_matches_paper_26pct() {
        let report = evaluate(&paper_batch(64), &paper_platform(), &naive_alloc(), 3250.0).unwrap();
        assert!(
            (report.joint - 0.26).abs() < 0.02,
            "φ1 = {} (paper: 26%)",
            report.joint
        );
    }

    #[test]
    fn robust_allocation_phi1_matches_paper_74_5pct() {
        let report =
            evaluate(&paper_batch(64), &paper_platform(), &robust_alloc(), 3250.0).unwrap();
        assert!(
            (report.joint - 0.745).abs() < 0.02,
            "φ1 = {} (paper: 74.5%)",
            report.joint
        );
    }

    #[test]
    fn expected_times_match_table5() {
        let report =
            evaluate(&paper_batch(64), &paper_platform(), &robust_alloc(), 3250.0).unwrap();
        // Paper Table V robust row: 1365.46 / 1959.59 / 2699.86.
        assert!((report.expected_times[0] - 1365.0).abs() < 10.0);
        assert!((report.expected_times[1] - 1960.0).abs() < 10.0);
        assert!((report.expected_times[2] - 2700.0).abs() < 10.0);
    }

    #[test]
    fn conditional_overtime_flags_risky_applications() {
        let report =
            evaluate(&paper_batch(64), &paper_platform(), &robust_alloc(), 3250.0).unwrap();
        // Applications 1 and 2 are (near-)safe; application 3 misses with
        // probability ~25.5 % and, when it does, lands around its
        // quarter-availability time 1350/0.25 = 5400.
        let ct3 = report.conditional_overtime[2].expect("app 3 can miss");
        assert!(ct3 > 3250.0);
        assert!((ct3 - 5400.0).abs() < 300.0, "app 3 CTE {ct3}");
    }

    #[test]
    fn probability_table_matches_direct_evaluation() {
        let (b, p) = (paper_batch(32), paper_platform());
        let table = ProbabilityTable::build(&b, &p, 3250.0).unwrap();
        for alloc in [naive_alloc(), robust_alloc()] {
            let direct = evaluate(&b, &p, &alloc, 3250.0).unwrap().joint;
            let via_table = table.joint(&alloc).unwrap();
            assert!((direct - via_table).abs() < 1e-12);
        }
        // Out-of-range lookups are None, not panics.
        assert!(table.prob(0, ProcTypeId(0), 3).is_none());
        assert!(table.prob(0, ProcTypeId(9), 2).is_none());
        assert!(table.prob(9, ProcTypeId(0), 2).is_none());
        assert!(table.prob(0, ProcTypeId(0), 64).is_none());
    }

    #[test]
    fn probability_table_rejects_bad_deadline() {
        let (b, p) = (paper_batch(8), paper_platform());
        assert!(ProbabilityTable::build(&b, &p, 0.0).is_err());
        assert!(ProbabilityTable::build(&b, &p, f64::NAN).is_err());
    }

    #[test]
    fn monte_carlo_agrees_with_exact() {
        let (b, p) = (paper_batch(64), paper_platform());
        for alloc in [naive_alloc(), robust_alloc()] {
            let exact = evaluate(&b, &p, &alloc, 3250.0).unwrap().joint;
            let mc = monte_carlo_phi1(
                &b,
                &p,
                &alloc,
                3250.0,
                &MonteCarloConfig {
                    replicates: 200_000,
                    threads: 4,
                    seed: 7,
                },
            )
            .unwrap();
            assert!(
                (exact - mc).abs() < 0.01,
                "exact {exact} vs Monte-Carlo {mc}"
            );
        }
    }

    #[test]
    fn monte_carlo_ci_brackets_exact_value() {
        let (b, p) = (paper_batch(64), paper_platform());
        let exact = evaluate(&b, &p, &robust_alloc(), 3250.0).unwrap().joint;
        let est = monte_carlo_phi1_ci(
            &b,
            &p,
            &robust_alloc(),
            3250.0,
            &MonteCarloConfig {
                replicates: 100_000,
                threads: 4,
                seed: 21,
            },
        )
        .unwrap();
        assert!(
            est.lo <= exact && exact <= est.hi,
            "{est:?} vs exact {exact}"
        );
        assert!(est.hi - est.lo < 0.01, "interval too wide: {est:?}");
        assert_eq!(est.replicates, 100_000);
    }

    #[test]
    fn monte_carlo_is_seed_deterministic() {
        let (b, p) = (paper_batch(16), paper_platform());
        let cfg = MonteCarloConfig {
            replicates: 20_000,
            threads: 3,
            seed: 11,
        };
        let a = monte_carlo_phi1(&b, &p, &naive_alloc(), 3250.0, &cfg).unwrap();
        let b2 = monte_carlo_phi1(&b, &p, &naive_alloc(), 3250.0, &cfg).unwrap();
        assert_eq!(a, b2);
    }

    #[test]
    fn monte_carlo_rejects_zero_replicates() {
        let (b, p) = (paper_batch(8), paper_platform());
        let cfg = MonteCarloConfig {
            replicates: 0,
            threads: 1,
            seed: 0,
        };
        assert!(monte_carlo_phi1(&b, &p, &naive_alloc(), 3250.0, &cfg).is_err());
    }

    #[test]
    fn sampled_makespans_bracket_expectations() {
        let (b, p) = (paper_batch(32), paper_platform());
        let samples = sample_makespans(&b, &p, &robust_alloc(), 20_000, 3).unwrap();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        // Ψ ≥ max of expected times (Jensen on max); well below the naïve
        // allocation's worst case.
        assert!(mean > 2700.0, "mean {mean}");
        assert!(mean < 6000.0, "mean {mean}");
    }
}
