//! Allocation representation and feasibility checking.

use crate::{RaError, Result};
use cdsf_system::{Batch, Platform, ProcTypeId};
use serde::{Deserialize, Serialize};

/// One application's resource assignment: a power-of-two number of
/// processors of a single type (the paper's allocation constraint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Assignment {
    /// The processor type the application's group is drawn from.
    pub proc_type: ProcTypeId,
    /// Group size; must be a power of two.
    pub procs: u32,
}

impl Assignment {
    /// Creates an assignment, checking the power-of-two constraint.
    pub fn new(proc_type: ProcTypeId, procs: u32) -> Result<Self> {
        if procs == 0 || !procs.is_power_of_two() {
            return Err(RaError::NotPowerOfTwo { count: procs });
        }
        Ok(Self { proc_type, procs })
    }
}

impl std::fmt::Display for Assignment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} × {}", self.procs, self.proc_type)
    }
}

/// A complete Stage-I mapping: one [`Assignment`] per application, indexed
/// by position in the [`Batch`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Allocation {
    assignments: Vec<Assignment>,
}

impl Allocation {
    /// Builds an allocation from per-application assignments.
    pub fn new(assignments: Vec<Assignment>) -> Self {
        Self { assignments }
    }

    /// The per-application assignments.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// The assignment of application `i`.
    pub fn assignment(&self, i: usize) -> Option<Assignment> {
        self.assignments.get(i).copied()
    }

    /// Number of applications covered.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the allocation covers no applications.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Total processors the allocation uses (`Σ_i max_i`).
    pub fn total_procs(&self) -> u32 {
        self.assignments.iter().map(|a| a.procs).sum()
    }

    /// Checks feasibility against a batch and platform:
    ///
    /// * arity matches the batch;
    /// * every count is a power of two;
    /// * every application has an execution-time PMF for its assigned type;
    /// * per-type demand does not exceed the platform's supply (groups are
    ///   disjoint — the paper partitions the machine into `N` groups).
    pub fn validate(&self, batch: &Batch, platform: &Platform) -> Result<()> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        if self.assignments.len() != batch.len() {
            return Err(RaError::WrongArity {
                provided: self.assignments.len(),
                expected: batch.len(),
            });
        }
        let mut demand = vec![0u32; platform.num_types()];
        for ((_, app), asg) in batch.iter().zip(&self.assignments) {
            if asg.procs == 0 || !asg.procs.is_power_of_two() {
                return Err(RaError::NotPowerOfTwo { count: asg.procs });
            }
            // Type must exist and the app must have a PMF for it.
            platform.proc_type(asg.proc_type)?;
            app.exec_time(asg.proc_type)?;
            demand[asg.proc_type.0] += asg.procs;
        }
        for (j, &req) in demand.iter().enumerate() {
            let avail = platform.types()[j].count();
            if req > avail {
                return Err(RaError::OverSubscribed {
                    proc_type: j,
                    requested: req,
                    available: avail,
                });
            }
        }
        Ok(())
    }

    /// Enumerates every feasible allocation for `batch` on `platform`
    /// (each application gets a power-of-two count of a single type;
    /// per-type totals respect capacity). Order is deterministic.
    ///
    /// The search space is `Π_i Σ_j log₂(p_j)` leaves — use only for small
    /// instances (this is what makes the paper's example exhaustively
    /// solvable and larger ones not).
    pub fn enumerate_feasible(batch: &Batch, platform: &Platform) -> Result<Vec<Allocation>> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        // Per-app options: every (type, pow2 count) with a PMF available.
        let mut options: Vec<Vec<Assignment>> = Vec::with_capacity(batch.len());
        for (_, app) in batch.iter() {
            let mut opts = Vec::new();
            for j in 0..platform.num_types() {
                let id = ProcTypeId(j);
                if app.exec_time(id).is_err() {
                    continue;
                }
                for n in platform.pow2_options(id)? {
                    opts.push(Assignment {
                        proc_type: id,
                        procs: n,
                    });
                }
            }
            if opts.is_empty() {
                return Err(RaError::NoFeasibleAllocation);
            }
            options.push(opts);
        }

        let capacities: Vec<u32> = platform.types().iter().map(|t| t.count()).collect();
        let mut out = Vec::new();
        let mut current: Vec<Assignment> = Vec::with_capacity(batch.len());
        let mut used = vec![0u32; platform.num_types()];
        fn recurse(
            options: &[Vec<Assignment>],
            capacities: &[u32],
            current: &mut Vec<Assignment>,
            used: &mut Vec<u32>,
            out: &mut Vec<Allocation>,
        ) {
            let depth = current.len();
            if depth == options.len() {
                out.push(Allocation::new(current.clone()));
                return;
            }
            for &asg in &options[depth] {
                let j = asg.proc_type.0;
                if used[j] + asg.procs > capacities[j] {
                    continue;
                }
                used[j] += asg.procs;
                current.push(asg);
                recurse(options, capacities, current, used, out);
                current.pop();
                used[j] -= asg.procs;
            }
        }
        recurse(&options, &capacities, &mut current, &mut used, &mut out);
        if out.is_empty() {
            return Err(RaError::NoFeasibleAllocation);
        }
        Ok(out)
    }
}

impl std::fmt::Display for Allocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, a) in self.assignments.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "app {} → {}", i + 1, a)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsf_pmf::Pmf;
    use cdsf_system::{Application, Platform, ProcessorType};

    fn platform() -> Platform {
        let a1 = Pmf::from_pairs([(0.75, 0.5), (1.0, 0.5)]).unwrap();
        let a2 = Pmf::from_pairs([(0.25, 0.25), (0.5, 0.25), (1.0, 0.5)]).unwrap();
        Platform::new(vec![
            ProcessorType::new("Type 1", 4, a1).unwrap(),
            ProcessorType::new("Type 2", 8, a2).unwrap(),
        ])
        .unwrap()
    }

    fn batch() -> Batch {
        let mk = |name: &str, t1: f64, t2: f64| {
            Application::builder(name)
                .serial_iters(100)
                .parallel_iters(900)
                .exec_time_pmf(Pmf::degenerate(t1).unwrap())
                .exec_time_pmf(Pmf::degenerate(t2).unwrap())
                .build()
                .unwrap()
        };
        Batch::new(vec![
            mk("a", 1800.0, 4000.0),
            mk("b", 2800.0, 6000.0),
            mk("c", 12000.0, 8000.0),
        ])
    }

    #[test]
    fn assignment_rejects_non_pow2() {
        assert!(Assignment::new(ProcTypeId(0), 3).is_err());
        assert!(Assignment::new(ProcTypeId(0), 0).is_err());
        assert!(Assignment::new(ProcTypeId(0), 4).is_ok());
    }

    #[test]
    fn validate_accepts_paper_allocations() {
        let (b, p) = (batch(), platform());
        // Paper Table IV naïve: (2,4), (1,4), (2,4).
        let naive = Allocation::new(vec![
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 4,
            },
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 4,
            },
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 4,
            },
        ]);
        naive.validate(&b, &p).unwrap();
        // Paper Table IV robust: (1,2), (1,2), (2,8).
        let robust = Allocation::new(vec![
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2,
            },
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2,
            },
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 8,
            },
        ]);
        robust.validate(&b, &p).unwrap();
        assert_eq!(robust.total_procs(), 12);
    }

    #[test]
    fn validate_rejects_oversubscription() {
        let (b, p) = (batch(), platform());
        let bad = Allocation::new(vec![
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 4,
            },
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 4,
            },
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 4,
            },
        ]);
        let err = bad.validate(&b, &p).unwrap_err();
        assert!(matches!(
            err,
            RaError::OverSubscribed {
                proc_type: 0,
                requested: 8,
                available: 4
            }
        ));
    }

    #[test]
    fn validate_rejects_wrong_arity() {
        let (b, p) = (batch(), platform());
        let bad = Allocation::new(vec![Assignment {
            proc_type: ProcTypeId(0),
            procs: 2,
        }]);
        assert!(matches!(
            bad.validate(&b, &p),
            Err(RaError::WrongArity { .. })
        ));
    }

    #[test]
    fn validate_rejects_unknown_type() {
        let (b, p) = (batch(), platform());
        let bad = Allocation::new(vec![
            Assignment {
                proc_type: ProcTypeId(7),
                procs: 2,
            },
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2,
            },
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 8,
            },
        ]);
        assert!(bad.validate(&b, &p).is_err());
    }

    #[test]
    fn enumerate_feasible_counts() {
        let (b, p) = (batch(), platform());
        let all = Allocation::enumerate_feasible(&b, &p).unwrap();
        // Every allocation is feasible and unique.
        for a in &all {
            a.validate(&b, &p).unwrap();
        }
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len());
        // Options per app = 3 (type1: 1,2,4) + 4 (type2: 1,2,4,8) = 7;
        // unconstrained 7³ = 343; capacity filtering leaves exactly 153
        // (verified with an independent brute-force enumeration).
        assert_eq!(all.len(), 153);
        // The paper's two Table-IV allocations are in the feasible set.
        let robust = Allocation::new(vec![
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2,
            },
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2,
            },
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 8,
            },
        ]);
        assert!(all.contains(&robust));
    }

    #[test]
    fn enumerate_rejects_empty_batch() {
        let p = platform();
        assert!(matches!(
            Allocation::enumerate_feasible(&Batch::new(vec![]), &p),
            Err(RaError::EmptyBatch)
        ));
    }
}
