//! The shared Stage-I φ₁ evaluation engine.
//!
//! Every Stage-I policy ultimately asks the same questions about the same
//! small set of PMFs: for an `(application, processor type, power-of-two
//! share)` triple, what is the loaded completion-time distribution, its
//! deadline probability, and its expectation? Before this engine existed,
//! each allocator recomputed the Amdahl rescale and the availability
//! quotient per call site — the probability table once, the expected times
//! again for tie-breaking, and `evaluate` a third time for reporting.
//!
//! [`Phi1Engine`] memoizes both PMFs per key exactly once:
//!
//! * the **dedicated** parallel-time PMF (paper Eq. (2) — Amdahl rescale of
//!   the single-processor execution PMF), which also seeds the Monte-Carlo
//!   samplers;
//! * the **loaded** completion-time PMF (dedicated ÷ availability), from
//!   which deadline probabilities, expectations, and tail statistics are
//!   pure lookups.
//!
//! Because the loaded PMFs are *deadline-independent*, one engine serves
//! any number of deadlines: [`Phi1Engine::table`] derives a
//! [`ProbabilityTable`] for a given Δ with CDF evaluations only.
//!
//! # Determinism contract
//!
//! The cell set is a deterministic function of `(batch, platform)`, and
//! each cell is computed by the same code path as the serial helpers in
//! [`cdsf_system::parallel_time`]. The parallel build partitions the cell
//! list over scoped worker threads and stitches results back *by cell
//! index*, so the engine built with any `threads ≥ 1` is bit-identical to
//! the serial build — equality, not approximate agreement, is asserted in
//! the `engine_equivalence` integration tests.

use crate::allocation::{Allocation, Assignment};
use crate::robustness::ProbabilityTable;
use crate::{RaError, Result};
use cdsf_pmf::Pmf;
use cdsf_system::parallel_time::{loaded_time_pmf, parallel_time_pmf};
use cdsf_system::{Batch, Platform, ProcTypeId};

/// One memoized `(app, type, 2^k share)` cell.
#[derive(Debug, Clone)]
struct Cell {
    /// Dedicated parallel-time PMF (Amdahl-rescaled execution time).
    dedicated: Pmf,
    /// Loaded completion-time PMF (dedicated ÷ availability).
    loaded: Pmf,
    /// Cached `loaded.expectation()`.
    expected: f64,
}

/// A flattened build job: compute the cell for application `app` on `2^k`
/// processors of type `ty`.
#[derive(Debug, Clone, Copy)]
struct Job {
    app: usize,
    ty: usize,
    k: usize,
    procs: u32,
}

/// Memoized per-`(application, processor type, power-of-two share)` PMF
/// cache backing every Stage-I φ₁ evaluation.
///
/// Build once per `(batch, platform)` — serially with [`Phi1Engine::build`]
/// or in parallel with [`Phi1Engine::build_parallel`] (bit-identical) —
/// then query deadline probabilities, expected times, loaded PMFs, and
/// Monte-Carlo sampler inputs without recomputing any PMF arithmetic.
#[derive(Debug, Clone)]
pub struct Phi1Engine {
    /// `cells[app][type]` maps `k = log2(procs)` → cell (`None` where the
    /// application has no execution-time PMF for the type).
    cells: Vec<Vec<Option<Vec<Cell>>>>,
    /// Availability PMF per processor type (for Monte-Carlo sampling).
    availability: Vec<Pmf>,
}

impl Phi1Engine {
    /// Builds the cache serially.
    pub fn build(batch: &Batch, platform: &Platform) -> Result<Self> {
        Self::build_parallel(batch, platform, 1)
    }

    /// Builds the cache with `threads` workers. Cells are independent and
    /// stitched back by index, so the result is bit-identical for every
    /// thread count.
    pub fn build_parallel(batch: &Batch, platform: &Platform, threads: usize) -> Result<Self> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        if threads == 0 {
            return Err(RaError::BadParameter {
                name: "threads",
                value: 0.0,
            });
        }

        // Enumerate the cell set and pre-shape the cache.
        let mut jobs: Vec<Job> = Vec::new();
        let mut cells: Vec<Vec<Option<Vec<Cell>>>> = Vec::with_capacity(batch.len());
        for (i, (id, app)) in batch.iter().enumerate() {
            debug_assert_eq!(i, id.0);
            let mut per_type = Vec::with_capacity(platform.num_types());
            for j in 0..platform.num_types() {
                let ty = ProcTypeId(j);
                if app.exec_time(ty).is_err() {
                    per_type.push(None);
                    continue;
                }
                let options = platform.pow2_options(ty)?;
                for (k, &procs) in options.iter().enumerate() {
                    jobs.push(Job {
                        app: i,
                        ty: j,
                        k,
                        procs,
                    });
                }
                per_type.push(Some(Vec::with_capacity(options.len())));
            }
            cells.push(per_type);
        }

        let computed = compute_cells(batch, platform, &jobs, threads)?;

        // Stitch results back in job order (jobs are emitted with `k`
        // ascending per `(app, type)`, so plain pushes land at index `k`).
        for (job, cell) in jobs.iter().zip(computed) {
            let slot = cells[job.app][job.ty]
                .as_mut()
                .expect("job emitted only for types with a PMF");
            debug_assert_eq!(slot.len(), job.k);
            slot.push(cell);
        }

        let availability = platform
            .types()
            .iter()
            .map(|t| t.availability().clone())
            .collect();
        Ok(Self {
            cells,
            availability,
        })
    }

    /// Number of applications covered.
    pub fn num_apps(&self) -> usize {
        self.cells.len()
    }

    /// Number of processor types covered.
    pub fn num_types(&self) -> usize {
        self.availability.len()
    }

    fn cell(&self, app: usize, proc_type: ProcTypeId, procs: u32) -> Option<&Cell> {
        if !procs.is_power_of_two() {
            return None;
        }
        let k = procs.trailing_zeros() as usize;
        self.cells.get(app)?.get(proc_type.0)?.as_ref()?.get(k)
    }

    /// The loaded completion-time PMF of application `app` on `procs` (a
    /// power of two) processors of `proc_type`; `None` out of range.
    pub fn loaded_pmf(&self, app: usize, proc_type: ProcTypeId, procs: u32) -> Option<&Pmf> {
        self.cell(app, proc_type, procs).map(|c| &c.loaded)
    }

    /// The dedicated parallel-time PMF (Amdahl-rescaled, availability not
    /// applied) — the distribution the Monte-Carlo estimator samples.
    pub fn dedicated_pmf(&self, app: usize, proc_type: ProcTypeId, procs: u32) -> Option<&Pmf> {
        self.cell(app, proc_type, procs).map(|c| &c.dedicated)
    }

    /// The availability PMF of a processor type.
    pub fn availability_pmf(&self, proc_type: ProcTypeId) -> Option<&Pmf> {
        self.availability.get(proc_type.0)
    }

    /// Cached expected loaded completion time.
    pub fn expected_time(&self, app: usize, proc_type: ProcTypeId, procs: u32) -> Option<f64> {
        self.cell(app, proc_type, procs).map(|c| c.expected)
    }

    /// `Pr(T ≤ Δ)` for a triple at an arbitrary deadline — a CDF lookup on
    /// the cached loaded PMF, bit-identical to
    /// [`cdsf_system::parallel_time::completion_probability`].
    pub fn prob(
        &self,
        app: usize,
        proc_type: ProcTypeId,
        procs: u32,
        deadline: f64,
    ) -> Option<f64> {
        self.cell(app, proc_type, procs)
            .map(|c| c.loaded.cdf(deadline))
    }

    /// `φ₁` of a full allocation at `deadline` by lookup; `None` if any
    /// triple is unknown. (Capacity feasibility is *not* checked here.)
    pub fn joint(&self, alloc: &Allocation, deadline: f64) -> Option<f64> {
        let mut p = 1.0;
        for (i, asg) in alloc.assignments().iter().enumerate() {
            p *= self.prob(i, asg.proc_type, asg.procs, deadline)?;
        }
        Some(p)
    }

    /// All cached `(type, pow2 count)` options of one application, in
    /// deterministic (type-major, count-ascending) order.
    pub fn options(&self, app: usize) -> Vec<Assignment> {
        let mut out = Vec::new();
        let Some(per_type) = self.cells.get(app) else {
            return out;
        };
        for (j, slot) in per_type.iter().enumerate() {
            if let Some(cells) = slot {
                for k in 0..cells.len() {
                    out.push(Assignment {
                        proc_type: ProcTypeId(j),
                        procs: 1 << k,
                    });
                }
            }
        }
        out
    }

    /// Derives the memoized [`ProbabilityTable`] for one deadline. Exactly
    /// equal — not merely close — to [`ProbabilityTable::build`] on the
    /// same inputs, because both evaluate the same loaded PMFs' CDFs.
    pub fn table(&self, deadline: f64) -> Result<ProbabilityTable> {
        if !(deadline > 0.0) || !deadline.is_finite() {
            return Err(RaError::BadParameter {
                name: "deadline",
                value: deadline,
            });
        }
        let probs = self
            .cells
            .iter()
            .map(|per_type| {
                per_type
                    .iter()
                    .map(|slot| {
                        slot.as_ref()
                            .map(|cells| cells.iter().map(|c| c.loaded.cdf(deadline)).collect())
                    })
                    .collect()
            })
            .collect();
        Ok(ProbabilityTable::from_raw(probs, deadline))
    }
}

/// Computes all cells, fanning out over `threads` scoped workers when the
/// job list is large enough to pay for the spawns. Results are returned in
/// job order; the first failing job (in job order) decides the error.
fn compute_cells(
    batch: &Batch,
    platform: &Platform,
    jobs: &[Job],
    threads: usize,
) -> Result<Vec<Cell>> {
    let apps: Vec<_> = batch.iter().map(|(_, app)| app).collect();
    let compute = |job: &Job| -> Result<Cell> {
        let app = apps[job.app];
        let ty = ProcTypeId(job.ty);
        let dedicated = parallel_time_pmf(app, ty, job.procs)?;
        let loaded = loaded_time_pmf(app, platform, ty, job.procs)?;
        let expected = loaded.expectation();
        Ok(Cell {
            dedicated,
            loaded,
            expected,
        })
    };

    let threads = threads.min(jobs.len()).max(1);
    if threads == 1 {
        return jobs.iter().map(compute).collect();
    }

    let chunk = jobs.len().div_ceil(threads);
    let results: Vec<Result<Vec<Cell>>> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for piece in jobs.chunks(chunk) {
            let compute = &compute;
            handles.push(scope.spawn(move |_| piece.iter().map(compute).collect()));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("engine build worker panicked"))
            .collect()
    })
    .expect("engine build scope panicked");

    let mut out = Vec::with_capacity(jobs.len());
    for piece in results {
        out.extend(piece?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocators::testutil::*;
    use cdsf_system::parallel_time::completion_probability;

    #[test]
    fn cells_match_direct_pmf_arithmetic() {
        let (b, p) = (paper_batch(32), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        for (i, (_, app)) in b.iter().enumerate() {
            for j in 0..p.num_types() {
                let ty = ProcTypeId(j);
                for n in p.pow2_options(ty).unwrap() {
                    let direct = loaded_time_pmf(app, &p, ty, n).unwrap();
                    assert_eq!(engine.loaded_pmf(i, ty, n).unwrap(), &direct);
                    let direct_ded = parallel_time_pmf(app, ty, n).unwrap();
                    assert_eq!(engine.dedicated_pmf(i, ty, n).unwrap(), &direct_ded);
                    assert_eq!(
                        engine.expected_time(i, ty, n).unwrap(),
                        direct.expectation()
                    );
                    let p_direct = completion_probability(app, &p, ty, n, DEADLINE).unwrap();
                    assert_eq!(engine.prob(i, ty, n, DEADLINE).unwrap(), p_direct);
                }
            }
        }
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        let (b, p) = (paper_batch(64), paper_platform());
        let serial = Phi1Engine::build(&b, &p).unwrap();
        for threads in [2usize, 3, 8, 64] {
            let par = Phi1Engine::build_parallel(&b, &p, threads).unwrap();
            for i in 0..b.len() {
                for j in 0..p.num_types() {
                    let ty = ProcTypeId(j);
                    for n in p.pow2_options(ty).unwrap() {
                        assert_eq!(serial.loaded_pmf(i, ty, n), par.loaded_pmf(i, ty, n));
                        assert_eq!(serial.dedicated_pmf(i, ty, n), par.dedicated_pmf(i, ty, n));
                    }
                }
            }
        }
    }

    #[test]
    fn table_equals_uncached_probability_table() {
        let (b, p) = (paper_batch(32), paper_platform());
        let engine = Phi1Engine::build_parallel(&b, &p, 4).unwrap();
        for deadline in [500.0, DEADLINE, 10_000.0] {
            let cached = engine.table(deadline).unwrap();
            let uncached = ProbabilityTable::build(&b, &p, deadline).unwrap();
            for i in 0..b.len() {
                for j in 0..p.num_types() {
                    let ty = ProcTypeId(j);
                    for n in p.pow2_options(ty).unwrap() {
                        assert_eq!(cached.prob(i, ty, n), uncached.prob(i, ty, n));
                    }
                }
            }
        }
    }

    #[test]
    fn options_match_allocator_helper() {
        let (b, p) = (paper_batch(8), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        for (i, (_, app)) in b.iter().enumerate() {
            let direct = crate::allocators::app_options(app, &p).unwrap();
            assert_eq!(engine.options(i), direct);
        }
    }

    #[test]
    fn out_of_range_lookups_are_none() {
        let (b, p) = (paper_batch(8), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        assert!(engine.prob(0, ProcTypeId(0), 3, DEADLINE).is_none());
        assert!(engine.prob(0, ProcTypeId(9), 2, DEADLINE).is_none());
        assert!(engine.prob(9, ProcTypeId(0), 2, DEADLINE).is_none());
        assert!(engine.prob(0, ProcTypeId(0), 64, DEADLINE).is_none());
        assert!(engine.expected_time(0, ProcTypeId(0), 64).is_none());
    }

    #[test]
    fn rejects_bad_inputs() {
        let (b, p) = (paper_batch(8), paper_platform());
        assert!(Phi1Engine::build_parallel(&b, &p, 0).is_err());
        assert!(Phi1Engine::build(&cdsf_system::Batch::new(vec![]), &p).is_err());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        assert!(engine.table(0.0).is_err());
        assert!(engine.table(f64::NAN).is_err());
    }
}
