//! The shared Stage-I φ₁ evaluation engine.
//!
//! Every Stage-I policy ultimately asks the same questions about the same
//! small set of PMFs: for an `(application, processor type, power-of-two
//! share)` triple, what is the loaded completion-time distribution, its
//! deadline probability, and its expectation? Before this engine existed,
//! each allocator recomputed the Amdahl rescale and the availability
//! quotient per call site — the probability table once, the expected times
//! again for tie-breaking, and `evaluate` a third time for reporting.
//!
//! [`Phi1Engine`] memoizes both PMFs per key exactly once:
//!
//! * the **dedicated** parallel-time PMF (paper Eq. (2) — Amdahl rescale of
//!   the single-processor execution PMF), which also seeds the Monte-Carlo
//!   samplers;
//! * the **loaded** completion-time PMF (dedicated ÷ availability), from
//!   which deadline probabilities, expectations, and tail statistics are
//!   pure lookups.
//!
//! Because the loaded PMFs are *deadline-independent*, one engine serves
//! any number of deadlines: [`Phi1Engine::table`] derives a
//! [`ProbabilityTable`] for a given Δ with CDF evaluations only.
//!
//! # Storage layout
//!
//! Cells live in one contiguous arena (`cells: Vec<Cell>`) addressed by a
//! flat `(app, type) → (start, len)` offset table, so a triple lookup is
//! two array reads and an add — no nested `Vec<Vec<Option<Vec<_>>>>`
//! pointer chasing. The hot query paths never touch the `Pmf` objects at
//! all: the loaded PMFs' pulse values and prefix-CDF tables are mirrored
//! into structure-of-arrays slices (`loaded_values` / `loaded_cums`,
//! delimited by `pulse_off`, plus per-cell cached `expected`), so
//! [`Phi1Engine::prob`] is a binary search over a contiguous `f64` run and
//! [`Phi1Engine::table`] is one linear pass over the arena.
//!
//! # Determinism contract
//!
//! The cell set is a deterministic function of `(batch, platform)`, and
//! each cell is computed by the same code path as the serial helpers in
//! [`cdsf_system::parallel_time`]. The parallel build partitions the cell
//! list over scoped worker threads and stitches results back *by cell
//! index*, so the engine built with any `threads ≥ 1` is bit-identical to
//! the serial build — equality, not approximate agreement, is asserted in
//! the `engine_equivalence` integration tests. The SoA mirrors copy the
//! loaded PMFs' own prefix tables verbatim, so SoA answers are the same
//! bits as `Pmf::cdf` on the cached PMFs.

use crate::allocation::{Allocation, Assignment};
use crate::robustness::ProbabilityTable;
use crate::{RaError, Result};
use cdsf_pmf::Pmf;
use cdsf_system::parallel_time::{loaded_time_pmf, parallel_time_pmf};
use cdsf_system::{Batch, Platform, ProcTypeId};

/// One memoized `(app, type, 2^k share)` cell.
#[derive(Debug, Clone)]
struct Cell {
    /// Dedicated parallel-time PMF (Amdahl-rescaled execution time).
    dedicated: Pmf,
    /// Loaded completion-time PMF (dedicated ÷ availability).
    loaded: Pmf,
}

/// A flattened build job: compute the cell for application `app` on `2^k`
/// processors of type `ty`.
#[derive(Debug, Clone, Copy)]
struct Job {
    app: usize,
    ty: usize,
    procs: u32,
}

/// Memoized per-`(application, processor type, power-of-two share)` PMF
/// cache backing every Stage-I φ₁ evaluation.
///
/// Build once per `(batch, platform)` — serially with [`Phi1Engine::build`]
/// or in parallel with [`Phi1Engine::build_parallel`] (bit-identical) —
/// then query deadline probabilities, expected times, loaded PMFs, and
/// Monte-Carlo sampler inputs without recomputing any PMF arithmetic.
#[derive(Debug, Clone)]
pub struct Phi1Engine {
    num_apps: usize,
    num_types: usize,
    /// `(app * num_types + type)` → arena range of that pair's cells
    /// (`k = log2(procs)` is the offset within the range); `None` where
    /// the application has no execution-time PMF for the type.
    index: Vec<Option<(u32, u32)>>,
    /// Contiguous cell arena, grouped by `(app, type)` with `k` ascending.
    cells: Vec<Cell>,
    /// `pulse_off[c]..pulse_off[c + 1]` delimits cell `c`'s pulses in the
    /// SoA mirrors below (one extra trailing entry).
    pulse_off: Vec<u32>,
    /// Loaded-PMF pulse values, all cells back to back.
    loaded_values: Vec<f64>,
    /// Matching prefix-CDF table (copied from [`Pmf::cumulative`]).
    loaded_cums: Vec<f64>,
    /// Cached `loaded.expectation()` per cell.
    expected: Vec<f64>,
    /// Availability PMF per processor type (for Monte-Carlo sampling).
    availability: Vec<Pmf>,
}

impl Phi1Engine {
    /// Builds the cache serially.
    pub fn build(batch: &Batch, platform: &Platform) -> Result<Self> {
        Self::build_parallel(batch, platform, 1)
    }

    /// Builds the cache with `threads` workers. Cells are independent and
    /// stitched back by index, so the result is bit-identical for every
    /// thread count.
    pub fn build_parallel(batch: &Batch, platform: &Platform, threads: usize) -> Result<Self> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        if threads == 0 {
            return Err(RaError::BadParameter {
                name: "threads",
                value: 0.0,
            });
        }

        let num_apps = batch.len();
        let num_types = platform.num_types();

        // Enumerate the cell set. Jobs are emitted app-major, then
        // type-major, then `k` ascending — exactly the arena order — so
        // the computed cells land in the arena by plain extension.
        let mut jobs: Vec<Job> = Vec::new();
        let mut index: Vec<Option<(u32, u32)>> = Vec::with_capacity(num_apps * num_types);
        for (i, (id, app)) in batch.iter().enumerate() {
            debug_assert_eq!(i, id.0);
            for j in 0..num_types {
                let ty = ProcTypeId(j);
                if app.exec_time(ty).is_err() {
                    index.push(None);
                    continue;
                }
                let options = platform.pow2_options(ty)?;
                let start = jobs.len() as u32;
                for &procs in options.iter() {
                    jobs.push(Job {
                        app: i,
                        ty: j,
                        procs,
                    });
                }
                index.push(Some((start, options.len() as u32)));
            }
        }

        let cells = compute_cells(batch, platform, &jobs, threads)?;

        // Mirror the hot per-cell data into flat SoA slices.
        let mut pulse_off = Vec::with_capacity(cells.len() + 1);
        let mut loaded_values = Vec::new();
        let mut loaded_cums = Vec::new();
        let mut expected = Vec::with_capacity(cells.len());
        let mut off = 0u32;
        for cell in &cells {
            pulse_off.push(off);
            for p in cell.loaded.pulses() {
                loaded_values.push(p.value);
            }
            loaded_cums.extend_from_slice(cell.loaded.cumulative());
            expected.push(cell.loaded.expectation());
            off += cell.loaded.len() as u32;
        }
        pulse_off.push(off);

        let availability = platform
            .types()
            .iter()
            .map(|t| t.availability().clone())
            .collect();
        Ok(Self {
            num_apps,
            num_types,
            index,
            cells,
            pulse_off,
            loaded_values,
            loaded_cums,
            expected,
            availability,
        })
    }

    /// Number of applications covered.
    pub fn num_apps(&self) -> usize {
        self.num_apps
    }

    /// Number of processor types covered.
    pub fn num_types(&self) -> usize {
        self.num_types
    }

    /// Arena index of a triple's cell; `None` out of range.
    #[inline]
    fn cell_index(&self, app: usize, proc_type: ProcTypeId, procs: u32) -> Option<usize> {
        if !procs.is_power_of_two() || app >= self.num_apps || proc_type.0 >= self.num_types {
            return None;
        }
        let k = procs.trailing_zeros() as usize;
        let (start, len) = self.index[app * self.num_types + proc_type.0]?;
        if k >= len as usize {
            return None;
        }
        Some(start as usize + k)
    }

    fn cell(&self, app: usize, proc_type: ProcTypeId, procs: u32) -> Option<&Cell> {
        self.cell_index(app, proc_type, procs)
            .map(|c| &self.cells[c])
    }

    /// CDF of cell `c`'s loaded PMF straight from the SoA mirror — the
    /// same partition-point + prefix-table read as [`Pmf::cdf`] over the
    /// same bits, so the result is identical.
    #[inline]
    fn cell_cdf(&self, c: usize, deadline: f64) -> f64 {
        let (s, e) = (self.pulse_off[c] as usize, self.pulse_off[c + 1] as usize);
        let idx = self.loaded_values[s..e].partition_point(|&v| v <= deadline);
        if idx == 0 {
            0.0
        } else {
            self.loaded_cums[s + idx - 1]
        }
    }

    /// The loaded completion-time PMF of application `app` on `procs` (a
    /// power of two) processors of `proc_type`; `None` out of range.
    pub fn loaded_pmf(&self, app: usize, proc_type: ProcTypeId, procs: u32) -> Option<&Pmf> {
        self.cell(app, proc_type, procs).map(|c| &c.loaded)
    }

    /// The dedicated parallel-time PMF (Amdahl-rescaled, availability not
    /// applied) — the distribution the Monte-Carlo estimator samples.
    pub fn dedicated_pmf(&self, app: usize, proc_type: ProcTypeId, procs: u32) -> Option<&Pmf> {
        self.cell(app, proc_type, procs).map(|c| &c.dedicated)
    }

    /// The availability PMF of a processor type.
    pub fn availability_pmf(&self, proc_type: ProcTypeId) -> Option<&Pmf> {
        self.availability.get(proc_type.0)
    }

    /// Cached expected loaded completion time.
    pub fn expected_time(&self, app: usize, proc_type: ProcTypeId, procs: u32) -> Option<f64> {
        self.cell_index(app, proc_type, procs)
            .map(|c| self.expected[c])
    }

    /// `Pr(T ≤ Δ)` for a triple at an arbitrary deadline — a prefix-table
    /// read on the SoA mirror of the cached loaded PMF, bit-identical to
    /// [`cdsf_system::parallel_time::completion_probability`].
    pub fn prob(
        &self,
        app: usize,
        proc_type: ProcTypeId,
        procs: u32,
        deadline: f64,
    ) -> Option<f64> {
        self.cell_index(app, proc_type, procs)
            .map(|c| self.cell_cdf(c, deadline))
    }

    /// `φ₁` of a full allocation at `deadline` by lookup; `None` if any
    /// triple is unknown. (Capacity feasibility is *not* checked here.)
    ///
    /// Once the running product hits exactly 0.0 the remaining CDF reads
    /// cannot change it, so they are skipped — only the (cheap) existence
    /// checks continue, preserving the `None`-on-unknown contract.
    pub fn joint(&self, alloc: &Allocation, deadline: f64) -> Option<f64> {
        let mut p = 1.0;
        for (i, asg) in alloc.assignments().iter().enumerate() {
            let c = self.cell_index(i, asg.proc_type, asg.procs)?;
            if p == 0.0 {
                continue;
            }
            p *= self.cell_cdf(c, deadline);
        }
        Some(p)
    }

    /// All cached `(type, pow2 count)` options of one application, in
    /// deterministic (type-major, count-ascending) order.
    pub fn options(&self, app: usize) -> Vec<Assignment> {
        let mut out = Vec::new();
        if app >= self.num_apps {
            return out;
        }
        for j in 0..self.num_types {
            if let Some((_, len)) = self.index[app * self.num_types + j] {
                for k in 0..len as usize {
                    out.push(Assignment {
                        proc_type: ProcTypeId(j),
                        procs: 1 << k,
                    });
                }
            }
        }
        out
    }

    /// Derives the memoized [`ProbabilityTable`] for one deadline in one
    /// linear pass over the arena. Exactly equal — not merely close — to
    /// [`ProbabilityTable::build`] on the same inputs, because both
    /// evaluate the same loaded PMFs' CDFs.
    pub fn table(&self, deadline: f64) -> Result<ProbabilityTable> {
        if !(deadline > 0.0) || !deadline.is_finite() {
            return Err(RaError::BadParameter {
                name: "deadline",
                value: deadline,
            });
        }
        let mut probs = Vec::with_capacity(self.num_apps);
        for app in 0..self.num_apps {
            let mut per_type = Vec::with_capacity(self.num_types);
            for ty in 0..self.num_types {
                per_type.push(self.index[app * self.num_types + ty].map(|(start, len)| {
                    (start..start + len)
                        .map(|c| self.cell_cdf(c as usize, deadline))
                        .collect()
                }));
            }
            probs.push(per_type);
        }
        Ok(ProbabilityTable::from_raw(probs, deadline))
    }
}

/// Computes all cells, fanning out over `threads` scoped workers when the
/// job list is large enough to pay for the spawns. Results are returned in
/// job order; the first failing job (in job order) decides the error.
fn compute_cells(
    batch: &Batch,
    platform: &Platform,
    jobs: &[Job],
    threads: usize,
) -> Result<Vec<Cell>> {
    let apps: Vec<_> = batch.iter().map(|(_, app)| app).collect();
    let compute = |job: &Job| -> Result<Cell> {
        let app = apps[job.app];
        let ty = ProcTypeId(job.ty);
        let dedicated = parallel_time_pmf(app, ty, job.procs)?;
        let loaded = loaded_time_pmf(app, platform, ty, job.procs)?;
        Ok(Cell { dedicated, loaded })
    };

    let threads = threads.min(jobs.len()).max(1);
    if threads == 1 {
        return jobs.iter().map(compute).collect();
    }

    let chunk = jobs.len().div_ceil(threads);
    let results: Vec<Result<Vec<Cell>>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for piece in jobs.chunks(chunk) {
            let compute = &compute;
            handles.push(scope.spawn(move || piece.iter().map(compute).collect()));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("engine build worker panicked"))
            .collect()
    });

    let mut out = Vec::with_capacity(jobs.len());
    for piece in results {
        out.extend(piece?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocators::testutil::*;
    use cdsf_system::parallel_time::completion_probability;

    #[test]
    fn cells_match_direct_pmf_arithmetic() {
        let (b, p) = (paper_batch(32), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        for (i, (_, app)) in b.iter().enumerate() {
            for j in 0..p.num_types() {
                let ty = ProcTypeId(j);
                for n in p.pow2_options(ty).unwrap() {
                    let direct = loaded_time_pmf(app, &p, ty, n).unwrap();
                    assert_eq!(engine.loaded_pmf(i, ty, n).unwrap(), &direct);
                    let direct_ded = parallel_time_pmf(app, ty, n).unwrap();
                    assert_eq!(engine.dedicated_pmf(i, ty, n).unwrap(), &direct_ded);
                    assert_eq!(
                        engine.expected_time(i, ty, n).unwrap(),
                        direct.expectation()
                    );
                    let p_direct = completion_probability(app, &p, ty, n, DEADLINE).unwrap();
                    assert_eq!(engine.prob(i, ty, n, DEADLINE).unwrap(), p_direct);
                }
            }
        }
    }

    #[test]
    fn soa_mirror_matches_pmf_cdf_everywhere() {
        let (b, p) = (paper_batch(32), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        for i in 0..b.len() {
            for j in 0..p.num_types() {
                let ty = ProcTypeId(j);
                for n in p.pow2_options(ty).unwrap() {
                    let pmf = engine.loaded_pmf(i, ty, n).unwrap();
                    // Probe below, between, at, and above support points.
                    let mut probes = vec![0.0, pmf.min_value() - 1.0, pmf.max_value() + 1.0];
                    for pulse in pmf.pulses() {
                        probes.push(pulse.value);
                        probes.push(pulse.value + 0.5);
                    }
                    let pmf = pmf.clone();
                    for x in probes {
                        assert_eq!(engine.prob(i, ty, n, x).unwrap(), pmf.cdf(x));
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        let (b, p) = (paper_batch(64), paper_platform());
        let serial = Phi1Engine::build(&b, &p).unwrap();
        for threads in [2usize, 3, 8, 64] {
            let par = Phi1Engine::build_parallel(&b, &p, threads).unwrap();
            for i in 0..b.len() {
                for j in 0..p.num_types() {
                    let ty = ProcTypeId(j);
                    for n in p.pow2_options(ty).unwrap() {
                        assert_eq!(serial.loaded_pmf(i, ty, n), par.loaded_pmf(i, ty, n));
                        assert_eq!(serial.dedicated_pmf(i, ty, n), par.dedicated_pmf(i, ty, n));
                    }
                }
            }
        }
    }

    #[test]
    fn table_equals_uncached_probability_table() {
        let (b, p) = (paper_batch(32), paper_platform());
        let engine = Phi1Engine::build_parallel(&b, &p, 4).unwrap();
        for deadline in [500.0, DEADLINE, 10_000.0] {
            let cached = engine.table(deadline).unwrap();
            let uncached = ProbabilityTable::build(&b, &p, deadline).unwrap();
            for i in 0..b.len() {
                for j in 0..p.num_types() {
                    let ty = ProcTypeId(j);
                    for n in p.pow2_options(ty).unwrap() {
                        assert_eq!(cached.prob(i, ty, n), uncached.prob(i, ty, n));
                    }
                }
            }
        }
    }

    #[test]
    fn options_match_allocator_helper() {
        let (b, p) = (paper_batch(8), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        for (i, (_, app)) in b.iter().enumerate() {
            let direct = crate::allocators::app_options(app, &p).unwrap();
            assert_eq!(engine.options(i), direct);
        }
    }

    #[test]
    fn out_of_range_lookups_are_none() {
        let (b, p) = (paper_batch(8), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        assert!(engine.prob(0, ProcTypeId(0), 3, DEADLINE).is_none());
        assert!(engine.prob(0, ProcTypeId(9), 2, DEADLINE).is_none());
        assert!(engine.prob(9, ProcTypeId(0), 2, DEADLINE).is_none());
        assert!(engine.prob(0, ProcTypeId(0), 64, DEADLINE).is_none());
        assert!(engine.expected_time(0, ProcTypeId(0), 64).is_none());
    }

    #[test]
    fn joint_zero_short_circuit_keeps_none_contract() {
        let (b, p) = (paper_batch(8), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        // An impossible deadline drives every factor to 0.0; the early
        // exit must still return Some(0.0) for known triples...
        let alloc = Allocation::new(vec![
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 1,
            };
            b.len()
        ]);
        assert_eq!(engine.joint(&alloc, 1e-6), Some(0.0));
        // ...and None when a later triple is unknown, even after the
        // product has already hit zero.
        let mut bad = alloc.assignments().to_vec();
        bad[b.len() - 1].procs = 3;
        assert_eq!(engine.joint(&Allocation::new(bad), 1e-6), None);
    }

    #[test]
    fn rejects_bad_inputs() {
        let (b, p) = (paper_batch(8), paper_platform());
        assert!(Phi1Engine::build_parallel(&b, &p, 0).is_err());
        assert!(Phi1Engine::build(&cdsf_system::Batch::new(vec![]), &p).is_err());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        assert!(engine.table(0.0).is_err());
        assert!(engine.table(f64::NAN).is_err());
    }
}
