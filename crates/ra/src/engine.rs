//! The shared Stage-I φ₁ evaluation engine.
//!
//! Every Stage-I policy ultimately asks the same questions about the same
//! small set of PMFs: for an `(application, processor type, power-of-two
//! share)` triple, what is the loaded completion-time distribution, its
//! deadline probability, and its expectation? Before this engine existed,
//! each allocator recomputed the Amdahl rescale and the availability
//! quotient per call site — the probability table once, the expected times
//! again for tie-breaking, and `evaluate` a third time for reporting.
//!
//! [`Phi1Engine`] memoizes both PMFs per key exactly once:
//!
//! * the **dedicated** parallel-time PMF (paper Eq. (2) — Amdahl rescale of
//!   the single-processor execution PMF), which also seeds the Monte-Carlo
//!   samplers;
//! * the **loaded** completion-time PMF (dedicated ÷ availability), from
//!   which deadline probabilities, expectations, and tail statistics are
//!   pure lookups.
//!
//! Because the loaded PMFs are *deadline-independent*, one engine serves
//! any number of deadlines: [`Phi1Engine::table`] derives a
//! [`ProbabilityTable`] for a given Δ with CDF evaluations only.
//!
//! # Storage layout
//!
//! Cells live in one contiguous arena (`cells: Vec<Arc<Cell>>`) addressed
//! by a flat `(app, type) → (start, len)` offset table, so a triple lookup
//! is two array reads and an add — no nested `Vec<Vec<Option<Vec<_>>>>`
//! pointer chasing. The hot query paths never walk the `Pmf` pulse
//! structs: each [`Cell`] caches its loaded PMF's pulse values as a
//! contiguous structure-of-arrays slice plus its expectation at
//! construction, so [`Phi1Engine::prob`] is a binary search over a
//! contiguous `f64` run (the prefix-CDF read comes from the `Pmf`'s own
//! cached cumulative table) and [`Phi1Engine::table`] is one linear pass
//! over the arena. Because these projections live *in the cell*, a build
//! that resolves cells from the content-addressed
//! [`crate::cell_store::CellStore`] inherits them for free instead of
//! re-mirroring every pulse.
//!
//! # Determinism contract
//!
//! The cell set is a deterministic function of `(batch, platform)`, and
//! each cell is computed by the same code path as the serial helpers in
//! [`cdsf_system::parallel_time`]. The parallel build schedules
//! `(app, type)` pair families over the [`cdsf_system::pool`]
//! work-stealing pool, each family writing into its own pre-assigned
//! slot, and stitches the slots back *by pair index*, so the engine built
//! with any `threads ≥ 1` is bit-identical to the serial build regardless
//! of steal interleaving — equality, not approximate agreement, is
//! asserted in the `engine_equivalence` integration tests and the
//! cross-crate `determinism` suite. The SoA mirrors copy the
//! loaded PMFs' own prefix tables verbatim, so SoA answers are the same
//! bits as `Pmf::cdf` on the cached PMFs.

use crate::allocation::{Allocation, Assignment};
use crate::cell_store::{self, CellStore};
use crate::robustness::ProbabilityTable;
use crate::{RaError, Result};
use cdsf_pmf::{CombineScratch, Pmf};
use cdsf_system::parallel_time::{amdahl_factor, parallel_time_pmf};
use cdsf_system::pool::{self, PoolStats};
use cdsf_system::{Batch, Platform, ProcTypeId, SystemError};
use std::sync::{Arc, OnceLock};

/// One memoized `(app, type, 2^k share)` cell.
///
/// Cells are held behind [`Arc`] so an incremental rebuild
/// ([`Phi1Engine::rebuild_with`]) can carry unchanged cells over by
/// reference-count bump instead of deep-cloning their PMFs, and so the
/// content-addressed [`crate::cell_store::CellStore`] can intern one
/// copy across engines, tenants, and serve shards.
#[derive(Debug, Clone)]
pub(crate) struct Cell {
    /// Dedicated parallel-time PMF (Amdahl-rescaled execution time).
    pub(crate) dedicated: Pmf,
    /// Loaded completion-time PMF (dedicated ÷ availability).
    pub(crate) loaded: Pmf,
    /// `loaded`'s pulse values as one contiguous slice — the SoA
    /// projection the engine's binary searches run over, computed once
    /// here so store-resolved builds skip the per-pulse mirror pass.
    pub(crate) loaded_values: Vec<f64>,
    /// Cached `loaded.expectation()`.
    pub(crate) expected: f64,
}

impl Cell {
    /// Seals a computed PMF pair into a cell, deriving the cached query
    /// projections. Every cell goes through here, so two cells built
    /// from bit-identical PMFs carry bit-identical projections.
    pub(crate) fn new(dedicated: Pmf, loaded: Pmf) -> Self {
        let loaded_values = loaded.pulses().iter().map(|p| p.value).collect();
        let expected = loaded.expectation();
        Self {
            dedicated,
            loaded,
            loaded_values,
            expected,
        }
    }
}

/// A build job: compute the cells for one `(application, processor type)`
/// pair — all power-of-two share options at once, so the fused kernel can
/// share the availability-expanded probability products across the family.
#[derive(Debug, Clone, Copy)]
struct Pair {
    app: usize,
    ty: usize,
    /// Arena offset of this pair's first cell.
    start: u32,
    /// Number of power-of-two options (cells) for this pair.
    count: u32,
}

/// Estimated construction work — pulse-pair kernel operations, summed over
/// the cells that actually need computing — below which
/// [`Phi1Engine::build_parallel`] runs serially regardless of the
/// requested thread count. For small instances the scoped-thread
/// spawn/join overhead (hundreds of microseconds) dwarfs the kernel time,
/// which is how the pre-threshold build managed to get *slower* with more
/// threads; above the threshold the kernel time dominates and the fan-out
/// pays for itself.
pub const PARALLEL_BUILD_MIN_WORK: u64 = 1 << 16;

/// Index maps from a rebuilt engine's coordinate space into the engine it
/// is rebuilt from: `apps[i]` / `types[j]` give the previous batch/platform
/// index of new app `i` / new type `j`, or `None` for genuinely new
/// entries. Hints are *verified*, not trusted — a cell is only reused if
/// the mapped app's execution PMF, serial fraction, and the mapped type's
/// availability PMF are bit-identical — so stale hints cost recomputation,
/// never correctness.
#[derive(Debug, Clone, Copy, Default)]
pub struct RebuildMap<'a> {
    /// Per new-app index: the corresponding app index in the previous batch.
    pub apps: &'a [Option<usize>],
    /// Per new-type index: the corresponding type index in the previous
    /// platform.
    pub types: &'a [Option<usize>],
}

/// Verified-reuse plan: `src[c]` is the previous engine's arena index
/// whose cell is bit-identical to new cell `c`, or `None` to compute.
struct ReusePlan<'a> {
    prev: &'a Phi1Engine,
    src: Vec<Option<u32>>,
}

/// Bit-level PMF equality — stricter than `==`, which conflates
/// `-0.0`/`0.0`; reuse must guarantee *bit*-identical rebuilt engines.
fn pmf_bits_equal(a: &Pmf, b: &Pmf) -> bool {
    a.len() == b.len()
        && a.pulses().iter().zip(b.pulses()).all(|(x, y)| {
            x.value.to_bits() == y.value.to_bits() && x.prob.to_bits() == y.prob.to_bits()
        })
}

/// Per-option Stage-I statistics of one application at one deadline, as
/// produced by [`Phi1Engine::option_stats_into`]: the assignment itself,
/// its deadline probability and expected loaded time (the quantities every
/// allocator scores on), and the *minimum* loaded completion time — the
/// smallest deadline for which the option has any chance at all, which is
/// what the lattice solver's infeasibility proofs are built from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptionStats {
    /// The `(type, power-of-two count)` option.
    pub asg: Assignment,
    /// `Pr(T ≤ Δ)` of the loaded completion time.
    pub prob: f64,
    /// Expected loaded completion time.
    pub exp_time: f64,
    /// Smallest loaded completion-time pulse value: `Pr(T ≤ Δ) = 0` for
    /// every `Δ` below it, and `> 0` at it.
    pub min_loaded: f64,
}

/// Memoized per-`(application, processor type, power-of-two share)` PMF
/// cache backing every Stage-I φ₁ evaluation.
///
/// Build once per `(batch, platform)` — serially with [`Phi1Engine::build`]
/// or in parallel with [`Phi1Engine::build_parallel`] (bit-identical) —
/// then query deadline probabilities, expected times, loaded PMFs, and
/// Monte-Carlo sampler inputs without recomputing any PMF arithmetic.
#[derive(Debug, Clone)]
pub struct Phi1Engine {
    num_apps: usize,
    num_types: usize,
    /// `(app * num_types + type)` → arena range of that pair's cells
    /// (`k = log2(procs)` is the offset within the range); `None` where
    /// the application has no execution-time PMF for the type.
    index: Vec<Option<(u32, u32)>>,
    /// Contiguous cell arena, grouped by `(app, type)` with `k` ascending.
    /// Each cell carries its own cached SoA projections (see [`Cell`]).
    cells: Vec<Arc<Cell>>,
    /// Availability PMF per processor type (for Monte-Carlo sampling).
    availability: Vec<Pmf>,
}

impl Phi1Engine {
    /// Builds the cache serially.
    pub fn build(batch: &Batch, platform: &Platform) -> Result<Self> {
        Self::build_parallel(batch, platform, 1)
    }

    /// Builds the cache with `threads` workers. Cells are independent and
    /// stitched back by index, so the result is bit-identical for every
    /// thread count. Builds whose estimated kernel work is below
    /// [`PARALLEL_BUILD_MIN_WORK`] run serially — spawning threads for
    /// them is a net loss.
    pub fn build_parallel(batch: &Batch, platform: &Platform, threads: usize) -> Result<Self> {
        Self::build_parallel_with_min_work(batch, platform, threads, PARALLEL_BUILD_MIN_WORK)
    }

    /// [`build_parallel`](Self::build_parallel) with an explicit
    /// serial-fallback threshold (estimated pulse-pair operations). Pass
    /// `0` to force the multi-threaded path regardless of instance size —
    /// useful for tuning and for exercising the parallel code path in
    /// tests.
    pub fn build_parallel_with_min_work(
        batch: &Batch,
        platform: &Platform,
        threads: usize,
        min_work: u64,
    ) -> Result<Self> {
        Self::build_inner(batch, platform, threads, min_work, None, None).map(|(e, _)| e)
    }

    /// [`build_parallel`](Self::build_parallel) resolving cells against a
    /// content-addressed [`CellStore`] first: every cell whose exact
    /// inputs (execution PMF bits, Amdahl factor bits, availability PMF
    /// bits) are already interned is taken from the store — verified
    /// bitwise, so the engine is identical to an uncached build — and
    /// only genuinely new cells dispatch the fused kernel (and are
    /// interned for the next build). A build whose cells all resolve
    /// runs no kernel at all.
    pub fn build_parallel_with_store(
        batch: &Batch,
        platform: &Platform,
        threads: usize,
        store: &CellStore,
    ) -> Result<Self> {
        Self::build_inner(
            batch,
            platform,
            threads,
            PARALLEL_BUILD_MIN_WORK,
            None,
            Some(store),
        )
        .map(|(e, _)| e)
    }

    /// [`build_parallel_with_min_work`](Self::build_parallel_with_min_work)
    /// plus the work-stealing pool's scheduling metadata
    /// ([`PoolStats`]): which worker built how many `(app, type)` pair
    /// families and how many chunks it stole. The engine itself is
    /// bit-identical to the uninstrumented build; only the stats are
    /// interleaving-dependent. Intended for tuning and for the pool's
    /// starvation stress tests.
    pub fn build_parallel_instrumented(
        batch: &Batch,
        platform: &Platform,
        threads: usize,
        min_work: u64,
    ) -> Result<(Self, PoolStats)> {
        Self::build_inner(batch, platform, threads, min_work, None, None)
    }

    /// [`build_parallel_instrumented`](Self::build_parallel_instrumented)
    /// with an optional [`CellStore`] — the variant
    /// [`crate::engine_cache::EngineCache`] builds through.
    pub fn build_parallel_instrumented_with_store(
        batch: &Batch,
        platform: &Platform,
        threads: usize,
        min_work: u64,
        store: Option<&CellStore>,
    ) -> Result<(Self, PoolStats)> {
        Self::build_inner(batch, platform, threads, min_work, None, store)
    }

    /// Rebuilds the engine for a new `(batch, platform)` — typically a
    /// remnant of the previous one after an online event — reusing every
    /// `(app, type, k)` cell whose inputs are bit-identical under `map`'s
    /// (verified) index correspondences. Returns the new engine and the
    /// number of cells carried over. The result is bit-identical to a
    /// fresh [`build_parallel`](Self::build_parallel) on the same inputs:
    /// reuse is keyed on the exact inputs of the cell kernel (execution
    /// PMF bits, serial fraction bits, availability bits), so a reused
    /// cell *is* the cell a fresh build would compute.
    ///
    /// `prev_batch` / `prev_platform` must be the inputs this engine was
    /// built from; the engine does not retain them (the bookkeeping lives
    /// in [`crate::engine_cache::EngineCache`]).
    pub fn rebuild_with(
        &self,
        prev_batch: &Batch,
        prev_platform: &Platform,
        batch: &Batch,
        platform: &Platform,
        map: RebuildMap<'_>,
        threads: usize,
    ) -> Result<(Self, usize)> {
        self.rebuild_with_store(
            prev_batch,
            prev_platform,
            batch,
            platform,
            map,
            threads,
            None,
        )
    }

    /// [`rebuild_with`](Self::rebuild_with) that additionally resolves
    /// cells the reuse plan could not carry over against a
    /// [`CellStore`]. The reported reuse count covers the plan's
    /// carry-overs only; store hits show up in the store's own counters.
    #[allow(clippy::too_many_arguments)]
    pub fn rebuild_with_store(
        &self,
        prev_batch: &Batch,
        prev_platform: &Platform,
        batch: &Batch,
        platform: &Platform,
        map: RebuildMap<'_>,
        threads: usize,
        store: Option<&CellStore>,
    ) -> Result<(Self, usize)> {
        let num_types = platform.num_types();
        let prev_apps = prev_batch.apps();
        let mut src: Vec<Option<u32>> = Vec::new();
        for (i, (_, app)) in batch.iter().enumerate() {
            // Resolve and verify the app hint once per app.
            let prev_app = map
                .apps
                .get(i)
                .copied()
                .flatten()
                .and_then(|a| prev_apps.get(a).map(|pa| (a, pa)))
                .filter(|(_, pa)| {
                    pa.serial_fraction().to_bits() == app.serial_fraction().to_bits()
                });
            for j in 0..num_types {
                let ty = ProcTypeId(j);
                if app.exec_time(ty).is_err() {
                    continue;
                }
                let options = platform.pow2_options(ty)?.len();
                let prev_range = prev_app.and_then(|(a, pa)| {
                    let t = map
                        .types
                        .get(j)
                        .copied()
                        .flatten()
                        .filter(|&t| t < prev_platform.num_types())?;
                    let pt = ProcTypeId(t);
                    let prev_exec = pa.exec_time(pt).ok()?;
                    if !pmf_bits_equal(prev_exec, app.exec_time(ty).ok()?) {
                        return None;
                    }
                    let prev_avail = prev_platform.proc_type(pt).ok()?.availability();
                    let avail = platform.proc_type(ty).ok()?.availability();
                    if !pmf_bits_equal(prev_avail, avail) {
                        return None;
                    }
                    self.index.get(a * self.num_types + t).copied().flatten()
                });
                for k in 0..options {
                    src.push(
                        prev_range.and_then(|(start, len)| {
                            (k < len as usize).then_some(start + k as u32)
                        }),
                    );
                }
            }
        }
        let reused = src.iter().filter(|s| s.is_some()).count();
        let plan = ReusePlan { prev: self, src };
        let (engine, _) = Self::build_inner(
            batch,
            platform,
            threads,
            PARALLEL_BUILD_MIN_WORK,
            Some(&plan),
            store,
        )?;
        Ok((engine, reused))
    }

    fn build_inner(
        batch: &Batch,
        platform: &Platform,
        threads: usize,
        min_work: u64,
        reuse: Option<&ReusePlan<'_>>,
        store: Option<&CellStore>,
    ) -> Result<(Self, PoolStats)> {
        if batch.is_empty() {
            return Err(RaError::EmptyBatch);
        }
        if threads == 0 {
            return Err(RaError::BadParameter {
                name: "threads",
                value: 0.0,
            });
        }

        let num_apps = batch.len();
        let num_types = platform.num_types();

        // Enumerate the cell set. Pairs are emitted app-major then
        // type-major, each spanning its `k`-ascending cell run — exactly
        // the arena order — so the computed cells land in the arena by
        // plain extension.
        let mut pairs: Vec<Pair> = Vec::new();
        let mut total_cells = 0u32;
        let mut index: Vec<Option<(u32, u32)>> = Vec::with_capacity(num_apps * num_types);
        for (i, (id, app)) in batch.iter().enumerate() {
            debug_assert_eq!(i, id.0);
            for j in 0..num_types {
                let ty = ProcTypeId(j);
                if app.exec_time(ty).is_err() {
                    index.push(None);
                    continue;
                }
                let count = platform.pow2_options(ty)?.len() as u32;
                pairs.push(Pair {
                    app: i,
                    ty: j,
                    start: total_cells,
                    count,
                });
                index.push(Some((total_cells, count)));
                total_cells += count;
            }
        }
        if let Some(plan) = reuse {
            debug_assert_eq!(plan.src.len(), total_cells as usize);
        }

        let (cells, stats) =
            compute_cells(batch, platform, &pairs, threads, min_work, reuse, store)?;

        let availability = platform
            .types()
            .iter()
            .map(|t| t.availability().clone())
            .collect();
        Ok((
            Self {
                num_apps,
                num_types,
                index,
                cells,
                availability,
            },
            stats,
        ))
    }

    /// Number of applications covered.
    pub fn num_apps(&self) -> usize {
        self.num_apps
    }

    /// Number of processor types covered.
    pub fn num_types(&self) -> usize {
        self.num_types
    }

    /// Arena index of a triple's cell; `None` out of range.
    #[inline]
    fn cell_index(&self, app: usize, proc_type: ProcTypeId, procs: u32) -> Option<usize> {
        if !procs.is_power_of_two() || app >= self.num_apps || proc_type.0 >= self.num_types {
            return None;
        }
        let k = procs.trailing_zeros() as usize;
        let (start, len) = self.index[app * self.num_types + proc_type.0]?;
        if k >= len as usize {
            return None;
        }
        Some(start as usize + k)
    }

    fn cell(&self, app: usize, proc_type: ProcTypeId, procs: u32) -> Option<&Cell> {
        self.cell_index(app, proc_type, procs)
            .map(|c| self.cells[c].as_ref())
    }

    /// CDF of cell `c`'s loaded PMF straight from the cell's SoA
    /// projection — the same partition-point + prefix-table read as
    /// [`Pmf::cdf`] over the same bits, so the result is identical.
    #[inline]
    fn cell_cdf(&self, c: usize, deadline: f64) -> f64 {
        let cell = self.cells[c].as_ref();
        let idx = cell.loaded_values.partition_point(|&v| v <= deadline);
        if idx == 0 {
            0.0
        } else {
            cell.loaded.cumulative()[idx - 1]
        }
    }

    /// The loaded completion-time PMF of application `app` on `procs` (a
    /// power of two) processors of `proc_type`; `None` out of range.
    pub fn loaded_pmf(&self, app: usize, proc_type: ProcTypeId, procs: u32) -> Option<&Pmf> {
        self.cell(app, proc_type, procs).map(|c| &c.loaded)
    }

    /// The dedicated parallel-time PMF (Amdahl-rescaled, availability not
    /// applied) — the distribution the Monte-Carlo estimator samples.
    pub fn dedicated_pmf(&self, app: usize, proc_type: ProcTypeId, procs: u32) -> Option<&Pmf> {
        self.cell(app, proc_type, procs).map(|c| &c.dedicated)
    }

    /// The availability PMF of a processor type.
    pub fn availability_pmf(&self, proc_type: ProcTypeId) -> Option<&Pmf> {
        self.availability.get(proc_type.0)
    }

    /// Cached expected loaded completion time.
    pub fn expected_time(&self, app: usize, proc_type: ProcTypeId, procs: u32) -> Option<f64> {
        self.cell(app, proc_type, procs).map(|c| c.expected)
    }

    /// `Pr(T ≤ Δ)` for a triple at an arbitrary deadline — a prefix-table
    /// read on the SoA mirror of the cached loaded PMF, bit-identical to
    /// [`cdsf_system::parallel_time::completion_probability`].
    pub fn prob(
        &self,
        app: usize,
        proc_type: ProcTypeId,
        procs: u32,
        deadline: f64,
    ) -> Option<f64> {
        self.cell_index(app, proc_type, procs)
            .map(|c| self.cell_cdf(c, deadline))
    }

    /// `φ₁` of a full allocation at `deadline` by lookup; `None` if any
    /// triple is unknown. (Capacity feasibility is *not* checked here.)
    ///
    /// Once the running product hits exactly 0.0 the remaining CDF reads
    /// cannot change it, so they are skipped — only the (cheap) existence
    /// checks continue, preserving the `None`-on-unknown contract.
    pub fn joint(&self, alloc: &Allocation, deadline: f64) -> Option<f64> {
        let mut p = 1.0;
        for (i, asg) in alloc.assignments().iter().enumerate() {
            let c = self.cell_index(i, asg.proc_type, asg.procs)?;
            if p == 0.0 {
                continue;
            }
            p *= self.cell_cdf(c, deadline);
        }
        Some(p)
    }

    /// All cached `(type, pow2 count)` options of one application, in
    /// deterministic (type-major, count-ascending) order.
    pub fn options(&self, app: usize) -> Vec<Assignment> {
        let mut out = Vec::new();
        if app >= self.num_apps {
            return out;
        }
        for j in 0..self.num_types {
            if let Some((_, len)) = self.index[app * self.num_types + j] {
                for k in 0..len as usize {
                    out.push(Assignment {
                        proc_type: ProcTypeId(j),
                        procs: 1 << k,
                    });
                }
            }
        }
        out
    }

    /// Appends every option of `app` with its statistics at `deadline` to
    /// `out` — one linear pass over the application's arena cells, in the
    /// same deterministic (type-major, count-ascending) order as
    /// [`Phi1Engine::options`]. Each entry is three SoA reads (prefix-CDF
    /// lookup, cached expectation, first pulse value); nothing is
    /// recomputed and nothing beyond `out`'s growth is allocated, so the
    /// lattice solver can rebuild its bound tables from a warm scratch
    /// without touching the allocator. Out-of-range `app` appends nothing.
    pub fn option_stats_into(&self, app: usize, deadline: f64, out: &mut Vec<OptionStats>) {
        if app >= self.num_apps {
            return;
        }
        for j in 0..self.num_types {
            let Some((start, len)) = self.index[app * self.num_types + j] else {
                continue;
            };
            for k in 0..len {
                let c = (start + k) as usize;
                let cell = self.cells[c].as_ref();
                out.push(OptionStats {
                    asg: Assignment {
                        proc_type: ProcTypeId(j),
                        procs: 1 << k,
                    },
                    prob: self.cell_cdf(c, deadline),
                    exp_time: cell.expected,
                    min_loaded: cell.loaded_values[0],
                });
            }
        }
    }

    /// Derives the memoized [`ProbabilityTable`] for one deadline in one
    /// linear pass over the arena. Exactly equal — not merely close — to
    /// [`ProbabilityTable::build`] on the same inputs, because both
    /// evaluate the same loaded PMFs' CDFs.
    pub fn table(&self, deadline: f64) -> Result<ProbabilityTable> {
        if !(deadline > 0.0) || !deadline.is_finite() {
            return Err(RaError::BadParameter {
                name: "deadline",
                value: deadline,
            });
        }
        let mut probs = Vec::with_capacity(self.num_apps);
        for app in 0..self.num_apps {
            let mut per_type = Vec::with_capacity(self.num_types);
            for ty in 0..self.num_types {
                per_type.push(self.index[app * self.num_types + ty].map(|(start, len)| {
                    (start..start + len)
                        .map(|c| self.cell_cdf(c as usize, deadline))
                        .collect()
                }));
            }
            probs.push(per_type);
        }
        Ok(ProbabilityTable::from_raw(probs, deadline))
    }

    /// FNV-1a digest of every table the engine serves answers from: the
    /// cell layout plus the exact bits of each cell's dedicated and loaded
    /// PMFs (values, probabilities, prefix CDFs), cached expectations, and
    /// the availability PMFs. Two engines with equal fingerprints answer
    /// every `prob`/`expected_time`/`table` query with the same bits, so
    /// the serving layer's snapshot/restore and crash-replay suites assert
    /// state equality through this one `u64` instead of walking the
    /// arenas.
    pub fn table_fingerprint(&self) -> u64 {
        let mut h = crate::engine_cache::fnv1a_seed();
        h = crate::engine_cache::fnv1a_u64(h, self.num_apps as u64);
        h = crate::engine_cache::fnv1a_u64(h, self.num_types as u64);
        for slot in &self.index {
            match slot {
                None => h = crate::engine_cache::fnv1a_u64(h, u64::MAX),
                Some((start, len)) => {
                    h = crate::engine_cache::fnv1a_u64(h, *start as u64);
                    h = crate::engine_cache::fnv1a_u64(h, *len as u64);
                }
            }
        }
        for cell in &self.cells {
            for pmf in [&cell.dedicated, &cell.loaded] {
                h = crate::engine_cache::fnv1a_pmf(h, pmf);
            }
        }
        for cell in &self.cells {
            h = crate::engine_cache::fnv1a_u64(h, cell.expected.to_bits());
        }
        for pmf in &self.availability {
            h = crate::engine_cache::fnv1a_pmf(h, pmf);
        }
        h
    }
}

/// Computes all cells pair by pair through the fused scale→quotient
/// kernel, fanning out over the [`cdsf_system::pool`] work-stealing pool
/// only when the estimated kernel work of the cells that actually need
/// computing is at least `min_work`. Results are returned in arena order;
/// the first failing pair (in pair order) decides the error — that is the
/// pool's min-task-index error contract.
///
/// The unit of work is an `(app, type)` *pair family*, never a single
/// cell: the fused `scale_quotient_family` kernel shares the
/// availability-expanded probability products across the pair's whole
/// power-of-two run, and splitting below pair granularity would forfeit
/// that sharing. Each pair's cells go into a per-pair [`OnceLock`] slot
/// and are stitched in pair order afterwards, so the arena — and with it
/// the whole engine — is bit-identical for every thread count and every
/// steal interleaving. Per-worker [`CombineScratch`] arenas are created
/// once and reused across all (owned and stolen) pairs a worker executes.
fn compute_cells(
    batch: &Batch,
    platform: &Platform,
    pairs: &[Pair],
    threads: usize,
    min_work: u64,
    reuse: Option<&ReusePlan<'_>>,
    store: Option<&CellStore>,
) -> Result<(Vec<Arc<Cell>>, PoolStats)> {
    let apps: Vec<_> = batch.iter().map(|(_, app)| app).collect();
    let total_cells = pairs.last().map_or(0, |p| (p.start + p.count) as usize);

    // Resolve every cell that needs no kernel up front: first the
    // rebuild plan's verified carry-overs, then the content-addressed
    // store (both return cells whose inputs are bit-identical to what
    // the kernel would consume, so a resolved cell *is* the cell a
    // fresh build would compute). The resolution pass is serial and
    // cheap — hashing and bitwise comparison over the input PMFs —
    // which is what turns a high-overlap build into a near-pure lookup:
    // only the leftover cells are weighed and dispatched to the pool.
    let mut ready: Vec<Option<Arc<Cell>>> = vec![None; total_cells];
    if let Some(plan) = reuse {
        for (arena, src) in plan.src.iter().enumerate() {
            if let Some(prev) = src {
                ready[arena] = Some(Arc::clone(&plan.prev.cells[*prev as usize]));
            }
        }
    }
    // `hashes[arena]` is the store key of each unresolved cell, kept so
    // workers intern freshly computed cells without re-hashing inputs.
    let mut hashes: Vec<u64> = Vec::new();
    if let Some(store) = store {
        hashes = vec![0u64; total_cells];
        for pair in pairs {
            let app = apps[pair.app];
            let ty = ProcTypeId(pair.ty);
            let (Ok(exec), Ok(proc)) = (app.exec_time(ty), platform.proc_type(ty)) else {
                continue;
            };
            let avail = proc.availability();
            let base = cell_store::pair_hash(exec, avail);
            let s = app.serial_fraction();
            for k in 0..pair.count {
                let arena = (pair.start + k) as usize;
                let factor = amdahl_factor(s, 1u32 << k);
                hashes[arena] = cell_store::cell_hash(base, factor);
                if ready[arena].is_none() {
                    ready[arena] = store.get(hashes[arena], exec, factor, avail);
                }
            }
        }
    }

    // Estimated work per pair: pulse-pair kernel operations over the
    // cells not already resolved.
    let work: Vec<u64> = pairs
        .iter()
        .map(|p| {
            let ty = ProcTypeId(p.ty);
            let exec_len = apps[p.app].exec_time(ty).map_or(0, |e| e.len()) as u64;
            let avail_len = platform.proc_type(ty).map_or(0, |t| t.availability().len()) as u64;
            let computed = (0..p.count)
                .filter(|&k| ready[(p.start + k) as usize].is_none())
                .count() as u64;
            computed * exec_len * avail_len
        })
        .collect();
    let total_work: u64 = work.iter().sum();

    let ready = &ready;
    let hashes = &hashes;
    let compute_pair =
        |pair: &Pair, scratch: &mut CombineScratch, out: &mut Vec<Arc<Cell>>| -> Result<()> {
            let app = apps[pair.app];
            let ty = ProcTypeId(pair.ty);
            let s = app.serial_fraction();
            // The Amdahl factors of the cells that need computing; the
            // fused family call shares the availability-expanded
            // probability products across all of them.
            let factors: Vec<f64> = (0..pair.count)
                .filter(|&k| ready[(pair.start + k) as usize].is_none())
                .map(|k| amdahl_factor(s, 1u32 << k))
                .collect();
            let exec = app.exec_time(ty)?;
            let avail = platform.proc_type(ty)?.availability();
            // Fully resolved families skip the kernel outright — not even
            // the shared probability-product expansion runs.
            let mut loadeds = if factors.is_empty() {
                Vec::new()
            } else {
                exec.scale_quotient_family(&factors, avail, scratch)
                    .map_err(SystemError::from)?
            }
            .into_iter();
            for k in 0..pair.count {
                let arena = (pair.start + k) as usize;
                match &ready[arena] {
                    Some(cell) => out.push(Arc::clone(cell)),
                    None => {
                        let dedicated = parallel_time_pmf(app, ty, 1u32 << k)?;
                        let loaded = loadeds.next().expect("family aligned with factors");
                        let cell = Arc::new(Cell::new(dedicated, loaded));
                        if let Some(store) = store {
                            store.insert(
                                hashes[arena],
                                exec,
                                amdahl_factor(s, 1u32 << k),
                                avail,
                                Arc::clone(&cell),
                            );
                        }
                        out.push(cell);
                    }
                }
            }
            Ok(())
        };

    let threads = if total_work < min_work {
        1
    } else {
        threads.min(pairs.len()).max(1)
    };

    // One result slot per pair; the pool schedules, the slots preserve
    // arena order, the stitch below is the in-order deterministic
    // reduction.
    let slots: Vec<OnceLock<Vec<Arc<Cell>>>> = (0..pairs.len()).map(|_| OnceLock::new()).collect();
    let stats = pool::run(
        threads,
        pairs.len(),
        Some(&work),
        CombineScratch::new,
        |idx, scratch: &mut CombineScratch| -> Result<()> {
            let pair = &pairs[idx];
            let mut out = Vec::with_capacity(pair.count as usize);
            compute_pair(pair, scratch, &mut out)?;
            slots[idx].set(out).expect("each pair is computed once");
            Ok(())
        },
    )?;

    let mut out = Vec::with_capacity(total_cells);
    for slot in slots {
        out.extend(slot.into_inner().expect("error-free run fills every slot"));
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocators::testutil::*;
    use cdsf_system::parallel_time::{completion_probability, loaded_time_pmf};

    #[test]
    fn cells_match_direct_pmf_arithmetic() {
        let (b, p) = (paper_batch(32), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        for (i, (_, app)) in b.iter().enumerate() {
            for j in 0..p.num_types() {
                let ty = ProcTypeId(j);
                for n in p.pow2_options(ty).unwrap() {
                    let direct = loaded_time_pmf(app, &p, ty, n).unwrap();
                    assert_eq!(engine.loaded_pmf(i, ty, n).unwrap(), &direct);
                    let direct_ded = parallel_time_pmf(app, ty, n).unwrap();
                    assert_eq!(engine.dedicated_pmf(i, ty, n).unwrap(), &direct_ded);
                    assert_eq!(
                        engine.expected_time(i, ty, n).unwrap(),
                        direct.expectation()
                    );
                    let p_direct = completion_probability(app, &p, ty, n, DEADLINE).unwrap();
                    assert_eq!(engine.prob(i, ty, n, DEADLINE).unwrap(), p_direct);
                }
            }
        }
    }

    #[test]
    fn soa_mirror_matches_pmf_cdf_everywhere() {
        let (b, p) = (paper_batch(32), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        for i in 0..b.len() {
            for j in 0..p.num_types() {
                let ty = ProcTypeId(j);
                for n in p.pow2_options(ty).unwrap() {
                    let pmf = engine.loaded_pmf(i, ty, n).unwrap();
                    // Probe below, between, at, and above support points.
                    let mut probes = vec![0.0, pmf.min_value() - 1.0, pmf.max_value() + 1.0];
                    for pulse in pmf.pulses() {
                        probes.push(pulse.value);
                        probes.push(pulse.value + 0.5);
                    }
                    let pmf = pmf.clone();
                    for x in probes {
                        assert_eq!(engine.prob(i, ty, n, x).unwrap(), pmf.cdf(x));
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        let (b, p) = (paper_batch(64), paper_platform());
        let serial = Phi1Engine::build(&b, &p).unwrap();
        for threads in [2usize, 3, 8, 64] {
            let par = Phi1Engine::build_parallel(&b, &p, threads).unwrap();
            for i in 0..b.len() {
                for j in 0..p.num_types() {
                    let ty = ProcTypeId(j);
                    for n in p.pow2_options(ty).unwrap() {
                        assert_eq!(serial.loaded_pmf(i, ty, n), par.loaded_pmf(i, ty, n));
                        assert_eq!(serial.dedicated_pmf(i, ty, n), par.dedicated_pmf(i, ty, n));
                    }
                }
            }
        }
    }

    #[test]
    fn table_equals_uncached_probability_table() {
        let (b, p) = (paper_batch(32), paper_platform());
        let engine = Phi1Engine::build_parallel(&b, &p, 4).unwrap();
        for deadline in [500.0, DEADLINE, 10_000.0] {
            let cached = engine.table(deadline).unwrap();
            let uncached = ProbabilityTable::build(&b, &p, deadline).unwrap();
            for i in 0..b.len() {
                for j in 0..p.num_types() {
                    let ty = ProcTypeId(j);
                    for n in p.pow2_options(ty).unwrap() {
                        assert_eq!(cached.prob(i, ty, n), uncached.prob(i, ty, n));
                    }
                }
            }
        }
    }

    #[test]
    fn options_match_allocator_helper() {
        let (b, p) = (paper_batch(8), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        for (i, (_, app)) in b.iter().enumerate() {
            let direct = crate::allocators::app_options(app, &p).unwrap();
            assert_eq!(engine.options(i), direct);
        }
    }

    #[test]
    fn option_stats_match_scalar_queries() {
        let (b, p) = (paper_batch(16), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        for app in 0..b.len() {
            let mut stats = Vec::new();
            engine.option_stats_into(app, DEADLINE, &mut stats);
            let opts = engine.options(app);
            assert_eq!(stats.len(), opts.len());
            for (s, &asg) in stats.iter().zip(&opts) {
                assert_eq!(s.asg, asg);
                assert_eq!(
                    s.prob,
                    engine
                        .prob(app, asg.proc_type, asg.procs, DEADLINE)
                        .unwrap()
                );
                assert_eq!(
                    s.exp_time,
                    engine.expected_time(app, asg.proc_type, asg.procs).unwrap()
                );
                let pmf = engine.loaded_pmf(app, asg.proc_type, asg.procs).unwrap();
                assert_eq!(s.min_loaded, pmf.min_value());
                // Below the minimum pulse the option is hopeless; at it,
                // it is not — the property the infeasibility proof uses.
                assert_eq!(
                    engine.prob(app, asg.proc_type, asg.procs, s.min_loaded),
                    Some(pmf.cdf(s.min_loaded))
                );
                assert!(pmf.cdf(s.min_loaded) > 0.0);
                assert_eq!(pmf.cdf(s.min_loaded * 0.999), 0.0);
            }
        }
        let mut stats = Vec::new();
        engine.option_stats_into(99, DEADLINE, &mut stats);
        assert!(stats.is_empty());
    }

    #[test]
    fn out_of_range_lookups_are_none() {
        let (b, p) = (paper_batch(8), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        assert!(engine.prob(0, ProcTypeId(0), 3, DEADLINE).is_none());
        assert!(engine.prob(0, ProcTypeId(9), 2, DEADLINE).is_none());
        assert!(engine.prob(9, ProcTypeId(0), 2, DEADLINE).is_none());
        assert!(engine.prob(0, ProcTypeId(0), 64, DEADLINE).is_none());
        assert!(engine.expected_time(0, ProcTypeId(0), 64).is_none());
    }

    #[test]
    fn joint_zero_short_circuit_keeps_none_contract() {
        let (b, p) = (paper_batch(8), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        // An impossible deadline drives every factor to 0.0; the early
        // exit must still return Some(0.0) for known triples...
        let alloc = Allocation::new(vec![
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 1,
            };
            b.len()
        ]);
        assert_eq!(engine.joint(&alloc, 1e-6), Some(0.0));
        // ...and None when a later triple is unknown, even after the
        // product has already hit zero.
        let mut bad = alloc.assignments().to_vec();
        bad[b.len() - 1].procs = 3;
        assert_eq!(engine.joint(&Allocation::new(bad), 1e-6), None);
    }

    fn assert_engines_identical(a: &Phi1Engine, b: &Phi1Engine) {
        assert_eq!(a.num_apps, b.num_apps);
        assert_eq!(a.num_types, b.num_types);
        assert_eq!(a.index, b.index);
        assert_eq!(a.cells.len(), b.cells.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert!(pmf_bits_equal(&x.dedicated, &y.dedicated));
            assert!(pmf_bits_equal(&x.loaded, &y.loaded));
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&x.loaded_values), bits(&y.loaded_values));
            assert_eq!(bits(x.loaded.cumulative()), bits(y.loaded.cumulative()));
            assert_eq!(x.expected.to_bits(), y.expected.to_bits());
        }
        for (x, y) in a.availability.iter().zip(&b.availability) {
            assert!(pmf_bits_equal(x, y));
        }
    }

    /// A copy of `app` with every execution PMF scaled by `frac` — the
    /// shape of a remnant-app rescale in the online scheduler.
    fn scaled_app(app: &cdsf_system::Application, frac: f64) -> cdsf_system::Application {
        let mut b = cdsf_system::Application::builder(app.name())
            .serial_iters(app.serial_iters())
            .parallel_iters(app.parallel_iters());
        for j in 0..app.num_proc_types() {
            b = b.exec_time_pmf(app.exec_time(ProcTypeId(j)).unwrap().scale(frac).unwrap());
        }
        b.build().unwrap()
    }

    #[test]
    fn forced_parallel_build_is_bit_identical_to_serial() {
        // `min_work = 0` forces the threaded path even though this
        // instance sits below the serial-fallback threshold.
        let (b, p) = (paper_batch(32), paper_platform());
        let serial = Phi1Engine::build(&b, &p).unwrap();
        for threads in [2usize, 3, 4, 16] {
            let par = Phi1Engine::build_parallel_with_min_work(&b, &p, threads, 0).unwrap();
            assert_engines_identical(&serial, &par);
        }
    }

    #[test]
    fn rebuild_with_identity_map_reuses_every_cell() {
        let (b, p) = (paper_batch(16), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        let apps: Vec<Option<usize>> = (0..b.len()).map(Some).collect();
        let types: Vec<Option<usize>> = (0..p.num_types()).map(Some).collect();
        let map = RebuildMap {
            apps: &apps,
            types: &types,
        };
        let (rebuilt, reused) = engine.rebuild_with(&b, &p, &b, &p, map, 2).unwrap();
        assert_eq!(reused, engine.cells.len());
        assert_engines_identical(&engine, &rebuilt);
        assert_engines_identical(&rebuilt, &Phi1Engine::build(&b, &p).unwrap());
    }

    #[test]
    fn rebuild_with_changed_app_recomputes_only_that_app() {
        let (b, p) = (paper_batch(16), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        // App 1 keeps running and its remnant shrinks; everyone else is
        // untouched.
        let mut apps_vec: Vec<_> = b.apps().to_vec();
        apps_vec[1] = scaled_app(&apps_vec[1], 0.5);
        let changed = Batch::new(apps_vec);
        let hints: Vec<Option<usize>> = (0..b.len()).map(Some).collect();
        let types: Vec<Option<usize>> = (0..p.num_types()).map(Some).collect();
        let map = RebuildMap {
            apps: &hints,
            types: &types,
        };
        let (rebuilt, reused) = engine.rebuild_with(&b, &p, &changed, &p, map, 2).unwrap();
        let per_app = engine.cells.len() / b.len();
        assert_eq!(reused, engine.cells.len() - per_app);
        assert_engines_identical(&rebuilt, &Phi1Engine::build(&changed, &p).unwrap());
    }

    #[test]
    fn rebuild_with_subset_and_stale_hints_stays_bit_identical() {
        let (b, p) = (paper_batch(12), paper_platform());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        // Remnant: apps [2, 0] with app 0 rescaled; one hint is stale
        // (points at the wrong app), one is missing entirely.
        let apps_vec = b.apps();
        let remnant = Batch::new(vec![apps_vec[2].clone(), scaled_app(&apps_vec[0], 0.25)]);
        let hints = [Some(1usize), None]; // 1 is the wrong app, 0 unhinted
        let types: Vec<Option<usize>> = (0..p.num_types()).map(Some).collect();
        let map = RebuildMap {
            apps: &hints,
            types: &types,
        };
        let (rebuilt, reused) = engine.rebuild_with(&b, &p, &remnant, &p, map, 1).unwrap();
        // Verification rejects the stale hint and the rescaled app, so
        // nothing is reused — but the result is still exactly right.
        assert_eq!(reused, 0);
        assert_engines_identical(&rebuilt, &Phi1Engine::build(&remnant, &p).unwrap());

        // Correct hints: the unscaled remnant app's cells carry over.
        let hints = [Some(2usize), Some(0)];
        let map = RebuildMap {
            apps: &hints,
            types: &types,
        };
        let (rebuilt, reused) = engine.rebuild_with(&b, &p, &remnant, &p, map, 1).unwrap();
        let per_app = engine.cells.len() / b.len();
        assert_eq!(reused, per_app);
        assert_engines_identical(&rebuilt, &Phi1Engine::build(&remnant, &p).unwrap());
    }

    #[test]
    fn rejects_bad_inputs() {
        let (b, p) = (paper_batch(8), paper_platform());
        assert!(Phi1Engine::build_parallel(&b, &p, 0).is_err());
        assert!(Phi1Engine::build(&cdsf_system::Batch::new(vec![]), &p).is_err());
        let engine = Phi1Engine::build(&b, &p).unwrap();
        assert!(engine.table(0.0).is_err());
        assert!(engine.table(f64::NAN).is_err());
    }
}
