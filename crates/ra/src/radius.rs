//! The FePIA robustness radius — the deterministic companion to `φ₁`.
//!
//! The paper's robustness definitions descend from Ali, Maciejewski &
//! Siegel's FePIA procedure ("Measuring the robustness of a resource
//! allocation", TPDS 2004): for each *performance feature* (here: an
//! application's completion time) and *perturbation parameter* (here: the
//! availability of its processor group), the **robustness radius** is the
//! smallest change of the perturbation parameter that drives the feature
//! past its acceptable bound, and the **robustness metric** is the
//! minimum radius over all features.
//!
//! In the CDSF model the completion time of application `i` at
//! availability `a` is `T_i(a) = t_i / a` with `t_i` the Amdahl-rescaled
//! *dedicated* expected time, so the critical availability is simply
//! `a*_i = t_i / Δ`: below it the deadline is violated. The radius in
//! availability units is `r_i = E[α_j] − a*_i` — how much expected
//! availability can erode before application `i` misses Δ. This gives a
//! closed-form, distribution-free counterpart to the stochastic `φ₁`, and
//! it ranks allocations almost identically (tested below), while being
//! `O(N)` to evaluate.

use crate::allocation::Allocation;
use crate::{RaError, Result};
use cdsf_system::parallel_time::parallel_time_pmf;
use cdsf_system::{Batch, Platform};
use serde::{Deserialize, Serialize};

/// Per-application robustness radii and the system metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadiusReport {
    /// Critical availability `a*_i = t_i/Δ` per application (deadline is
    /// violated below it). May exceed 1 when the application cannot meet
    /// Δ even on fully-dedicated processors.
    pub critical_availability: Vec<f64>,
    /// Radius `r_i = E[α_{j(i)}] − a*_i` per application. Negative when
    /// the application is already expected to violate Δ.
    pub radius: Vec<f64>,
    /// FePIA system robustness: `min_i r_i`.
    pub system_radius: f64,
    /// Index of the minimizing (most fragile) application.
    pub critical_app: usize,
}

/// Computes the FePIA robustness radii of an allocation.
///
/// ```
/// use cdsf_ra::{radius::robustness_radius, Allocation, Assignment};
/// use cdsf_system::ProcTypeId;
/// use cdsf_workloads::paper;
///
/// let alloc = Allocation::new(vec![
///     Assignment { proc_type: ProcTypeId(0), procs: 2 },
///     Assignment { proc_type: ProcTypeId(0), procs: 2 },
///     Assignment { proc_type: ProcTypeId(1), procs: 8 },
/// ]);
/// let r = robustness_radius(&paper::batch(), &paper::platform(), &alloc, paper::DEADLINE)
///     .unwrap();
/// // Application 3 is the fragile one, with ~0.27 availability to spare.
/// assert_eq!(r.critical_app, 2);
/// assert!(r.system_radius > 0.25 && r.system_radius < 0.30);
/// ```
pub fn robustness_radius(
    batch: &Batch,
    platform: &Platform,
    alloc: &Allocation,
    deadline: f64,
) -> Result<RadiusReport> {
    alloc.validate(batch, platform)?;
    if !(deadline > 0.0) || !deadline.is_finite() {
        return Err(RaError::BadParameter {
            name: "deadline",
            value: deadline,
        });
    }
    let mut critical = Vec::with_capacity(batch.len());
    let mut radius = Vec::with_capacity(batch.len());
    for ((_, app), asg) in batch.iter().zip(alloc.assignments()) {
        let dedicated = parallel_time_pmf(app, asg.proc_type, asg.procs)?.expectation();
        let a_star = dedicated / deadline;
        let expected_avail = platform.proc_type(asg.proc_type)?.expected_availability();
        critical.push(a_star);
        radius.push(expected_avail - a_star);
    }
    let (critical_app, &system_radius) = radius
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty batch");
    Ok(RadiusReport {
        critical_availability: critical,
        radius,
        system_radius,
        critical_app,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Assignment;
    use crate::allocators::testutil::{paper_batch, paper_platform, DEADLINE};
    use crate::robustness::evaluate;
    use cdsf_system::ProcTypeId;

    fn naive_alloc() -> Allocation {
        Allocation::new(vec![
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 4,
            },
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 4,
            },
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 4,
            },
        ])
    }

    fn robust_alloc() -> Allocation {
        Allocation::new(vec![
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2,
            },
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2,
            },
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 8,
            },
        ])
    }

    #[test]
    fn radii_match_hand_computation_on_paper_example() {
        let report = robustness_radius(
            &paper_batch(64),
            &paper_platform(),
            &robust_alloc(),
            DEADLINE,
        )
        .unwrap();
        // App 1: dedicated 1170 → a* = 0.36; E[α1] = 0.875 → r = 0.515.
        assert!((report.critical_availability[0] - 1170.0 / 3250.0).abs() < 0.01);
        assert!((report.radius[0] - (0.875 - 1170.0 / 3250.0)).abs() < 0.01);
        // App 3: dedicated 1350 → a* = 0.4154; E[α2] = 0.6875 → r = 0.272.
        assert!((report.radius[2] - (0.6875 - 1350.0 / 3250.0)).abs() < 0.01);
        // The fragile application is app 3, as in the stochastic analysis.
        assert_eq!(report.critical_app, 2);
        assert!(report.system_radius > 0.25 && report.system_radius < 0.30);
    }

    #[test]
    fn radius_ranks_allocations_like_phi1() {
        let (b, p) = (paper_batch(64), paper_platform());
        let r_naive = robustness_radius(&b, &p, &naive_alloc(), DEADLINE).unwrap();
        let r_robust = robustness_radius(&b, &p, &robust_alloc(), DEADLINE).unwrap();
        let phi_naive = evaluate(&b, &p, &naive_alloc(), DEADLINE).unwrap().joint;
        let phi_robust = evaluate(&b, &p, &robust_alloc(), DEADLINE).unwrap().joint;
        assert!(phi_robust > phi_naive);
        assert!(
            r_robust.system_radius > r_naive.system_radius,
            "radius ranking disagrees: {} vs {}",
            r_robust.system_radius,
            r_naive.system_radius
        );
    }

    #[test]
    fn negative_radius_flags_hopeless_applications() {
        // Naive allocation: app 3 on 4×type2 has dedicated time 2300 →
        // a* = 0.708 > E[α2] = 0.6875 → negative radius: expected to miss Δ.
        let report = robustness_radius(
            &paper_batch(32),
            &paper_platform(),
            &naive_alloc(),
            DEADLINE,
        )
        .unwrap();
        assert!(report.radius[2] < 0.0, "{:?}", report.radius);
        assert_eq!(report.critical_app, 2);
        assert!(report.system_radius < 0.0);
    }

    #[test]
    fn radius_validates_inputs() {
        let (b, p) = (paper_batch(8), paper_platform());
        assert!(robustness_radius(&b, &p, &robust_alloc(), 0.0).is_err());
        assert!(robustness_radius(&b, &p, &robust_alloc(), f64::NAN).is_err());
        let short = Allocation::new(vec![Assignment {
            proc_type: ProcTypeId(0),
            procs: 2,
        }]);
        assert!(robustness_radius(&b, &p, &short, DEADLINE).is_err());
    }
}
