//! The robustness *surface*: `φ₁` as a function of per-type availability
//! degradation.
//!
//! The FePIA framework the paper builds on visualizes robustness as the
//! distance from the operating point to the failure boundary in
//! perturbation space. This module computes that picture for the CDSF
//! model: scale each processor type's availability by an independent
//! factor, re-evaluate `φ₁` exactly, and tabulate the surface. The
//! boundary where `φ₁` crosses a threshold *is* the robustness boundary;
//! its distance from `(1, 1, …)` along the diagonal is the paper's
//! weighted-availability-decrease tolerance, and along each axis it is the
//! per-type robustness radius.

use crate::allocation::Allocation;
use crate::robustness::evaluate;
use crate::{RaError, Result};
use cdsf_system::{Batch, Platform};
use serde::{Deserialize, Serialize};

/// One point of the surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurfacePoint {
    /// Availability scale factor per processor type (1.0 = historical).
    pub scales: Vec<f64>,
    /// Exact `φ₁` at that operating point.
    pub phi1: f64,
}

/// Computes the surface over a regular grid: every combination of scale
/// factors from `scales` (applied to every type independently).
///
/// Grid size is `scales.len() ^ num_types`; with the default 2-type
/// platform and ~10 scales this is 100 exact evaluations.
pub fn robustness_surface(
    batch: &Batch,
    platform: &Platform,
    alloc: &Allocation,
    deadline: f64,
    scales: &[f64],
) -> Result<Vec<SurfacePoint>> {
    alloc.validate(batch, platform)?;
    if scales.is_empty() {
        return Err(RaError::BadParameter {
            name: "scales.len",
            value: 0.0,
        });
    }
    for &s in scales {
        if !(s > 0.0 && s <= 1.0) {
            return Err(RaError::BadParameter {
                name: "scale",
                value: s,
            });
        }
    }
    let t = platform.num_types();
    let grid_size = scales.len().pow(t as u32);
    let mut out = Vec::with_capacity(grid_size);
    let mut idx = vec![0usize; t];
    loop {
        let point_scales: Vec<f64> = idx.iter().map(|&i| scales[i]).collect();
        let pmfs: Vec<_> = platform
            .types()
            .iter()
            .zip(&point_scales)
            .map(|(ty, &s)| {
                ty.availability()
                    .map(|a| (a * s).clamp(1e-9, 1.0))
                    .map_err(cdsf_system::SystemError::from)
            })
            .collect::<std::result::Result<_, _>>()?;
        let scaled = platform.with_availabilities(&pmfs)?;
        let phi1 = evaluate(batch, &scaled, alloc, deadline)?.joint;
        out.push(SurfacePoint {
            scales: point_scales,
            phi1,
        });

        // Odometer increment.
        let mut k = 0;
        loop {
            idx[k] += 1;
            if idx[k] < scales.len() {
                break;
            }
            idx[k] = 0;
            k += 1;
            if k == t {
                return Ok(out);
            }
        }
    }
}

/// The diagonal slice of the surface (all types scaled together) and the
/// largest uniform degradation keeping `φ₁ ≥ threshold` — a continuous
/// version of the paper's case study.
pub fn diagonal_tolerance(
    batch: &Batch,
    platform: &Platform,
    alloc: &Allocation,
    deadline: f64,
    threshold: f64,
    steps: usize,
) -> Result<f64> {
    if steps == 0 {
        return Err(RaError::BadParameter {
            name: "steps",
            value: 0.0,
        });
    }
    if !(0.0..=1.0).contains(&threshold) {
        return Err(RaError::BadParameter {
            name: "threshold",
            value: threshold,
        });
    }
    let mut tolerated: f64 = 0.0;
    for k in 0..=steps {
        let s = 1.0 - k as f64 / steps as f64 * 0.99; // scale ∈ [0.01, 1]
        let pmfs: Vec<_> = platform
            .types()
            .iter()
            .map(|ty| {
                ty.availability()
                    .map(|a| (a * s).clamp(1e-9, 1.0))
                    .map_err(cdsf_system::SystemError::from)
            })
            .collect::<std::result::Result<_, _>>()?;
        let scaled = platform.with_availabilities(&pmfs)?;
        let phi1 = evaluate(batch, &scaled, alloc, deadline)?.joint;
        if phi1 >= threshold {
            tolerated = tolerated.max(1.0 - s);
        }
    }
    Ok(tolerated)
}

/// Renders the surface as CSV (`scale_type1,...,scale_typeN,phi1`).
pub fn surface_to_csv(points: &[SurfacePoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if let Some(first) = points.first() {
        for j in 0..first.scales.len() {
            let _ = write!(out, "scale_type{},", j + 1);
        }
        out.push_str("phi1\n");
    }
    for p in points {
        for s in &p.scales {
            let _ = write!(out, "{s:.4},");
        }
        let _ = writeln!(out, "{:.6}", p.phi1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Assignment;
    use crate::allocators::testutil::{paper_batch, paper_platform, DEADLINE};
    use cdsf_system::ProcTypeId;

    fn robust_alloc() -> Allocation {
        Allocation::new(vec![
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2,
            },
            Assignment {
                proc_type: ProcTypeId(0),
                procs: 2,
            },
            Assignment {
                proc_type: ProcTypeId(1),
                procs: 8,
            },
        ])
    }

    #[test]
    fn surface_has_full_grid_and_correct_corner() {
        let (b, p) = (paper_batch(32), paper_platform());
        let scales = [0.5, 0.75, 1.0];
        let surface = robustness_surface(&b, &p, &robust_alloc(), DEADLINE, &scales).unwrap();
        assert_eq!(surface.len(), 9);
        // The (1, 1) corner is the paper's operating point.
        let corner = surface
            .iter()
            .find(|pt| pt.scales == vec![1.0, 1.0])
            .unwrap();
        assert!((corner.phi1 - 0.745).abs() < 0.02, "{}", corner.phi1);
    }

    #[test]
    fn surface_is_monotone_in_each_axis() {
        let (b, p) = (paper_batch(16), paper_platform());
        let scales = [0.4, 0.7, 1.0];
        let surface = robustness_surface(&b, &p, &robust_alloc(), DEADLINE, &scales).unwrap();
        // For a fixed type-1 scale, φ1 is non-decreasing in type-2 scale,
        // and vice versa.
        for pt in &surface {
            for other in &surface {
                if pt.scales[0] == other.scales[0] && pt.scales[1] < other.scales[1] {
                    assert!(pt.phi1 <= other.phi1 + 1e-9, "{pt:?} vs {other:?}");
                }
                if pt.scales[1] == other.scales[1] && pt.scales[0] < other.scales[0] {
                    assert!(pt.phi1 <= other.phi1 + 1e-9, "{pt:?} vs {other:?}");
                }
            }
        }
    }

    #[test]
    fn diagonal_tolerance_brackets_the_paper_case_study() {
        // Uniformly scaling the paper's case-1 availabilities, the robust
        // mapping keeps a positive φ1 threshold up to roughly the
        // 30 %-decrease regime the paper's cases probe.
        let (b, p) = (paper_batch(32), paper_platform());
        let tol = diagonal_tolerance(&b, &p, &robust_alloc(), DEADLINE, 0.5, 50).unwrap();
        assert!(tol > 0.05 && tol < 0.5, "tolerance {tol}");
        // A demanding threshold tolerates less degradation than a lax one.
        let strict = diagonal_tolerance(&b, &p, &robust_alloc(), DEADLINE, 0.74, 50).unwrap();
        assert!(strict <= tol + 1e-12, "strict {strict} vs lax {tol}");
    }

    #[test]
    fn csv_rendering() {
        let points = vec![
            SurfacePoint {
                scales: vec![1.0, 0.5],
                phi1: 0.5,
            },
            SurfacePoint {
                scales: vec![0.5, 0.5],
                phi1: 0.1,
            },
        ];
        let csv = surface_to_csv(&points);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "scale_type1,scale_type2,phi1");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("1.0000,0.5000,"));
        assert!(surface_to_csv(&[]).is_empty());
    }

    #[test]
    fn validation() {
        let (b, p) = (paper_batch(8), paper_platform());
        assert!(robustness_surface(&b, &p, &robust_alloc(), DEADLINE, &[]).is_err());
        assert!(robustness_surface(&b, &p, &robust_alloc(), DEADLINE, &[1.5]).is_err());
        assert!(robustness_surface(&b, &p, &robust_alloc(), DEADLINE, &[0.0]).is_err());
        assert!(diagonal_tolerance(&b, &p, &robust_alloc(), DEADLINE, 0.5, 0).is_err());
        assert!(diagonal_tolerance(&b, &p, &robust_alloc(), DEADLINE, 1.5, 5).is_err());
    }
}
